#!/usr/bin/env python3
"""Pre-alignment filtering in front of the PIM system.

Seed-and-extend mappers hand aligners candidate pairs of which many are
false positives; aligning junk through WFA is its worst case (the score
— and hence the O(s²) work — grows with dissimilarity).  This example
composes a cheap bounded-edit filter (Ukkonen band) with the simulated
PIM system and shows the end-to-end effect as contamination grows.

Run:  python examples/filter_pipeline.py
"""

import random

from repro import AffinePenalties
from repro.data import ReadPair, ReadPairGenerator, random_sequence
from repro.perf import format_table
from repro.pim import KernelConfig, PimSystem, PimSystemConfig
from repro.pipeline import FilterAlignPipeline


def workload(total: int, junk_fraction: float, seed: int = 77) -> list[ReadPair]:
    rng = random.Random(seed)
    n_junk = round(total * junk_fraction)
    pairs = ReadPairGenerator(length=100, error_rate=0.02, seed=seed).pairs(
        total - n_junk
    )
    pairs += [
        ReadPair(pattern=random_sequence(100, rng), text=random_sequence(100, rng))
        for _ in range(n_junk)
    ]
    rng.shuffle(pairs)
    return pairs


def build_system() -> PimSystem:
    return PimSystem(
        PimSystemConfig(num_dpus=8, num_ranks=1, tasklets=4, num_simulated_dpus=8),
        KernelConfig(
            penalties=AffinePenalties(),
            max_read_len=100,
            max_edits=80,  # junk pairs are ~60 edits apart
            staging_chunk_bytes=512,
        ),
    )


def main() -> None:
    rows = []
    for junk in (0.0, 0.25, 0.5, 0.75):
        pairs = workload(96, junk)
        plain = build_system().align(pairs, collect_results=False)
        piped = FilterAlignPipeline(build_system(), max_edits=2).run(pairs)
        aligned = sum(1 for ok, _s, _c in piped.outcomes if ok)
        rows.append(
            (
                f"{junk:.0%}",
                f"{plain.total_seconds * 1e3:.2f} ms",
                f"{piped.total_seconds * 1e3:.2f} ms",
                f"{aligned}/96",
                f"{plain.total_seconds / piped.total_seconds:.1f}x",
            )
        )
    print(
        format_table(
            ["junk", "align everything", "filter + align", "aligned", "gain"],
            rows,
            title="pre-alignment filtering on the simulated PIM system",
        )
    )
    print()
    print(
        "The filter never drops a within-budget pair (property-tested);\n"
        "its payoff scales with how much junk the candidate generator emits."
    )


if __name__ == "__main__":
    main()
