#!/usr/bin/env python3
"""Reproduce the paper's Fig. 1 end to end and print the figure as text.

CPU bars (1..56 threads, roofline model over measured operation counts),
PIM Kernel and PIM Total bars (cycle-level DPU model at the paper's
2560-DPU operating point), for E = 2% and 4%, plus the paper-vs-measured
speedup summary.

Run:  python examples/fig1_reproduction.py          (~1 minute)
      python examples/fig1_reproduction.py --quick  (~10 seconds)
"""

import sys
import time

from repro.experiments import Fig1Config, run_fig1


def main() -> None:
    quick = "--quick" in sys.argv
    config = Fig1Config(
        cpu_sample_pairs=100 if quick else 500,
        pim_sample_pairs_per_dpu=32 if quick else 128,
        num_simulated_dpus=1 if quick else 4,
    )
    t0 = time.time()
    result = run_fig1(config)
    print(result.report())
    print()
    print(f"[reproduced in {time.time() - t0:.1f}s wall clock; "
          f"CPU sample {config.cpu_sample_pairs} pairs, "
          f"{config.num_simulated_dpus} simulated DPU(s) x "
          f"{config.pim_sample_pairs_per_dpu} pairs]")


if __name__ == "__main__":
    main()
