#!/usr/bin/env python3
"""Explore the paper's central design trade-off: where does WFA metadata live?

For each metadata placement policy ("wram" vs the paper's "mram") and a
range of edit budgets, this prints how many tasklets the 64 KB shared
WRAM admits and what the resulting kernel throughput is — the
quantitative version of the paper's argument that MRAM-resident metadata
"unleashes the maximum threads".

Run:  python examples/allocator_tradeoff.py
"""

from repro import AffinePenalties
from repro.experiments import allocator_policy_ablation, tasklet_sweep
from repro.perf import format_table
from repro.pim import DpuConfig, KernelConfig, WfaDpuKernel, max_supported_tasklets


def admission_table() -> None:
    """Tasklet admission vs edit budget, per policy."""
    rows = []
    for max_edits in (1, 2, 4, 6, 8, 12):
        kc = KernelConfig(penalties=AffinePenalties(), max_edits=max_edits)
        kernel = WfaDpuKernel(kc)
        rows.append(
            (
                f"{max_edits} edits (score<= {kc.max_score})",
                f"{kc.metadata_peak_bytes():,} B",
                max_supported_tasklets(kernel, DpuConfig(), "wram"),
                max_supported_tasklets(kernel, DpuConfig(), "mram"),
            )
        )
    print(
        format_table(
            ["edit budget", "peak metadata/alignment", "wram tasklets", "mram tasklets"],
            rows,
            title="tasklet admission: 64 KB WRAM shared by all tasklets",
        )
    )


def main() -> None:
    admission_table()
    print()
    print(allocator_policy_ablation(error_rate=0.04, sample_pairs_per_dpu=24).report())
    print()
    print(
        tasklet_sweep(
            error_rate=0.02,
            tasklet_counts=(1, 2, 4, 8, 11, 16, 24),
            sample_pairs_per_dpu=48,
        ).report()
    )
    print()
    print(
        "Reading: the 'wram' policy starves thread-level parallelism exactly\n"
        "as the paper describes; the 'mram' policy admits all 24 tasklets and\n"
        "rides the 11-deep revolving pipeline to ~1 instruction/cycle."
    )


if __name__ == "__main__":
    main()
