#!/usr/bin/env python3
"""Long, noisy reads: exact WFA vs the WFA-Adapt heuristic.

The paper's future work targets longer read lengths; this example shows
the algorithmic side of that direction: on multi-kilobase reads at
long-read error rates, the adaptive reduction cuts wavefront work by a
large factor while (on these inputs) preserving the optimal penalty.

Run:  python examples/long_read_alignment.py
"""

import random
import time

from repro import AdaptiveReduction, AffinePenalties, WavefrontAligner
from repro.data import mutate_sequence, random_sequence
from repro.perf import format_table


def main() -> None:
    penalties = AffinePenalties()
    exact = WavefrontAligner(penalties)
    adaptive = WavefrontAligner(
        penalties,
        heuristic=AdaptiveReduction(min_wavefront_length=10, max_distance_threshold=50),
    )

    rng = random.Random(2022)
    rows = []
    for length, error_rate in [(500, 0.05), (1000, 0.05), (2000, 0.08)]:
        pattern = random_sequence(length, rng)
        text = mutate_sequence(pattern, round(error_rate * length), rng)

        t0 = time.time()
        r_exact = exact.align(pattern, text)
        t_exact = time.time() - t0

        t0 = time.time()
        r_adapt = adaptive.align(pattern, text)
        t_adapt = time.time() - t0

        r_adapt.cigar.validate(pattern, text)
        rows.append(
            (
                f"{length}bp @ {error_rate:.0%}",
                r_exact.score,
                r_adapt.score,
                f"{r_exact.counters.cells_computed:,}",
                f"{r_adapt.counters.cells_computed:,}",
                f"{r_exact.counters.cells_computed / max(r_adapt.counters.cells_computed, 1):.1f}x",
                f"{t_exact / max(t_adapt, 1e-9):.1f}x",
            )
        )

    print(
        format_table(
            [
                "read",
                "exact score",
                "adaptive score",
                "exact cells",
                "adaptive cells",
                "cell savings",
                "wall speedup",
            ],
            rows,
            title="exact WFA vs WFA-Adapt on long noisy reads",
        )
    )
    print()
    print(
        "The adaptive score is an upper bound on the optimal penalty; on\n"
        "reads whose errors are uniformly spread it is almost always equal."
    )


if __name__ == "__main__":
    main()
