#!/usr/bin/env python3
"""Batch read alignment on a simulated UPMEM rank, verified against the CPU.

Mirrors the paper's full pipeline at small scale: generate a read-pair
workload, write it in WFA2-lib's .seq format, distribute it across a
64-DPU rank, run the WFA kernel on every DPU, gather results from MRAM,
and cross-check each score/CIGAR against the host reference.

Run:  python examples/read_mapping_batch.py
"""

import tempfile
from pathlib import Path

from repro import AffinePenalties
from repro.baselines import gotoh_score
from repro.data import DatasetSpec, read_seq, write_seq
from repro.perf import format_table, human_time
from repro.pim import KernelConfig, PimSystem, upmem_single_rank


def main() -> None:
    penalties = AffinePenalties()
    spec = DatasetSpec(num_pairs=512, length=100, error_rate=0.02, seed=7)

    # 1. Generate the workload and round-trip it through a .seq file
    #    (the format the original WFA tooling consumes).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "reads.seq"
        write_seq(path, spec.stream())
        pairs = read_seq(path)
    print(f"workload: {spec.describe()}")

    # 2. Configure a single UPMEM rank (64 DPUs, fully simulated) with the
    #    paper's kernel: metadata in MRAM, 16 tasklets.
    system = PimSystem(
        upmem_single_rank(tasklets=16),
        KernelConfig(
            penalties=penalties,
            max_read_len=spec.length,
            max_edits=max(spec.edit_budget, 1),
        ),
    )

    # 3. Distribute, launch, gather.
    run = system.align(pairs)

    # 4. Verify every result that came back out of simulated MRAM.
    mismatches = 0
    for idx, score, cigar in run.results:
        pair = pairs[idx]
        expected = gotoh_score(pair.pattern, pair.text, penalties)
        cigar.validate(pair.pattern, pair.text)
        if score != expected:
            mismatches += 1
    print(f"verified {len(run.results)} alignments against Gotoh DP "
          f"({mismatches} mismatches)")
    assert mismatches == 0

    # 5. Report the modeled timing split the paper's figure is built from.
    rows = [
        ("kernel", human_time(run.kernel_seconds)),
        ("CPU->DPU transfer", human_time(run.transfer_in_seconds)),
        ("DPU->CPU transfer", human_time(run.transfer_out_seconds)),
        ("launch overhead", human_time(run.launch_seconds)),
        ("total", human_time(run.total_seconds)),
    ]
    print()
    print(format_table(["component", "modeled time"], rows,
                       title="single-rank run (modeled UPMEM timing)"))
    print()
    print(f"throughput (total) : {run.throughput():,.0f} pairs/s")
    print(f"throughput (kernel): {run.kernel_throughput():,.0f} pairs/s")
    print(f"binding DPU bound  : {run.dominant_bound()}")
    busiest = max(run.per_dpu, key=lambda d: d.pairs_done)
    print(f"busiest DPU        : #{busiest.dpu_id} "
          f"({busiest.pairs_done} pairs, {busiest.dma_bytes} B DMA)")


if __name__ == "__main__":
    main()
