#!/usr/bin/env python3
"""Semi-global read mapping with ends-free WFA, plus batch statistics.

Simulates the classic mapping scenario: short reads drawn (with errors)
from positions inside a reference contig, then located by aligning each
read semi-globally against its candidate window — the text may overhang
freely on both sides, the read must align end-to-end.

Also demonstrates the bidirectional scorer (BiWFA-style, O(s) memory)
agreeing with the standard engine, and the analysis helpers.

Run:  python examples/semiglobal_mapping.py
"""

import random

from repro import AffinePenalties, AlignmentSpan, WavefrontAligner, biwfa_score
from repro.analysis import summarize_results
from repro.data import mutate_sequence, random_sequence

READ_LEN = 80
WINDOW = 200
NUM_READS = 50
ERROR_RATE = 0.03


def main() -> None:
    rng = random.Random(404)
    penalties = AffinePenalties()
    contig = random_sequence(5000, rng)

    # Sample reads from the contig and mutate them.
    reads = []
    for _ in range(NUM_READS):
        pos = rng.randrange(len(contig) - READ_LEN)
        read = mutate_sequence(
            contig[pos : pos + READ_LEN], round(ERROR_RATE * READ_LEN), rng
        )
        # candidate window around the true position (as a seed index would give)
        w_start = max(0, pos - (WINDOW - READ_LEN) // 2)
        window = contig[w_start : w_start + WINDOW]
        reads.append((read, window, pos - w_start))

    mapper = WavefrontAligner(penalties, span=AlignmentSpan.semiglobal())
    results = []
    located = 0
    for read, window, true_offset in reads:
        res = mapper.align(read, window)
        results.append(res)
        # mapping position = where the alignment starts in the window
        if abs(res.text_start - true_offset) <= round(ERROR_RATE * READ_LEN):
            located += 1

    print(f"mapped {NUM_READS} x {READ_LEN}bp reads into {WINDOW}bp windows "
          f"(E={ERROR_RATE:.0%})")
    print(f"position recovered within +-{round(ERROR_RATE * READ_LEN)}bp: "
          f"{located}/{NUM_READS}")
    print()
    print(summarize_results(results).report())

    # Bidirectional scorer cross-check on a global sub-case.
    read, window, off = reads[0]
    target = window[: len(read) + 5]
    standard = WavefrontAligner(penalties).score(read, target)
    bidirectional = biwfa_score(read, target, penalties)
    assert standard == bidirectional
    print()
    print(f"BiWFA cross-check: standard={standard}, bidirectional={bidirectional} "
          "(O(s)-memory scoring agrees)")


if __name__ == "__main__":
    main()
