#!/usr/bin/env python3
"""A tour of every distance metric and alignment mode in the library.

One noisy pair, aligned under all four penalty models, in all the modes:
exact, adaptive, static band, score-only, bidirectional, ends-free, and
linear-space traceback — each checked against its classical-DP oracle.

Run:  python examples/metrics_tour.py
"""

import random

from repro import (
    AdaptiveReduction,
    AffinePenalties,
    AlignmentSpan,
    EditPenalties,
    LinearPenalties,
    StaticBand,
    TwoPieceAffinePenalties,
    WavefrontAligner,
    biwfa_score,
)
from repro.baselines import (
    gotoh2p_score,
    gotoh_endsfree_score,
    gotoh_score,
    levenshtein_dp,
    myers_miller_align,
)
from repro.data import mutate_sequence, random_sequence
from repro.perf import format_table


def main() -> None:
    rng = random.Random(1001)
    pattern = random_sequence(120, rng)
    text = mutate_sequence(pattern, 8, rng)

    rows = []

    # --- the four metrics, each against its oracle -----------------------
    metrics = [
        ("edit (Levenshtein)", EditPenalties(), lambda p, t, pen: levenshtein_dp(p, t)),
        ("gap-linear (4,2)", LinearPenalties(4, 2), gotoh_score),
        ("gap-affine (4,6,2)", AffinePenalties(4, 6, 2), gotoh_score),
        (
            "gap-affine-2p (4,6,2,24,1)",
            TwoPieceAffinePenalties(),
            lambda p, t, pen: gotoh2p_score(p, t, pen),
        ),
    ]
    for name, pen, oracle in metrics:
        r = WavefrontAligner(pen).align(pattern, text)
        expect = oracle(pattern, text, pen)
        assert r.score == expect, (name, r.score, expect)
        rows.append((name, r.score, str(r.cigar)[:34] + "...", "= oracle"))

    # --- modes on the affine metric --------------------------------------------
    pen = AffinePenalties(4, 6, 2)
    exact = WavefrontAligner(pen).align(pattern, text)

    adaptive = WavefrontAligner(pen, heuristic=AdaptiveReduction()).align(
        pattern, text
    )
    rows.append(
        (
            "affine + WFA-Adapt",
            adaptive.score,
            f"{adaptive.counters.cells_computed} cells "
            f"(exact: {exact.counters.cells_computed})",
            "upper bound" if adaptive.score > exact.score else "= exact",
        )
    )

    banded = WavefrontAligner(pen, heuristic=StaticBand(12, 12)).align(pattern, text)
    rows.append(
        (
            "affine + static band 12",
            banded.score,
            f"{banded.counters.cells_computed} cells",
            "upper bound" if banded.score > exact.score else "= exact",
        )
    )

    bi = biwfa_score(pattern, text, pen)
    assert bi == exact.score
    rows.append(("affine, bidirectional (O(s) mem)", bi, "score only", "= exact"))

    mm_score, mm_cigar = myers_miller_align(pattern, text, pen)
    assert mm_score == exact.score
    rows.append(
        ("affine, linear-space traceback", mm_score, str(mm_cigar)[:34] + "...", "= exact")
    )

    span = AlignmentSpan.semiglobal()
    embedded = "GGTT" * 6 + pattern + "AACC" * 6
    semi = WavefrontAligner(pen, span=span).align(text, embedded)
    oracle = gotoh_endsfree_score(text, embedded, pen, span)
    assert semi.score == oracle
    rows.append(
        (
            "affine, semi-global (read in contig)",
            semi.score,
            f"maps at text[{semi.text_start}:{semi.text_end}]",
            "= oracle",
        )
    )

    print(
        format_table(
            ["mode", "score", "notes", "check"],
            rows,
            title=f"one pair ({len(pattern)}bp, 8 edits requested), every mode",
        )
    )


if __name__ == "__main__":
    main()
