#!/usr/bin/env python3
"""Read mapping on the simulated PIM system (ends-free DPU kernel).

The paper aligns pre-paired reads; this example pushes one step further
along its trajectory: seed-window read *mapping* on the DPUs.  Reads are
sampled from a reference (both strands, with errors), candidate windows
are cut around their seed positions, and the DPU kernel aligns each read
ends-free inside its window — clipping coordinates travel back through
MRAM result records and come out as PAF.

Run:  python examples/pim_mapping.py
"""

import tempfile
from pathlib import Path

from repro import AffinePenalties, AlignmentSpan
from repro.baselines import gotoh_endsfree_score
from repro.data import ReferenceSampler, ReadPair, read_paf, write_paf
from repro.data.paf import PafRecord
from repro.pim import KernelConfig, PimSystemConfig, PimSystem

FLANK = 16
READ_LEN = 72


def main() -> None:
    penalties = AffinePenalties()
    span = AlignmentSpan(text_begin_free=2 * FLANK, text_end_free=2 * FLANK)
    sampler = ReferenceSampler(
        seed=99, reference_length=20_000, read_length=READ_LEN, error_rate=0.03
    )

    # Build (read, window) work items as a seed index would.
    reads = sampler.reads(96)
    pairs = []
    offsets = []
    for read in reads:
        query = sampler.oriented_query(read)
        window, offset = read.window(sampler.reference, flank=FLANK)
        pairs.append(ReadPair(pattern=query, text=window))
        offsets.append(offset)

    # An 8-DPU mini-system with the ends-free kernel.
    system = PimSystem(
        PimSystemConfig(num_dpus=8, num_ranks=1, tasklets=8, num_simulated_dpus=8),
        KernelConfig(
            penalties=penalties,
            max_read_len=READ_LEN + 2 * FLANK,
            max_edits=max(sampler.edit_budget, 1),
            span=span,
        ),
    )
    run = system.align(pairs, verify=False)

    # Gather: results -> PAF records; verify scores against the host oracle
    # and the mapped position against the sampler's ground truth.  The
    # clipping coordinates come straight out of the MRAM result records.
    records = []
    located = 0
    for idx, score, cigar in sorted(run.results):
        pair = pairs[idx]
        oracle = gotoh_endsfree_score(pair.pattern, pair.text, penalties, span)
        assert score == oracle, (idx, score, oracle)
        p_start, t_start = run.regions[idx]
        records.append(
            PafRecord(
                query_name=f"read{idx}",
                query_len=len(pair.pattern),
                query_start=p_start,
                query_end=p_start + cigar.pattern_length(),
                strand="-" if reads[idx].reverse else "+",
                target_name="ref",
                target_len=len(pair.text),
                target_start=t_start,
                target_end=t_start + cigar.text_length(),
                matches=cigar.counts()["M"],
                alignment_len=cigar.columns(),
                cigar=str(cigar),
            )
        )
        if abs(t_start - offsets[idx]) <= sampler.edit_budget + 1:
            located += 1

    with tempfile.TemporaryDirectory() as tmp:
        paf = Path(tmp) / "mappings.paf"
        write_paf(paf, records)
        loaded = read_paf(paf)
    assert loaded == records

    print(f"mapped {len(pairs)} reads on {run.pairs_simulated and 8} simulated DPUs")
    print(f"scores verified against the ends-free DP oracle: {len(run.results)}/96")
    print(f"plausible placements: {located}/96")
    print(f"modeled kernel time : {run.kernel_seconds * 1e3:.3f} ms")
    print(f"modeled total time  : {run.total_seconds * 1e3:.3f} ms")
    print(f"PAF round trip      : {len(loaded)} records")


if __name__ == "__main__":
    main()
