#!/usr/bin/env python3
"""Quickstart: align two sequences with WFA and inspect the result.

Run:  python examples/quickstart.py
"""

from repro import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    WavefrontAligner,
)

PATTERN = "TCTTTACTCGCGCGTTGGAGAAATACAATAGT"
TEXT = "TCTATACTGCGCGTTTGGAGAAATAAAATAGT"


def main() -> None:
    # The paper's metric: gap-affine with WFA's default penalties
    # (mismatch 4, gap open 6, gap extend 2; matches are free).
    aligner = WavefrontAligner(AffinePenalties(mismatch=4, gap_open=6, gap_extend=2))
    result = aligner.align(PATTERN, TEXT)

    print("pattern:", PATTERN)
    print("text:   ", TEXT)
    print()
    print(f"alignment penalty : {result.score}")
    print(f"CIGAR             : {result.cigar}")
    print(f"identity          : {result.identity():.1%}")
    print()
    print(result.cigar.pretty(PATTERN, TEXT))
    print()

    # The same pair under the other metrics WFA supports.
    for name, penalties in [
        ("edit (Levenshtein)", EditPenalties()),
        ("gap-linear (x=4, indel=2)", LinearPenalties(mismatch=4, indel=2)),
    ]:
        score = WavefrontAligner(penalties).score(PATTERN, TEXT)
        print(f"{name:<28}: {score}")

    # Score-only mode runs in WFA's low-memory configuration.
    score_only = aligner.align(PATTERN, TEXT, score_only=True)
    assert score_only.cigar is None and score_only.score == result.score
    print()
    print(
        "work done:",
        f"{result.counters.cells_computed} wavefront cells,",
        f"{result.counters.extend_steps} extension comparisons,",
        f"{result.counters.metadata_bytes()} B of wavefront metadata",
    )


if __name__ == "__main__":
    main()
