# Convenience targets for the reproduction workflow.

.PHONY: install test test-fast qa campaign coverage bench bench-parallel bench-vector bench-ledger perf-gate examples fig1 outputs trace-demo serve-demo chaos chaos-net fleet-demo clean

install:
	pip install -e .

# tests/test_chaos.py runs the seeded chaos drill (DpuDeath +
# TaskletStall + mid-run crash/resume) as part of the default suite;
# `make chaos` replays the same scenario through the installed CLI.
test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

# Seeded differential-verification sweep (see docs/testing.md): every
# kernel answer checked against WFA + Gotoh + Myers oracles, the report
# schema-validated, plus a fault-injected rerun that must still agree.
qa:
	PYTHONPATH=src HYPOTHESIS_PROFILE=ci python -m repro.cli qa \
		--trials 200 --seed 42 --report out/qa/report.jsonl
	PYTHONPATH=src HYPOTHESIS_PROFILE=ci python -m repro.cli qa \
		--trials 50 --seed 42 --kill-dpu 1 --report out/qa/report-faults.jsonl

# Seeded ablation x chaos campaign (see docs/campaigns.md): the full
# standard ablation vocabulary crossed with the standard fault grid,
# every cell run in parallel on the virtual clock, the evidence report
# (schema repro.qa.campaign/v1) schema-validated with every delta
# recomputed, and the structured event log written alongside.  The
# report is byte-identical across reruns and across --workers settings.
campaign:
	mkdir -p out/campaign
	PYTHONPATH=src python -m repro.cli campaign \
		--pairs 48 --seed 42 --workers 2 \
		--report out/campaign/report.jsonl \
		--events-out out/campaign/events.jsonl
	PYTHONPATH=src python -c "from repro.qa.campaign import validate_campaign_report; \
		s = validate_campaign_report('out/campaign/report.jsonl'); \
		print(f\"campaign OK: {s['cells']} cells, \" \
		      f\"oracle {s['oracle_ok']}/{s['oracle_checked']}, \" \
		      f\"{s['resumes_identical']}/{s['resumes_checked']} resumes \" \
		      f\"byte-identical\")"

# Coverage gate over the fault + QA subsystems.  pytest-cov is not part
# of the baked toolchain everywhere, so the gate degrades to a plain run
# (with a visible notice) when the plugin is missing rather than failing
# the build on a tooling gap.
coverage:
	@if python -c "import pytest_cov" 2>/dev/null; then \
		PYTHONPATH=src python -m pytest tests/test_pim_faults.py \
			tests/test_qa_oracle.py tests/test_qa_cli.py \
			tests/test_qa_differential.py tests/test_scheduler_stateful.py \
			tests/test_pim_health.py tests/test_pim_journal.py \
			tests/test_pim_fleet.py tests/test_campaign.py \
			tests/test_campaign_report.py tests/test_pim_transport.py \
			tests/test_transport_stateful.py \
			--cov=repro.pim.faults --cov=repro.qa \
			--cov=repro.pim.health --cov=repro.pim.journal \
			--cov=repro.pim.fleet --cov=repro.pim.ablation \
			--cov=repro.pim.transport \
			--cov-report=term-missing --cov-fail-under=85; \
	else \
		echo "pytest-cov not installed; running the suite without the gate"; \
		PYTHONPATH=src python -m pytest tests/test_pim_faults.py \
			tests/test_qa_oracle.py tests/test_qa_cli.py \
			tests/test_qa_differential.py tests/test_scheduler_stateful.py \
			tests/test_pim_health.py tests/test_pim_journal.py \
			tests/test_pim_fleet.py tests/test_campaign.py \
			tests/test_campaign_report.py tests/test_pim_transport.py \
			tests/test_transport_stateful.py -q; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

bench-parallel:
	PYTHONPATH=src python benchmarks/bench_host_parallel.py

# Scalar vs vectorized (NumPy) WFA engine throughput; verifies the two
# engines produce identical results before reporting any timing.  See
# docs/vectorized-engine.md.
bench-vector:
	PYTHONPATH=src python benchmarks/bench_batch_engine.py

# Perf ledger (see docs/perf-ledger.md): run every registered scenario
# at the CI-safe quick profile on the modeled clock — each one identity-
# checks the claim it benchmarks — and append schema-versioned records
# to BENCH_ledger.json.
bench-ledger:
	PYTHONPATH=src python -m repro.cli bench run --profile quick \
		--ledger BENCH_ledger.json

# The CI regression gate: diff the latest ledger record per scenario
# against the committed baseline; exits non-zero (naming the scenario
# and metric) past a >10% modeled-throughput drop or modeled-latency
# rise.  Runs next to `make qa`.
perf-gate:
	PYTHONPATH=src python -m repro.cli bench compare \
		--ledger BENCH_ledger.json --baseline BENCH_baseline.json \
		--max-drop 0.10 --max-rise 0.10

examples:
	for ex in examples/*.py; do \
		echo "== $$ex"; \
		python $$ex $$( [ "$$ex" = "examples/fig1_reproduction.py" ] && echo --quick ) > /dev/null || exit 1; \
	done

fig1:
	python examples/fig1_reproduction.py

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

trace-demo:
	mkdir -p out/trace-demo
	PYTHONPATH=src python -m repro.cli generate --pairs 64 --length 80 \
		--error-rate 0.03 --seed 7 -o out/trace-demo/reads.seq
	PYTHONPATH=src python -m repro.cli pim-align -i out/trace-demo/reads.seq \
		--dpus 8 --tasklets 4 --workers 2 \
		--metrics-out out/trace-demo/metrics.prom \
		--trace-out out/trace-demo/trace.json
	PYTHONPATH=src python -c "import json; \
		from repro.obs.export import validate_chrome_trace; \
		n = validate_chrome_trace(json.load(open('out/trace-demo/trace.json'))); \
		print(f'trace OK: {n} duration events -> open out/trace-demo/trace.json in chrome://tracing')"

# Deterministic 200-request replay through the alignment service (see
# docs/serving.md): virtual-clock bursty arrivals, result cache on, a
# DPU death injected into every batch — the JSONL latency report is
# schema-validated and every summary figure recomputed from the
# per-request records.  The same replay runs under pytest in
# tests/test_serve_cli.py.
serve-demo:
	mkdir -p out/serve-demo
	PYTHONPATH=src python -m repro.cli loadgen \
		--requests 200 --rate 10000 --process bursty --length 10 \
		--seed 5 --cache 64 --dpus 4 --tasklets 4 --kill-dpu 1 \
		--report out/serve-demo/load.jsonl \
		--metrics-out out/serve-demo/serve.prom
	PYTHONPATH=src python -c "from repro.serve import validate_load_report; \
		s = validate_load_report('out/serve-demo/load.jsonl'); \
		print(f\"report OK: {s['completed']} completed, \" \
		      f\"{s['cached_pairs']} cached pairs, \" \
		      f\"p99 {s['latency_p99_s']*1e3:.2f} ms\")"

# Seeded chaos drill (see docs/resilience.md): a persistent DPU death
# plus a first-attempt tasklet stall under the circuit breaker, a
# mid-run crash (journal truncated at a record boundary) resumed with
# --resume, and the same fault plan replayed through the serve path
# with CPU fallback.  The rebuilt journal must be byte-identical to the
# uninterrupted one, and both the repro.pim.journal/v1 journal and the
# repro.serve.load/v1 report are schema-validated.  The same scenario
# runs under pytest in tests/test_chaos.py (part of `make test`).
chaos:
	mkdir -p out/chaos
	PYTHONPATH=src python -m repro.cli generate --pairs 96 --length 48 \
		--error-rate 0.03 --seed 13 -o out/chaos/reads.seq
	PYTHONPATH=src python -m repro.cli pim-align -i out/chaos/reads.seq \
		--dpus 4 --tasklets 4 --pairs-per-round 24 \
		--kill-dpu 1 --stall-dpu 2 --breaker \
		--journal out/chaos/run.jsonl
	head -n 3 out/chaos/run.jsonl > out/chaos/crashed.jsonl
	PYTHONPATH=src python -m repro.cli pim-align -i out/chaos/reads.seq \
		--dpus 4 --tasklets 4 --pairs-per-round 24 \
		--kill-dpu 1 --stall-dpu 2 --breaker \
		--journal out/chaos/crashed.jsonl --resume
	cmp out/chaos/run.jsonl out/chaos/crashed.jsonl
	PYTHONPATH=src python -m repro.cli loadgen \
		--requests 120 --rate 8000 --length 10 --seed 13 \
		--dpus 4 --tasklets 4 --kill-dpu 1 --stall-dpu 2 --breaker \
		--fallback-threshold 0.9 --report out/chaos/load.jsonl
	PYTHONPATH=src python -c "from repro.pim.journal import RunJournal; \
		from repro.serve import validate_load_report; \
		j = RunJournal.load('out/chaos/crashed.jsonl'); \
		s = validate_load_report('out/chaos/load.jsonl'); \
		print(f\"chaos OK: journal {j.header['schema']} with \" \
		      f\"{len(j.rounds())} rounds resumed byte-identically, \" \
		      f\"load report valid ({s['completed']} completed)\")"

# Transport chaos drill (see docs/fleet.md and docs/resilience.md): the
# same workload runs through a 4-shard fleet twice — once over calm
# links, once under a seeded NetworkFaultPlan (lossy + duplicating +
# delayed + reordering links and a finite partition) with hedged
# work-stealing — and the two result TSVs must be byte-identical: the
# wire is invisible in the data.  The same plan then replays through
# the serve path; the load report and the structured event log (which
# must carry net_drop / net_redeliver / net_partition events) are both
# schema-validated.  The same claims run under pytest in
# tests/test_pim_transport.py (part of `make test`).
chaos-net:
	mkdir -p out/chaos-net
	PYTHONPATH=src python -m repro.cli generate --pairs 256 --length 48 \
		--error-rate 0.03 --seed 29 -o out/chaos-net/reads.seq
	PYTHONPATH=src python -c "import json; \
		from repro.pim.transport import LinkDelay, LinkDrop, \
			LinkDuplicate, LinkReorder, NetworkFaultPlan, Partition; \
		plan = NetworkFaultPlan(seed=29, \
			drops=tuple(LinkDrop(shard_id=s, p=0.2) for s in (1, 2, 3)), \
			duplicates=(LinkDuplicate(shard_id=2, p=0.25),), \
			delays=(LinkDelay(shard_id=1, delay_s=1e-4, jitter_s=5e-5),), \
			reorders=(LinkReorder(shard_id=2, p=0.2),), \
			partitions=(Partition(start_s=0.0, end_s=0.03, shard_ids=(3,)),)); \
		json.dump(plan.to_dict(), open('out/chaos-net/plan.json', 'w'), indent=2)"
	PYTHONPATH=src python -m repro.cli pim-align -i out/chaos-net/reads.seq \
		--dpus 4 --tasklets 4 --shards 4 --pairs-per-round 32 \
		-o out/chaos-net/calm.tsv
	PYTHONPATH=src python -m repro.cli pim-align -i out/chaos-net/reads.seq \
		--dpus 4 --tasklets 4 --shards 4 --pairs-per-round 32 \
		--net-plan @out/chaos-net/plan.json --hedge \
		-o out/chaos-net/lossy.tsv
	cmp out/chaos-net/calm.tsv out/chaos-net/lossy.tsv
	PYTHONPATH=src python -m repro.cli loadgen \
		--requests 160 --rate 8000 --length 10 --seed 29 \
		--dpus 4 --tasklets 4 --shards 4 --pairs-per-round 2 \
		--net-plan @out/chaos-net/plan.json --hedge \
		--report out/chaos-net/load.jsonl \
		--events-out out/chaos-net/events.jsonl
	PYTHONPATH=src python -c "import json; \
		from repro.obs.events import validate_event_log; \
		from repro.serve import validate_load_report; \
		s = validate_load_report('out/chaos-net/load.jsonl'); \
		records = [json.loads(l) for l in open('out/chaos-net/events.jsonl')]; \
		validate_event_log(records); \
		kinds = {r.get('kind') for r in records[1:]}; \
		missing = {'net_drop', 'net_redeliver', 'net_partition'} - kinds; \
		assert not missing, f'net events missing from the log: {missing}'; \
		print(f\"chaos-net OK: lossy TSV byte-identical to calm, \" \
		      f\"load report valid ({s['completed']} completed), \" \
		      f\"{len(records) - 1} events with net fault coverage\")"

# Sharded-fleet chaos drill (see docs/fleet.md): a 4-shard fleet run
# with a persistent DPU death under per-shard circuit breakers,
# journaled to a federated journal directory (per-shard journals +
# repro.pim.fleet/v1 manifest); a mid-run crash is simulated by
# truncating one shard's journal at a record boundary and deleting
# another's outright, then resumed with --resume at a different worker
# count (the fingerprint excludes workers and shards).  Every rebuilt
# journal file must be byte-identical to the uninterrupted run's, and
# the same fault plan replays through a 4-shard serve path with a
# schema-validated load report.  The same scenario runs under pytest in
# tests/test_pim_fleet.py (part of `make test`).
fleet-demo:
	rm -rf out/fleet
	mkdir -p out/fleet
	PYTHONPATH=src python -m repro.cli generate --pairs 512 --length 48 \
		--error-rate 0.03 --seed 21 -o out/fleet/reads.seq
	PYTHONPATH=src python -m repro.cli pim-align -i out/fleet/reads.seq \
		--dpus 4 --tasklets 4 --shards 4 --pairs-per-round 32 \
		--kill-dpu 1 --breaker --journal out/fleet/journal
	cp -r out/fleet/journal out/fleet/crashed
	head -n 2 out/fleet/crashed/shard-001.jsonl > out/fleet/crashed/tmp \
		&& mv out/fleet/crashed/tmp out/fleet/crashed/shard-001.jsonl
	rm out/fleet/crashed/shard-003.jsonl
	PYTHONPATH=src python -m repro.cli pim-align -i out/fleet/reads.seq \
		--dpus 4 --tasklets 4 --shards 4 --pairs-per-round 32 \
		--kill-dpu 1 --breaker --workers 2 \
		--journal out/fleet/crashed --resume
	for f in manifest.json shard-000.jsonl shard-001.jsonl \
		shard-002.jsonl shard-003.jsonl; do \
		cmp out/fleet/journal/$$f out/fleet/crashed/$$f || exit 1; done
	PYTHONPATH=src python -m repro.cli loadgen \
		--requests 200 --rate 8000 --length 10 --seed 21 \
		--dpus 4 --tasklets 4 --shards 4 --kill-dpu 1 --breaker \
		--report out/fleet/load.jsonl
	PYTHONPATH=src python -c "from repro.pim.fleet import FleetCoordinator; \
		from repro.serve import validate_load_report; \
		m = FleetCoordinator.load_manifest('out/fleet/crashed'); \
		s = validate_load_report('out/fleet/load.jsonl'); \
		print(f\"fleet OK: {m['schema']} manifest, {m['shards']} shards, \" \
		      f\"{len(m['placements'])} rounds resumed byte-identically, \" \
		      f\"load report valid ({s['completed']} completed)\")"

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/out out build src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
