# Convenience targets for the reproduction workflow.

.PHONY: install test test-fast bench bench-parallel examples fig1 outputs clean

install:
	pip install -e .

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

bench-parallel:
	PYTHONPATH=src python benchmarks/bench_host_parallel.py

examples:
	for ex in examples/*.py; do \
		echo "== $$ex"; \
		python $$ex $$( [ "$$ex" = "examples/fig1_reproduction.py" ] && echo --quick ) > /dev/null || exit 1; \
	done

fig1:
	python examples/fig1_reproduction.py

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/out build src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
