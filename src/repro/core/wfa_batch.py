"""Batched struct-of-arrays WFA engine (NumPy).

:class:`~repro.core.wfa.WfaEngine` advances one pair per Python loop
iteration; at the batch sizes the PIM simulator and the serve layer
dispatch (hundreds to thousands of pairs per DPU round) the interpreter
overhead of that per-cell loop dominates wall-clock time.  This module
holds the M/I/D offsets of a *whole batch* of pairs in padded 2-D int32
arrays — one row per pair, one column per diagonal — and advances every
live pair per score step with vectorized recurrences and a vectorized
greedy extension.

The engine is an *accelerated replica*, not a new algorithm: for every
pair it reproduces the scalar engine's score, CIGAR, and
:class:`~repro.core.wavefront.WfaCounters` (including the
``wavefront_log`` that the PIM kernel replays for DMA charging) bit for
bit.  The scalar engine stays the differential oracle — see
``docs/vectorized-engine.md`` and ``tests/test_wfa_batch.py``.

Why whole-batch arrays are possible at all: without heuristics and with a
global span, the wavefront bounds ``[lo, hi]`` at each score depend only
on the penalty model and score arithmetic — never on sequence content —
so every pair in the batch shares the same array layout at every score.
The engine therefore refuses non-global spans and has no heuristic hook;
callers fall back to the scalar engine for those configurations.

Vectorized extension compares characters directly, in chunks: every
reached ``(pair, diagonal)`` lane gathers a small window of pattern and
text codepoints, finds the first mismatch with an ``argmin``, and lanes
that matched their whole window go another round with a doubled window.
Lanes are compacted between rounds, so total work is proportional to
the characters actually matched — the same work the scalar engine does,
at NumPy speed.  Distinct out-of-range sentinel pads on the two
codepoint matrices make every boundary check implicit: any read past a
sequence end compares unequal, ending the run exactly at the boundary.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.aligner import AlignmentResult
from repro.core.backtrace import backtrace
from repro.core.cigar import Cigar
from repro.core.penalties import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    Penalties,
    TwoPieceAffinePenalties,
)
from repro.core.span import AlignmentSpan
from repro.core.wavefront import (
    NULL_THRESHOLD,
    OFFSET_NULL,
    Wavefront,
    WavefrontSet,
    WfaCounters,
)
from repro.core.wfa import WfaEngine
from repro.errors import AlignmentError

__all__ = ["BatchWfaEngine", "BatchPairView", "align_batch"]

Sequence_ = Union[str, bytes]

_NULL32 = np.int32(OFFSET_NULL)
_ONE32 = np.int32(1)


def _as_str(seq: Sequence_, name: str) -> str:
    if isinstance(seq, bytes):
        return seq.decode("ascii")
    if isinstance(seq, str):
        return seq
    raise AlignmentError(f"{name} must be str or bytes, got {type(seq).__name__}")


# Sentinel codepoints above the Unicode range (max 0x10FFFF).  Pattern
# and text pads differ, so a pad never equals a real character *or* the
# other matrix's pad: reads past either sequence end compare unequal and
# extension stops at the boundary without explicit bounds masks.
_PAD_PATTERN = np.uint32(0xFFFFFFFE)
_PAD_TEXT = np.uint32(0xFFFFFFFF)


def _codepoint_matrix(
    seqs: list[str], lengths: np.ndarray, width: int, pad: np.uint32
) -> np.ndarray:
    """Sentinel-padded uint32 codepoint matrix, one row per sequence.

    The matrix is one column wider than ``width`` so a clipped gather
    index always lands on at least one pad column.  Built with one
    scatter: the row-major order of the in-bounds mask matches the
    concatenation order of the sequences.
    """
    mat = np.full((len(seqs), width + 1), pad, dtype=np.uint32)
    if not seqs or not width:
        return mat
    flat = np.frombuffer("".join(seqs).encode("utf-32-le"), dtype=np.uint32)
    mat[np.arange(width + 1)[None, :] < lengths[:, None]] = flat
    return mat


class BatchPairView:
    """One pair's results, duck-typing :class:`WfaEngine` for traceback.

    Exposes exactly the attributes :func:`repro.core.backtrace.backtrace`
    reads — ``final_score``, ``memory_mode``, ``penalties``, ``n``/``m``,
    ``end_k``/``end_offset``, ``span``, ``counters`` and a ``wavefronts``
    dict.  The wavefronts are materialized lazily from the batch arrays
    (one row slice per score), so score-only callers never pay for them.

    ``error`` is the scalar engine's :class:`AlignmentError` message when
    this pair exceeded its score cap; ``final_score`` is ``None`` then.
    """

    def __init__(
        self,
        engine: "BatchWfaEngine",
        row: int,
        final_score: Optional[int],
        counters: WfaCounters,
        error: Optional[str],
    ) -> None:
        self._engine = engine
        self._row = row
        self.pattern = engine.patterns[row]
        self.text = engine.texts[row]
        self.n = len(self.pattern)
        self.m = len(self.text)
        self.penalties = engine.penalties
        self.memory_mode = engine.memory_mode
        self.span = engine.span
        self.final_score = final_score
        self.counters = counters
        self.error = error
        # Global span: the end point is always (m - n, m).
        self.end_k = self.m - self.n if final_score is not None else None
        self.end_offset = self.m if final_score is not None else None
        self._wavefronts: Optional[dict[int, Optional[WavefrontSet]]] = None

    @property
    def wavefronts(self) -> dict[int, Optional[WavefrontSet]]:
        if self._wavefronts is None:
            if self.final_score is None:
                self._wavefronts = {}
            else:
                self._wavefronts = self._engine._materialize_row(
                    self._row, self.final_score
                )
        return self._wavefronts


class BatchWfaEngine:
    """Advance a whole batch of pairs one score step at a time.

    Args:
        pairs: ``(pattern, text)`` sequences (str or ASCII bytes).
        penalties: the distance metric (edit, linear, affine, affine-2p).
        memory_mode: as in :class:`WfaEngine`; ``"full"`` is required for
            traceback.  Only the *counter accounting* differs — the batch
            arrays are kept either way while the engine lives.
        max_score: optional score cap, applied per pair after clamping to
            that pair's worst-case score exactly like the scalar engine.
        span: must be global (the default); ends-free spans break the
            shared-layout invariant and belong to the scalar engine.

    :meth:`run` returns one :class:`BatchPairView` per input pair, in
    input order.
    """

    def __init__(
        self,
        pairs: list[tuple[Sequence_, Sequence_]],
        penalties: Penalties,
        memory_mode: str = "full",
        max_score: Optional[int] = None,
        span: Optional[AlignmentSpan] = None,
    ) -> None:
        if memory_mode not in ("full", "low"):
            raise AlignmentError(f"unknown memory_mode {memory_mode!r}")
        span = span if span is not None else AlignmentSpan()
        if not span.is_global:
            raise AlignmentError(
                "BatchWfaEngine supports global spans only; "
                "use the scalar WfaEngine for ends-free alignment"
            )
        self.penalties = penalties
        self.memory_mode = memory_mode
        self.span = span
        self.patterns = [_as_str(p, "pattern") for p, _ in pairs]
        self.texts = [_as_str(t, "text") for _, t in pairs]
        self.size = len(pairs)
        b = self.size
        self._ns = np.array([len(p) for p in self.patterns], dtype=np.int32)
        self._ms = np.array([len(t) for t in self.texts], dtype=np.int32)
        self._ln = int(self._ns.max()) if b else 0
        self._lm = int(self._ms.max()) if b else 0
        self._pmat = _codepoint_matrix(self.patterns, self._ns, self._ln, _PAD_PATTERN)
        self._tmat = _codepoint_matrix(self.texts, self._ms, self._lm, _PAD_TEXT)
        caps = [
            penalties.worst_case_score(len(p), len(t))
            for p, t in zip(self.patterns, self.texts)
        ]
        if max_score is not None:
            caps = [min(max_score, c) for c in caps]
        self._caps = np.array(caps, dtype=np.int64)
        self.lookback = WfaEngine._max_lookback(penalties)
        self._compute = self._select_compute(penalties)

        # Per-score shared state: score -> None | {"lo", "hi", "comps"}.
        self._scores: dict[int, Optional[dict]] = {}
        self._rows_flat = np.arange(b, dtype=np.intp)
        # Shared counter replay (identical for every pair up to its final
        # score): cumulative snapshots indexed by score.
        self._log: list[tuple[int, str, int, int]] = []
        self._cum_cells = 0
        self._cum_wf = 0
        self._cum_off = 0
        self._live_bytes = 0
        self._peak_bytes = 0
        self._bytes_at: dict[int, int] = {}
        self._by_score: list[tuple[int, int, int, int, int]] = []
        # Per-pair state.
        self._live = np.ones(b, dtype=bool)
        self._final = np.full(b, -1, dtype=np.int64)
        self._extend_acc = np.zeros(b, dtype=np.int64)
        self._errors: list[Optional[str]] = [None] * b

    # -- metric dispatch ---------------------------------------------------

    def _select_compute(self, penalties: Penalties):
        if isinstance(penalties, TwoPieceAffinePenalties):
            return self._compute_affine2p
        if isinstance(penalties, AffinePenalties):
            return self._compute_affine
        if isinstance(penalties, LinearPenalties):
            return lambda s: self._compute_unified(
                s, penalties.mismatch, penalties.indel
            )
        if isinstance(penalties, EditPenalties):
            return lambda s: self._compute_unified(s, 1, 1)
        raise AlignmentError(f"unsupported penalty model: {penalties!r}")

    # -- shared-layout helpers ---------------------------------------------

    def _range(self, score: int, comp: str) -> Optional[tuple[int, int]]:
        """Stored ``(lo, hi)`` of a source component, ``None`` if absent."""
        if score < 0:
            return None
        entry = self._scores.get(score)
        if entry is None or comp not in entry["comps"]:
            return None
        return entry["lo"], entry["hi"]

    def _aligned(self, score: int, comp: str, a: int, b: int) -> np.ndarray:
        """Source component re-based onto diagonals ``[a, b]``.

        Diagonals outside the stored range (or a wholly absent source)
        read as :data:`OFFSET_NULL`, mirroring ``Wavefront.__getitem__``.
        """
        out = np.full((self.size, b - a + 1), OFFSET_NULL, dtype=np.int32)
        rng = self._range(score, comp)
        if rng is None:
            return out
        lo, hi = rng
        s0, s1 = max(a, lo), min(b, hi)
        if s0 > s1:
            return out
        arr = self._scores[score]["comps"][comp]  # type: ignore[index]
        out[:, s0 - a : s1 - a + 1] = arr[:, s0 - lo : s1 - lo + 1]
        return out

    def _register(self, score: int, comp: str, lo: int, hi: int) -> None:
        w = hi - lo + 1
        self._cum_wf += 1
        self._cum_off += w
        self._log.append((score, comp, lo, hi))
        self._live_bytes += 4 * w
        if self._live_bytes > self._peak_bytes:
            self._peak_bytes = self._live_bytes
        self._bytes_at[score] = self._bytes_at.get(score, 0) + 4 * w

    def _expire(self, score: int) -> None:
        if self.memory_mode != "low":
            return
        self._live_bytes -= self._bytes_at.pop(score - self.lookback, 0)

    def _snapshot(self) -> None:
        self._by_score.append(
            (
                self._cum_cells,
                self._cum_wf,
                self._cum_off,
                self._peak_bytes,
                len(self._log),
            )
        )

    # -- extension + termination --------------------------------------------

    def _extend(self, entry: dict) -> np.ndarray:
        """Greedy-extend the M wavefront of every pair; per-pair comparisons.

        Comparison counts follow :func:`repro.core.extend.extend_diagonal`
        exactly: matched characters plus the final failing probe when both
        next positions are in bounds.  Rows of finished pairs are extended
        too (the work is masked out of the counters, and their values are
        never read), which keeps the kernel branch-free.

        Every reached lane gathers a window of codepoints from both
        sequences and locates its first mismatch; lanes that matched the
        whole window survive into the next round with a doubled window,
        everything else retires.  The sentinel pads guarantee a gather
        clipped to the pad column compares unequal, so sequence
        boundaries terminate runs without explicit masks.
        """
        lo, hi = entry["lo"], entry["hi"]
        offs = entry["comps"]["M"]
        karr = np.arange(lo, hi + 1, dtype=np.int32)
        reached = offs > NULL_THRESHOLD
        runs = np.zeros(offs.shape, dtype=np.int32)
        act_p, act_k = np.nonzero(reached)
        # Reached offsets are genuine matrix coordinates: 0 <= v <= n and
        # 0 <= h <= m, so gather indices only ever need an upper clip.
        h = offs[act_p, act_k]
        v = h - karr[act_k]
        # Round 0 probes a single character: most lanes sit right on a
        # mismatch (they just stepped past one), so the cheapest possible
        # round retires the bulk of the batch.
        if act_p.size:
            whole = (
                self._pmat[act_p, np.minimum(v, self._ln)]
                == self._tmat[act_p, np.minimum(h, self._lm)]
            )
            runs[act_p, act_k] += whole
            act_p, act_k = act_p[whole], act_k[whole]
            v = v[whole] + 1
            h = h[whole] + 1
        chunk = 4
        while act_p.size:
            ci = np.arange(chunk, dtype=np.int32)
            pv = self._pmat[act_p[:, None], np.minimum(v[:, None] + ci, self._ln)]
            tv = self._tmat[act_p[:, None], np.minimum(h[:, None] + ci, self._lm)]
            ok = pv == tv
            whole = ok.all(axis=1)
            step = np.where(whole, np.int32(chunk),
                            np.argmin(ok, axis=1).astype(np.int32))
            runs[act_p, act_k] += step
            if not whole.any():
                break
            act_p, act_k = act_p[whole], act_k[whole]
            v = v[whole] + chunk
            h = h[whole] + chunk
            chunk *= 4
        new_offs = offs + runs
        probe = (
            reached
            & (new_offs - karr[None, :] < self._ns[:, None])
            & (new_offs < self._ms[:, None])
        )
        entry["comps"]["M"] = new_offs
        return (runs.sum(axis=1, dtype=np.int64)
                + probe.sum(axis=1, dtype=np.int64))

    def _check_end(self, entry: dict, score: int) -> None:
        if not self.size:
            return
        lo, hi = entry["lo"], entry["hi"]
        offs = entry["comps"]["M"]
        k_end = self._ms - self._ns
        valid = (k_end >= lo) & (k_end <= hi)
        col = np.clip(k_end - lo, 0, hi - lo)
        at_end = offs[self._rows_flat, col]
        done = self._live & valid & (at_end == self._ms)
        if done.any():
            self._final[done] = score
            self._live &= ~done

    # -- recurrences ---------------------------------------------------------

    def _compute_unified(self, s: int, x: int, ind: int) -> Optional[dict]:
        """Edit (``x = ind = 1``) and gap-linear recurrences."""
        present = [
            r
            for r in (self._range(s - x, "M"), self._range(s - ind, "M"))
            if r is not None
        ]
        if not present:
            return None
        lo = min(r[0] for r in present) - 1
        hi = max(r[1] for r in present) + 1
        # Upper-bound pruning only: a candidate sourced from a NULL cell
        # sits near OFFSET_NULL, loses every maximum, and is normalized to
        # exact NULL by the final threshold — so the scalar engine's
        # lower-bound checks are implicit here.
        m = self._ms[:, None]
        nk = self._ns[:, None] + np.arange(lo, hi + 1, dtype=np.int32)[None, :]
        gap = self._aligned(s - ind, "M", lo - 1, hi + 1)
        if x == ind:
            sub = gap[:, 1:-1] + _ONE32
        else:
            sub = self._aligned(s - x, "M", lo, hi) + _ONE32
        ins = gap[:, :-2] + _ONE32
        dele = gap[:, 2:]
        ins = np.where((ins > m) | (ins > nk), _NULL32, ins)
        dele = np.where(dele > nk, _NULL32, dele)
        sub = np.where((sub > m) | (sub > nk), _NULL32, sub)
        best = np.maximum(np.maximum(sub, ins), dele)
        wf_m = np.where(best > NULL_THRESHOLD, best, _NULL32)
        self._cum_cells += hi - lo + 1
        self._register(s, "M", lo, hi)
        return {"lo": lo, "hi": hi, "comps": {"M": wf_m}}

    def _compute_affine(self, s: int) -> Optional[dict]:
        pen: AffinePenalties = self.penalties  # type: ignore[assignment]
        x, o, e = pen.mismatch, pen.gap_open, pen.gap_extend
        present = [
            r
            for r in (
                self._range(s - x, "M"),
                self._range(s - o - e, "M"),
                self._range(s - e, "I"),
                self._range(s - e, "D"),
            )
            if r is not None
        ]
        if not present:
            return None
        lo = min(r[0] for r in present) - 1
        hi = max(r[1] for r in present) + 1
        m = self._ms[:, None]
        nk = self._ns[:, None] + np.arange(lo, hi + 1, dtype=np.int32)[None, :]
        m_open = self._aligned(s - o - e, "M", lo - 1, hi + 1)
        i_ext = self._aligned(s - e, "I", lo - 1, hi + 1)
        d_ext = self._aligned(s - e, "D", lo - 1, hi + 1)
        sub = self._aligned(s - x, "M", lo, hi) + _ONE32
        ins = np.maximum(m_open[:, :-2], i_ext[:, :-2]) + _ONE32
        dele = np.maximum(m_open[:, 2:], d_ext[:, 2:])
        ins = np.where((ins < 1) | (ins > m) | (ins > nk), _NULL32, ins)
        dele = np.where((dele < 0) | (dele > nk), _NULL32, dele)
        sub = np.where((sub < 1) | (sub > m) | (sub > nk), _NULL32, sub)
        best = np.maximum(np.maximum(sub, ins), dele)
        wf_m = np.where(best > NULL_THRESHOLD, best, _NULL32)
        self._cum_cells += 3 * (hi - lo + 1)
        self._register(s, "M", lo, hi)
        self._register(s, "I", lo, hi)
        self._register(s, "D", lo, hi)
        return {"lo": lo, "hi": hi, "comps": {"M": wf_m, "I": ins, "D": dele}}

    def _compute_affine2p(self, s: int) -> Optional[dict]:
        pen: TwoPieceAffinePenalties = self.penalties  # type: ignore[assignment]
        x = pen.mismatch
        o1, e1 = pen.gap_open1, pen.gap_extend1
        o2, e2 = pen.gap_open2, pen.gap_extend2
        present = [
            r
            for r in (
                self._range(s - x, "M"),
                self._range(s - o1 - e1, "M"),
                self._range(s - e1, "I"),
                self._range(s - e1, "D"),
                self._range(s - o2 - e2, "M"),
                self._range(s - e2, "I2"),
                self._range(s - e2, "D2"),
            )
            if r is not None
        ]
        if not present:
            return None
        lo = min(r[0] for r in present) - 1
        hi = max(r[1] for r in present) + 1
        m = self._ms[:, None]
        nk = self._ns[:, None] + np.arange(lo, hi + 1, dtype=np.int32)[None, :]
        m_open1 = self._aligned(s - o1 - e1, "M", lo - 1, hi + 1)
        i1_ext = self._aligned(s - e1, "I", lo - 1, hi + 1)
        d1_ext = self._aligned(s - e1, "D", lo - 1, hi + 1)
        m_open2 = self._aligned(s - o2 - e2, "M", lo - 1, hi + 1)
        i2_ext = self._aligned(s - e2, "I2", lo - 1, hi + 1)
        d2_ext = self._aligned(s - e2, "D2", lo - 1, hi + 1)
        sub = self._aligned(s - x, "M", lo, hi) + _ONE32
        ins1 = np.maximum(m_open1[:, :-2], i1_ext[:, :-2]) + _ONE32
        ins2 = np.maximum(m_open2[:, :-2], i2_ext[:, :-2]) + _ONE32
        dele1 = np.maximum(m_open1[:, 2:], d1_ext[:, 2:])
        dele2 = np.maximum(m_open2[:, 2:], d2_ext[:, 2:])
        ins1 = np.where((ins1 < 1) | (ins1 > m) | (ins1 > nk), _NULL32, ins1)
        ins2 = np.where((ins2 < 1) | (ins2 > m) | (ins2 > nk), _NULL32, ins2)
        dele1 = np.where((dele1 < 0) | (dele1 > nk), _NULL32, dele1)
        dele2 = np.where((dele2 < 0) | (dele2 > nk), _NULL32, dele2)
        sub = np.where((sub < 1) | (sub > m) | (sub > nk), _NULL32, sub)
        best = np.maximum.reduce([sub, ins1, ins2, dele1, dele2])
        wf_m = np.where(best > NULL_THRESHOLD, best, _NULL32)
        self._cum_cells += 5 * (hi - lo + 1)
        self._register(s, "M", lo, hi)
        self._register(s, "I", lo, hi)
        self._register(s, "D", lo, hi)
        self._register(s, "I2", lo, hi)
        self._register(s, "D2", lo, hi)
        return {
            "lo": lo,
            "hi": hi,
            "comps": {
                "M": wf_m,
                "I": ins1,
                "D": dele1,
                "I2": ins2,
                "D2": dele2,
            },
        }

    # -- driver ---------------------------------------------------------------

    def run(self) -> list[BatchPairView]:
        """Run the batch to completion; one view per pair, in input order."""
        if not self.size:
            return []
        # Score 0: global seed is a single point (k=0, offset=0) per pair.
        entry0 = {
            "lo": 0,
            "hi": 0,
            "comps": {"M": np.zeros((self.size, 1), dtype=np.int32)},
        }
        self._scores[0] = entry0
        self._register(0, "M", 0, 0)
        comps = self._extend(entry0)
        self._extend_acc[self._live] += comps[self._live]
        self._snapshot()
        self._check_end(entry0, 0)

        score = 0
        while self._live.any():
            score += 1
            # The scalar engine raises *before* computing the wavefront of
            # a score past the cap; mirror that by failing those pairs now.
            over = self._live & (score > self._caps)
            if over.any():
                for i in np.nonzero(over)[0]:
                    self._errors[int(i)] = (
                        f"score exceeded cap {int(self._caps[i])} "
                        f"(n={int(self._ns[i])}, m={int(self._ms[i])}, "
                        f"penalties={self.penalties!r})"
                    )
                self._live &= ~over
                if not self._live.any():
                    break
            entry = self._compute(score)
            self._scores[score] = entry
            if entry is not None:
                comps = self._extend(entry)
                self._extend_acc[self._live] += comps[self._live]
            self._expire(score)
            self._snapshot()
            if entry is not None:
                self._check_end(entry, score)
        return [self._make_view(i) for i in range(self.size)]

    def _make_view(self, i: int) -> BatchPairView:
        error = self._errors[i]
        # A failed pair ran its score loop through its cap; a finished one
        # through its final score.  Counters replay the shared layout up to
        # that last visited score.
        end_score = int(self._caps[i]) if error is not None else int(self._final[i])
        cells, wf_alloc, off_alloc, peak, log_len = self._by_score[end_score]
        counters = WfaCounters(
            cells_computed=cells,
            extend_steps=int(self._extend_acc[i]),
            score_iterations=end_score + 1,
            wavefronts_allocated=wf_alloc,
            offsets_allocated=off_alloc,
            peak_live_bytes=peak,
            wavefront_log=list(self._log[:log_len]),
        )
        final = None if error is not None else end_score
        return BatchPairView(self, i, final, counters, error)

    def _materialize_row(
        self, row: int, final_score: int
    ) -> dict[int, Optional[WavefrontSet]]:
        """Scalar-equivalent ``wavefronts`` dict for one pair's traceback."""
        out: dict[int, Optional[WavefrontSet]] = {}
        for s in range(final_score + 1):
            entry = self._scores.get(s)
            if entry is None:
                out[s] = None
                continue
            lo, hi = entry["lo"], entry["hi"]
            comps: dict[str, Wavefront] = {}
            for name, arr in entry["comps"].items():
                wf = Wavefront(lo, hi)
                wf.offsets = arr[row].tolist()
                comps[name] = wf
            out[s] = WavefrontSet(
                m=comps.get("M"),
                i=comps.get("I"),
                d=comps.get("D"),
                i2=comps.get("I2"),
                d2=comps.get("D2"),
            )
        return out


def align_batch(
    pairs: list[tuple[Sequence_, Sequence_]],
    penalties: Optional[Penalties] = None,
    *,
    score_only: bool = False,
    max_score: Optional[int] = None,
    validate: bool = False,
) -> list[AlignmentResult]:
    """Align a batch of pairs with the vectorized engine.

    Mirrors looping :meth:`WavefrontAligner.align` over ``pairs``: results
    come back in input order, and a pair whose optimal penalty exceeds
    ``max_score`` raises :class:`AlignmentError` with the scalar engine's
    message at the lowest failing index.
    """
    penalties = penalties if penalties is not None else AffinePenalties()
    penalties.validate()
    engine = BatchWfaEngine(
        pairs,
        penalties,
        memory_mode="low" if score_only else "full",
        max_score=max_score,
    )
    results: list[AlignmentResult] = []
    for view in engine.run():
        if view.error is not None:
            raise AlignmentError(view.error)
        p_end = view.end_offset - view.end_k
        t_end = view.end_offset
        cigar: Optional[Cigar] = None
        p_start, t_start = 0, 0
        if not score_only:
            cigar = backtrace(view)
            p_start = p_end - cigar.pattern_length()
            t_start = t_end - cigar.text_length()
            if validate:
                cigar.validate(
                    view.pattern[p_start:p_end], view.text[t_start:t_end]
                )
                rescored = cigar.score(penalties)
                if rescored != view.final_score:
                    raise AlignmentError(
                        f"CIGAR rescoring mismatch: engine={view.final_score}, "
                        f"cigar={rescored}"
                    )
        results.append(
            AlignmentResult(
                score=view.final_score,
                cigar=cigar,
                counters=view.counters,
                penalties=penalties,
                pattern_len=view.n,
                text_len=view.m,
                exact=True,
                pattern_start=p_start,
                pattern_end=p_end,
                text_start=t_start,
                text_end=t_end,
            )
        )
    return results
