"""Greedy wavefront extension.

After the recurrences place a furthest-reaching point on each diagonal,
WFA *extends* every point along its diagonal for as long as pattern and
text characters match — these matches are free (penalty 0), which is the
source of WFA's speed on similar sequences.

Two equivalent strategies are provided:

* :func:`extend_diagonal` — the straightforward per-character loop (what
  the scalar DPU code runs; the paper removes vectorization for the PIM
  version because UPMEM has no SIMD).
* :func:`extend_diagonal_blocked` — compares 8-byte blocks first, the
  standard trick of the vectorized CPU implementation.  Functionally
  identical; used by the CPU-side runner and exercised by tests as a
  cross-check.

Both return the new offset and the number of character comparisons
performed, so callers can charge instruction costs faithfully.
"""

from __future__ import annotations

__all__ = ["extend_diagonal", "extend_diagonal_blocked", "extend_wavefront"]


def extend_diagonal(
    pattern: str, text: str, k: int, offset: int
) -> tuple[int, int]:
    """Extend a furthest-reaching point along diagonal ``k``.

    Args:
        pattern: the vertical sequence (length ``n``).
        text: the horizontal sequence (length ``m``).
        k: the diagonal (``h - v``).
        offset: the current offset (``h``).

    Returns:
        ``(new_offset, comparisons)`` where ``new_offset >= offset`` and
        ``comparisons`` counts every character pair examined, including
        the final non-matching probe (if any).
    """
    n = len(pattern)
    m = len(text)
    v = offset - k
    h = offset
    comparisons = 0
    while v < n and h < m:
        comparisons += 1
        if pattern[v] != text[h]:
            break
        v += 1
        h += 1
    return h, comparisons


def extend_diagonal_blocked(
    pattern: bytes, text: bytes, k: int, offset: int, block: int = 8
) -> tuple[int, int]:
    """Block-compare variant of :func:`extend_diagonal` for byte strings.

    Compares ``block``-byte slices at a time and falls back to a byte loop
    on the first differing block — mirroring the 64-bit-word comparison
    of WFA's vectorized CPU build.  The returned comparison count is the
    number of *block or byte probes*, i.e. proportional to executed
    compare instructions rather than to characters matched.
    """
    n = len(pattern)
    m = len(text)
    v = offset - k
    h = offset
    probes = 0
    # Whole blocks while both sequences have `block` bytes left.
    while v + block <= n and h + block <= m:
        probes += 1
        if pattern[v : v + block] == text[h : h + block]:
            v += block
            h += block
        else:
            break
    # Byte tail (also reached after a differing block).
    while v < n and h < m:
        probes += 1
        if pattern[v] != text[h]:
            break
        v += 1
        h += 1
    return h, probes


def extend_wavefront(pattern: str, text: str, wavefront) -> int:
    """Extend every reached diagonal of an M wavefront in place.

    Returns the total number of character comparisons, which the caller
    accumulates into :class:`~repro.core.wavefront.WfaCounters`.
    """
    comparisons = 0
    offsets = wavefront.offsets
    lo = wavefront.lo
    for idx, offset in enumerate(offsets):
        if offset < 0:  # OFFSET_NULL or out-of-range marker
            continue
        new_offset, comp = extend_diagonal(pattern, text, lo + idx, offset)
        offsets[idx] = new_offset
        comparisons += comp
    return comparisons
