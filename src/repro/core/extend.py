"""Greedy wavefront extension.

After the recurrences place a furthest-reaching point on each diagonal,
WFA *extends* every point along its diagonal for as long as pattern and
text characters match — these matches are free (penalty 0), which is the
source of WFA's speed on similar sequences.

Two equivalent strategies are provided:

* :func:`extend_diagonal` — the straightforward per-character loop (what
  the scalar DPU code runs; the paper removes vectorization for the PIM
  version because UPMEM has no SIMD).
* :func:`extend_diagonal_blocked` — compares 8-byte blocks first, the
  standard trick of the vectorized CPU implementation.  Functionally
  identical; used by the CPU-side runner and exercised by tests as a
  cross-check.

Both return the new offset and the number of character comparisons
performed, so callers can charge instruction costs faithfully.

The batched NumPy engine (:mod:`repro.core.wfa_batch`) replaces the
per-cell loop of :func:`extend_wavefront` with chunked whole-batch
codepoint comparisons but reproduces its comparison counts exactly.
"""

from __future__ import annotations

from repro.core.wavefront import NULL_THRESHOLD

__all__ = ["extend_diagonal", "extend_diagonal_blocked", "extend_wavefront"]


def extend_diagonal(
    pattern: str, text: str, k: int, offset: int
) -> tuple[int, int]:
    """Extend a furthest-reaching point along diagonal ``k``.

    Args:
        pattern: the vertical sequence (length ``n``).
        text: the horizontal sequence (length ``m``).
        k: the diagonal (``h - v``).
        offset: the current offset (``h``).

    Returns:
        ``(new_offset, comparisons)`` where ``new_offset >= offset`` and
        ``comparisons`` counts every character pair examined, including
        the final non-matching probe (if any).
    """
    n = len(pattern)
    m = len(text)
    v = offset - k
    h = offset
    comparisons = 0
    while v < n and h < m:
        comparisons += 1
        if pattern[v] != text[h]:
            break
        v += 1
        h += 1
    return h, comparisons


def extend_diagonal_blocked(
    pattern: bytes, text: bytes, k: int, offset: int, block: int = 8
) -> tuple[int, int]:
    """Block-compare variant of :func:`extend_diagonal` for byte strings.

    Compares ``block``-byte slices at a time — mirroring the 64-bit-word
    comparison of WFA's vectorized CPU build.  The returned probe count
    is proportional to executed compare *instructions*, never to
    characters matched.  The charging contract:

    * a whole **matching** block costs 1 probe (one word compare);
    * a **differing** block costs exactly 2 probes: the word compare
      that detected the difference plus one probe to locate the first
      differing byte inside it (XOR + count-trailing-zeros on hardware).
      The bytes of a differing block are *never* re-probed one by one —
      re-charging up to ``block`` byte probes for bytes the word compare
      already examined would make the blocked count diverge from the
      executed-instruction count the CPU timing model wants;
    * the **byte tail** — positions reached only when fewer than
      ``block`` bytes remain in either sequence — costs 1 probe per byte
      examined, including the final mismatching probe (if any), exactly
      like :func:`extend_diagonal`.

    The returned offset is always identical to the scalar variant's.
    """
    n = len(pattern)
    m = len(text)
    v = offset - k
    h = offset
    probes = 0
    # Whole blocks while both sequences have `block` bytes left.
    while v + block <= n and h + block <= m:
        probes += 1
        p_block = pattern[v : v + block]
        t_block = text[h : h + block]
        if p_block == t_block:
            v += block
            h += block
            continue
        # The difference sits inside this block: one more probe locates
        # it (modeled XOR+ctz), without re-probing the block's bytes.
        probes += 1
        matched = next(i for i in range(block) if p_block[i] != t_block[i])
        return h + matched, probes
    # Byte tail: fewer than `block` bytes remain in one of the sequences.
    while v < n and h < m:
        probes += 1
        if pattern[v] != text[h]:
            break
        v += 1
        h += 1
    return h, probes


def extend_wavefront(pattern: str, text: str, wavefront) -> int:
    """Extend every reached diagonal of an M wavefront in place.

    "Reached" uses the same :data:`~repro.core.wavefront.NULL_THRESHOLD`
    contract as :meth:`~repro.core.wavefront.Wavefront.reached`, so a
    sentinel-adjusted value (e.g. ``OFFSET_NULL + 1`` escaping from the
    recurrences) can never be extended as if it were a real offset.

    Returns the total number of character comparisons, which the caller
    accumulates into :class:`~repro.core.wavefront.WfaCounters`.
    """
    comparisons = 0
    offsets = wavefront.offsets
    lo = wavefront.lo
    for idx, offset in enumerate(offsets):
        if offset <= NULL_THRESHOLD:  # unreached (incl. adjusted sentinels)
            continue
        new_offset, comp = extend_diagonal(pattern, text, lo + idx, offset)
        offsets[idx] = new_offset
        comparisons += comp
    return comparisons
