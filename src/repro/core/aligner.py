"""Public aligner API.

:class:`WavefrontAligner` is the library's front door for pairwise
alignment: configure it once with a penalty model (and optionally a
heuristic), then call :meth:`WavefrontAligner.align` per sequence pair.

Example:

    >>> from repro.core.aligner import WavefrontAligner
    >>> from repro.core.penalties import AffinePenalties
    >>> aligner = WavefrontAligner(AffinePenalties(mismatch=4, gap_open=6, gap_extend=2))
    >>> result = aligner.align("GATTACA", "GATCACA")
    >>> result.score
    4
    >>> str(result.cigar)
    '3M1X3M'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.backtrace import backtrace
from repro.core.cigar import Cigar
from repro.core.heuristics import AdaptiveReduction
from repro.core.penalties import AffinePenalties, Penalties
from repro.core.span import AlignmentSpan
from repro.core.wavefront import WfaCounters
from repro.core.wfa import WfaEngine
from repro.errors import AlignmentError

__all__ = ["AlignmentResult", "WavefrontAligner"]

Sequence = Union[str, bytes]


@dataclass
class AlignmentResult:
    """Outcome of aligning one pattern/text pair.

    Attributes:
        score: optimal (or, with a heuristic, near-optimal) total penalty;
            non-negative, 0 for identical sequences.
        cigar: the alignment path, ``None`` in score-only mode.
        counters: functional instrumentation (see
            :class:`~repro.core.wavefront.WfaCounters`); feeds the CPU and
            PIM timing models.
        penalties: the metric the score was computed under.
        pattern_len / text_len: input lengths, kept for reporting.
        exact: False when a reduction heuristic was active (the score is
            then an upper bound on the optimal penalty).
    """

    score: int
    cigar: Optional[Cigar]
    counters: WfaCounters
    penalties: Penalties
    pattern_len: int
    text_len: int
    exact: bool = True
    #: aligned region (half-open); the full sequences for global spans.
    #: Ends-free alignment may leave prefixes/suffixes outside the region.
    pattern_start: int = 0
    pattern_end: int = -1
    text_start: int = 0
    text_end: int = -1

    def __post_init__(self) -> None:
        if self.pattern_end < 0:
            self.pattern_end = self.pattern_len
        if self.text_end < 0:
            self.text_end = self.text_len

    def aligned_region(self) -> tuple[int, int, int, int]:
        """``(pattern_start, pattern_end, text_start, text_end)``."""
        return (self.pattern_start, self.pattern_end, self.text_start, self.text_end)

    def identity(self) -> float:
        """Fraction of alignment columns that are matches (requires a CIGAR)."""
        if self.cigar is None:
            raise AlignmentError("identity() requires a CIGAR (score-only result)")
        columns = self.cigar.columns()
        if columns == 0:
            return 1.0
        return self.cigar.counts()["M"] / columns


class WavefrontAligner:
    """Reusable WFA aligner.

    Args:
        penalties: distance metric; defaults to the paper's gap-affine
            model with WFA's default penalties (4, 6, 2).
        heuristic: ``None`` for exact WFA, ``"adaptive"`` for WFA-Adapt
            with default parameters, or any callable with the engine-hook
            signature (see :mod:`repro.core.heuristics`).
        max_score: optional score cap; alignments whose optimal penalty
            exceeds it raise :class:`AlignmentError`.  Used to emulate
            bounded-edit-distance alignment.
        validate: when True, every produced CIGAR is checked against the
            input pair and its score recomputed — a development safety
            net, also used heavily by the test-suite.
    """

    def __init__(
        self,
        penalties: Optional[Penalties] = None,
        *,
        heuristic: Union[None, str, Callable] = None,
        max_score: Optional[int] = None,
        validate: bool = False,
        span: Optional[AlignmentSpan] = None,
    ) -> None:
        self.penalties = penalties if penalties is not None else AffinePenalties()
        self.penalties.validate()
        if heuristic == "adaptive":
            heuristic = AdaptiveReduction()
        elif isinstance(heuristic, str):
            raise AlignmentError(f"unknown heuristic {heuristic!r}")
        self.heuristic = heuristic
        self.max_score = max_score
        self.validate = validate
        self.span = span if span is not None else AlignmentSpan()

    @staticmethod
    def _as_str(seq: Sequence, name: str) -> str:
        if isinstance(seq, bytes):
            return seq.decode("ascii")
        if isinstance(seq, str):
            return seq
        raise AlignmentError(f"{name} must be str or bytes, got {type(seq).__name__}")

    def align(
        self,
        pattern: Sequence,
        text: Sequence,
        *,
        score_only: bool = False,
    ) -> AlignmentResult:
        """Align ``pattern`` against ``text`` globally.

        Args:
            pattern: query sequence.
            text: target sequence.
            score_only: skip traceback and run the engine in its
                low-memory mode (what WFA calls score-only alignment).

        Returns:
            An :class:`AlignmentResult`; ``result.cigar`` is ``None`` iff
            ``score_only``.
        """
        pattern_s = self._as_str(pattern, "pattern")
        text_s = self._as_str(text, "text")
        engine = WfaEngine(
            pattern_s,
            text_s,
            self.penalties,
            memory_mode="low" if score_only else "full",
            heuristic=self.heuristic,
            max_score=self.max_score,
            span=self.span,
        )
        score = engine.run()
        # End coordinates of the aligned region (free suffixes excluded).
        p_end = engine.end_offset - engine.end_k
        t_end = engine.end_offset
        cigar: Optional[Cigar] = None
        p_start, t_start = 0, 0
        if not score_only:
            cigar = backtrace(engine)
            p_start = p_end - cigar.pattern_length()
            t_start = t_end - cigar.text_length()
            if self.validate:
                cigar.validate(pattern_s[p_start:p_end], text_s[t_start:t_end])
                rescored = cigar.score(self.penalties)
                if rescored != score:
                    raise AlignmentError(
                        f"CIGAR rescoring mismatch: engine={score}, cigar={rescored}"
                    )
        return AlignmentResult(
            score=score,
            cigar=cigar,
            counters=engine.counters,
            penalties=self.penalties,
            pattern_len=len(pattern_s),
            text_len=len(text_s),
            exact=self.heuristic is None,
            pattern_start=p_start,
            pattern_end=p_end,
            text_start=t_start,
            text_end=t_end,
        )

    def score(self, pattern: Sequence, text: Sequence) -> int:
        """Convenience wrapper: the alignment penalty only."""
        return self.align(pattern, text, score_only=True).score
