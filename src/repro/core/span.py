"""Alignment spans: global, semi-global and ends-free alignment.

WFA (like WFA2-lib) supports *ends-free* alignment: up to a configured
number of characters at either end of either sequence may be left
unaligned for free.  This generalizes:

* **global** (Needleman-Wunsch style) — nothing free;
* **semi-global** read mapping — the whole text may overhang on both
  sides (pattern must align end-to-end inside the text);
* **dovetail / overlap** forms — one free end per sequence.

Free spans affect WFA in exactly two places: the score-0 wavefront is
seeded along every diagonal reachable by a free prefix, and the
termination test accepts any furthest-reaching point whose remaining
suffix is within its free allowance.  Everything in between — the
recurrences — is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AlignmentError

__all__ = ["AlignmentSpan"]


@dataclass(frozen=True)
class AlignmentSpan:
    """Free-end allowances, in characters (0 = that end is anchored)."""

    pattern_begin_free: int = 0
    pattern_end_free: int = 0
    text_begin_free: int = 0
    text_end_free: int = 0

    def __post_init__(self) -> None:
        for name in (
            "pattern_begin_free",
            "pattern_end_free",
            "text_begin_free",
            "text_end_free",
        ):
            if getattr(self, name) < 0:
                raise AlignmentError(f"{name} must be >= 0")

    # -- common presets ----------------------------------------------------

    @classmethod
    def global_(cls) -> "AlignmentSpan":
        """End-to-end alignment of both sequences (the default)."""
        return cls()

    @classmethod
    def semiglobal(cls, max_text_overhang: int | None = None) -> "AlignmentSpan":
        """Pattern aligned end-to-end, text free at both ends.

        ``max_text_overhang`` bounds the free text on each side; ``None``
        means unbounded (clamped to the text length at alignment time).
        """
        free = 2**30 if max_text_overhang is None else max_text_overhang
        return cls(text_begin_free=free, text_end_free=free)

    @classmethod
    def ends_free(cls, pattern_free: int, text_free: int) -> "AlignmentSpan":
        """Symmetric ends-free: the same allowance at both ends of each."""
        return cls(
            pattern_begin_free=pattern_free,
            pattern_end_free=pattern_free,
            text_begin_free=text_free,
            text_end_free=text_free,
        )

    @property
    def is_global(self) -> bool:
        """True when no end is free (plain global alignment)."""
        return (
            self.pattern_begin_free == 0
            and self.pattern_end_free == 0
            and self.text_begin_free == 0
            and self.text_end_free == 0
        )

    def clamped(self, pattern_len: int, text_len: int) -> "AlignmentSpan":
        """Allowances clamped to the actual sequence lengths."""
        return AlignmentSpan(
            pattern_begin_free=min(self.pattern_begin_free, pattern_len),
            pattern_end_free=min(self.pattern_end_free, pattern_len),
            text_begin_free=min(self.text_begin_free, text_len),
            text_end_free=min(self.text_end_free, text_len),
        )
