"""Alignment penalty models.

The wavefront algorithm (WFA) is formulated over *penalty* scores: a match
costs 0 and every other event accumulates a non-negative penalty, so the
optimal alignment is the one of **minimum** total penalty.  This module
defines the three distance metrics implemented by this reproduction,
mirroring the metrics of WFA / WFA2-lib:

* :class:`EditPenalties` — unit-cost Levenshtein distance (mismatch,
  insertion and deletion all cost 1).
* :class:`LinearPenalties` — gap-linear: mismatch costs ``mismatch``, each
  inserted/deleted character costs ``indel``.
* :class:`AffinePenalties` — gap-affine (the metric of the paper): a
  mismatch costs ``mismatch`` and a gap of length ``l`` costs
  ``gap_open + l * gap_extend``.  Note the WFA convention: the *first*
  gap character already pays ``gap_open + gap_extend``.

All penalty classes are immutable and hashable so they can be used as
dictionary keys in caches and as parts of experiment configurations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import PenaltyError

__all__ = [
    "Penalties",
    "EditPenalties",
    "LinearPenalties",
    "AffinePenalties",
    "TwoPieceAffinePenalties",
]


@dataclass(frozen=True)
class Penalties:
    """Base class for penalty models.

    Subclasses must provide the attributes used by the generic helpers
    below; the base class only implements shared validation and the
    gap-cost interface.
    """

    def validate(self) -> None:
        """Raise :class:`PenaltyError` if the configuration is unusable."""
        raise NotImplementedError

    def gap_cost(self, length: int) -> int:
        """Penalty of a contiguous gap of ``length`` characters."""
        raise NotImplementedError

    def mismatch_cost(self) -> int:
        """Penalty of a single mismatching character pair."""
        raise NotImplementedError

    # -- generic helpers -------------------------------------------------

    def cigar_score(self, cigar: str) -> int:
        """Score a CIGAR string under this model (match = 0).

        ``cigar`` must be an *expanded or run-length encoded* CIGAR using
        the alphabet ``M`` (match), ``X`` (mismatch), ``I`` (gap in
        pattern / insertion into text) and ``D`` (gap in text / deletion
        from pattern).  Implemented here once so every metric scores
        consistently; gap runs are priced with :meth:`gap_cost`.
        """
        # Import here to avoid a cycle: cigar.py imports penalties for its
        # own scoring helpers.
        from repro.core.cigar import Cigar

        return Cigar.from_string(cigar).score(self)

    def worst_case_score(self, pattern_len: int, text_len: int) -> int:
        """An upper bound on the optimal score for the given lengths.

        Used by the WFA main loop as a safety net against runaway score
        iteration (which would indicate a bug, not a legitimate
        alignment).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class EditPenalties(Penalties):
    """Unit-cost edit (Levenshtein) distance."""

    def validate(self) -> None:  # noqa: D102 - documented on base
        return

    def gap_cost(self, length: int) -> int:  # noqa: D102
        if length < 0:
            raise PenaltyError(f"negative gap length: {length}")
        return length

    def mismatch_cost(self) -> int:  # noqa: D102
        return 1

    def worst_case_score(self, pattern_len: int, text_len: int) -> int:  # noqa: D102
        return max(pattern_len, text_len)


@dataclass(frozen=True)
class LinearPenalties(Penalties):
    """Gap-linear penalties: ``mismatch`` per mismatch, ``indel`` per gap char."""

    mismatch: int = 4
    indel: int = 2

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:  # noqa: D102
        if self.mismatch <= 0:
            raise PenaltyError(f"mismatch penalty must be positive, got {self.mismatch}")
        if self.indel <= 0:
            raise PenaltyError(f"indel penalty must be positive, got {self.indel}")

    def gap_cost(self, length: int) -> int:  # noqa: D102
        if length < 0:
            raise PenaltyError(f"negative gap length: {length}")
        return self.indel * length

    def mismatch_cost(self) -> int:  # noqa: D102
        return self.mismatch

    def worst_case_score(self, pattern_len: int, text_len: int) -> int:  # noqa: D102
        # Deleting the whole pattern and inserting the whole text is always
        # a legal (if terrible) alignment.
        return self.indel * (pattern_len + text_len) + self.mismatch

    def as_tuple(self) -> tuple[int, int]:
        """``(mismatch, indel)`` — convenient for logging and cost tables."""
        return (self.mismatch, self.indel)


@dataclass(frozen=True)
class AffinePenalties(Penalties):
    """Gap-affine penalties — the metric used throughout the paper.

    ``gap_cost(l) = gap_open + l * gap_extend`` for ``l >= 1`` (WFA
    convention), 0 for ``l == 0``.  The defaults ``(4, 6, 2)`` are the
    defaults of WFA2-lib and of the original WFA paper's evaluation.
    """

    mismatch: int = 4
    gap_open: int = 6
    gap_extend: int = 2

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:  # noqa: D102
        if self.mismatch <= 0:
            raise PenaltyError(f"mismatch penalty must be positive, got {self.mismatch}")
        if self.gap_open < 0:
            raise PenaltyError(f"gap_open must be non-negative, got {self.gap_open}")
        if self.gap_extend <= 0:
            raise PenaltyError(f"gap_extend must be positive, got {self.gap_extend}")

    def gap_cost(self, length: int) -> int:  # noqa: D102
        if length < 0:
            raise PenaltyError(f"negative gap length: {length}")
        if length == 0:
            return 0
        return self.gap_open + self.gap_extend * length

    def mismatch_cost(self) -> int:  # noqa: D102
        return self.mismatch

    def worst_case_score(self, pattern_len: int, text_len: int) -> int:  # noqa: D102
        return (
            self.gap_cost(pattern_len)
            + self.gap_cost(text_len)
            + self.mismatch
        )

    def as_tuple(self) -> tuple[int, int, int]:
        """``(mismatch, gap_open, gap_extend)``."""
        return (self.mismatch, self.gap_open, self.gap_extend)

    def to_linear(self) -> LinearPenalties:
        """The gap-linear model obtained by dropping the opening penalty.

        Useful for quick lower-bound estimates: for any alignment the
        affine score is >= the linear score with ``indel = gap_extend``.
        """
        return LinearPenalties(mismatch=self.mismatch, indel=self.gap_extend)


@dataclass(frozen=True)
class TwoPieceAffinePenalties(Penalties):
    """Two-piece gap-affine ("affine-2p" / convex) penalties.

    The gap model of WFA2-lib's ``gap-affine-2p`` distance: two affine
    pieces, ``gap_cost(l) = min(open1 + l*extend1, open2 + l*extend2)``,
    which approximates a convex gap penalty — cheap to open short gaps,
    cheap to extend long ones.  Conventionally ``extend2 < extend1`` and
    ``open2 > open1`` so the second piece wins for long gaps.

    Defaults follow WFA2-lib's documentation example (x=4, 6/2, 24/1).
    """

    mismatch: int = 4
    gap_open1: int = 6
    gap_extend1: int = 2
    gap_open2: int = 24
    gap_extend2: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:  # noqa: D102
        if self.mismatch <= 0:
            raise PenaltyError(f"mismatch penalty must be positive, got {self.mismatch}")
        for name in ("gap_open1", "gap_open2"):
            if getattr(self, name) < 0:
                raise PenaltyError(f"{name} must be non-negative")
        for name in ("gap_extend1", "gap_extend2"):
            if getattr(self, name) <= 0:
                raise PenaltyError(f"{name} must be positive")

    def gap_cost(self, length: int) -> int:  # noqa: D102
        if length < 0:
            raise PenaltyError(f"negative gap length: {length}")
        if length == 0:
            return 0
        return min(
            self.gap_open1 + self.gap_extend1 * length,
            self.gap_open2 + self.gap_extend2 * length,
        )

    def mismatch_cost(self) -> int:  # noqa: D102
        return self.mismatch

    def worst_case_score(self, pattern_len: int, text_len: int) -> int:  # noqa: D102
        return (
            self.gap_cost(pattern_len)
            + self.gap_cost(text_len)
            + self.mismatch
        )

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        """``(mismatch, open1, extend1, open2, extend2)``."""
        return (
            self.mismatch,
            self.gap_open1,
            self.gap_extend1,
            self.gap_open2,
            self.gap_extend2,
        )

    def piece1(self) -> AffinePenalties:
        """The first affine piece as a standalone model."""
        return AffinePenalties(
            mismatch=self.mismatch,
            gap_open=self.gap_open1,
            gap_extend=self.gap_extend1,
        )

    def piece2(self) -> AffinePenalties:
        """The second affine piece as a standalone model."""
        return AffinePenalties(
            mismatch=self.mismatch,
            gap_open=self.gap_open2,
            gap_extend=self.gap_extend2,
        )


def replace(penalties: Penalties, **changes: int) -> Penalties:
    """Return a copy of ``penalties`` with the given fields replaced."""
    return dataclasses.replace(penalties, **changes)
