"""Bidirectional WFA (BiWFA-style) score computation.

Runs two low-memory WFA engines towards each other — forward from
``(0, 0)`` and reverse from ``(n, m)`` (on the reversed sequences) — and
detects where their wavefronts meet, following the breakpoint lemmas of
Marco-Sola et al.'s BiWFA ("Optimal gap-affine alignment in O(s) space",
2023):

* two **M** furthest-reaching points on mirrored diagonals whose offsets
  cover the text between them witness an alignment of cost
  ``s_fwd + s_rev``;
* two **I** (or two **D**) points meeting *inside* a gap witness
  ``s_fwd + s_rev - gap_open`` — both halves paid the opening of what is
  a single gap.

Each side keeps only the wavefront window its recurrences need, so peak
memory is O(s) instead of the O(s²) a full-traceback WFA retains.  The
detection window (the last ``lookback`` reverse scores are checked
against each new forward wavefront, and vice versa) covers every split
the balanced-split lemma guarantees to exist.

Scope: score-only.  (Recursive O(s)-memory traceback is future work;
``WavefrontAligner`` produces CIGARs with the standard engine.)

Coordinate mirror: a reverse-problem point on diagonal ``k'`` with
offset ``h'`` is the forward-problem point on diagonal
``k = (m - n) - k'`` with text position ``h = m - h'``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.penalties import (
    AffinePenalties,
    Penalties,
    TwoPieceAffinePenalties,
)
from repro.core.wfa import NULL_THRESHOLD, WfaEngine
from repro.errors import AlignmentError

__all__ = ["BiWfaScorer", "biwfa_score"]


class BiWfaScorer:
    """Meet-in-the-middle WFA scorer for one penalty model."""

    def __init__(self, penalties: Optional[Penalties] = None) -> None:
        self.penalties = penalties if penalties is not None else AffinePenalties()
        self.penalties.validate()
        if isinstance(self.penalties, TwoPieceAffinePenalties):
            # Two gap-open corrections (one per piece) would be needed;
            # the detection lemma per piece is future work.
            raise AlignmentError("BiWFA scoring does not support affine-2p yet")

    # -- gap-open correction per metric ---------------------------------

    def _gap_open(self) -> int:
        pen = self.penalties
        if isinstance(pen, AffinePenalties):
            return pen.gap_open
        return 0  # edit/linear: gaps have no opening cost to double-count

    def score(self, pattern: str, text: str) -> int:
        """Optimal alignment penalty via bidirectional search."""
        n, m = len(pattern), len(text)
        if n == 0 or m == 0:
            return self.penalties.gap_cost(max(n, m))

        fwd = WfaEngine(pattern, text, self.penalties, memory_mode="low")
        rev = WfaEngine(pattern[::-1], text[::-1], self.penalties, memory_mode="low")
        gap_open = self._gap_open()
        hard_cap = self.penalties.worst_case_score(n, m)

        fwd.seed()
        rev.seed()
        best = self._probe(fwd, rev, fwd.score, rev.score, m, n, gap_open)

        # A future probe at frontier total T+1 can pair the new wavefront
        # with one up to `lookback` scores old and save up to gap_open on
        # a mid-gap meet, so its candidates are >= T+1 - lookback - open.
        slack = fwd.lookback + gap_open
        while True:
            if best is not None and fwd.score + rev.score + 1 - slack >= best:
                return best
            if fwd.score + rev.score > 2 * hard_cap:  # pragma: no cover
                raise AlignmentError("bidirectional search failed to meet")
            side = fwd if fwd.score <= rev.score else rev
            side.advance()
            cand = self._probe(fwd, rev, fwd.score, rev.score, m, n, gap_open)
            if cand is not None and (best is None or cand < best):
                best = cand

    # -- detection ------------------------------------------------------

    def _probe(
        self,
        fwd: WfaEngine,
        rev: WfaEngine,
        sf: int,
        sr: int,
        m: int,
        n: int,
        gap_open: int,
    ) -> Optional[int]:
        """Check the current frontier pair across both retained windows."""
        best: Optional[int] = None
        for sr_w in self._window(rev, sr):
            cand = self._check_pair(fwd, sf, rev, sr_w, m, n, gap_open)
            if cand is not None and (best is None or cand < best):
                best = cand
        for sf_w in self._window(fwd, sf):
            cand = self._check_pair(fwd, sf_w, rev, sr, m, n, gap_open)
            if cand is not None and (best is None or cand < best):
                best = cand
        return best

    @staticmethod
    def _window(engine: WfaEngine, score: int) -> list[int]:
        lo = max(0, score - engine.lookback)
        return [s for s in range(lo, score + 1) if engine.wavefronts.get(s) is not None]

    def _check_pair(
        self,
        fwd: WfaEngine,
        sf: int,
        rev: WfaEngine,
        sr: int,
        m: int,
        n: int,
        gap_open: int,
    ) -> Optional[int]:
        ws_f = fwd.wavefronts.get(sf)
        ws_r = rev.wavefronts.get(sr)
        if ws_f is None or ws_r is None:
            return None
        best: Optional[int] = None
        mirror = m - n
        for comp, penalty_saved in (("m", 0), ("i", gap_open), ("d", gap_open)):
            wf_f = getattr(ws_f, comp)
            wf_r = getattr(ws_r, comp)
            if wf_f is None or wf_r is None:
                continue
            # Diagonal k in forward view maps to mirror - k in reverse view.
            k_lo = max(wf_f.lo, mirror - wf_r.hi)
            k_hi = min(wf_f.hi, mirror - wf_r.lo)
            for k in range(k_lo, k_hi + 1):
                f = wf_f[k]
                r = wf_r[mirror - k]
                if f <= NULL_THRESHOLD or r <= NULL_THRESHOLD:
                    continue
                if f + r >= m:
                    cand = sf + sr - penalty_saved
                    if best is None or cand < best:
                        best = cand
        return best


def biwfa_score(
    pattern: str, text: str, penalties: Optional[Penalties] = None
) -> int:
    """Convenience wrapper: one-shot bidirectional score."""
    return BiWfaScorer(penalties).score(pattern, text)
