"""CIGAR representation and manipulation.

A CIGAR describes a pairwise alignment as a sequence of operations over
the *pattern* (query, "vertical" sequence) and the *text* (target,
"horizontal" sequence):

====  =====================================  ==================
op    meaning                                consumes
====  =====================================  ==================
M     match (equal characters)               pattern and text
X     mismatch (unequal characters)          pattern and text
I     insertion (character only in text)     text
D     deletion (character only in pattern)   pattern
====  =====================================  ==================

This matches the convention of WFA / WFA2-lib (with the distinction
between ``M`` and ``X`` made explicit, i.e. the extended CIGAR of
SAM's ``=``/``X``, spelled ``M``/``X`` as in the WFA paper).

The class stores run-length-encoded operations and offers parsing,
formatting, scoring under any :class:`~repro.core.penalties.Penalties`
model, validation against the aligned sequences, and reconstruction of
either sequence from the other.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.penalties import Penalties
from repro.errors import CigarError

__all__ = ["CigarOp", "Cigar"]

_VALID_OPS = frozenset("MXID")
_TOKEN_RE = re.compile(r"(\d+)([MXID])")


@dataclass(frozen=True)
class CigarOp:
    """One run-length-encoded CIGAR operation."""

    length: int
    op: str

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise CigarError(f"invalid CIGAR op {self.op!r} (expected one of M, X, I, D)")
        if self.length <= 0:
            raise CigarError(f"CIGAR op length must be positive, got {self.length}")

    @property
    def consumes_pattern(self) -> bool:
        """True if this op advances the pattern cursor."""
        return self.op in ("M", "X", "D")

    @property
    def consumes_text(self) -> bool:
        """True if this op advances the text cursor."""
        return self.op in ("M", "X", "I")

    def __str__(self) -> str:
        return f"{self.length}{self.op}"


class Cigar:
    """A run-length-encoded CIGAR with scoring and validation helpers."""

    __slots__ = ("_ops",)

    def __init__(self, ops: Iterable[CigarOp] = ()) -> None:
        merged: list[CigarOp] = []
        for op in ops:
            if merged and merged[-1].op == op.op:
                merged[-1] = CigarOp(merged[-1].length + op.length, op.op)
            else:
                merged.append(op)
        self._ops = tuple(merged)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "Cigar":
        """Parse either a run-length (``"3M1X2I"``) or expanded (``"MMMXII"``) CIGAR."""
        text = text.strip()
        if not text:
            return cls()
        if text[0].isdigit():
            ops = []
            pos = 0
            for match in _TOKEN_RE.finditer(text):
                if match.start() != pos:
                    raise CigarError(f"malformed CIGAR string: {text!r}")
                ops.append(CigarOp(int(match.group(1)), match.group(2)))
                pos = match.end()
            if pos != len(text):
                raise CigarError(f"malformed CIGAR string: {text!r}")
            return cls(ops)
        for ch in text:
            if ch not in _VALID_OPS:
                raise CigarError(f"invalid CIGAR op {ch!r} in {text!r}")
        return cls(CigarOp(1, ch) for ch in text)

    @classmethod
    def from_pair(cls, pattern: str, text: str) -> "Cigar":
        """Trivial CIGAR for equal-length sequences (no gaps): M/X per column."""
        if len(pattern) != len(text):
            raise CigarError("from_pair requires equal-length sequences")
        return cls(
            CigarOp(1, "M" if p == t else "X") for p, t in zip(pattern, text)
        )

    # -- protocol ----------------------------------------------------------

    @property
    def ops(self) -> tuple[CigarOp, ...]:
        """The run-length-encoded operations."""
        return self._ops

    def __iter__(self) -> Iterator[CigarOp]:
        return iter(self._ops)

    def __len__(self) -> int:
        """Number of run-length-encoded runs (not alignment columns)."""
        return len(self._ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cigar):
            return NotImplemented
        return self._ops == other._ops

    def __hash__(self) -> int:
        return hash(self._ops)

    def __str__(self) -> str:
        return "".join(str(op) for op in self._ops)

    def __repr__(self) -> str:
        return f"Cigar({str(self)!r})"

    # -- measurements -------------------------------------------------------

    def expanded(self) -> str:
        """The expanded one-character-per-column form, e.g. ``"MMMXI"``."""
        return "".join(op.op * op.length for op in self._ops)

    def columns(self) -> int:
        """Total number of alignment columns."""
        return sum(op.length for op in self._ops)

    def pattern_length(self) -> int:
        """Number of pattern characters consumed."""
        return sum(op.length for op in self._ops if op.consumes_pattern)

    def text_length(self) -> int:
        """Number of text characters consumed."""
        return sum(op.length for op in self._ops if op.consumes_text)

    def counts(self) -> dict[str, int]:
        """Total characters per op kind, e.g. ``{"M": 97, "X": 2, "I": 1, "D": 0}``."""
        out = {"M": 0, "X": 0, "I": 0, "D": 0}
        for op in self._ops:
            out[op.op] += op.length
        return out

    def edit_distance(self) -> int:
        """Unit-cost distance implied by this alignment (X + I + D columns).

        This is an *upper bound* on the true Levenshtein distance of the
        aligned pair (the CIGAR may not be edit-optimal if it was produced
        under a different metric).
        """
        c = self.counts()
        return c["X"] + c["I"] + c["D"]

    # -- scoring -------------------------------------------------------------

    def score(self, penalties: Penalties) -> int:
        """Total penalty of this alignment under ``penalties`` (match = 0).

        Gap runs are priced per run via
        :meth:`~repro.core.penalties.Penalties.gap_cost`, so under affine
        penalties each maximal run of ``I`` or ``D`` pays one opening.
        """
        total = 0
        for op in self._ops:
            if op.op == "M":
                continue
            if op.op == "X":
                total += penalties.mismatch_cost() * op.length
            else:
                total += penalties.gap_cost(op.length)
        return total

    # -- validation ------------------------------------------------------------

    def validate(self, pattern: str, text: str) -> None:
        """Check that this CIGAR is a correct alignment of ``pattern`` to ``text``.

        Verifies consumed lengths and that every ``M`` column pairs equal
        characters and every ``X`` column pairs unequal characters.
        Raises :class:`CigarError` on any inconsistency.
        """
        if self.pattern_length() != len(pattern):
            raise CigarError(
                f"CIGAR consumes {self.pattern_length()} pattern chars, "
                f"sequence has {len(pattern)}"
            )
        if self.text_length() != len(text):
            raise CigarError(
                f"CIGAR consumes {self.text_length()} text chars, "
                f"sequence has {len(text)}"
            )
        v = h = 0
        for op in self._ops:
            if op.op in ("M", "X"):
                for _ in range(op.length):
                    equal = pattern[v] == text[h]
                    if op.op == "M" and not equal:
                        raise CigarError(
                            f"M column pairs unequal chars at pattern[{v}]={pattern[v]!r}, "
                            f"text[{h}]={text[h]!r}"
                        )
                    if op.op == "X" and equal:
                        raise CigarError(
                            f"X column pairs equal chars at pattern[{v}]={pattern[v]!r}, "
                            f"text[{h}]={text[h]!r}"
                        )
                    v += 1
                    h += 1
            elif op.op == "I":
                h += op.length
            else:  # D
                v += op.length

    def apply_to_pattern(self, pattern: str, text: str) -> str:
        """Rebuild the text implied by aligning ``pattern`` with this CIGAR.

        ``text`` supplies the characters for ``X`` and ``I`` columns (their
        identity is not recorded in the CIGAR).  With a valid CIGAR the
        result equals ``text``; used by tests as a round-trip check.
        """
        out: list[str] = []
        v = h = 0
        for op in self._ops:
            if op.op == "M":
                out.append(pattern[v : v + op.length])
                v += op.length
                h += op.length
            elif op.op == "X":
                out.append(text[h : h + op.length])
                v += op.length
                h += op.length
            elif op.op == "I":
                out.append(text[h : h + op.length])
                h += op.length
            else:  # D
                v += op.length
        return "".join(out)

    # -- transforms -----------------------------------------------------------

    def reversed(self) -> "Cigar":
        """The CIGAR of the same alignment on reversed sequences.

        If this aligns ``p`` to ``t``, the result aligns ``p[::-1]`` to
        ``t[::-1]`` with the same score under any penalty model here.
        """
        return Cigar(reversed(self._ops))

    def swapped(self) -> "Cigar":
        """The CIGAR with pattern/text roles exchanged (I <-> D).

        If this aligns ``p`` to ``t``, the result aligns ``t`` to ``p``.
        """
        flip = {"I": "D", "D": "I"}
        return Cigar(
            CigarOp(op.length, flip.get(op.op, op.op)) for op in self._ops
        )

    def sam(self) -> str:
        """SAM extended-CIGAR spelling (``=`` for matches, ``X`` kept)."""
        return "".join(
            f"{op.length}{'=' if op.op == 'M' else op.op}" for op in self._ops
        )

    # -- pretty printing -----------------------------------------------------------

    def pretty(self, pattern: str, text: str, width: int = 60) -> str:
        """Three-line alignment rendering (pattern / markers / text)."""
        top: list[str] = []
        mid: list[str] = []
        bot: list[str] = []
        v = h = 0
        for op in self._ops:
            for _ in range(op.length):
                if op.op in ("M", "X"):
                    top.append(pattern[v])
                    bot.append(text[h])
                    mid.append("|" if op.op == "M" else " ")
                    v += 1
                    h += 1
                elif op.op == "I":
                    top.append("-")
                    bot.append(text[h])
                    mid.append(" ")
                    h += 1
                else:
                    top.append(pattern[v])
                    bot.append("-")
                    mid.append(" ")
                    v += 1
        lines: list[str] = []
        for start in range(0, len(top), width):
            end = start + width
            lines.append("".join(top[start:end]))
            lines.append("".join(mid[start:end]))
            lines.append("".join(bot[start:end]))
            lines.append("")
        return "\n".join(lines).rstrip("\n")
