"""Text visualizations of WFA state — for debugging, docs and teaching.

Plain-ASCII renderings (no plotting dependencies):

* :func:`render_wavefront_progress` — per-score wavefront extents and the
  furthest offset, showing the characteristic "wavefront funnel" of easy
  pairs vs the widening fan of dissimilar ones.
* :func:`render_alignment_matrix` — the DP matrix with the optimal path
  drawn through it (small inputs), handy for validating tracebacks by
  eye.
* :func:`render_score_histogram` — workload score distribution as a bar
  chart (used by the stats tooling).
"""

from __future__ import annotations

from repro.core.cigar import Cigar
from repro.core.wfa import WfaEngine
from repro.errors import AlignmentError

__all__ = [
    "render_wavefront_progress",
    "render_alignment_matrix",
    "render_score_histogram",
]


def render_wavefront_progress(engine: WfaEngine, width: int = 64) -> str:
    """One line per computed score: diagonal extent and furthest offset.

    The engine must have been run in ``"full"`` memory mode (the default
    of :meth:`~repro.core.aligner.WavefrontAligner.align`).
    """
    if engine.final_score is None:
        raise AlignmentError("run the engine before rendering its wavefronts")
    n, m = engine.n, engine.m
    span_lo, span_hi = -n, m  # the full diagonal range
    total = max(span_hi - span_lo, 1)
    lines = [f"wavefront progress (n={n}, m={m}, final score {engine.final_score})"]
    for score in sorted(engine.wavefronts):
        ws = engine.wavefronts[score]
        if ws is None or ws.m is None:
            continue
        wf = ws.m

        def col(k: int) -> int:
            # wavefront bounds over-allocate one diagonal per side, so
            # clamp into the drawable range
            return min(max(int((k - span_lo) / total * width), 0), width)

        bar = [" "] * (width + 1)
        for c in range(col(wf.lo), col(wf.hi) + 1):
            bar[c] = "-"
        # mark the best (furthest) reached diagonal
        best_k, best_off = None, -1
        for k in wf.diagonals():
            if wf.reached(k) and wf[k] > best_off:
                best_k, best_off = k, wf[k]
        if best_k is not None:
            bar[col(best_k)] = "*"
        lines.append(f"s={score:<4d} [{''.join(bar)}] max_h={max(best_off, 0)}")
    return "\n".join(lines)


def render_alignment_matrix(
    pattern: str, text: str, cigar: Cigar, max_size: int = 40
) -> str:
    """The DP grid with the alignment path marked.

    ``\\`` diagonal steps (match/mismatch), ``>`` insertions, ``v``
    deletions.  Limited to small inputs — this is a debugging aid, not a
    genome browser.
    """
    n, m = len(pattern), len(text)
    if n > max_size or m > max_size:
        raise AlignmentError(
            f"matrix rendering limited to {max_size}x{max_size} "
            f"(got {n}x{m}); raise max_size explicitly if you must"
        )
    cigar.validate(pattern, text)
    grid = [[" " for _ in range(m + 1)] for _ in range(n + 1)]
    v = h = 0
    grid[0][0] = "o"
    for op in cigar:
        for _ in range(op.length):
            if op.op in ("M", "X"):
                v += 1
                h += 1
                grid[v][h] = "\\" if op.op == "M" else "x"
            elif op.op == "I":
                h += 1
                grid[v][h] = ">"
            else:
                v += 1
                grid[v][h] = "v"
    header = "      " + " ".join(text) if m else "      (empty text)"
    lines = [header]
    for i in range(n + 1):
        label = pattern[i - 1] if i > 0 else " "
        lines.append(f"  {label} " + " ".join(grid[i]))
    return "\n".join(lines)


def render_score_histogram(
    histogram: dict[int, int], width: int = 40
) -> str:
    """Horizontal bar chart of a score histogram."""
    if not histogram:
        raise AlignmentError("empty histogram")
    peak = max(histogram.values())
    lines = []
    for score in sorted(histogram):
        count = histogram[score]
        bar = "#" * max(1, round(count / peak * width))
        lines.append(f"score {score:>4d} | {bar} {count}")
    return "\n".join(lines)
