"""Wavefront containers for the WFA algorithm.

A *wavefront* for penalty score ``s`` stores, for every diagonal ``k`` in a
contiguous range ``[lo, hi]``, the furthest-reaching offset reached on that
diagonal with total penalty exactly ``s``.  Following WFA2-lib's
convention, for a pattern of length ``n`` (index ``v``) and a text of
length ``m`` (index ``h``):

* diagonal ``k = h - v`` (so ``k`` ranges over ``[-n, m]``),
* the stored *offset* is ``h`` (so ``v = offset - k``).

Unreachable diagonals hold the sentinel :data:`OFFSET_NULL`, which is
negative enough that ``max()`` arithmetic never confuses it with a real
offset even after ``+1`` adjustments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "OFFSET_NULL",
    "NULL_THRESHOLD",
    "Wavefront",
    "WavefrontSet",
    "WfaCounters",
]

#: Sentinel for "diagonal not reached".  Chosen so that ``OFFSET_NULL + c``
#: for any small constant ``c`` still compares below every legal offset.
OFFSET_NULL = -(2**30)

#: Offsets at or below this are "unreached" even after small additive
#: adjustments (the recurrences compute values like ``OFFSET_NULL + 1``
#: before pruning).  Every consumer — :meth:`Wavefront.reached`, the
#: recurrences, greedy extension, traceback — must use this one
#: threshold: stored offsets are either real (``>= 0``, hence above it)
#: or sentinel-derived (far below it); nothing legal lives in between.
NULL_THRESHOLD = OFFSET_NULL // 2


class Wavefront:
    """Offsets of the furthest-reaching points for one (score, component).

    The container is a dense list over ``[lo, hi]``; indexing with a
    diagonal outside the range returns :data:`OFFSET_NULL` instead of
    raising, which keeps the recurrence code free of bounds checks (the
    same trick real WFA implementations play with padded allocations).
    """

    __slots__ = ("lo", "hi", "offsets")

    def __init__(self, lo: int, hi: int, fill: int = OFFSET_NULL) -> None:
        if hi < lo:
            raise ValueError(f"wavefront range is empty: [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self.offsets = [fill] * (hi - lo + 1)

    def __len__(self) -> int:
        """Number of diagonals covered (``hi - lo + 1``)."""
        return self.hi - self.lo + 1

    def __getitem__(self, k: int) -> int:
        if k < self.lo or k > self.hi:
            return OFFSET_NULL
        return self.offsets[k - self.lo]

    def __setitem__(self, k: int, offset: int) -> None:
        if k < self.lo or k > self.hi:
            raise IndexError(f"diagonal {k} outside wavefront range [{self.lo}, {self.hi}]")
        self.offsets[k - self.lo] = offset

    def diagonals(self) -> Iterator[int]:
        """Iterate the covered diagonals in increasing order."""
        return iter(range(self.lo, self.hi + 1))

    def reached(self, k: int) -> bool:
        """True if diagonal ``k`` holds a real (non-null) offset."""
        return self[k] > NULL_THRESHOLD

    def max_offset(self) -> int:
        """Largest stored offset (``OFFSET_NULL`` if nothing reached)."""
        return max(self.offsets)

    def trim(self, lo: int, hi: int) -> None:
        """Shrink the covered range to ``[lo, hi]`` (used by heuristics).

        The new range must be contained in the old one; offsets outside it
        are discarded.
        """
        if lo < self.lo or hi > self.hi or hi < lo:
            raise ValueError(
                f"cannot trim [{self.lo}, {self.hi}] to [{lo}, {hi}]"
            )
        self.offsets = self.offsets[lo - self.lo : hi - self.lo + 1]
        self.lo = lo
        self.hi = hi

    def nbytes(self, bytes_per_offset: int = 4) -> int:
        """Footprint of this wavefront in a packed int32 layout.

        This is the size the *real* (C / DPU) implementation would
        allocate, which is what the PIM memory accounting uses — not the
        Python object overhead.
        """
        return len(self) * bytes_per_offset

    def __repr__(self) -> str:
        cells = ", ".join(
            "·" if not self.reached(k) else str(self[k]) for k in self.diagonals()
        )
        return f"Wavefront[lo={self.lo}, hi={self.hi}: {cells}]"


@dataclass
class WavefrontSet:
    """The wavefront components for one score.

    ``m`` is the match/mismatch component; ``i``/``d`` are the gap
    components (``None`` for metrics without separate gap states — edit
    and gap-linear); ``i2``/``d2`` are the second-piece gap components
    used only by the two-piece affine metric.
    """

    m: Optional[Wavefront] = None
    i: Optional[Wavefront] = None
    d: Optional[Wavefront] = None
    i2: Optional[Wavefront] = None
    d2: Optional[Wavefront] = None

    def components(self) -> list[Wavefront]:
        """All present component wavefronts."""
        return [
            wf for wf in (self.m, self.i, self.d, self.i2, self.d2) if wf is not None
        ]

    def is_empty(self) -> bool:
        """True when no component holds any reachable diagonal."""
        for wf in self.components():
            if any(wf.reached(k) for k in wf.diagonals()):
                return False
        return True

    def nbytes(self, bytes_per_offset: int = 4) -> int:
        """Packed footprint of all present components."""
        return sum(wf.nbytes(bytes_per_offset) for wf in self.components())


@dataclass
class WfaCounters:
    """Instrumentation gathered while aligning one pair.

    These counts are the *functional* measurements that the CPU and PIM
    timing models convert into cycles; they are deterministic for a given
    input pair and penalty model.

    Attributes:
        cells_computed: wavefront cells evaluated by the recurrences
            (one per (component, diagonal) of every computed wavefront).
        extend_steps: character comparisons performed by greedy extension
            (both the matching steps and the final mismatching probe).
        score_iterations: main-loop iterations (== final score + 1 minus
            skipped empty scores, counted per score value visited).
        wavefronts_allocated: number of component wavefronts allocated.
        offsets_allocated: total offsets across all allocated wavefronts
            — multiplied by 4 bytes this is the metadata footprint the
            paper's allocator must manage.
        peak_live_bytes: maximum packed metadata resident at any score
            (full-memory mode keeps everything; score-only mode keeps a
            window).
        backtrace_ops: CIGAR operations emitted during traceback.
        heuristic_trims: diagonals removed by the adaptive heuristic.
    """

    cells_computed: int = 0
    extend_steps: int = 0
    score_iterations: int = 0
    wavefronts_allocated: int = 0
    offsets_allocated: int = 0
    peak_live_bytes: int = 0
    backtrace_ops: int = 0
    heuristic_trims: int = 0
    #: per-score allocation log: ``(score, component, lo, hi)`` for every
    #: wavefront created, in creation order.  The PIM kernel replays this
    #: log to charge DMA traffic for metadata staged between WRAM and MRAM.
    wavefront_log: list[tuple[int, str, int, int]] = field(default_factory=list)

    def add(self, other: "WfaCounters") -> None:
        """Accumulate another pair's counters into this one (logs excluded)."""
        self.cells_computed += other.cells_computed
        self.extend_steps += other.extend_steps
        self.score_iterations += other.score_iterations
        self.wavefronts_allocated += other.wavefronts_allocated
        self.offsets_allocated += other.offsets_allocated
        self.peak_live_bytes = max(self.peak_live_bytes, other.peak_live_bytes)
        self.backtrace_ops += other.backtrace_ops
        self.heuristic_trims += other.heuristic_trims

    def metadata_bytes(self, bytes_per_offset: int = 4) -> int:
        """Total packed bytes of all wavefront metadata ever allocated."""
        return self.offsets_allocated * bytes_per_offset
