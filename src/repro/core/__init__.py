"""WFA core: penalties, wavefronts, the algorithm, traceback, heuristics.

This package implements the paper's primary algorithmic substrate — the
wavefront alignment algorithm of Marco-Sola et al. (2021) — from scratch,
for the edit, gap-linear and gap-affine metrics, with exact and adaptive
modes and full-CIGAR or score-only output.
"""

from repro.core.aligner import AlignmentResult, WavefrontAligner
from repro.core.bidirectional import BiWfaScorer, biwfa_score
from repro.core.cigar import Cigar, CigarOp
from repro.core.heuristics import AdaptiveReduction, StaticBand
from repro.core.span import AlignmentSpan
from repro.core.penalties import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    Penalties,
    TwoPieceAffinePenalties,
)
from repro.core.wavefront import (
    NULL_THRESHOLD,
    OFFSET_NULL,
    Wavefront,
    WavefrontSet,
    WfaCounters,
)
from repro.core.viz import (
    render_alignment_matrix,
    render_score_histogram,
    render_wavefront_progress,
)
from repro.core.wfa import WfaEngine
from repro.core.wfa_batch import BatchPairView, BatchWfaEngine, align_batch

__all__ = [
    "AlignmentResult",
    "WavefrontAligner",
    "BiWfaScorer",
    "biwfa_score",
    "Cigar",
    "CigarOp",
    "AdaptiveReduction",
    "StaticBand",
    "AlignmentSpan",
    "Penalties",
    "EditPenalties",
    "LinearPenalties",
    "AffinePenalties",
    "TwoPieceAffinePenalties",
    "Wavefront",
    "WavefrontSet",
    "WfaCounters",
    "WfaEngine",
    "BatchWfaEngine",
    "BatchPairView",
    "align_batch",
    "OFFSET_NULL",
    "NULL_THRESHOLD",
    "render_wavefront_progress",
    "render_alignment_matrix",
    "render_score_histogram",
]
