"""Traceback of WFA wavefronts into a CIGAR.

WFA's traceback walks backwards from the final furthest-reaching point
``(score, M, k = m - n, offset = m)``, at each step re-deriving which
recurrence candidate produced the stored offset.  The gap between the
stored (post-extension) offset and the best candidate is a run of free
matches.  Requires the engine to have run in ``"full"`` memory mode so
every wavefront is still available.

The candidate re-derivation applies exactly the same boundary pruning as
the forward pass (see :mod:`repro.core.wfa`), so stored values always
match one candidate; any mismatch indicates a bug and raises
:class:`AlignmentError`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cigar import Cigar, CigarOp
from repro.core.penalties import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    TwoPieceAffinePenalties,
)
from repro.core.wavefront import OFFSET_NULL
from repro.core.wfa import NULL_THRESHOLD, WfaEngine
from repro.errors import AlignmentError

__all__ = ["backtrace"]


def backtrace(engine: WfaEngine) -> Cigar:
    """Reconstruct the optimal alignment CIGAR from a finished engine."""
    if engine.final_score is None:
        raise AlignmentError("engine has not reached the end point; run() first")
    if engine.memory_mode != "full":
        raise AlignmentError("traceback requires memory_mode='full'")
    pen = engine.penalties
    if isinstance(pen, TwoPieceAffinePenalties):
        ops = _backtrace_affine2p(engine, pen)
    elif isinstance(pen, AffinePenalties):
        ops = _backtrace_affine(engine, pen)
    elif isinstance(pen, LinearPenalties):
        ops = _backtrace_unified(engine, pen.mismatch, pen.indel)
    elif isinstance(pen, EditPenalties):
        ops = _backtrace_unified(engine, 1, 1)
    else:  # pragma: no cover - engine construction already rejects this
        raise AlignmentError(f"unsupported penalty model: {pen!r}")
    ops.reverse()
    cigar = Cigar(ops)
    engine.counters.backtrace_ops += cigar.columns()
    return cigar


def _component(engine: WfaEngine, score: int, comp: str):
    """Wavefront for ``(score, component)`` or ``None``."""
    ws = engine.wavefronts.get(score)
    if ws is None:
        return None
    return {"M": ws.m, "I": ws.i, "D": ws.d, "I2": ws.i2, "D2": ws.d2}[comp]


def _value(engine: WfaEngine, score: int, comp: str, k: int) -> int:
    """Stored offset or :data:`OFFSET_NULL` when absent."""
    if score < 0:
        return OFFSET_NULL
    wf = _component(engine, score, comp)
    if wf is None:
        return OFFSET_NULL
    return wf[k]


def _emit(ops: list[CigarOp], op: str, length: int) -> None:
    """Append ``length`` columns of ``op`` (reverse order; merged later)."""
    if length <= 0:
        return
    if ops and ops[-1].op == op:
        ops[-1] = CigarOp(ops[-1].length + length, op)
    else:
        ops.append(CigarOp(length, op))


def _finish_at_origin(engine: WfaEngine, ops: list[CigarOp], k: int, off: int) -> None:
    """Close the traceback at a score-0 seed point.

    For global spans the only seed is (k=0, offset=0); ends-free spans
    seed every diagonal a free prefix can reach, with initial offset
    ``max(k, 0)``.  The remaining run down to the seed is free matches.
    """
    span = engine.span
    if k < -span.pattern_begin_free or k > span.text_begin_free:
        raise AlignmentError(f"traceback reached score 0 on unseeded diagonal {k}")
    base = max(k, 0)
    if off < base:
        raise AlignmentError(
            f"traceback offset {off} below the score-0 seed {base} on diagonal {k}"
        )
    _emit(ops, "M", off - base)


def _backtrace_affine(engine: WfaEngine, pen: AffinePenalties) -> list[CigarOp]:
    x, o, e = pen.mismatch, pen.gap_open, pen.gap_extend
    n, m = engine.n, engine.m
    s = engine.final_score
    k = engine.end_k if engine.end_k is not None else m - n
    off = engine.end_offset if engine.end_offset is not None else m
    comp = "M"
    ops: list[CigarOp] = []
    # Generous bound: every step either consumes a column or switches
    # component at the same position (at most once between columns).
    for _ in range(2 * (n + m) + s + 4):
        if comp == "M":
            if s == 0:
                _finish_at_origin(engine, ops, k, off)
                return ops
            sub = _value(engine, s - x, "M", k) + 1
            if sub < 1 or sub > m or sub - k > n:
                sub = OFFSET_NULL
            ins = _value(engine, s, "I", k)
            dele = _value(engine, s, "D", k)
            best = max(sub, ins, dele)
            if best <= NULL_THRESHOLD:
                raise AlignmentError(
                    f"traceback dead end at (s={s}, M, k={k}, offset={off})"
                )
            _emit(ops, "M", off - best)
            if best == ins:
                comp, off = "I", best
            elif best == dele:
                comp, off = "D", best
            else:
                _emit(ops, "X", 1)
                s -= x
                off = best - 1
        elif comp == "I":
            ext = _value(engine, s - e, "I", k - 1)
            opn = _value(engine, s - o - e, "M", k - 1)
            _emit(ops, "I", 1)
            if ext > NULL_THRESHOLD and ext + 1 == off:
                s -= e
                k -= 1
                off -= 1
            elif opn > NULL_THRESHOLD and opn + 1 == off:
                s -= o + e
                k -= 1
                off -= 1
                comp = "M"
            else:
                raise AlignmentError(
                    f"traceback dead end at (s={s}, I, k={k}, offset={off})"
                )
        else:  # comp == "D"
            ext = _value(engine, s - e, "D", k + 1)
            opn = _value(engine, s - o - e, "M", k + 1)
            _emit(ops, "D", 1)
            if ext > NULL_THRESHOLD and ext == off:
                s -= e
                k += 1
            elif opn > NULL_THRESHOLD and opn == off:
                s -= o + e
                k += 1
                comp = "M"
            else:
                raise AlignmentError(
                    f"traceback dead end at (s={s}, D, k={k}, offset={off})"
                )
    raise AlignmentError("traceback did not terminate")  # pragma: no cover


def _backtrace_affine2p(
    engine: WfaEngine, pen: TwoPieceAffinePenalties
) -> list[CigarOp]:
    """Traceback with four gap states (I1/I2/D1/D2)."""
    x = pen.mismatch
    o1, e1 = pen.gap_open1, pen.gap_extend1
    o2, e2 = pen.gap_open2, pen.gap_extend2
    n, m = engine.n, engine.m
    s = engine.final_score
    k = engine.end_k if engine.end_k is not None else m - n
    off = engine.end_offset if engine.end_offset is not None else m
    comp = "M"
    ops: list[CigarOp] = []
    for _ in range(2 * (n + m) + s + 4):
        if comp == "M":
            if s == 0:
                _finish_at_origin(engine, ops, k, off)
                return ops
            sub = _value(engine, s - x, "M", k) + 1
            if sub < 1 or sub > m or sub - k > n:
                sub = OFFSET_NULL
            ins1 = _value(engine, s, "I", k)
            ins2 = _value(engine, s, "I2", k)
            dele1 = _value(engine, s, "D", k)
            dele2 = _value(engine, s, "D2", k)
            best = max(sub, ins1, ins2, dele1, dele2)
            if best <= NULL_THRESHOLD:
                raise AlignmentError(
                    f"traceback dead end at (s={s}, M, k={k}, offset={off})"
                )
            _emit(ops, "M", off - best)
            if best == ins1:
                comp, off = "I", best
            elif best == ins2:
                comp, off = "I2", best
            elif best == dele1:
                comp, off = "D", best
            elif best == dele2:
                comp, off = "D2", best
            else:
                _emit(ops, "X", 1)
                s -= x
                off = best - 1
        elif comp in ("I", "I2"):
            o, e = (o1, e1) if comp == "I" else (o2, e2)
            ext = _value(engine, s - e, comp, k - 1)
            opn = _value(engine, s - o - e, "M", k - 1)
            _emit(ops, "I", 1)
            if ext > NULL_THRESHOLD and ext + 1 == off:
                s -= e
                k -= 1
                off -= 1
            elif opn > NULL_THRESHOLD and opn + 1 == off:
                s -= o + e
                k -= 1
                off -= 1
                comp = "M"
            else:
                raise AlignmentError(
                    f"traceback dead end at (s={s}, {comp}, k={k}, offset={off})"
                )
        else:  # comp in ("D", "D2")
            o, e = (o1, e1) if comp == "D" else (o2, e2)
            ext = _value(engine, s - e, comp, k + 1)
            opn = _value(engine, s - o - e, "M", k + 1)
            _emit(ops, "D", 1)
            if ext > NULL_THRESHOLD and ext == off:
                s -= e
                k += 1
            elif opn > NULL_THRESHOLD and opn == off:
                s -= o + e
                k += 1
                comp = "M"
            else:
                raise AlignmentError(
                    f"traceback dead end at (s={s}, {comp}, k={k}, offset={off})"
                )
    raise AlignmentError("traceback did not terminate")  # pragma: no cover


def _backtrace_unified(engine: WfaEngine, x: int, ind: int) -> list[CigarOp]:
    """Traceback shared by the edit (x = ind = 1) and gap-linear metrics."""
    n, m = engine.n, engine.m
    s = engine.final_score
    k = engine.end_k if engine.end_k is not None else m - n
    off = engine.end_offset if engine.end_offset is not None else m
    ops: list[CigarOp] = []
    for _ in range(2 * (n + m) + s + 4):
        if s == 0:
            _finish_at_origin(engine, ops, k, off)
            return ops
        sub = _value(engine, s - x, "M", k) + 1
        if sub < 1 or sub > m or sub - k > n:
            sub = OFFSET_NULL
        ins = _value(engine, s - ind, "M", k - 1) + 1
        if ins < 1 or ins > m or ins - k > n:
            ins = OFFSET_NULL
        dele = _value(engine, s - ind, "M", k + 1)
        if dele < 0 or dele - k > n:
            dele = OFFSET_NULL
        best = max(sub, ins, dele)
        if best <= NULL_THRESHOLD:
            raise AlignmentError(
                f"traceback dead end at (s={s}, M, k={k}, offset={off})"
            )
        _emit(ops, "M", off - best)
        if best == sub:
            _emit(ops, "X", 1)
            s -= x
            off = best - 1
        elif best == ins:
            _emit(ops, "I", 1)
            s -= ind
            k -= 1
            off = best - 1
        else:
            _emit(ops, "D", 1)
            s -= ind
            k += 1
            off = best
    raise AlignmentError("traceback did not terminate")  # pragma: no cover
