"""The wavefront algorithm (WFA) main loop and recurrences.

This is a from-scratch implementation of Marco-Sola et al.'s exact
gap-affine wavefront algorithm (Bioinformatics 2021), extended — like
WFA2-lib — to the edit and gap-linear metrics.  The public entry point is
:class:`repro.core.aligner.WavefrontAligner`; this module holds the engine
that aligners drive.

Algorithm sketch (gap-affine, penalties ``x`` mismatch, ``o`` open, ``e``
extend):

* ``M_s[k]`` / ``I_s[k]`` / ``D_s[k]`` hold the furthest-reaching offset
  on diagonal ``k`` with penalty exactly ``s``, ending in a match/mismatch,
  insertion, or deletion respectively.
* Recurrences::

      I_s[k] = max(M_{s-o-e}[k-1], I_{s-e}[k-1]) + 1
      D_s[k] = max(M_{s-o-e}[k+1], D_{s-e}[k+1])
      M_s[k] = max(M_{s-x}[k] + 1, I_s[k], D_s[k])

* After computing ``M_s``, every point is *extended* greedily along its
  diagonal while characters match (matches are free).
* The first score ``s`` whose ``M_s`` reaches offset ``m`` on the final
  diagonal ``k = m - n`` is the optimal alignment penalty.

Candidate offsets that would step outside the DP matrix are discarded
(set to null): every alignment move is monotone in ``(v, h)``, so a point
past the boundary can never reach ``(n, m)`` and pruning preserves
optimality.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.extend import extend_wavefront
from repro.core.span import AlignmentSpan
from repro.core.penalties import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    Penalties,
    TwoPieceAffinePenalties,
)
from repro.core.wavefront import (
    NULL_THRESHOLD,
    OFFSET_NULL,
    Wavefront,
    WavefrontSet,
    WfaCounters,
)
from repro.errors import AlignmentError

# NULL_THRESHOLD is re-exported here for backwards compatibility; it is
# defined next to OFFSET_NULL in :mod:`repro.core.wavefront` so that the
# extension and recurrence code share one sentinel contract.
__all__ = ["WfaEngine", "NULL_THRESHOLD"]


class WfaEngine:
    """Runs the WFA main loop for one pattern/text pair.

    Args:
        pattern: vertical sequence (length ``n``).
        text: horizontal sequence (length ``m``).
        penalties: the distance metric.
        memory_mode: ``"full"`` keeps every wavefront (required for
            traceback); ``"low"`` keeps only the window of scores that the
            recurrences still reference, matching WFA's score-only mode.
        heuristic: optional callable invoked after each extension with
            ``(engine, score, wavefront_set)``; used by the adaptive
            reduction in :mod:`repro.core.heuristics`.
        max_score: optional hard cap on the score loop; exceeded caps
            raise :class:`AlignmentError` (used to emulate bounded-E
            alignment and to fail fast on bugs).
    """

    def __init__(
        self,
        pattern: str,
        text: str,
        penalties: Penalties,
        memory_mode: str = "full",
        heuristic: Optional[Callable[["WfaEngine", int, WavefrontSet], None]] = None,
        max_score: Optional[int] = None,
        span: Optional[AlignmentSpan] = None,
    ) -> None:
        if memory_mode not in ("full", "low"):
            raise AlignmentError(f"unknown memory_mode {memory_mode!r}")
        self.pattern = pattern
        self.text = text
        self.n = len(pattern)
        self.m = len(text)
        self.penalties = penalties
        self.memory_mode = memory_mode
        self.heuristic = heuristic
        self.span = (span if span is not None else AlignmentSpan()).clamped(
            self.n, self.m
        )
        self.counters = WfaCounters()
        self.wavefronts: dict[int, Optional[WavefrontSet]] = {}
        self.final_score: Optional[int] = None
        #: highest score whose wavefront has been computed (-1 until seeded).
        self.score = -1
        #: end point of the accepted alignment (diagonal, offset); set on
        #: success.  For global spans this is (m - n, m).
        self.end_k: Optional[int] = None
        self.end_offset: Optional[int] = None
        self._live_bytes = 0
        hard_cap = penalties.worst_case_score(self.n, self.m)
        self.max_score = hard_cap if max_score is None else min(max_score, hard_cap)
        self._compute = self._select_compute(penalties)
        #: scores the recurrences look back at; wavefronts older than the
        #: largest lookback can be dropped in low-memory mode.
        self.lookback = self._max_lookback(penalties)

    # -- metric dispatch ---------------------------------------------------

    @staticmethod
    def _select_compute(penalties: Penalties):
        if isinstance(penalties, TwoPieceAffinePenalties):
            return WfaEngine._compute_affine2p
        if isinstance(penalties, AffinePenalties):
            return WfaEngine._compute_affine
        if isinstance(penalties, LinearPenalties):
            return WfaEngine._compute_linear
        if isinstance(penalties, EditPenalties):
            return WfaEngine._compute_edit
        raise AlignmentError(f"unsupported penalty model: {penalties!r}")

    @staticmethod
    def _max_lookback(penalties: Penalties) -> int:
        if isinstance(penalties, TwoPieceAffinePenalties):
            return max(
                penalties.mismatch,
                penalties.gap_open1 + penalties.gap_extend1,
                penalties.gap_open2 + penalties.gap_extend2,
            )
        if isinstance(penalties, AffinePenalties):
            return max(penalties.mismatch, penalties.gap_open + penalties.gap_extend)
        if isinstance(penalties, LinearPenalties):
            return max(penalties.mismatch, penalties.indel)
        return 1

    # -- driver -------------------------------------------------------------

    def seed(self) -> WavefrontSet:
        """Create and extend the score-0 wavefront (no termination check).

        Seeds the anchored start point plus, for ends-free spans, one
        point per diagonal reachable by a free prefix skip.  Sets
        ``self.score = 0``.  Part of the stepping API used by the
        bidirectional scorer; :meth:`run` drives it internally.
        """
        span = self.span
        wf0 = Wavefront(-span.pattern_begin_free, span.text_begin_free)
        for k in wf0.diagonals():
            wf0[k] = max(k, 0)
        self._register(0, "M", wf0)
        ws0 = WavefrontSet(m=wf0)
        self.wavefronts[0] = ws0
        self.score = 0
        self.counters.extend_steps += extend_wavefront(self.pattern, self.text, wf0)
        self.counters.score_iterations += 1
        return ws0

    def advance(self) -> Optional[WavefrontSet]:
        """Compute and extend the next score's wavefront.

        Returns the new wavefront set (``None`` when no recurrence source
        exists at this score).  Raises once the score cap is exceeded.
        """
        self.score += 1
        if self.score > self.max_score:
            raise AlignmentError(
                f"score exceeded cap {self.max_score} "
                f"(n={self.n}, m={self.m}, penalties={self.penalties!r})"
            )
        ws = self._compute(self, self.score)
        self.wavefronts[self.score] = ws
        self.counters.score_iterations += 1
        if ws is not None and ws.m is not None:
            self.counters.extend_steps += extend_wavefront(
                self.pattern, self.text, ws.m
            )
        self._expire(self.score)
        return ws

    def run(self) -> int:
        """Execute the score loop; returns the optimal (or heuristic) score."""
        ws0 = self.seed()
        if self._check_end(ws0.m):
            self.final_score = 0
            return 0
        if self.heuristic is not None:
            self.heuristic(self, 0, ws0)

        while True:
            ws = self.advance()
            if ws is not None and ws.m is not None:
                if self._check_end(ws.m):
                    self.final_score = self.score
                    return self.score
                if self.heuristic is not None:
                    self.heuristic(self, self.score, ws)

    def _check_end(self, wf: Wavefront) -> bool:
        """Accept a point at the boundary whose free suffix fits the span.

        WFA2 ends-free semantics: the alignment ends when at least one
        sequence is fully consumed — ``h == m`` with the pattern's
        remainder within ``pattern_end_free``, or ``v == n`` with the
        text's remainder within ``text_end_free``.  For global alignment
        this reduces to the classic single test ``M_s[m - n] == m``.
        Sets ``end_k``/``end_offset`` on success, preferring the point
        that leaves the fewest characters unaligned.
        """
        n, m = self.n, self.m
        span = self.span
        if span.is_global:
            k_end = m - n
            if wf[k_end] == m:
                self.end_k = k_end
                self.end_offset = m
                return True
            return False
        best: Optional[tuple[int, int, int]] = None  # (skipped, k, offset)
        pef = span.pattern_end_free
        tef = span.text_end_free
        for idx, off in enumerate(wf.offsets):
            if off <= NULL_THRESHOLD:  # unreached (incl. adjusted sentinels)
                continue
            k = wf.lo + idx
            v = off - k
            rem_p = n - v
            rem_t = m - off
            done = (off == m and rem_p <= pef) or (v == n and rem_t <= tef)
            if done:
                cand = (rem_p + rem_t, k, off)
                if best is None or cand < best:
                    best = cand
        if best is None:
            return False
        self.end_k = best[1]
        self.end_offset = best[2]
        return True

    # -- storage helpers ------------------------------------------------------

    def _register(self, score: int, component: str, wf: Wavefront) -> None:
        c = self.counters
        c.wavefronts_allocated += 1
        c.offsets_allocated += len(wf)
        c.wavefront_log.append((score, component, wf.lo, wf.hi))
        self._live_bytes += wf.nbytes()
        if self._live_bytes > c.peak_live_bytes:
            c.peak_live_bytes = self._live_bytes

    def _expire(self, score: int) -> None:
        """Drop wavefronts no longer referenced (low-memory mode only)."""
        if self.memory_mode != "low":
            return
        stale = score - self.lookback
        old = self.wavefronts.pop(stale, None)
        if old is not None:
            self._live_bytes -= old.nbytes()

    def _source(self, score: int) -> Optional[WavefrontSet]:
        if score < 0:
            return None
        return self.wavefronts.get(score)

    # -- recurrences ------------------------------------------------------------

    def _compute_affine(self, score: int) -> Optional[WavefrontSet]:
        pen: AffinePenalties = self.penalties  # type: ignore[assignment]
        x, o, e = pen.mismatch, pen.gap_open, pen.gap_extend
        ws_mism = self._source(score - x)
        ws_open = self._source(score - o - e)
        ws_ext = self._source(score - e)

        m_sub = ws_mism.m if ws_mism else None
        m_open = ws_open.m if ws_open else None
        i_ext = ws_ext.i if ws_ext else None
        d_ext = ws_ext.d if ws_ext else None
        sources = [wf for wf in (m_sub, m_open, i_ext, d_ext) if wf is not None]
        if not sources:
            return None

        lo = min(wf.lo for wf in sources) - 1
        hi = max(wf.hi for wf in sources) + 1
        n, m = self.n, self.m
        wf_m = Wavefront(lo, hi)
        wf_i = Wavefront(lo, hi)
        wf_d = Wavefront(lo, hi)
        null = OFFSET_NULL
        get_sub = m_sub.__getitem__ if m_sub else (lambda _k: null)
        get_open = m_open.__getitem__ if m_open else (lambda _k: null)
        get_iext = i_ext.__getitem__ if i_ext else (lambda _k: null)
        get_dext = d_ext.__getitem__ if d_ext else (lambda _k: null)

        self.counters.cells_computed += 3 * (hi - lo + 1)
        for k in range(lo, hi + 1):
            # Insertion: consumes one text char (h+1) coming from diag k-1.
            ins = max(get_open(k - 1), get_iext(k - 1)) + 1
            if ins < 1 or ins > m or ins - k > n:
                ins = null
            # Deletion: consumes one pattern char (v+1), offset unchanged,
            # coming from diag k+1.
            dele = max(get_open(k + 1), get_dext(k + 1))
            if dele < 0 or dele - k > n:
                dele = null
            # Mismatch: diagonal step on the same diagonal.
            sub = get_sub(k) + 1
            if sub < 1 or sub > m or sub - k > n:
                sub = null
            best = max(sub, ins, dele)
            if ins > NULL_THRESHOLD:
                wf_i[k] = ins
            if dele > NULL_THRESHOLD:
                wf_d[k] = dele
            if best > NULL_THRESHOLD:
                wf_m[k] = best

        self._register(score, "M", wf_m)
        self._register(score, "I", wf_i)
        self._register(score, "D", wf_d)
        return WavefrontSet(m=wf_m, i=wf_i, d=wf_d)

    def _compute_affine2p(self, score: int) -> Optional[WavefrontSet]:
        pen: TwoPieceAffinePenalties = self.penalties  # type: ignore[assignment]
        x = pen.mismatch
        o1, e1 = pen.gap_open1, pen.gap_extend1
        o2, e2 = pen.gap_open2, pen.gap_extend2
        ws_mism = self._source(score - x)
        ws_open1 = self._source(score - o1 - e1)
        ws_ext1 = self._source(score - e1)
        ws_open2 = self._source(score - o2 - e2)
        ws_ext2 = self._source(score - e2)

        m_sub = ws_mism.m if ws_mism else None
        m_open1 = ws_open1.m if ws_open1 else None
        i1_ext = ws_ext1.i if ws_ext1 else None
        d1_ext = ws_ext1.d if ws_ext1 else None
        m_open2 = ws_open2.m if ws_open2 else None
        i2_ext = ws_ext2.i2 if ws_ext2 else None
        d2_ext = ws_ext2.d2 if ws_ext2 else None
        sources = [
            wf
            for wf in (m_sub, m_open1, i1_ext, d1_ext, m_open2, i2_ext, d2_ext)
            if wf is not None
        ]
        if not sources:
            return None

        lo = min(wf.lo for wf in sources) - 1
        hi = max(wf.hi for wf in sources) + 1
        n, m = self.n, self.m
        wf_m = Wavefront(lo, hi)
        wf_i1 = Wavefront(lo, hi)
        wf_d1 = Wavefront(lo, hi)
        wf_i2 = Wavefront(lo, hi)
        wf_d2 = Wavefront(lo, hi)
        null = OFFSET_NULL
        get_sub = m_sub.__getitem__ if m_sub else (lambda _k: null)
        get_open1 = m_open1.__getitem__ if m_open1 else (lambda _k: null)
        get_i1 = i1_ext.__getitem__ if i1_ext else (lambda _k: null)
        get_d1 = d1_ext.__getitem__ if d1_ext else (lambda _k: null)
        get_open2 = m_open2.__getitem__ if m_open2 else (lambda _k: null)
        get_i2 = i2_ext.__getitem__ if i2_ext else (lambda _k: null)
        get_d2 = d2_ext.__getitem__ if d2_ext else (lambda _k: null)

        self.counters.cells_computed += 5 * (hi - lo + 1)
        for k in range(lo, hi + 1):
            ins1 = max(get_open1(k - 1), get_i1(k - 1)) + 1
            if ins1 < 1 or ins1 > m or ins1 - k > n:
                ins1 = null
            ins2 = max(get_open2(k - 1), get_i2(k - 1)) + 1
            if ins2 < 1 or ins2 > m or ins2 - k > n:
                ins2 = null
            dele1 = max(get_open1(k + 1), get_d1(k + 1))
            if dele1 < 0 or dele1 - k > n:
                dele1 = null
            dele2 = max(get_open2(k + 1), get_d2(k + 1))
            if dele2 < 0 or dele2 - k > n:
                dele2 = null
            sub = get_sub(k) + 1
            if sub < 1 or sub > m or sub - k > n:
                sub = null
            best = max(sub, ins1, ins2, dele1, dele2)
            if ins1 > NULL_THRESHOLD:
                wf_i1[k] = ins1
            if ins2 > NULL_THRESHOLD:
                wf_i2[k] = ins2
            if dele1 > NULL_THRESHOLD:
                wf_d1[k] = dele1
            if dele2 > NULL_THRESHOLD:
                wf_d2[k] = dele2
            if best > NULL_THRESHOLD:
                wf_m[k] = best

        self._register(score, "M", wf_m)
        self._register(score, "I", wf_i1)
        self._register(score, "D", wf_d1)
        self._register(score, "I2", wf_i2)
        self._register(score, "D2", wf_d2)
        return WavefrontSet(m=wf_m, i=wf_i1, d=wf_d1, i2=wf_i2, d2=wf_d2)

    def _compute_linear(self, score: int) -> Optional[WavefrontSet]:
        pen: LinearPenalties = self.penalties  # type: ignore[assignment]
        ws_mism = self._source(score - pen.mismatch)
        ws_gap = self._source(score - pen.indel)
        m_sub = ws_mism.m if ws_mism else None
        m_gap = ws_gap.m if ws_gap else None
        sources = [wf for wf in (m_sub, m_gap) if wf is not None]
        if not sources:
            return None

        lo = min(wf.lo for wf in sources) - 1
        hi = max(wf.hi for wf in sources) + 1
        n, m = self.n, self.m
        wf_m = Wavefront(lo, hi)
        null = OFFSET_NULL
        get_sub = m_sub.__getitem__ if m_sub else (lambda _k: null)
        get_gap = m_gap.__getitem__ if m_gap else (lambda _k: null)

        self.counters.cells_computed += hi - lo + 1
        for k in range(lo, hi + 1):
            ins = get_gap(k - 1) + 1
            if ins < 1 or ins > m or ins - k > n:
                ins = null
            dele = get_gap(k + 1)
            if dele < 0 or dele - k > n:
                dele = null
            sub = get_sub(k) + 1
            if sub < 1 or sub > m or sub - k > n:
                sub = null
            best = max(sub, ins, dele)
            if best > NULL_THRESHOLD:
                wf_m[k] = best

        self._register(score, "M", wf_m)
        return WavefrontSet(m=wf_m)

    def _compute_edit(self, score: int) -> Optional[WavefrontSet]:
        ws_prev = self._source(score - 1)
        m_prev = ws_prev.m if ws_prev else None
        if m_prev is None:
            return None

        lo = m_prev.lo - 1
        hi = m_prev.hi + 1
        n, m = self.n, self.m
        wf_m = Wavefront(lo, hi)
        null = OFFSET_NULL
        get = m_prev.__getitem__

        self.counters.cells_computed += hi - lo + 1
        for k in range(lo, hi + 1):
            ins = get(k - 1) + 1
            if ins < 1 or ins > m or ins - k > n:
                ins = null
            dele = get(k + 1)
            if dele < 0 or dele - k > n:
                dele = null
            sub = get(k) + 1
            if sub < 1 or sub > m or sub - k > n:
                sub = null
            best = max(sub, ins, dele)
            if best > NULL_THRESHOLD:
                wf_m[k] = best

        self._register(score, "M", wf_m)
        return WavefrontSet(m=wf_m)
