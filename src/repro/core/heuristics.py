"""Wavefront reduction heuristics.

Exact WFA's wavefronts span every reachable diagonal, which for dissimilar
sequences approaches the full ``n + m`` band.  The *adaptive* reduction of
Marco-Sola et al. (WFA-Adapt) trims diagonals whose furthest-reaching
points lag hopelessly behind the leaders, trading guaranteed optimality
for a large wavefront-size reduction.  The trim only ever removes
diagonals from the two ends of a wavefront, so wavefronts stay contiguous
and the recurrences unchanged.

Heuristics plug into :class:`~repro.core.wfa.WfaEngine` as a callable
invoked after each wavefront extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.wavefront import WavefrontSet
from repro.errors import ConfigError

__all__ = ["AdaptiveReduction", "StaticBand"]

_INF = float("inf")


@dataclass
class StaticBand:
    """Fixed-band heuristic: trim wavefronts to ``[-band_lo, band_hi]``.

    The wavefront formulation of classical banded alignment (WFA2-lib's
    ``--wfa-heuristic=banded-static``): diagonals outside a fixed band
    around the main diagonal are discarded every step.  Exact whenever
    the optimal alignment stays inside the band; otherwise an upper
    bound, like :func:`repro.baselines.banded.banded_gotoh_score` — the
    two are cross-checked in the test-suite.
    """

    band_lo: int = 10
    band_hi: int = 10

    def __post_init__(self) -> None:
        if self.band_lo < 0 or self.band_hi < 0:
            raise ConfigError("band bounds must be >= 0")

    def __call__(self, engine, score: int, ws: WavefrontSet) -> None:
        # Keep diagonals in [-band_lo, band_hi] around the main diagonal,
        # always retaining the end diagonal so termination stays possible.
        k_end = engine.m - engine.n
        lo_lim = min(-self.band_lo, k_end)
        hi_lim = max(self.band_hi, k_end)
        for comp in ws.components():
            lo = max(comp.lo, lo_lim)
            hi = min(comp.hi, hi_lim)
            if lo <= hi and (lo > comp.lo or hi < comp.hi):
                engine.counters.heuristic_trims += len(comp) - (hi - lo + 1)
                comp.trim(lo, hi)


@dataclass
class AdaptiveReduction:
    """WFA-Adapt: drop lagging boundary diagonals.

    For every reached diagonal the *distance left to the end point* is
    ``max(n - v, m - h)`` (the Chebyshev distance, a lower bound on the
    remaining alignment columns).  Diagonals whose distance exceeds the
    best by more than ``max_distance_threshold`` are trimmed from the
    wavefront ends.  Wavefronts shorter than ``min_wavefront_length`` are
    left alone, which keeps the heuristic exact on easy inputs.

    Defaults are WFA's published defaults (10 / 50).
    """

    min_wavefront_length: int = 10
    max_distance_threshold: int = 50

    def __post_init__(self) -> None:
        if self.min_wavefront_length < 1:
            raise ConfigError("min_wavefront_length must be >= 1")
        if self.max_distance_threshold < 1:
            raise ConfigError("max_distance_threshold must be >= 1")

    def __call__(self, engine, score: int, ws: WavefrontSet) -> None:
        wf = ws.m
        if wf is None or len(wf) < self.min_wavefront_length:
            return
        n, m = engine.n, engine.m

        distances: list[float] = []
        best = _INF
        for idx, offset in enumerate(wf.offsets):
            if offset < 0:
                distances.append(_INF)
                continue
            k = wf.lo + idx
            h = offset
            v = offset - k
            dist = max(n - v, m - h)
            distances.append(dist)
            if dist < best:
                best = dist
        if best is _INF:
            return

        limit = best + self.max_distance_threshold
        lo_idx = 0
        hi_idx = len(distances) - 1
        while lo_idx < hi_idx and distances[lo_idx] > limit:
            lo_idx += 1
        while hi_idx > lo_idx and distances[hi_idx] > limit:
            hi_idx -= 1
        if lo_idx == 0 and hi_idx == len(distances) - 1:
            return

        new_lo = wf.lo + lo_idx
        new_hi = wf.lo + hi_idx
        trimmed = (len(wf) - (hi_idx - lo_idx + 1))
        engine.counters.heuristic_trims += trimmed
        for comp in ws.components():
            # All components of a score share [lo, hi] in this engine, but
            # guard with an intersection so the trim stays legal even if a
            # future engine variant allocates them differently.
            lo = max(new_lo, comp.lo)
            hi = min(new_hi, comp.hi)
            if lo <= hi and (lo > comp.lo or hi < comp.hi):
                comp.trim(lo, hi)
