"""Multi-rank sharded fleet: federate many ``PimSystem``\\ s.

The paper's headline throughput comes from a 20-DIMM / 2560-DPU UPMEM
deployment, but one :class:`~repro.pim.system.PimSystem` simulates a
single fleet on a single modeled timeline.  This module adds the
rank/DIMM layer above it: a :class:`FleetCoordinator` partitions a
workload across ``shards`` independent, identically-shaped
:class:`~repro.pim.system.PimSystem` shards and runs them concurrently
on the modeled clock (each shard's rounds stack serially on its own
timeline; the fleet's makespan is the slowest shard's), the way the
authors' follow-up framework paper dispatches work across real PIM
ranks with host-side aggregation.

Sharding model — **round striping**:

* the workload is split into MRAM-sized rounds exactly as the unsharded
  :class:`~repro.pim.scheduler.BatchScheduler` would split it (same
  ``pairs_per_round``, same chunk boundaries);
* round ``i`` is placed on shard ``active[i % len(active)]``, where
  ``active`` is the deterministic, health-ordered list of shards whose
  per-shard :class:`~repro.pim.health.FleetHealth` ledger still reports
  at least ``min_shard_healthy_fraction`` healthy DPUs — quarantined
  shards receive no rounds and a ``rebalance`` event is published on
  every change of the active set;
* each shard executes its rounds through its own
  :class:`~repro.pim.scheduler.BatchScheduler` (sequentially, or
  process-parallel across shards via ``shard_workers`` — the same
  ``ProcessPoolExecutor`` fan-out :mod:`repro.pim.parallel` uses below
  for per-DPU jobs).

Because every shard has the same shape and a round's outcome is a pure
function of (chunk, system config, fault plan, retry policy), a round
produces the byte-identical :class:`~repro.pim.system.PimRunResult`
no matter which shard runs it or how many shards exist.  Merging the
per-round results back in global round order therefore reconstructs
exactly the unsharded run's result stream — the differential
shard-equivalence property ``tests/test_pim_fleet.py`` pins
(``shards=1`` ≡ unsharded ``BatchScheduler.run`` to the byte, and
``shards=2/4`` ≡ ``shards=1`` at any worker count).  Placement only
moves modeled *time*, never results.

Journal federation: ``journal=<dir>`` writes one standard
``repro.pim.journal/v1`` file per shard plus a ``manifest.json``
(schema ``repro.pim.fleet/v1``) recording the shard count, the fault
domain, and — crucially — the **placement actually used**, so
:meth:`FleetCoordinator.resume_run` replays a crashed fleet run under
the original placement even if shard health would place differently
today.  The workload fingerprint deliberately excludes both ``workers``
and ``shards`` (see :func:`~repro.pim.journal.workload_fingerprint`);
the manifest is what carries ``shards``.

Fault domains: a :class:`~repro.pim.faults.FaultPlan` handed to
:meth:`FleetCoordinator.run` is interpreted per ``fault_domain``:

* ``"global"`` (default) — fault ``dpu_id``\\ s index the federated
  fleet (``shard * dpus_per_shard + local``); each shard receives the
  slice of faults that land on its DPUs (:func:`slice_fault_plan`).
* ``"uniform"`` — every shard receives the plan verbatim (the same
  local DPU misbehaves on every shard); results stay byte-identical
  across shard counts even under faults, which is what the
  differential suite exploits.

Networked execution: handing the coordinator a non-calm
:class:`~repro.pim.transport.NetworkFaultPlan` routes every round
through the modeled message-passing boundary in
:mod:`repro.pim.transport` — typed envelopes with idempotency keys,
at-least-once redelivery over seeded drop/duplicate/delay/reorder/
partition faults, per-link circuit breakers, and (under
``TransportPolicy(hedge=True)``) hedged re-dispatch that *steals* a
timed-out in-flight round onto the next healthy shard.  Because a
round's outcome is a pure function of its chunk and configuration,
stealing moves only modeled time: the two racing results are
byte-identical and the loser is absorbed by dedup.  Under a calm plan
the transport is bypassed entirely, keeping the direct path
byte-identical to the pre-transport fleet.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.data.generator import ReadPair
from repro.errors import ConfigError, DegradedCapacity, JournalError, TransportError
from repro.pim.faults import FaultPlan, RecoveryReport, RetryPolicy
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchSchedule, BatchScheduler, ScheduledRun
from repro.pim.system import PimRunResult, PimSystem
from repro.pim.transport import (
    NetworkFaultPlan,
    ShardTransport,
    TransportPolicy,
    TransportReport,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import RunTelemetry
    from repro.pim.config import PimSystemConfig
    from repro.pim.health import HealthPolicy

__all__ = [
    "MANIFEST_SCHEMA",
    "FAULT_DOMAINS",
    "FleetRun",
    "FleetCoordinator",
    "ShardTask",
    "ShardOutcome",
    "run_fleet_shard",
    "slice_fault_plan",
    "shard_journal_name",
]

#: schema tag of the fleet journal manifest.
MANIFEST_SCHEMA = "repro.pim.fleet/v1"

#: manifest file name inside a fleet journal directory.
MANIFEST_NAME = "manifest.json"

FAULT_DOMAINS = ("global", "uniform")


def shard_journal_name(shard: int) -> str:
    """Journal file name for one shard inside a fleet journal directory."""
    return f"shard-{shard:03d}.jsonl"


def slice_fault_plan(
    plan: FaultPlan, shard: int, dpus_per_shard: int
) -> FaultPlan:
    """One shard's slice of a fleet-global fault plan.

    Global fault ``dpu_id``\\ s in ``[shard * dpus_per_shard, (shard+1) *
    dpus_per_shard)`` are kept and rebased to shard-local ids; faults on
    other shards' DPUs are dropped.  The result is never ``None``: a
    plan with no faults on this shard becomes an *empty* plan with the
    same seed, so every shard takes the same (resilient, verified)
    execution path — the property the shard-equivalence suite relies
    on.
    """
    lo = shard * dpus_per_shard
    hi = lo + dpus_per_shard

    def keep(faults):
        return tuple(
            replace(f, dpu_id=f.dpu_id - lo) for f in faults if lo <= f.dpu_id < hi
        )

    return FaultPlan(
        seed=plan.seed,
        deaths=keep(plan.deaths),
        corruptions=keep(plan.corruptions),
        truncations=keep(plan.truncations),
        stalls=keep(plan.stalls),
    )


# -- process-parallel shard execution -----------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """A self-contained description of one shard's run; picklable.

    Mirrors :class:`~repro.pim.parallel.DpuJob` one layer up: the worker
    process builds its own system, scheduler (and telemetry when asked)
    from the task alone, so a shard's outcome depends only on the task —
    never on which worker ran it or in what order.
    """

    shard_id: int
    config: "PimSystemConfig"
    kernel_config: KernelConfig
    overlapped: bool
    workers: Optional[int]
    pairs: tuple[ReadPair, ...]
    pairs_per_round: int
    collect_results: bool
    fault_plan: Optional[FaultPlan]
    retry_policy: Optional[RetryPolicy]
    journal_path: Optional[str]
    resume: bool
    now: float
    with_telemetry: bool
    #: the worker rebuilds this shard's health ledger from these two —
    #: policy plus the coordinator's exported breaker state — and ships
    #: the end state home in :attr:`ShardOutcome.health_state`, which is
    #: what lets ``shard_workers > 1`` carry health ledgers at all.
    health_policy: Optional["HealthPolicy"] = None
    health_state: Optional[dict] = None


@dataclass
class ShardOutcome:
    """What one shard sends back to the coordinator; picklable."""

    shard_id: int
    run: ScheduledRun
    #: picklable :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    #: (``with_telemetry`` tasks only)
    metrics: Optional[dict] = None
    #: event records (:meth:`~repro.obs.events.Event.to_dict`) in
    #: publish order (``with_telemetry`` tasks only)
    events: Optional[list] = None
    #: :meth:`~repro.pim.health.FleetHealth.export_state` delta the
    #: coordinator imports into its persistent shard ledger
    health_state: Optional[dict] = None


def run_fleet_shard(task: ShardTask) -> ShardOutcome:
    """Run one shard's rounds; picklable in and out.

    Journals to ``task.journal_path`` (a standard per-shard
    ``repro.pim.journal/v1`` file) when set; with ``task.resume`` and an
    existing journal the shard resumes instead of starting fresh.
    """
    telemetry = None
    if task.with_telemetry:
        from repro.obs.telemetry import RunTelemetry

        telemetry = RunTelemetry()
    system = PimSystem(task.config, task.kernel_config, telemetry=telemetry)
    scheduler = BatchScheduler(
        system, overlapped=task.overlapped, workers=task.workers
    )
    health = None
    if task.health_policy is not None:
        from repro.pim.health import FleetHealth

        health = FleetHealth(
            task.config.num_dpus,
            policy=task.health_policy,
            registry=telemetry.registry if telemetry is not None else None,
            events=telemetry.events if telemetry is not None else None,
        )
        if task.health_state is not None:
            health.import_state(task.health_state)
    pairs = list(task.pairs)
    if (
        task.resume
        and task.journal_path is not None
        and Path(task.journal_path).exists()
    ):
        run = scheduler.resume_run(
            task.journal_path,
            pairs,
            pairs_per_round=task.pairs_per_round,
            collect_results=task.collect_results,
            fault_plan=task.fault_plan,
            retry_policy=task.retry_policy,
            health=health,
            now=task.now,
        )
    else:
        run = scheduler.run(
            pairs,
            pairs_per_round=task.pairs_per_round,
            collect_results=task.collect_results,
            fault_plan=task.fault_plan,
            retry_policy=task.retry_policy,
            health=health,
            journal=task.journal_path,
            now=task.now,
        )
    return ShardOutcome(
        shard_id=task.shard_id,
        run=run,
        metrics=telemetry.registry.snapshot() if telemetry is not None else None,
        events=(
            [e.to_dict() for e in telemetry.events.events()]
            if telemetry is not None
            else None
        ),
        health_state=health.export_state() if health is not None else None,
    )


# -- the merged fleet run ------------------------------------------------------


@dataclass
class FleetRun:
    """Aggregate outcome of one fleet run, in global round order.

    ``per_round`` / ``schedule`` / ``recovery`` / ``total_seconds``
    deliberately mirror :class:`~repro.pim.scheduler.ScheduledRun` so
    the serve dispatcher can consume either interchangeably; the timing
    semantics differ — shards run concurrently, so ``total_seconds`` is
    the fleet *makespan* (slowest shard), not the serial sum.
    """

    schedule: BatchSchedule
    shards: int
    #: shard id each global round was placed on
    placements: list[int]
    #: per-round results in global round order (the unsharded stream)
    per_round: list[PimRunResult] = field(default_factory=list)
    #: each participating shard's own ScheduledRun
    shard_runs: dict[int, ScheduledRun] = field(default_factory=dict)
    overlapped: bool = False
    #: aggregate recovery report, pair indices global (None without faults)
    recovery: Optional[RecoveryReport] = None
    rounds_replayed: int = 0
    #: per-run transport report when the run went over a faulty network
    #: (None on the direct path; see :mod:`repro.pim.transport`)
    transport: Optional[TransportReport] = None

    @property
    def kernel_seconds(self) -> float:
        return sum(r.kernel_seconds for r in self.per_round)

    @property
    def transfer_seconds(self) -> float:
        return sum(r.transfer_seconds for r in self.per_round)

    @property
    def recovery_seconds(self) -> float:
        return sum(r.recovery_overhead_seconds for r in self.per_round)

    @property
    def shard_seconds(self) -> dict[int, float]:
        """Modeled busy seconds per participating shard."""
        if self.transport is not None:
            return {k: v for k, v in sorted(self.transport.shard_busy_s.items())}
        return {k: run.total_seconds for k, run in sorted(self.shard_runs.items())}

    @property
    def total_seconds(self) -> float:
        """Fleet makespan: shards run concurrently, so the run finishes
        when the slowest shard does.  Over a faulty network the wire is
        on the critical path too: the makespan runs to the latest
        result *receipt* at the coordinator."""
        if self.transport is not None:
            return self.transport.makespan_s
        return max(self.shard_seconds.values(), default=0.0)

    @property
    def serial_seconds(self) -> float:
        """What the same rounds would cost on one shard (scaling denominator)."""
        return sum(self.shard_seconds.values())

    def speedup(self) -> float:
        return self.serial_seconds / self.total_seconds if self.total_seconds else 0.0

    def throughput(self) -> float:
        total = self.schedule.total_pairs
        return total / self.total_seconds if self.total_seconds else 0.0

    def results(self) -> list[tuple[int, int, object]]:
        """Gathered records rebased to workload-global pair indices."""
        out: list[tuple[int, int, object]] = []
        start = 0
        for rnd, size in zip(self.per_round, self.schedule.round_sizes()):
            out.extend((start + local, score, cigar) for local, score, cigar in rnd.results)
            start += size
        return out

    def to_dict(self) -> dict:
        """JSON-ready fleet-run summary (schema ``repro.pim.fleet.run/v1``)."""
        return {
            "schema": "repro.pim.fleet.run/v1",
            "shards": self.shards,
            "rounds": self.schedule.rounds,
            "rounds_replayed": self.rounds_replayed,
            "placements": list(self.placements),
            "total_seconds": self.total_seconds,
            "serial_seconds": self.serial_seconds,
            "shard_seconds": {str(k): v for k, v in self.shard_seconds.items()},
            "throughput_pairs_per_s": self.throughput(),
            "recovery": self.recovery.to_dict() if self.recovery is not None else None,
            "transport": (
                self.transport.to_dict() if self.transport is not None else None
            ),
        }


# -- the coordinator -----------------------------------------------------------


class FleetCoordinator:
    """Places rounds on shards, runs them, federates the outcomes.

    ``config`` describes **one shard** (``config.num_dpus`` DPUs per
    shard; the federation totals ``shards * config.num_dpus``).  Every
    shard gets its own system, scheduler, telemetry (when ``telemetry``
    is given — the argument itself is the *primary* sink for
    coordinator-level events) and, under a ``health_policy``, its own
    :class:`~repro.pim.health.FleetHealth` ledger.

    Health-aware placement: before each run the coordinator asks every
    shard ledger for its healthy fraction; shards below
    ``min_shard_healthy_fraction`` are quarantined out of placement and
    a ``rebalance`` event is published on each change of the active
    set.  If *every* shard is quarantined the full fleet becomes probe
    traffic (mirroring :meth:`~repro.pim.health.FleetHealth.plan_round`).

    ``shard_workers`` > 1 fans shards out over a
    ``ProcessPoolExecutor`` (falling back to sequential execution if
    the pool cannot start) — results are identical either way because a
    shard's outcome is a pure function of its task.  Health ledgers
    survive the process boundary: each task carries the coordinator's
    exported breaker state in, the worker feeds its own rebuilt ledger,
    and the :class:`ShardOutcome` ships the end state home where it is
    imported into the persistent per-shard ledger — byte-identical
    health documents at any ``shard_workers``.

    ``net_plan``/``transport_policy`` model the coordinator<->shard
    network (:mod:`repro.pim.transport`): under a non-calm
    :class:`~repro.pim.transport.NetworkFaultPlan` every round travels
    as an idempotent envelope with at-least-once redelivery, and with
    ``TransportPolicy(hedge=True)`` a timed-out in-flight round is
    stolen onto the next healthy shard.  Networked runs are inline-only
    and refuse journals (`the wire, not the WAL, is the experiment`).
    """

    def __init__(
        self,
        config: "PimSystemConfig",
        kernel_config: Optional[KernelConfig] = None,
        shards: int = 1,
        *,
        overlapped: bool = False,
        workers: Optional[int] = None,
        shard_workers: int = 1,
        health_policy: Optional["HealthPolicy"] = None,
        min_shard_healthy_fraction: float = 0.5,
        fault_domain: str = "global",
        telemetry: Optional["RunTelemetry"] = None,
        net_plan: Optional[NetworkFaultPlan] = None,
        transport_policy: Optional[TransportPolicy] = None,
    ) -> None:
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if shard_workers < 0:
            raise ConfigError(f"shard_workers must be >= 0, got {shard_workers}")
        if fault_domain not in FAULT_DOMAINS:
            raise ConfigError(
                f"fault_domain must be one of {FAULT_DOMAINS}, got {fault_domain!r}"
            )
        if not 0 < min_shard_healthy_fraction <= 1:
            raise ConfigError(
                "min_shard_healthy_fraction must be in (0, 1], got "
                f"{min_shard_healthy_fraction}"
            )
        self.shards = shards
        self.config = config
        self.overlapped = overlapped
        self.workers = workers
        self.shard_workers = shard_workers
        self.health_policy = health_policy
        self.min_shard_healthy_fraction = min_shard_healthy_fraction
        self.fault_domain = fault_domain
        #: primary telemetry: coordinator-level events (rebalance) and the
        #: serve layer's own metrics land here; per-shard device telemetry
        #: lives on the shard systems and is federated on demand.
        self.telemetry = telemetry
        self.shard_telemetries: list[Optional["RunTelemetry"]] = []
        self.systems: list[PimSystem] = []
        self.schedulers: list[BatchScheduler] = []
        self.shard_healths: list = []
        for k in range(shards):
            shard_tel = None
            if telemetry is not None:
                from repro.obs.telemetry import RunTelemetry

                shard_tel = RunTelemetry()
            system = PimSystem(config, kernel_config, telemetry=shard_tel)
            self.shard_telemetries.append(shard_tel)
            self.systems.append(system)
            self.schedulers.append(
                BatchScheduler(system, overlapped=overlapped, workers=workers)
            )
            health = None
            if health_policy is not None:
                from repro.pim.health import FleetHealth

                health = FleetHealth(
                    config.num_dpus,
                    policy=health_policy,
                    registry=shard_tel.registry if shard_tel is not None else None,
                    events=shard_tel.events if shard_tel is not None else None,
                )
            self.shard_healths.append(health)
        self._last_active: tuple[int, ...] = tuple(range(shards))
        #: modeled network boundary; None under a calm/absent plan so the
        #: direct path stays byte-identical (zero counters, events, time)
        self.net_plan = net_plan
        self.transport: Optional[ShardTransport] = None
        if net_plan is not None and not net_plan.is_calm():
            self.transport = ShardTransport(
                shards,
                net_plan,
                policy=transport_policy,
                registry=telemetry.registry if telemetry is not None else None,
                events=telemetry.events if telemetry is not None else None,
            )
        elif transport_policy is not None and net_plan is None:
            raise ConfigError(
                "transport_policy without a net_plan has nothing to govern; "
                "pass net_plan= (a NetworkFaultPlan, possibly calm)"
            )

    # -- shape -------------------------------------------------------------

    @property
    def dpus_per_shard(self) -> int:
        return self.config.num_dpus

    @property
    def total_dpus(self) -> int:
        """Federated DPU count — the paper-scale number a fleet models."""
        return self.shards * self.config.num_dpus

    @property
    def kernel_config(self) -> KernelConfig:
        return self.systems[0].kernel_config

    def plan(
        self, total_pairs: int, pairs_per_round: Optional[int] = None
    ) -> BatchSchedule:
        """The canonical (unsharded) schedule rounds are striped from."""
        return self.schedulers[0].plan(total_pairs, pairs_per_round)

    def max_pairs_per_round(self, mram_budget_fraction: float = 0.9) -> int:
        return self.schedulers[0].max_pairs_per_round(mram_budget_fraction)

    # -- health-aware placement --------------------------------------------

    def healthy_fraction(self, now: Optional[float] = None) -> float:
        """Fraction of the *federated* fleet available for placement."""
        if self.health_policy is None:
            return 1.0
        healthy = sum(
            len(h.available(now)) for h in self.shard_healths if h is not None
        )
        return healthy / self.total_dpus

    def available_shards(self, now: Optional[float] = None) -> tuple[int, ...]:
        """Sorted shard ids allowed to take rounds.

        A shard is quarantined when its ledger's healthy fraction falls
        below ``min_shard_healthy_fraction``; with every shard
        quarantined the whole fleet is returned as probe traffic.
        """
        if self.health_policy is None:
            return tuple(range(self.shards))
        active = tuple(
            k
            for k in range(self.shards)
            if self.shard_healths[k].healthy_fraction(now)
            >= self.min_shard_healthy_fraction
        )
        return active if active else tuple(range(self.shards))

    def place_rounds(
        self, num_rounds: int, now: Optional[float] = None
    ) -> list[int]:
        """Deterministic striped placement over the active shards."""
        active = self.available_shards(now)
        self._note_rebalance(active, 0.0 if now is None else now)
        return [active[i % len(active)] for i in range(num_rounds)]

    def _note_rebalance(self, active: tuple[int, ...], now: float) -> None:
        """Publish a ``rebalance`` event on each active-set change."""
        if active == self._last_active:
            return
        excluded = sorted(set(range(self.shards)) - set(active))
        self._last_active = active
        if excluded:
            warnings.warn(
                f"shards {excluded} quarantined at t={now:.6f}; rounds "
                f"rebalanced onto {len(active)} of {self.shards} shards",
                DegradedCapacity,
                stacklevel=3,
            )
        if self.telemetry is not None:
            from repro.obs.events import REBALANCE

            self.telemetry.events.publish(
                REBALANCE,
                now,
                active=len(active),
                shards=self.shards,
                excluded=",".join(str(s) for s in excluded),
            )

    # -- fault domains ------------------------------------------------------

    def _shard_plan(
        self, fault_plan: Optional[FaultPlan], shard: int
    ) -> Optional[FaultPlan]:
        if fault_plan is None:
            return None
        if self.fault_domain == "uniform":
            return fault_plan
        return slice_fault_plan(fault_plan, shard, self.dpus_per_shard)

    # -- journal federation -------------------------------------------------

    def _fingerprint(
        self,
        pairs: list[ReadPair],
        schedule: BatchSchedule,
        collect_results: bool,
        fault_plan: Optional[FaultPlan],
        retry_policy: Optional[RetryPolicy],
    ) -> dict:
        """Fleet workload fingerprint: excludes ``workers`` *and*
        ``shards`` (the manifest records the shard count)."""
        from repro.pim.journal import workload_fingerprint

        policy: Optional[RetryPolicy] = None
        if fault_plan is not None:
            policy = retry_policy if retry_policy is not None else RetryPolicy()
        return workload_fingerprint(
            pairs,
            schedule.pairs_per_round,
            self.config.num_dpus,
            self.config.tasklets,
            self.config.metadata_policy,
            collect_results,
            fault_plan=fault_plan,
            retry_policy=policy,
            health_policy=self.health_policy,
        )

    @staticmethod
    def _write_manifest(directory: Path, doc: dict) -> None:
        """Atomic manifest write (same temp-file + replace discipline as
        the per-shard journals)."""
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / MANIFEST_NAME
        fd, tmp = tempfile.mkstemp(
            dir=str(directory), prefix=MANIFEST_NAME, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def load_manifest(directory: Union[str, Path]) -> dict:
        """Load and schema-check a fleet journal manifest."""
        path = Path(directory) / MANIFEST_NAME
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise JournalError(f"cannot read fleet manifest {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise JournalError(f"fleet manifest {path} is malformed: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("schema") != MANIFEST_SCHEMA:
            raise JournalError(
                f"{path} is not a {MANIFEST_SCHEMA} manifest "
                f"(got {doc.get('schema') if isinstance(doc, dict) else doc!r})"
            )
        return doc

    # -- execution ----------------------------------------------------------

    def run(
        self,
        pairs: list[ReadPair],
        pairs_per_round: Optional[int] = None,
        collect_results: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        journal: Optional[Union[str, Path]] = None,
        now: float = 0.0,
        placements: Optional[list[int]] = None,
        resume: bool = False,
    ) -> FleetRun:
        """Run a workload across the fleet and merge the outcomes.

        ``journal`` names a *directory*: one ``repro.pim.journal/v1``
        file per participating shard plus a ``manifest.json`` recording
        the placement.  ``placements``/``resume`` are the resume path's
        internals — use :meth:`resume_run`.
        """
        schedule = self.plan(len(pairs), pairs_per_round)
        sizes = schedule.round_sizes()
        starts: list[int] = []
        acc = 0
        for size in sizes:
            starts.append(acc)
            acc += size
        if placements is None:
            placements = self.place_rounds(schedule.rounds, now)
        elif len(placements) != schedule.rounds:
            raise ConfigError(
                f"placement length {len(placements)} does not match the "
                f"{schedule.rounds}-round schedule"
            )
        shard_rounds: dict[int, list[int]] = {}
        for index, shard in enumerate(placements):
            if not 0 <= shard < self.shards:
                raise ConfigError(f"round {index} placed on unknown shard {shard}")
            shard_rounds.setdefault(shard, []).append(index)

        if self.transport is not None:
            if journal is not None or resume:
                raise ConfigError(
                    "journaling/resume is not supported over a faulty network "
                    "plan; run the networked drill without journal= (the "
                    "transport's at-least-once delivery is the durability "
                    "story there)"
                )
            return self._run_networked(
                pairs,
                schedule,
                starts,
                sizes,
                placements,
                collect_results,
                fault_plan,
                retry_policy,
                now,
            )

        journal_dir = Path(journal) if journal is not None else None
        if journal_dir is not None and not resume:
            self._write_manifest(
                journal_dir,
                {
                    "schema": MANIFEST_SCHEMA,
                    "shards": self.shards,
                    "dpus_per_shard": self.dpus_per_shard,
                    "fault_domain": self.fault_domain,
                    "pairs_per_round": schedule.pairs_per_round,
                    "placements": list(placements),
                    "journals": {
                        str(k): shard_journal_name(k) for k in sorted(shard_rounds)
                    },
                    "fingerprint": self._fingerprint(
                        pairs, schedule, collect_results, fault_plan, retry_policy
                    ),
                },
            )

        tasks: list[ShardTask] = []
        for k in sorted(shard_rounds):
            shard_pairs = tuple(
                pair
                for r in shard_rounds[k]
                for pair in pairs[starts[r] : starts[r] + sizes[r]]
            )
            journal_path = (
                str(journal_dir / shard_journal_name(k))
                if journal_dir is not None
                else None
            )
            tasks.append(
                ShardTask(
                    shard_id=k,
                    config=self.config,
                    kernel_config=self.systems[k].kernel_config,
                    overlapped=self.overlapped,
                    workers=self.workers,
                    pairs=shard_pairs,
                    pairs_per_round=schedule.pairs_per_round,
                    collect_results=collect_results,
                    fault_plan=self._shard_plan(fault_plan, k),
                    retry_policy=retry_policy,
                    journal_path=journal_path,
                    resume=resume,
                    now=now,
                    with_telemetry=self.telemetry is not None,
                    health_policy=self.health_policy,
                    health_state=(
                        self.shard_healths[k].export_state()
                        if self.shard_healths[k] is not None
                        else None
                    ),
                )
            )

        shard_runs = self._execute(tasks, resume=resume, now=now)

        per_round: list[Optional[PimRunResult]] = [None] * schedule.rounds
        rounds_replayed = 0
        for k, run_k in shard_runs.items():
            rounds_replayed += run_k.rounds_replayed
            for j, r in enumerate(shard_rounds[k]):
                result = run_k.per_round[j]
                if result.recovery is not None:
                    # the shard shifted this round's recovery to its own
                    # (shard-local) pair space; lift it to the global one
                    result.recovery.shift_pairs(
                        starts[r] - j * schedule.pairs_per_round
                    )
                per_round[r] = result
        recovery: Optional[RecoveryReport] = None
        for result in per_round:
            if result is not None and result.recovery is not None:
                if recovery is None:
                    recovery = RecoveryReport()
                recovery.merge(result.recovery)
        return FleetRun(
            schedule=schedule,
            shards=self.shards,
            placements=list(placements),
            per_round=[r for r in per_round if r is not None],
            shard_runs=shard_runs,
            overlapped=self.overlapped,
            recovery=recovery,
            rounds_replayed=rounds_replayed,
        )

    def _execute(
        self, tasks: list[ShardTask], resume: bool, now: float
    ) -> dict[int, ScheduledRun]:
        """Run shard tasks sequentially or over a process pool."""
        if self.shard_workers not in (0, 1) and len(tasks) > 1:
            workers = self.shard_workers or (os.cpu_count() or 1)
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(tasks))
                ) as pool:
                    outcomes = list(pool.map(run_fleet_shard, tasks))
                return self._absorb(outcomes)
            except (OSError, BrokenProcessPool):
                # pool infrastructure failure: the sequential path is
                # result-identical (same discipline as repro.pim.parallel)
                pass
        outcomes = []
        for task in tasks:
            outcomes.append(self._run_shard_inline(task))
        return self._absorb(outcomes, inline=True)

    def _run_shard_inline(self, task: ShardTask) -> ShardOutcome:
        """Run one shard on its persistent system/health in-process."""
        k = task.shard_id
        scheduler = self.schedulers[k]
        pairs = list(task.pairs)
        if (
            task.resume
            and task.journal_path is not None
            and Path(task.journal_path).exists()
        ):
            run = scheduler.resume_run(
                task.journal_path,
                pairs,
                pairs_per_round=task.pairs_per_round,
                collect_results=task.collect_results,
                fault_plan=task.fault_plan,
                retry_policy=task.retry_policy,
                health=self.shard_healths[k],
                now=task.now,
            )
        else:
            run = scheduler.run(
                pairs,
                pairs_per_round=task.pairs_per_round,
                collect_results=task.collect_results,
                fault_plan=task.fault_plan,
                retry_policy=task.retry_policy,
                health=self.shard_healths[k],
                journal=task.journal_path,
                now=task.now,
            )
        return ShardOutcome(shard_id=k, run=run)

    def _absorb(
        self, outcomes: list[ShardOutcome], inline: bool = False
    ) -> dict[int, ScheduledRun]:
        """Fold shard outcomes home; merge worker telemetry deltas."""
        shard_runs: dict[int, ScheduledRun] = {}
        for outcome in outcomes:
            shard_runs[outcome.shard_id] = outcome.run
            if inline:
                continue  # persistent shard telemetry already has it all
            if outcome.health_state is not None:
                health = self.shard_healths[outcome.shard_id]
                if health is not None:
                    # the worker already published the transitions; import
                    # the end state without replaying (no double count)
                    health.import_state(outcome.health_state)
            shard_tel = self.shard_telemetries[outcome.shard_id]
            if shard_tel is None:
                continue
            if outcome.metrics is not None:
                shard_tel.registry.merge_snapshot(outcome.metrics)
            for record in outcome.events or ():
                shard_tel.events.publish(
                    record["kind"], record["t_s"], **record["attrs"]
                )
        return shard_runs

    # -- networked execution --------------------------------------------------

    def _run_networked(
        self,
        pairs: list[ReadPair],
        schedule: BatchSchedule,
        starts: list[int],
        sizes: list[int],
        placements: list[int],
        collect_results: bool,
        fault_plan: Optional[FaultPlan],
        retry_policy: Optional[RetryPolicy],
        now: float,
    ) -> FleetRun:
        """Run every round through the modeled transport, in global order.

        Per-shard ``busy`` clocks serialize rounds on their shard while
        shards overlap each other, exactly like the direct path — but
        each round additionally pays its work-envelope delivery on the
        way out and its result-envelope delivery on the way home, and a
        delivery that misses the hedge deadline (``hedge=True``) steals
        the round onto the next healthy shard.  Results are unaffected
        by any of it: a round is a pure function of its chunk, so the
        networked ``per_round`` stream is byte-identical to the direct
        path's (pinned in ``tests/test_pim_transport.py``).
        """
        assert self.transport is not None
        report = self.transport.begin_run(now)
        busy = {k: now for k in range(self.shards)}
        per_round: list[PimRunResult] = []
        recovery: Optional[RecoveryReport] = None
        for r in range(schedule.rounds):
            chunk = pairs[starts[r] : starts[r] + sizes[r]]
            survivor, result, recv_s = self._round_over_network(
                r,
                chunk,
                placements[r],
                busy,
                now,
                schedule.pairs_per_round,
                collect_results,
                fault_plan,
                retry_policy,
            )
            report.receipts[r] = recv_s
            report.survivors[r] = survivor
            if result.recovery is not None:
                result.recovery.shift_pairs(starts[r])
                if recovery is None:
                    recovery = RecoveryReport()
                recovery.merge(result.recovery)
            per_round.append(result)
        report.shard_busy_s = {
            k: busy[k] - now for k in range(self.shards) if busy[k] > now
        }
        return FleetRun(
            schedule=schedule,
            shards=self.shards,
            placements=list(placements),
            per_round=per_round,
            shard_runs={},
            overlapped=self.overlapped,
            recovery=recovery,
            rounds_replayed=0,
            transport=report,
        )

    def _round_over_network(
        self,
        r: int,
        chunk: list[ReadPair],
        shard: int,
        busy: dict[int, float],
        now: float,
        pairs_per_round: int,
        collect_results: bool,
        fault_plan: Optional[FaultPlan],
        retry_policy: Optional[RetryPolicy],
    ) -> tuple[int, PimRunResult, float]:
        """One round's full network round-trip; returns the surviving
        ``(shard, result, coordinator receipt time)``.

        At-least-once on both legs: the work envelope retries until it
        lands (or its redelivery budget exhausts), the round executes at
        ``max(arrival, shard busy)``, and the result envelope retries
        home.  Hedging arms a timer at dispatch: a round whose result
        has not arrived by ``hedge_timeout_s`` is stolen onto the next
        healthy shard and the two results race — earliest coordinator
        receipt survives (tie goes to the original), the loser is
        absorbed by dedup.
        """
        transport = self.transport
        policy = transport.policy
        # (receipt, origin-order) candidates; origin 0 = original shard
        candidates: list[tuple[float, int, int, PimRunResult]] = []
        tried = [shard]
        work = transport.deliver("work", r, shard, now)
        # the hedge timer is per-leg: the work envelope must be acked
        # within hedge_timeout_s of dispatch, and the result must land
        # within hedge_timeout_s of the round's modeled completion —
        # a healthy shard that is merely *busy* is never stolen from.
        hedge_needed = (not work.ok) or work.arrive_s > now + policy.hedge_timeout_s
        t_steal = now + policy.hedge_timeout_s
        if work.ok:
            result, done = self._execute_round_on(
                shard,
                chunk,
                busy,
                work.arrive_s,
                pairs_per_round,
                collect_results,
                fault_plan,
                retry_policy,
            )
            back = transport.deliver("result", r, shard, done)
            if back.ok:
                candidates.append((back.arrive_s, 0, shard, result))
            if not hedge_needed and (
                not back.ok or back.arrive_s > done + policy.hedge_timeout_s
            ):
                hedge_needed = True
                t_steal = done + policy.hedge_timeout_s
        if policy.hedge and hedge_needed:
            for offset in range(1, self.shards):
                target = (shard + offset) % self.shards
                if target in tried:
                    continue
                if not transport.link_ok(target, t_steal):
                    continue
                if not self._shard_placeable(target, t_steal):
                    continue
                tried.append(target)
                transport.note_steal(r, shard, target, t_steal)
                stolen = transport.deliver("work", r, target, t_steal)
                if not stolen.ok:
                    continue
                result2, done2 = self._execute_round_on(
                    target,
                    chunk,
                    busy,
                    stolen.arrive_s,
                    pairs_per_round,
                    collect_results,
                    fault_plan,
                    retry_policy,
                )
                back2 = transport.deliver("result", r, target, done2)
                if back2.ok:
                    candidates.append((back2.arrive_s, 1, target, result2))
                    break
        if not candidates:
            raise TransportError(
                f"round {r}: no result reached the coordinator — shard "
                f"{shard}'s link exhausted {policy.max_redeliveries} "
                f"redeliveries and no healthy shard could steal the round; "
                f"the network plan violates the >=1-live-shard liveness "
                f"precondition"
            )
        candidates.sort(key=lambda c: (c[0], c[1]))
        recv_s, _, survivor, result = candidates[0]
        for _ in candidates[1:]:
            transport.absorb_extra_result(r, survivor)
        return survivor, result, recv_s

    def _execute_round_on(
        self,
        k: int,
        chunk: list[ReadPair],
        busy: dict[int, float],
        arrive_s: float,
        pairs_per_round: int,
        collect_results: bool,
        fault_plan: Optional[FaultPlan],
        retry_policy: Optional[RetryPolicy],
    ) -> tuple[PimRunResult, float]:
        """Execute one round's chunk on shard ``k`` at the modeled time
        its work envelope arrived; returns (result, completion time)."""
        start = max(arrive_s, busy[k])
        run_k = self.schedulers[k].run(
            list(chunk),
            pairs_per_round=pairs_per_round,
            collect_results=collect_results,
            fault_plan=self._shard_plan(fault_plan, k),
            retry_policy=retry_policy,
            health=self.shard_healths[k],
            now=start,
        )
        done = start + run_k.total_seconds
        busy[k] = done
        return run_k.per_round[0], done

    def _shard_placeable(self, k: int, now: float) -> bool:
        """Whether shard ``k``'s device health admits stolen work."""
        if self.health_policy is None or self.shard_healths[k] is None:
            return True
        return (
            self.shard_healths[k].healthy_fraction(now)
            >= self.min_shard_healthy_fraction
        )

    def link_healthy_fraction(self, now: Optional[float] = None) -> float:
        """Fraction of coordinator<->shard links not quarantined (1.0
        without a transport) — the serve dispatcher's degraded-network
        backpressure signal."""
        if self.transport is None:
            return 1.0
        return self.transport.link_healthy_fraction(0.0 if now is None else now)

    def resume_run(
        self,
        journal: Union[str, Path],
        pairs: list[ReadPair],
        pairs_per_round: Optional[int] = None,
        collect_results: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        now: float = 0.0,
    ) -> FleetRun:
        """Resume a crashed fleet run from its journal directory.

        Validates the manifest (schema, shard count, fault domain, and
        the workload fingerprint — which excludes ``workers`` and
        ``shards``, so a run journaled at one worker count resumes at
        any other), then re-runs under the **recorded** placement:
        shards whose journals survived replay their completed rounds
        idempotently; shards whose journals are missing or torn
        re-execute.  The merged :class:`FleetRun` — results, recovery,
        health ledgers, per-shard journal bytes — is identical to an
        uninterrupted run's.
        """
        manifest = self.load_manifest(journal)
        schedule = self.plan(len(pairs), pairs_per_round)
        if int(manifest.get("shards", -1)) != self.shards:
            raise JournalError(
                f"fleet manifest records shards={manifest.get('shards')}, "
                f"coordinator has shards={self.shards}"
            )
        if manifest.get("fault_domain") != self.fault_domain:
            raise JournalError(
                f"fleet manifest records fault_domain="
                f"{manifest.get('fault_domain')!r}, coordinator uses "
                f"{self.fault_domain!r}"
            )
        expected = self._fingerprint(
            pairs, schedule, collect_results, fault_plan, retry_policy
        )
        if manifest.get("fingerprint") != expected:
            recorded = manifest.get("fingerprint") or {}
            mismatched = sorted(
                key
                for key in set(recorded) | set(expected)
                if recorded.get(key) != expected.get(key)
            )
            raise JournalError(
                "fleet manifest fingerprint does not match the offered "
                f"workload/configuration (differs in: "
                f"{', '.join(mismatched) or 'shape'})"
            )
        placements = [int(p) for p in manifest.get("placements", ())]
        if len(placements) != schedule.rounds:
            raise JournalError(
                f"fleet manifest records {len(placements)} placements for a "
                f"{schedule.rounds}-round schedule"
            )
        return self.run(
            pairs,
            pairs_per_round=pairs_per_round,
            collect_results=collect_results,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            journal=journal,
            now=now,
            placements=placements,
            resume=True,
        )

    # -- federation ----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """One coherent snapshot across the primary and every shard.

        Counters and histograms sum, gauges keep the max — the
        commutative merge :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`
        defines — so the federated view is independent of shard order.
        """
        from repro.obs.metrics import MetricsRegistry

        merged = MetricsRegistry()
        if self.telemetry is not None:
            merged.merge_snapshot(self.telemetry.registry.snapshot())
        for shard_tel in self.shard_telemetries:
            if shard_tel is not None:
                merged.merge_snapshot(shard_tel.registry.snapshot())
        return merged.snapshot()

    def health_states(self) -> dict[int, Optional[dict]]:
        """Per-shard breaker states (``None`` for unledgered shards)."""
        return {
            k: (h.states() if h is not None else None)
            for k, h in enumerate(self.shard_healths)
        }

    def health_doc(self, now: Optional[float] = None) -> dict:
        """Merged fleet-health document (``repro.pim.fleet.health/v1``)."""
        return {
            "schema": "repro.pim.fleet.health/v1",
            "shards": self.shards,
            "dpus_per_shard": self.dpus_per_shard,
            "total_dpus": self.total_dpus,
            "healthy_fraction": self.healthy_fraction(now),
            "available_shards": list(self.available_shards(now)),
            "per_shard": {
                str(k): (h.to_dict(now) if h is not None else None)
                for k, h in enumerate(self.shard_healths)
            },
        }

    def event_records(self) -> list[dict]:
        """Federated event-log document: header plus every event.

        Shard events gain a ``shard`` attribute; coordinator-level
        events (rebalances) carry none.  The merged stream is ordered
        by ``(t_s, shard, seq)`` and re-sequenced, so it validates
        under :func:`~repro.obs.events.validate_event_log` and is
        deterministic regardless of shard completion order.
        """
        from repro.obs.events import EventLog

        tagged: list[tuple[float, int, int, str, dict]] = []
        if self.telemetry is not None:
            for event in self.telemetry.events.events():
                tagged.append(
                    (event.t_s, -1, event.seq, event.kind, dict(event.attrs))
                )
        for k, shard_tel in enumerate(self.shard_telemetries):
            if shard_tel is None:
                continue
            for event in shard_tel.events.events():
                attrs = dict(event.attrs)
                attrs["shard"] = k
                tagged.append((event.t_s, k, event.seq, event.kind, attrs))
        tagged.sort(key=lambda item: (item[0], item[1], item[2]))
        merged = EventLog(capacity=max(1, len(tagged)) + 1)
        for t_s, _shard, _seq, kind, attrs in tagged:
            merged.publish(kind, t_s, **attrs)
        return merged.to_records()
