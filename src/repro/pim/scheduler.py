"""Host-side batch scheduler for workloads larger than one MRAM fill.

The paper's experiment fits 5M pairs into one distribution round (~430 KB
per DPU against 64 MB banks), but a production workload — or longer
reads — can exceed what the input+output regions of a bank can hold.
The scheduler splits such workloads into rounds sized to MRAM capacity
and runs distribute → launch → gather per round, modeling both the
serialized schedule the paper's host loop implies and an overlapped
(double-buffered) schedule where round ``i+1``'s transfer proceeds while
round ``i``'s kernel runs — the standard optimization the paper's
"Total vs Kernel" gap begs for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.data.generator import ReadPair
from repro.errors import ConfigError
from repro.pim.faults import FaultPlan, RecoveryReport, RetryPolicy
from repro.pim.layout import HEADER_BYTES
from repro.pim.system import PimRunResult, PimSystem

__all__ = ["BatchSchedule", "ScheduledRun", "BatchScheduler"]


@dataclass(frozen=True)
class BatchSchedule:
    """How a workload splits into MRAM-sized rounds."""

    total_pairs: int
    pairs_per_round: int

    @property
    def rounds(self) -> int:
        return math.ceil(self.total_pairs / self.pairs_per_round)

    def round_sizes(self) -> list[int]:
        # An empty workload has zero rounds; the general expression below
        # would fabricate a phantom round of ``pairs_per_round`` pairs
        # (list of -1 copies is empty, then the append contributes
        # ``total - per * (0 - 1) = per``).
        if self.total_pairs == 0:
            return []
        sizes = [self.pairs_per_round] * (self.rounds - 1)
        sizes.append(self.total_pairs - self.pairs_per_round * (self.rounds - 1))
        return sizes


@dataclass
class ScheduledRun:
    """Aggregate timing of a multi-round run."""

    schedule: BatchSchedule
    per_round: list[PimRunResult] = field(default_factory=list)
    overlapped: bool = False
    #: aggregate graceful-degradation report across rounds, with pair
    #: indices rebased to the full workload (``None`` without faults).
    recovery: Optional[RecoveryReport] = None

    @property
    def kernel_seconds(self) -> float:
        return sum(r.kernel_seconds for r in self.per_round)

    @property
    def transfer_seconds(self) -> float:
        return sum(r.transfer_seconds for r in self.per_round)

    @property
    def total_seconds(self) -> float:
        """Serialized: sum of round totals.  Overlapped: transfers of
        round i+1 hide behind the kernel of round i (classic double
        buffering), so each inner round costs max(kernel, transfer)."""
        if not self.per_round:
            return 0.0
        if not self.overlapped:
            launches = sum(r.launch_seconds for r in self.per_round)
            return self.kernel_seconds + self.transfer_seconds + launches
        # pipeline: first in-transfer exposed, last out-transfer exposed,
        # middle stages bounded by the slower of kernel / transfer.
        # Launch overhead is host-side software work; while round i's
        # kernel occupies the DPUs the host is idle and preps round
        # i+1's launch, so inner launches pipeline behind the
        # max(kernel, transfer) stages — only the first round's launch
        # (nothing to hide behind yet) is exposed.
        first_in = self.per_round[0].transfer_in_seconds
        last_out = self.per_round[-1].transfer_out_seconds
        exposed_launch = self.per_round[0].launch_seconds
        middle = sum(
            max(r.kernel_seconds, r.transfer_seconds) for r in self.per_round
        )
        return first_in + exposed_launch + middle + last_out

    def throughput(self) -> float:
        total = self.schedule.total_pairs
        return total / self.total_seconds if self.total_seconds else 0.0


class BatchScheduler:
    """Runs workloads through a :class:`PimSystem` in MRAM-sized rounds."""

    def __init__(
        self,
        system: PimSystem,
        overlapped: bool = False,
        workers: Optional[int] = None,
    ) -> None:
        self.system = system
        self.overlapped = overlapped
        #: host worker processes per round (None = the system's config).
        self.workers = workers

    def max_pairs_per_round(self, mram_budget_fraction: float = 0.9) -> int:
        """Pairs per DPU batch that fit the MRAM input+output regions."""
        if not 0 < mram_budget_fraction <= 1:
            raise ConfigError("mram_budget_fraction must be in (0, 1]")
        probe = self.system.plan_layout(1)
        per_pair = probe.input_record_size + probe.result_record_size
        fixed = (
            HEADER_BYTES
            + self.system.config.tasklets * probe.metadata_bytes_per_tasklet
        )
        budget = int(self.system.config.dpu.mram_bytes * mram_budget_fraction) - fixed
        per_dpu_pairs = max(1, budget // per_pair)
        return per_dpu_pairs * self.system.config.num_dpus

    def plan(self, total_pairs: int, pairs_per_round: Optional[int] = None) -> BatchSchedule:
        """Split ``total_pairs`` into rounds (capacity-sized by default).

        ``total_pairs == 0`` is a valid degenerate workload: the schedule
        has zero rounds and ``round_sizes()`` is empty, so ``run([])``
        performs no device work and returns an empty
        :class:`ScheduledRun`.
        """
        if total_pairs < 0:
            raise ConfigError(f"total_pairs must be >= 0, got {total_pairs}")
        cap = self.max_pairs_per_round()
        if pairs_per_round is None:
            pairs_per_round = cap
        if pairs_per_round < 1:
            raise ConfigError("pairs_per_round must be >= 1")
        if pairs_per_round > cap:
            raise ConfigError(
                f"pairs_per_round {pairs_per_round} exceeds MRAM capacity {cap}"
            )
        return BatchSchedule(total_pairs=total_pairs, pairs_per_round=pairs_per_round)

    def run(
        self,
        pairs: list[ReadPair],
        pairs_per_round: Optional[int] = None,
        collect_results: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> ScheduledRun:
        """Align a concrete batch in rounds.

        With telemetry attached to the system, each round records a
        wall-time ``scheduler_round`` span and bumps
        ``pim_scheduler_rounds_total``; the rounds' model-time sections
        stack serially on the telemetry timeline (the serialized
        schedule — the overlapped aggregate stays available via
        :attr:`ScheduledRun.total_seconds`).

        With a ``fault_plan`` (or one configured on the system), each
        round runs fault-tolerantly and the per-round recovery reports
        are folded — pair indices rebased to the whole workload — into
        :attr:`ScheduledRun.recovery`.
        """
        schedule = self.plan(len(pairs), pairs_per_round)
        out = ScheduledRun(schedule=schedule, overlapped=self.overlapped)
        telemetry = self.system.telemetry
        if telemetry is not None:
            telemetry.registry.gauge(
                "pim_scheduler_pairs_per_round",
                "pairs per MRAM-sized distribution round",
            ).set(schedule.pairs_per_round)
        start = 0
        for index, size in enumerate(schedule.round_sizes()):
            chunk = pairs[start : start + size]
            if telemetry is not None:
                telemetry.registry.counter(
                    "pim_scheduler_rounds_total",
                    "distribute->launch->gather rounds executed",
                ).inc()
                with telemetry.profiler.span(
                    "scheduler_round", round=index, pairs=size
                ):
                    result = self.system.align(
                        chunk,
                        collect_results=collect_results,
                        workers=self.workers,
                        fault_plan=fault_plan,
                        retry_policy=retry_policy,
                    )
            else:
                result = self.system.align(
                    chunk,
                    collect_results=collect_results,
                    workers=self.workers,
                    fault_plan=fault_plan,
                    retry_policy=retry_policy,
                )
            out.per_round.append(result)
            if result.recovery is not None:
                result.recovery.shift_pairs(start)
                if out.recovery is None:
                    out.recovery = RecoveryReport()
                out.recovery.merge(result.recovery)
            start += size
        return out
