"""Host-side batch scheduler for workloads larger than one MRAM fill.

The paper's experiment fits 5M pairs into one distribution round (~430 KB
per DPU against 64 MB banks), but a production workload — or longer
reads — can exceed what the input+output regions of a bank can hold.
The scheduler splits such workloads into rounds sized to MRAM capacity
and runs distribute → launch → gather per round, modeling both the
serialized schedule the paper's host loop implies and an overlapped
(double-buffered) schedule where round ``i+1``'s transfer proceeds while
round ``i``'s kernel runs — the standard optimization the paper's
"Total vs Kernel" gap begs for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.data.generator import ReadPair
from repro.errors import ConfigError
from repro.pim.faults import FaultPlan, RecoveryReport, RetryPolicy
from repro.pim.layout import HEADER_BYTES
from repro.pim.system import PimRunResult, PimSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pim.health import FleetHealth
    from repro.pim.journal import RunJournal

__all__ = ["BatchSchedule", "ScheduledRun", "BatchScheduler"]


@dataclass(frozen=True)
class BatchSchedule:
    """How a workload splits into MRAM-sized rounds."""

    total_pairs: int
    pairs_per_round: int

    @property
    def rounds(self) -> int:
        return math.ceil(self.total_pairs / self.pairs_per_round)

    def round_sizes(self) -> list[int]:
        # An empty workload has zero rounds; the general expression below
        # would fabricate a phantom round of ``pairs_per_round`` pairs
        # (list of -1 copies is empty, then the append contributes
        # ``total - per * (0 - 1) = per``).
        if self.total_pairs == 0:
            return []
        sizes = [self.pairs_per_round] * (self.rounds - 1)
        sizes.append(self.total_pairs - self.pairs_per_round * (self.rounds - 1))
        return sizes


@dataclass
class ScheduledRun:
    """Aggregate timing of a multi-round run."""

    schedule: BatchSchedule
    per_round: list[PimRunResult] = field(default_factory=list)
    overlapped: bool = False
    #: aggregate graceful-degradation report across rounds, with pair
    #: indices rebased to the full workload (``None`` without faults).
    recovery: Optional[RecoveryReport] = None
    #: rounds replayed from a journal instead of executed (resume path)
    rounds_replayed: int = 0

    @property
    def kernel_seconds(self) -> float:
        return sum(r.kernel_seconds for r in self.per_round)

    @property
    def transfer_seconds(self) -> float:
        return sum(r.transfer_seconds for r in self.per_round)

    @property
    def recovery_seconds(self) -> float:
        """Modeled host recovery overhead across rounds (backoff waits +
        watchdog detection latency).  Serial host work either way — it
        cannot hide behind the overlapped pipeline."""
        return sum(r.recovery_overhead_seconds for r in self.per_round)

    @property
    def total_seconds(self) -> float:
        """Serialized: sum of round totals.  Overlapped: transfers of
        round i+1 hide behind the kernel of round i (classic double
        buffering), so each inner round costs max(kernel, transfer).
        Recovery overhead (retry backoff, watchdog expiry) is exposed
        host time in both schedules."""
        if not self.per_round:
            return 0.0
        if not self.overlapped:
            launches = sum(r.launch_seconds for r in self.per_round)
            return (
                self.kernel_seconds
                + self.transfer_seconds
                + launches
                + self.recovery_seconds
            )
        # pipeline: first in-transfer exposed, last out-transfer exposed,
        # middle stages bounded by the slower of kernel / transfer.
        # Launch overhead is host-side software work; while round i's
        # kernel occupies the DPUs the host is idle and preps round
        # i+1's launch, so inner launches pipeline behind the
        # max(kernel, transfer) stages — only the first round's launch
        # (nothing to hide behind yet) is exposed.
        first_in = self.per_round[0].transfer_in_seconds
        last_out = self.per_round[-1].transfer_out_seconds
        exposed_launch = self.per_round[0].launch_seconds
        middle = sum(
            max(r.kernel_seconds, r.transfer_seconds) for r in self.per_round
        )
        return first_in + exposed_launch + middle + last_out + self.recovery_seconds

    def throughput(self) -> float:
        total = self.schedule.total_pairs
        return total / self.total_seconds if self.total_seconds else 0.0


class BatchScheduler:
    """Runs workloads through a :class:`PimSystem` in MRAM-sized rounds."""

    def __init__(
        self,
        system: PimSystem,
        overlapped: bool = False,
        workers: Optional[int] = None,
    ) -> None:
        self.system = system
        self.overlapped = overlapped
        #: host worker processes per round (None = the system's config).
        self.workers = workers

    def max_pairs_per_round(self, mram_budget_fraction: float = 0.9) -> int:
        """Pairs per DPU batch that fit the MRAM input+output regions."""
        if not 0 < mram_budget_fraction <= 1:
            raise ConfigError("mram_budget_fraction must be in (0, 1]")
        probe = self.system.plan_layout(1)
        per_pair = probe.input_record_size + probe.result_record_size
        fixed = (
            HEADER_BYTES
            + self.system.config.tasklets * probe.metadata_bytes_per_tasklet
        )
        budget = int(self.system.config.dpu.mram_bytes * mram_budget_fraction) - fixed
        per_dpu_pairs = max(1, budget // per_pair)
        return per_dpu_pairs * self.system.config.num_dpus

    def plan(self, total_pairs: int, pairs_per_round: Optional[int] = None) -> BatchSchedule:
        """Split ``total_pairs`` into rounds (capacity-sized by default).

        ``total_pairs == 0`` is a valid degenerate workload: the schedule
        has zero rounds and ``round_sizes()`` is empty, so ``run([])``
        performs no device work and returns an empty
        :class:`ScheduledRun`.
        """
        if total_pairs < 0:
            raise ConfigError(f"total_pairs must be >= 0, got {total_pairs}")
        cap = self.max_pairs_per_round()
        if pairs_per_round is None:
            pairs_per_round = cap
        if pairs_per_round < 1:
            raise ConfigError("pairs_per_round must be >= 1")
        if pairs_per_round > cap:
            raise ConfigError(
                f"pairs_per_round {pairs_per_round} exceeds MRAM capacity {cap}"
            )
        return BatchSchedule(total_pairs=total_pairs, pairs_per_round=pairs_per_round)

    def _fingerprint(
        self,
        pairs: list[ReadPair],
        schedule: BatchSchedule,
        collect_results: bool,
        fault_plan: Optional[FaultPlan],
        retry_policy: Optional[RetryPolicy],
        health: Optional["FleetHealth"],
    ) -> dict:
        """Journal fingerprint of this run's outcome-determining inputs."""
        from repro.pim.journal import workload_fingerprint

        plan = fault_plan if fault_plan is not None else self.system.fault_plan
        policy: Optional[RetryPolicy] = None
        if plan is not None:
            policy = (
                retry_policy
                if retry_policy is not None
                else (
                    self.system.retry_policy
                    if self.system.retry_policy is not None
                    else RetryPolicy()
                )
            )
        return workload_fingerprint(
            pairs,
            schedule.pairs_per_round,
            self.system.config.num_dpus,
            self.system.config.tasklets,
            self.system.config.metadata_policy,
            collect_results,
            fault_plan=plan,
            retry_policy=policy,
            health_policy=health.policy if health is not None else None,
        )

    def run(
        self,
        pairs: list[ReadPair],
        pairs_per_round: Optional[int] = None,
        collect_results: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional["FleetHealth"] = None,
        journal: Optional[Union[str, Path, "RunJournal"]] = None,
        now: float = 0.0,
        replay: Optional[dict[int, PimRunResult]] = None,
    ) -> ScheduledRun:
        """Align a concrete batch in rounds.

        With telemetry attached to the system, each round records a
        wall-time ``scheduler_round`` span and bumps
        ``pim_scheduler_rounds_total``; the rounds' model-time sections
        stack serially on the telemetry timeline (the serialized
        schedule — the overlapped aggregate stays available via
        :attr:`ScheduledRun.total_seconds`).

        With a ``fault_plan`` (or one configured on the system), each
        round runs fault-tolerantly and the per-round recovery reports
        are folded — pair indices rebased to the whole workload — into
        :attr:`ScheduledRun.recovery`.

        With a ``health`` ledger (:class:`~repro.pim.health.FleetHealth`),
        each round is placed only on DPUs the ledger allows — breaker-open
        DPUs are quarantined out of the round instead of burning retries
        — and each round's outcomes (per-placement failures, successes)
        feed back into the ledger at the round's modeled start time.
        ``now`` is the modeled start of the whole run (a serve
        dispatcher passes its device-timeline clock so the shared
        ledger's time never moves backwards between batches).

        With a ``journal`` (a path starts a fresh
        ``repro.pim.journal/v1`` file; an open
        :class:`~repro.pim.journal.RunJournal` continues one), every
        completed round is appended atomically before the next begins.
        ``replay`` maps round indices to already-completed results
        (resume path — see :meth:`resume_run`): replayed rounds skip
        device work entirely but still feed the health ledger and the
        aggregate report, so a resumed run reconstructs the exact state
        an uninterrupted run would have reached.
        """
        schedule = self.plan(len(pairs), pairs_per_round)
        out = ScheduledRun(schedule=schedule, overlapped=self.overlapped)
        replay = replay if replay is not None else {}
        telemetry = self.system.telemetry
        if isinstance(journal, (str, Path)):
            from repro.pim.journal import RunJournal

            journal = RunJournal.create(
                journal,
                self._fingerprint(
                    pairs, schedule, collect_results, fault_plan, retry_policy, health
                ),
            )
        if telemetry is not None:
            telemetry.registry.gauge(
                "pim_scheduler_pairs_per_round",
                "pairs per MRAM-sized distribution round",
            ).set(schedule.pairs_per_round)
        start = 0
        clock = now
        for index, size in enumerate(schedule.round_sizes()):
            chunk = pairs[start : start + size]
            if index in replay:
                # checkpointed round: splice the journaled result in —
                # recovery is already rebased to global pair indices and
                # the journal-write is already durable.
                result = replay[index]
                out.rounds_replayed += 1
                if telemetry is not None:
                    telemetry.registry.counter(
                        "pim_journal_rounds_replayed_total",
                        "scheduler rounds restored from a journal on resume",
                    ).inc()
                    from repro.obs.events import JOURNAL_REPLAY

                    telemetry.events.publish(
                        JOURNAL_REPLAY, clock, round=index, pairs=size
                    )
            else:
                active: Optional[tuple[int, ...]] = None
                if health is not None:
                    active = health.plan_round(now=clock)
                    if len(active) == self.system.config.num_dpus:
                        active = None
                if telemetry is not None:
                    telemetry.registry.counter(
                        "pim_scheduler_rounds_total",
                        "distribute->launch->gather rounds executed",
                    ).inc()
                    with telemetry.profiler.span(
                        "scheduler_round", round=index, pairs=size
                    ):
                        result = self.system.align(
                            chunk,
                            collect_results=collect_results,
                            workers=self.workers,
                            fault_plan=fault_plan,
                            retry_policy=retry_policy,
                            active_dpus=active,
                        )
                else:
                    result = self.system.align(
                        chunk,
                        collect_results=collect_results,
                        workers=self.workers,
                        fault_plan=fault_plan,
                        retry_policy=retry_policy,
                        active_dpus=active,
                    )
                if result.recovery is not None:
                    result.recovery.shift_pairs(start)
                    if telemetry is not None:
                        from repro.obs.events import WATCHDOG

                        # records are kept sorted by logical pair id, so
                        # the published order is deterministic.
                        for rec in result.recovery.records:
                            for placement, kind in rec.attempts_log:
                                if kind == "TaskletStallError":
                                    telemetry.events.publish(
                                        WATCHDOG,
                                        clock,
                                        dpu=placement,
                                        round=index,
                                    )
                if journal is not None:
                    journal.append_round(index, start, size, result)
            if health is not None:
                if result.recovery is not None:
                    health.observe_report(result.recovery, now=clock)
                else:
                    participants = (
                        result.active_dpus
                        if result.active_dpus is not None
                        else range(self.system.config.num_dpus)
                    )
                    health.observe_success(participants, now=clock)
            out.per_round.append(result)
            if result.recovery is not None:
                if out.recovery is None:
                    out.recovery = RecoveryReport()
                out.recovery.merge(result.recovery)
            start += size
            clock += result.total_seconds + result.recovery_overhead_seconds
        return out

    def resume_run(
        self,
        journal_path: Union[str, Path, "RunJournal"],
        pairs: list[ReadPair],
        pairs_per_round: Optional[int] = None,
        collect_results: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional["FleetHealth"] = None,
        now: float = 0.0,
    ) -> ScheduledRun:
        """Resume a journaled run after a crash.

        Loads the journal, refuses a fingerprint mismatch (wrong
        workload, round size, fault plan, policy, or system shape —
        :class:`~repro.errors.JournalError`), replays every journaled
        round idempotently, executes only the remainder, and keeps
        journaling the fresh rounds.  The returned
        :class:`ScheduledRun` is byte-identical to an uninterrupted
        run's (same results, same recovery report, same totals);
        :attr:`ScheduledRun.rounds_replayed` says how much work the
        journal saved.
        """
        from repro.pim.journal import RunJournal, result_from_dict

        journal = (
            journal_path
            if isinstance(journal_path, RunJournal)
            else RunJournal.load(journal_path)
        )
        schedule = self.plan(len(pairs), pairs_per_round)
        journal.validate_fingerprint(
            self._fingerprint(
                pairs, schedule, collect_results, fault_plan, retry_policy, health
            )
        )
        num_rounds = schedule.rounds
        replay: dict[int, PimRunResult] = {}
        for index, record in journal.rounds().items():
            if not 0 <= index < num_rounds:
                from repro.errors import JournalError

                raise JournalError(
                    f"journal round {index} out of range for a "
                    f"{num_rounds}-round schedule"
                )
            replay[index] = result_from_dict(record["result"])
        return self.run(
            pairs,
            pairs_per_round=pairs_per_round,
            collect_results=collect_results,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            health=health,
            journal=journal,
            now=now,
            replay=replay,
        )
