"""Host-parallel execution of independent per-DPU simulations.

The simulator's cost center is the per-DPU functional kernel: every
simulated DPU runs push -> kernel -> pull over its private batch, and no
DPU ever touches another DPU's state.  That makes the per-DPU loop in
:class:`~repro.pim.system.PimSystem` embarrassingly parallel on the
*host* — exactly the fan-out the real UPMEM runtime performs across
ranks, and the structure the authors' follow-up framework paper builds
its host orchestration around.

This module packages one simulated DPU's work as a picklable
:class:`DpuJob`, executes jobs either in-process or over a
``concurrent.futures.ProcessPoolExecutor``, and returns picklable
:class:`DpuJobResult` records.  Determinism guarantee: a job's outcome
depends only on the job description (never on which worker ran it or
in what order), and callers merge records sorted by ``dpu_id`` — so a
parallel run is result-identical to a sequential run, including the
modeled timings and the :class:`~repro.pim.transfer.TransferStats`
accounting.

The sequential path is the fallback, engaged when

* ``workers`` resolves to one, or there is at most one job; or
* the process pool cannot be started or dies underneath us
  (``OSError`` on fork/spawn, ``BrokenProcessPool``) — e.g. in
  sandboxes that forbid subprocesses.

Genuine simulation errors (:class:`~repro.errors.ReproError` subclasses
raised inside a worker) propagate to the caller unchanged, as they
would sequentially.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.cigar import Cigar
from repro.data.generator import ReadPair, ReadPairGenerator
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.pim.config import DpuConfig, HostTransferConfig
from repro.pim.dpu import Dpu, DpuKernelStats
from repro.pim.kernel import KernelConfig, WfaDpuKernel
from repro.pim.layout import MramLayout
from repro.pim.trace import KernelTrace
from repro.pim.transfer import HostTransferEngine, TransferStats

__all__ = [
    "GeneratorSpec",
    "DpuJob",
    "DpuJobResult",
    "run_dpu_job",
    "execute_jobs",
    "resolve_workers",
]


@dataclass(frozen=True)
class GeneratorSpec:
    """Recipe for a worker to synthesize its own batch (``model_run``).

    Shipping the seed instead of the pairs keeps the job payload tiny
    and reproduces the exact per-DPU sample stream the sequential path
    draws: the seed is derived from the DPU id alone, never from the
    execution schedule.
    """

    length: int
    error_rate: float
    seed: int
    error_model: str
    count: int

    def pairs(self) -> list[ReadPair]:
        gen = ReadPairGenerator(
            length=self.length,
            error_rate=self.error_rate,
            seed=self.seed,
            error_model=self.error_model,
        )
        return gen.pairs(self.count)


@dataclass(frozen=True)
class DpuJob:
    """A self-contained description of one simulated DPU's work.

    Everything a worker process needs — configs, layout, and either a
    concrete batch or a generator recipe — travels in the job; the
    worker builds its own :class:`Dpu`, kernel, and transfer engine.
    """

    dpu_id: int
    layout: MramLayout
    dpu_config: DpuConfig
    transfer_config: HostTransferConfig
    kernel_config: KernelConfig
    metadata_policy: str
    tasklets: int
    #: concrete batch (``align`` path); mutually exclusive with ``generator``
    pairs: Optional[tuple[ReadPair, ...]] = None
    #: batch recipe (``model_run`` path)
    generator: Optional[GeneratorSpec] = None
    #: gather result records (full pull: score, CIGAR, region starts)
    pull: bool = True
    #: record per-pair kernel phase events and ship the trace home
    collect_trace: bool = False
    #: count per-DPU metrics into a worker registry and ship its snapshot
    collect_metrics: bool = False

    def batch(self) -> list[ReadPair]:
        if self.pairs is not None:
            return list(self.pairs)
        if self.generator is not None:
            return self.generator.pairs()
        raise ConfigError("DpuJob needs either pairs or a generator spec")


@dataclass
class DpuJobResult:
    """What one DPU simulation sends back to the host.

    ``results`` holds *local* record indices; the host converts them to
    global pair indices during the deterministic merge (see
    :attr:`~repro.pim.system.PimRunResult.results` for the contract).
    """

    dpu_id: int
    num_pairs: int
    stats: DpuKernelStats
    #: (local index, score, cigar, pattern_start, text_start)
    results: list[tuple[int, int, Optional[Cigar], int, int]] = field(
        default_factory=list
    )
    transfer_stats: TransferStats = field(default_factory=TransferStats)
    #: per-pair kernel phase events (``collect_trace`` jobs only);
    #: events carry this DPU's ``dpu_id``, so host-side merges keep
    #: attribution.
    trace: Optional[KernelTrace] = None
    #: picklable :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    #: (``collect_metrics`` jobs only); merges deterministically on the
    #: host regardless of completion order.
    metrics: Optional[dict] = None


def run_dpu_job(job: DpuJob) -> DpuJobResult:
    """Run one DPU's push -> kernel -> pull cycle; picklable in and out.

    With ``collect_metrics`` the worker counts its own activity into a
    private :class:`~repro.obs.metrics.MetricsRegistry` (transfer bytes
    via the engine's hooks, kernel work from the summarized stats) and
    ships the snapshot home; with ``collect_trace`` the kernel's phase
    events ride along.  Both are pure functions of the job description,
    preserving the parallel ≡ sequential guarantee.
    """
    batch = job.batch()
    registry = MetricsRegistry() if job.collect_metrics else None
    transfer = HostTransferEngine(job.transfer_config, registry=registry)
    kernel = WfaDpuKernel(job.kernel_config)
    dpu = Dpu(job.dpu_config, dpu_id=job.dpu_id)
    trace = KernelTrace() if job.collect_trace else None
    transfer.push_batch(dpu, job.layout, batch)
    assignments = [
        list(range(t, len(batch), job.tasklets)) for t in range(job.tasklets)
    ]
    tasklet_stats, _ = kernel.run(
        dpu, job.layout, assignments, job.metadata_policy, trace=trace
    )
    results: list[tuple[int, int, Optional[Cigar], int, int]] = []
    if job.pull:
        pulled, _ = transfer.pull_results_full(dpu, job.layout, len(batch))
        for local, (score, cigar, p_start, t_start) in enumerate(pulled):
            results.append((local, score, cigar, p_start, t_start))
    stats = dpu.summarize(tasklet_stats)
    if registry is not None:
        dpu_label = str(job.dpu_id)
        registry.counter(
            "pim_dpu_pairs_total", "pairs aligned per simulated DPU"
        ).inc(stats.pairs_done, dpu=dpu_label)
        registry.counter(
            "pim_dpu_instructions_total", "kernel instructions per simulated DPU"
        ).inc(stats.instructions, dpu=dpu_label)
        registry.counter(
            "pim_dpu_dma_bytes_total", "kernel MRAM<->WRAM DMA bytes per DPU"
        ).inc(stats.dma_bytes, dpu=dpu_label)
        registry.gauge(
            "pim_dpu_kernel_cycles", "modeled kernel cycles per simulated DPU"
        ).set(stats.cycles, dpu=dpu_label)
    return DpuJobResult(
        dpu_id=job.dpu_id,
        num_pairs=len(batch),
        stats=stats,
        results=results,
        transfer_stats=transfer.stats,
        trace=trace,
        metrics=registry.snapshot() if registry is not None else None,
    )


def resolve_workers(workers: int, num_jobs: int) -> int:
    """Effective worker count: ``0`` means all cores, capped at the jobs."""
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, num_jobs))


def execute_jobs(jobs: Iterable[DpuJob], workers: int = 1) -> list[DpuJobResult]:
    """Execute DPU jobs, in-process or over a process pool.

    Returns records sorted by ``dpu_id`` regardless of completion order,
    so callers can merge without re-deriving the schedule.
    """
    jobs = list(jobs)
    n = resolve_workers(workers, len(jobs))
    if n <= 1 or len(jobs) <= 1:
        records = [run_dpu_job(job) for job in jobs]
    else:
        try:
            with ProcessPoolExecutor(max_workers=n) as pool:
                records = list(pool.map(run_dpu_job, jobs))
        except (OSError, BrokenProcessPool):
            # Pool infrastructure failure (fork forbidden, worker killed):
            # fall back to the sequential path, which is result-identical.
            records = [run_dpu_job(job) for job in jobs]
    records.sort(key=lambda r: r.dpu_id)
    return records
