"""Host-parallel execution of independent per-DPU simulations.

The simulator's cost center is the per-DPU functional kernel: every
simulated DPU runs push -> kernel -> pull over its private batch, and no
DPU ever touches another DPU's state.  That makes the per-DPU loop in
:class:`~repro.pim.system.PimSystem` embarrassingly parallel on the
*host* — exactly the fan-out the real UPMEM runtime performs across
ranks, and the structure the authors' follow-up framework paper builds
its host orchestration around.

This module packages one simulated DPU's work as a picklable
:class:`DpuJob`, executes jobs either in-process or over a
``concurrent.futures.ProcessPoolExecutor``, and returns picklable
:class:`DpuJobResult` records.  Determinism guarantee: a job's outcome
depends only on the job description (never on which worker ran it or
in what order), and callers merge records sorted by ``dpu_id`` — so a
parallel run is result-identical to a sequential run, including the
modeled timings and the :class:`~repro.pim.transfer.TransferStats`
accounting.

The sequential path is the fallback, engaged when

* ``workers`` resolves to one, or there is at most one job; or
* the process pool cannot be started or dies underneath us
  (``OSError`` on fork/spawn, ``BrokenProcessPool``) — e.g. in
  sandboxes that forbid subprocesses.

Genuine simulation errors (:class:`~repro.errors.ReproError` subclasses
raised inside a worker) propagate to the caller unchanged, as they
would sequentially.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.core.cigar import Cigar
from repro.data.generator import ReadPair, ReadPairGenerator
from repro.errors import (
    ConfigError,
    CorruptResultError,
    FaultError,
    KernelError,
    LayoutError,
    TaskletStallError,
)
from repro.obs.metrics import MetricsRegistry
from repro.pim.faults import (
    FaultPlan,
    JobRecoveryRecord,
    RecoveryReport,
    RetryPolicy,
    spare_placements,
)
from repro.pim.config import DpuConfig, HostTransferConfig
from repro.pim.dpu import Dpu, DpuKernelStats
from repro.pim.kernel import KernelConfig, WfaDpuKernel
from repro.pim.layout import MramLayout
from repro.pim.trace import KernelTrace
from repro.pim.transfer import HostTransferEngine, TransferStats

__all__ = [
    "GeneratorSpec",
    "DpuJob",
    "DpuJobResult",
    "ResilientOutcome",
    "run_dpu_job",
    "run_dpu_job_resilient",
    "execute_jobs",
    "execute_jobs_resilient",
    "resolve_workers",
]


@dataclass(frozen=True)
class GeneratorSpec:
    """Recipe for a worker to synthesize its own batch (``model_run``).

    Shipping the seed instead of the pairs keeps the job payload tiny
    and reproduces the exact per-DPU sample stream the sequential path
    draws: the seed is derived from the DPU id alone, never from the
    execution schedule.
    """

    length: int
    error_rate: float
    seed: int
    error_model: str
    count: int

    def pairs(self) -> list[ReadPair]:
        gen = ReadPairGenerator(
            length=self.length,
            error_rate=self.error_rate,
            seed=self.seed,
            error_model=self.error_model,
        )
        return gen.pairs(self.count)


@dataclass(frozen=True)
class DpuJob:
    """A self-contained description of one simulated DPU's work.

    Everything a worker process needs — configs, layout, and either a
    concrete batch or a generator recipe — travels in the job; the
    worker builds its own :class:`Dpu`, kernel, and transfer engine.
    """

    dpu_id: int
    layout: MramLayout
    dpu_config: DpuConfig
    transfer_config: HostTransferConfig
    kernel_config: KernelConfig
    metadata_policy: str
    tasklets: int
    #: concrete batch (``align`` path); mutually exclusive with ``generator``
    pairs: Optional[tuple[ReadPair, ...]] = None
    #: batch recipe (``model_run`` path)
    generator: Optional[GeneratorSpec] = None
    #: gather result records (full pull: score, CIGAR, region starts)
    pull: bool = True
    #: record per-pair kernel phase events and ship the trace home
    collect_trace: bool = False
    #: count per-DPU metrics into a worker registry and ship its snapshot
    collect_metrics: bool = False
    #: declarative fault plan this job executes under (None = fault-free)
    fault_plan: Optional[FaultPlan] = None
    #: recovery attempt counter (0 = first try); selects which
    #: attempt-scoped faults of the plan fire
    attempt: int = 0
    #: physical DPU the job is placed on; fault plans key on this, while
    #: ``dpu_id`` stays the *logical* identity (index mapping, traces).
    #: ``None`` means the logical and physical ids coincide.
    physical_dpu_id: Optional[int] = None
    #: spare healthy placements recovery may requeue this job onto
    requeue_placements: tuple[int, ...] = ()
    #: verify gathered records against the input batch (CIGAR validity +
    #: score reconstruction); any mismatch raises
    #: :class:`~repro.errors.CorruptResultError` instead of returning a
    #: silently wrong alignment.  Enabled automatically under fault plans.
    verify: bool = False

    @property
    def placement(self) -> int:
        """The physical DPU this job runs on."""
        return self.dpu_id if self.physical_dpu_id is None else self.physical_dpu_id

    def batch(self) -> list[ReadPair]:
        if self.pairs is not None:
            return list(self.pairs)
        if self.generator is not None:
            return self.generator.pairs()
        raise ConfigError("DpuJob needs either pairs or a generator spec")


@dataclass
class DpuJobResult:
    """What one DPU simulation sends back to the host.

    ``results`` holds *local* record indices; the host converts them to
    global pair indices during the deterministic merge (see
    :attr:`~repro.pim.system.PimRunResult.results` for the contract).
    """

    dpu_id: int
    num_pairs: int
    stats: DpuKernelStats
    #: (local index, score, cigar, pattern_start, text_start)
    results: list[tuple[int, int, Optional[Cigar], int, int]] = field(
        default_factory=list
    )
    transfer_stats: TransferStats = field(default_factory=TransferStats)
    #: per-pair kernel phase events (``collect_trace`` jobs only);
    #: events carry this DPU's ``dpu_id``, so host-side merges keep
    #: attribution.
    trace: Optional[KernelTrace] = None
    #: picklable :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    #: (``collect_metrics`` jobs only); merges deterministically on the
    #: host regardless of completion order.
    metrics: Optional[dict] = None


def run_dpu_job(job: DpuJob) -> DpuJobResult:
    """Run one DPU's push -> kernel -> pull cycle; picklable in and out.

    With ``collect_metrics`` the worker counts its own activity into a
    private :class:`~repro.obs.metrics.MetricsRegistry` (transfer bytes
    via the engine's hooks, kernel work from the summarized stats) and
    ships the snapshot home; with ``collect_trace`` the kernel's phase
    events ride along.  Both are pure functions of the job description,
    preserving the parallel ≡ sequential guarantee.
    """
    batch = job.batch()
    registry = MetricsRegistry() if job.collect_metrics else None
    transfer = HostTransferEngine(job.transfer_config, registry=registry)
    kernel = WfaDpuKernel(job.kernel_config)
    dpu = Dpu(job.dpu_config, dpu_id=job.dpu_id)
    trace = KernelTrace() if job.collect_trace else None
    injector = None
    if job.fault_plan is not None and job.fault_plan.targets(job.placement):
        injector = job.fault_plan.injector(job.placement, job.attempt)
        injector.check_launch()
        injector.attach_dma(dpu)
        transfer.injector = injector
    transfer.push_batch(dpu, job.layout, batch)
    assignments = [
        list(range(t, len(batch), job.tasklets)) for t in range(job.tasklets)
    ]
    try:
        tasklet_stats, _ = kernel.run(
            dpu, job.layout, assignments, job.metadata_policy, trace=trace
        )
    except (KernelError, LayoutError) as exc:
        if injector is None:
            raise
        # Under an active fault plan targeting this placement, a kernel
        # that chokes on its MRAM inputs means injected corruption landed
        # in the input region: surface it typed (hence retryable), never
        # as a plausible-but-wrong alignment.
        raise CorruptResultError(
            f"kernel rejected its MRAM inputs: {exc}", dpu_id=job.placement
        ) from exc
    results: list[tuple[int, int, Optional[Cigar], int, int]] = []
    if job.pull or job.verify:
        pulled, _ = transfer.pull_results_full(dpu, job.layout, len(batch))
        if job.verify:
            _verify_pulled(job, batch, pulled)
        for local, (score, cigar, p_start, t_start) in enumerate(pulled):
            results.append((local, score, cigar, p_start, t_start))
        if not job.pull:
            results = []
    stats = dpu.summarize(tasklet_stats)
    if registry is not None:
        dpu_label = str(job.dpu_id)
        registry.counter(
            "pim_dpu_pairs_total", "pairs aligned per simulated DPU"
        ).inc(stats.pairs_done, dpu=dpu_label)
        registry.counter(
            "pim_dpu_instructions_total", "kernel instructions per simulated DPU"
        ).inc(stats.instructions, dpu=dpu_label)
        registry.counter(
            "pim_dpu_dma_bytes_total", "kernel MRAM<->WRAM DMA bytes per DPU"
        ).inc(stats.dma_bytes, dpu=dpu_label)
        registry.gauge(
            "pim_dpu_kernel_cycles", "modeled kernel cycles per simulated DPU"
        ).set(stats.cycles, dpu=dpu_label)
    return DpuJobResult(
        dpu_id=job.dpu_id,
        num_pairs=len(batch),
        stats=stats,
        results=results,
        transfer_stats=transfer.stats,
        trace=trace,
        metrics=registry.snapshot() if registry is not None else None,
    )


def _verify_pulled(
    job: DpuJob,
    batch: list[ReadPair],
    pulled: list[tuple[int, Optional[Cigar], int, int]],
) -> None:
    """End-to-end integrity check of gathered records against the batch.

    Catches what parsing alone cannot: corruption (of inputs *or*
    outputs) that yields a structurally valid record whose CIGAR no
    longer reproduces the original pair, or whose score no longer
    matches its CIGAR.  The guarantee fault-injection tests pin: a fault
    is surfaced as a typed error, never as a silently wrong alignment.
    """
    penalties = job.kernel_config.penalties
    for local, (score, cigar, p_start, t_start) in enumerate(pulled):
        if cigar is None:
            continue
        pair = batch[local]
        try:
            cigar.validate(
                pair.pattern[p_start : p_start + cigar.pattern_length()],
                pair.text[t_start : t_start + cigar.text_length()],
            )
        except Exception as exc:
            raise CorruptResultError(
                f"record {local}: CIGAR does not reproduce its pair: {exc}",
                dpu_id=job.placement,
            ) from exc
        rescored = cigar.score(penalties)
        if rescored != score:
            raise CorruptResultError(
                f"record {local}: score {score} != CIGAR rescoring {rescored}",
                dpu_id=job.placement,
            )


def run_dpu_job_resilient(
    job: DpuJob, policy: RetryPolicy
) -> "ResilientOutcome":
    """Run one job under a recovery policy; picklable in and out.

    Attempts the job up to ``policy.max_attempts`` times on its primary
    placement, then on each of up to ``policy.max_requeues`` spare
    placements (``job.requeue_placements``).  The attempt counter is
    monotone across placements, so attempt-scoped faults fire exactly
    once per *job*, not once per placement.  Only
    :class:`~repro.errors.FaultError` subclasses are retried —
    programming errors propagate unchanged.

    Modeled-time accounting: backoff is charged only when another
    attempt actually follows the failure — the terminal failure before
    abandonment waits for nothing, so charging it would double-count
    recovery cost across scheduler rounds.  A
    :class:`~repro.errors.TaskletStallError` additionally charges
    ``policy.launch_watchdog_s`` per trip: a stall is *detected* by the
    watchdog deadline expiring, so its detection latency is paid on
    every stall, including a terminal one.
    """
    record = JobRecoveryRecord(dpu_id=job.dpu_id, num_pairs=len(job.batch()))
    placements = [job.placement]
    placements += [
        p for p in job.requeue_placements[: policy.max_requeues]
        if p != job.placement
    ]
    total_budget = len(placements) * policy.max_attempts
    attempt = 0
    errors: list[str] = []
    attempts_log: list[tuple[int, str]] = []
    backoff = 0.0
    watchdog = 0.0
    retry_index = 0
    tried: list[int] = []
    for placement in placements:
        tried.append(placement)
        for _ in range(policy.max_attempts):
            try:
                result = run_dpu_job(
                    replace(job, physical_dpu_id=placement, attempt=attempt)
                )
            except FaultError as exc:
                errors.append(type(exc).__name__)
                attempts_log.append((placement, type(exc).__name__))
                if isinstance(exc, TaskletStallError):
                    watchdog += policy.launch_watchdog_s
                attempt += 1
                if attempt < total_budget:
                    backoff += policy.backoff_seconds(retry_index)
                retry_index += 1
                continue
            record.attempts = attempt + 1
            record.placements = tuple(tried)
            record.final_placement = placement
            record.errors = tuple(errors)
            record.attempts_log = tuple(attempts_log)
            record.backoff_seconds = backoff
            record.watchdog_seconds = watchdog
            return ResilientOutcome(result=result, record=record)
    record.attempts = attempt
    record.placements = tuple(tried)
    record.errors = tuple(errors)
    record.attempts_log = tuple(attempts_log)
    record.backoff_seconds = backoff
    record.watchdog_seconds = watchdog
    record.abandoned = True
    return ResilientOutcome(result=None, record=record)


@dataclass
class ResilientOutcome:
    """Result of one job's recovery loop (``result`` is ``None`` when
    the job was abandoned after exhausting the policy)."""

    record: JobRecoveryRecord
    result: Optional[DpuJobResult] = None


def resolve_workers(workers: int, num_jobs: int) -> int:
    """Effective worker count: ``0`` means all cores, capped at the jobs."""
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, num_jobs))


def execute_jobs(jobs: Iterable[DpuJob], workers: int = 1) -> list[DpuJobResult]:
    """Execute DPU jobs, in-process or over a process pool.

    Returns records sorted by ``dpu_id`` regardless of completion order,
    so callers can merge without re-deriving the schedule.
    """
    jobs = list(jobs)
    n = resolve_workers(workers, len(jobs))
    if n <= 1 or len(jobs) <= 1:
        records = [run_dpu_job(job) for job in jobs]
    else:
        try:
            with ProcessPoolExecutor(max_workers=n) as pool:
                records = list(pool.map(run_dpu_job, jobs))
        except (OSError, BrokenProcessPool):
            # Pool infrastructure failure (fork forbidden, worker killed):
            # fall back to the sequential path, which is result-identical.
            records = [run_dpu_job(job) for job in jobs]
    records.sort(key=lambda r: r.dpu_id)
    return records


def execute_jobs_resilient(
    jobs: Iterable[DpuJob],
    workers: int = 1,
    policy: Optional[RetryPolicy] = None,
) -> tuple[list[DpuJobResult], RecoveryReport]:
    """Fault-tolerant :func:`execute_jobs`: recover per job, report.

    Each job carries its own :class:`~repro.pim.faults.FaultPlan` slice
    and spare placements; recovery runs *inside* the worker, so the
    parallel and sequential paths make identical recovery decisions.
    Returns successful records sorted by ``dpu_id`` plus a
    :class:`~repro.pim.faults.RecoveryReport` whose per-job records are
    in the same order (pair-index attribution is the caller's job — see
    :func:`repro.pim.faults.assign_pairs`).
    """
    jobs = list(jobs)
    if policy is None:
        policy = RetryPolicy()
    n = resolve_workers(workers, len(jobs))
    if n <= 1 or len(jobs) <= 1:
        outcomes = [run_dpu_job_resilient(job, policy) for job in jobs]
    else:
        try:
            with ProcessPoolExecutor(max_workers=n) as pool:
                outcomes = list(
                    pool.map(run_dpu_job_resilient, jobs, [policy] * len(jobs))
                )
        except (OSError, BrokenProcessPool):
            outcomes = [run_dpu_job_resilient(job, policy) for job in jobs]
    outcomes.sort(key=lambda o: o.record.dpu_id)
    report = RecoveryReport(records=[o.record for o in outcomes])
    records = [o.result for o in outcomes if o.result is not None]
    return records, report
