"""Deterministic fault injection and host-side recovery policy.

Real UPMEM deployments lose DPUs mid-run, see host transfers cut short,
and occasionally read back rotted MRAM; the paper's 2560-DPU throughput
claims implicitly assume a host loop that tolerates all of it.  This
module makes those failure modes *expressible* in the simulator — as a
seeded, declarative :class:`FaultPlan` — and gives the host the recovery
vocabulary production code needs: a :class:`RetryPolicy` (bounded
retries with exponential backoff, requeue of a failed DPU's batch onto a
healthy DPU) and a :class:`RecoveryReport` describing how gracefully a
run degraded (which pairs completed, which were re-run, which were
abandoned).

Design rules:

* **Declarative and seeded.**  A plan is plain frozen data; every fault
  site derives its RNG from ``(plan.seed, dpu, attempt)``, so the same
  plan corrupts the same bits on every run — fault tests are exactly as
  reproducible as golden tests.
* **Attempt-scoped.**  Each fault lists the recovery ``attempts`` (a
  monotone per-job counter starting at 0) on which it fires; ``None``
  means *every* attempt (a persistent fault — e.g. a dead DPU that stays
  dead, which only requeueing onto different hardware survives).
  The default ``(0,)`` models a transient fault a retry fixes.
* **Typed, never silent.**  Every injected fault surfaces as a
  :class:`~repro.errors.FaultError` subclass.  Corruption that parsing
  alone cannot catch is caught by result verification (see
  ``DpuJob.verify`` in :mod:`repro.pim.parallel`): a gathered CIGAR
  must validate against its input pair and rescore to its reported
  score, or the pull raises :class:`~repro.errors.CorruptResultError`.

The injection sites live in :mod:`repro.pim.dma` (per-transfer hook),
:mod:`repro.pim.memory` (:meth:`~repro.pim.memory.SimMemory.flip_bits`),
:mod:`repro.pim.transfer` (push/pull truncation + corruption windows)
and :mod:`repro.pim.system` / :mod:`repro.pim.parallel` (launch checks,
recovery orchestration).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ConfigError, DpuFailure, TaskletStallError, TransferError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.pim.dpu import Dpu
    from repro.pim.layout import MramLayout

__all__ = [
    "DpuDeath",
    "MramCorruption",
    "TransferTruncation",
    "TaskletStall",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "JobRecoveryRecord",
    "RecoveryReport",
]

_REGIONS = ("header", "input", "output")
_DIRECTIONS = ("push", "pull")


def _fires(attempts: Optional[tuple[int, ...]], attempt: int) -> bool:
    return attempts is None or attempt in attempts


@dataclass(frozen=True)
class DpuDeath:
    """A DPU that fails at launch (boot/allocation/ECC death).

    ``attempts=None`` (the default) keeps the DPU dead on every attempt:
    retrying in place never helps and only a requeue onto a different
    physical DPU completes the batch.
    """

    dpu_id: int
    attempts: Optional[tuple[int, ...]] = None


@dataclass(frozen=True)
class MramCorruption:
    """Seeded bit rot in one region of a DPU's MRAM bank.

    ``region`` is one of ``"header"`` (the layout header at address 0),
    ``"input"`` (the packed pair records) or ``"output"`` (the result
    records).  Header/input corruption is applied after the push
    completes; output corruption right before the pull — the points
    where real bit rot would bite.  ``record`` narrows the blast radius
    to one input/output record (``None`` sprays the whole region).
    """

    dpu_id: int
    region: str = "output"
    num_bits: int = 1
    record: Optional[int] = None
    attempts: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.region not in _REGIONS:
            raise ConfigError(
                f"corruption region must be one of {_REGIONS}, got {self.region!r}"
            )
        if self.num_bits < 1:
            raise ConfigError(f"num_bits must be >= 1, got {self.num_bits}")


@dataclass(frozen=True)
class TransferTruncation:
    """A host<->DPU copy that dies after ``keep_bytes`` bytes.

    Models both a truncated DMA burst and a transfer timeout: the engine
    moves at most ``keep_bytes`` whole records, then raises
    :class:`~repro.errors.TransferError`.
    """

    dpu_id: int
    direction: str = "push"
    keep_bytes: int = 0
    attempts: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ConfigError(
                f"truncation direction must be one of {_DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        if self.keep_bytes < 0:
            raise ConfigError(f"keep_bytes must be >= 0, got {self.keep_bytes}")


@dataclass(frozen=True)
class TaskletStall:
    """A tasklet that hangs after a budget of DMA transfers.

    The single per-DPU DMA engine counts transfers; once the budget is
    exhausted the modeled watchdog trips with
    :class:`~repro.errors.TaskletStallError` — the whole-DPU failure a
    stuck tasklet causes on real hardware (the launch never returns).
    """

    dpu_id: int
    dma_budget: int = 0
    attempts: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.dma_budget < 0:
            raise ConfigError(f"dma_budget must be >= 0, got {self.dma_budget}")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of every fault a run will see."""

    seed: int = 0
    deaths: tuple[DpuDeath, ...] = ()
    corruptions: tuple[MramCorruption, ...] = ()
    truncations: tuple[TransferTruncation, ...] = ()
    stalls: tuple[TaskletStall, ...] = ()

    def targets(self, dpu_id: int) -> bool:
        """Whether any fault in the plan names ``dpu_id``."""
        return any(
            f.dpu_id == dpu_id
            for f in (*self.deaths, *self.corruptions, *self.truncations, *self.stalls)
        )

    def always_dead(self, dpu_id: int) -> bool:
        """Whether ``dpu_id`` is dead on *every* attempt (unplaceable)."""
        return any(d.dpu_id == dpu_id and d.attempts is None for d in self.deaths)

    def injector(self, dpu_id: int, attempt: int = 0) -> "FaultInjector":
        """The injector enforcing this plan on one (DPU, attempt)."""
        return FaultInjector(self, dpu_id, attempt)

    def to_dict(self) -> dict:
        """JSON-ready plan description (tuples become lists)."""
        return {
            "seed": self.seed,
            "deaths": [asdict(f) for f in self.deaths],
            "corruptions": [asdict(f) for f in self.corruptions],
            "truncations": [asdict(f) for f in self.truncations],
            "stalls": [asdict(f) for f in self.stalls],
        }

    def faulty_dpus(self) -> tuple[int, ...]:
        """Sorted ids of every DPU any fault names."""
        return tuple(
            sorted(
                {
                    f.dpu_id
                    for f in (
                        *self.deaths,
                        *self.corruptions,
                        *self.truncations,
                        *self.stalls,
                    )
                }
            )
        )


class FaultInjector:
    """Applies one DPU's share of a :class:`FaultPlan` on one attempt.

    Instantiated per (physical DPU, attempt) by the execution layer and
    wired into the transfer engine (push/pull windows) and the DMA
    engine (stall watchdog).  All randomness is derived from
    ``(plan.seed, dpu_id, attempt)``, never from global state.
    """

    def __init__(self, plan: FaultPlan, dpu_id: int, attempt: int = 0) -> None:
        self.plan = plan
        self.dpu_id = dpu_id
        self.attempt = attempt
        self._dma_transfers = 0
        self._stall = next(
            (
                s
                for s in plan.stalls
                if s.dpu_id == dpu_id and _fires(s.attempts, attempt)
            ),
            None,
        )

    _SITE_CODES = {"corrupt": 1, "truncate": 2, "stall": 3}

    def _rng(self, site: str, salt: int = 0) -> random.Random:
        # Arithmetic seed derivation: Python's hash() of strings/tuples is
        # salted per process, which would desynchronize worker processes
        # from the sequential path.
        code = self._SITE_CODES.get(site, 0)
        seed = (
            self.plan.seed * 1_000_003
            + self.dpu_id * 9_176
            + self.attempt * 131
            + code * 31
            + salt
        )
        return random.Random(seed)

    # -- launch ----------------------------------------------------------

    def check_launch(self) -> None:
        """Raise :class:`~repro.errors.DpuFailure` for a dead DPU."""
        for death in self.plan.deaths:
            if death.dpu_id == self.dpu_id and _fires(death.attempts, self.attempt):
                raise DpuFailure(
                    f"simulated DPU death (attempt {self.attempt})",
                    dpu_id=self.dpu_id,
                )

    # -- host transfers --------------------------------------------------

    def _limit(self, direction: str) -> Optional[int]:
        for t in self.plan.truncations:
            if (
                t.dpu_id == self.dpu_id
                and t.direction == direction
                and _fires(t.attempts, self.attempt)
            ):
                return t.keep_bytes
        return None

    def push_limit(self) -> Optional[int]:
        """Byte budget for a CPU->MRAM push (``None`` = unlimited)."""
        return self._limit("push")

    def pull_limit(self) -> Optional[int]:
        """Byte budget for an MRAM->CPU pull (``None`` = unlimited)."""
        return self._limit("pull")

    def truncated(self, direction: str, moved: int, total: int) -> TransferError:
        """The typed error a truncated transfer surfaces as."""
        return TransferError(
            f"{direction} truncated after {moved} of {total} bytes "
            f"(attempt {self.attempt})",
            dpu_id=self.dpu_id,
        )

    def _corrupt(self, dpu: "Dpu", layout: "MramLayout", regions: tuple[str, ...]) -> None:
        from repro.pim.layout import HEADER_BYTES

        for i, c in enumerate(self.plan.corruptions):
            if (
                c.dpu_id != self.dpu_id
                or c.region not in regions
                or not _fires(c.attempts, self.attempt)
            ):
                continue
            if c.region == "header":
                addr, size = 0, HEADER_BYTES
            elif c.region == "input":
                if c.record is not None:
                    addr = layout.input_addr(c.record)
                    size = layout.input_record_size
                else:
                    addr = layout.input_base
                    size = layout.num_pairs * layout.input_record_size
            else:  # output
                if c.record is not None:
                    addr = layout.result_addr(c.record)
                    size = layout.result_record_size
                else:
                    addr = layout.output_base
                    size = layout.num_pairs * layout.result_record_size
            dpu.mram.flip_bits(addr, size, c.num_bits, self._rng("corrupt", i))

    def after_push(self, dpu: "Dpu", layout: "MramLayout") -> None:
        """Apply header/input bit rot once the push has landed."""
        self._corrupt(dpu, layout, ("header", "input"))

    def before_pull(self, dpu: "Dpu", layout: "MramLayout") -> None:
        """Apply output bit rot right before results are gathered."""
        self._corrupt(dpu, layout, ("output",))

    # -- kernel DMA ------------------------------------------------------

    def attach_dma(self, dpu: "Dpu") -> None:
        """Install the stall watchdog on the DPU's DMA engine (if any)."""
        if self._stall is not None:
            dpu.dma.fault_hook = self.on_dma

    def on_dma(self, size: int) -> None:
        """Per-transfer watchdog tick; trips past the stall budget."""
        if self._stall is None:
            return
        self._dma_transfers += 1
        if self._dma_transfers > self._stall.dma_budget:
            raise TaskletStallError(
                f"tasklet stalled: DMA transfer {self._dma_transfers} exceeds "
                f"budget {self._stall.dma_budget} (attempt {self.attempt})",
                dpu_id=self.dpu_id,
            )


# -- host-side recovery policy ------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry + requeue policy for failed DPU jobs.

    ``max_attempts`` bounds tries *per placement*; after exhausting
    them, the job is requeued onto up to ``max_requeues`` spare healthy
    DPUs (placements the execution layer provides).  Backoff before the
    ``n``-th retry is ``backoff_base_s * backoff_factor**(n-1)`` —
    *modeled* seconds, accounted in the degradation report and the
    metrics, never slept: recovery stays deterministic and test-fast.
    """

    max_attempts: int = 3
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    max_requeues: int = 2
    #: modeled watchdog deadline on a launch: how long the host waits
    #: before declaring a launch stalled.  Charged (never slept) per
    #: :class:`~repro.errors.TaskletStallError` the recovery loop sees —
    #: a stall is detected by deadline expiry, so it costs detection
    #: latency on top of any backoff, unlike a fast-failing dead DPU.
    launch_watchdog_s: float = 5e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.max_requeues < 0:
            raise ConfigError(f"max_requeues must be >= 0, got {self.max_requeues}")
        if self.launch_watchdog_s < 0:
            raise ConfigError("launch_watchdog_s must be >= 0")

    def backoff_seconds(self, retry_index: int) -> float:
        """Modeled backoff before retry ``retry_index`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor**retry_index


@dataclass
class JobRecoveryRecord:
    """What recovery did for one logical DPU's job (picklable)."""

    dpu_id: int
    num_pairs: int
    attempts: int = 1
    #: physical DPU ids tried, in order (first = the original placement)
    placements: tuple[int, ...] = ()
    #: placement that finally succeeded (``None`` when abandoned)
    final_placement: Optional[int] = None
    #: error type name per failed attempt, e.g. ``("DpuFailure", ...)``
    errors: tuple[str, ...] = ()
    #: ``(physical placement, error type)`` per failed attempt, in order —
    #: the per-*placement* attribution the fleet-health ledger consumes
    #: (``errors`` alone cannot say which physical DPU misbehaved once a
    #: job has been requeued across placements)
    attempts_log: tuple[tuple[int, str], ...] = ()
    backoff_seconds: float = 0.0
    #: modeled watchdog-detection latency: ``launch_watchdog_s`` charged
    #: per stall the recovery loop had to wait out (deadline expiry)
    watchdog_seconds: float = 0.0
    abandoned: bool = False

    @property
    def clean(self) -> bool:
        """True when the first attempt on the first placement succeeded."""
        return not self.errors and not self.abandoned

    @property
    def requeued(self) -> bool:
        return self.final_placement is not None and len(self.placements) > 1

    def to_dict(self) -> dict:
        return {
            "dpu_id": self.dpu_id,
            "num_pairs": self.num_pairs,
            "attempts": self.attempts,
            "placements": list(self.placements),
            "final_placement": self.final_placement,
            "errors": list(self.errors),
            "attempts_log": [list(entry) for entry in self.attempts_log],
            "backoff_seconds": self.backoff_seconds,
            "watchdog_seconds": self.watchdog_seconds,
            "abandoned": self.abandoned,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecoveryRecord":
        """Rebuild a record from :meth:`to_dict` output (journal replay)."""
        return cls(
            dpu_id=int(data["dpu_id"]),
            num_pairs=int(data["num_pairs"]),
            attempts=int(data.get("attempts", 1)),
            placements=tuple(int(p) for p in data.get("placements", ())),
            final_placement=(
                None
                if data.get("final_placement") is None
                else int(data["final_placement"])
            ),
            errors=tuple(str(e) for e in data.get("errors", ())),
            attempts_log=tuple(
                (int(p), str(kind)) for p, kind in data.get("attempts_log", ())
            ),
            backoff_seconds=float(data.get("backoff_seconds", 0.0)),
            watchdog_seconds=float(data.get("watchdog_seconds", 0.0)),
            abandoned=bool(data.get("abandoned", False)),
        )


@dataclass
class RecoveryReport:
    """Graceful-degradation report of one fault-tolerant run.

    Aggregates the per-job :class:`JobRecoveryRecord` list and — once
    the caller maps jobs to global pair indices — says exactly which
    pairs completed first try, which needed re-running, and which were
    abandoned after the policy gave up.
    """

    records: list[JobRecoveryRecord] = field(default_factory=list)
    completed_pairs: list[int] = field(default_factory=list)
    rerun_pairs: list[int] = field(default_factory=list)
    abandoned_pairs: list[int] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return not self.abandoned_pairs

    @property
    def faults_seen(self) -> int:
        return sum(len(r.errors) for r in self.records)

    @property
    def backoff_seconds(self) -> float:
        return sum(r.backoff_seconds for r in self.records)

    @property
    def watchdog_seconds(self) -> float:
        return sum(r.watchdog_seconds for r in self.records)

    @property
    def overhead_seconds(self) -> float:
        """Total modeled recovery overhead: backoff waits + watchdog
        detection latency.  Timing models fold this into a run's
        ``total_seconds`` so degraded runs honestly cost more."""
        return self.backoff_seconds + self.watchdog_seconds

    def merge(self, other: "RecoveryReport") -> None:
        """Fold another round's report in (multi-round schedulers)."""
        self.records.extend(other.records)
        self.completed_pairs.extend(other.completed_pairs)
        self.rerun_pairs.extend(other.rerun_pairs)
        self.abandoned_pairs.extend(other.abandoned_pairs)

    def shift_pairs(self, offset: int) -> None:
        """Rebase round-local pair indices to workload-global ones.

        A multi-round scheduler aligns ``pairs[start:start+size]`` per
        round, so each round's report indexes from 0; shifting by the
        round's ``start`` before :meth:`merge` makes the aggregate
        report speak in the caller's global pair indices.
        """
        self.completed_pairs = [p + offset for p in self.completed_pairs]
        self.rerun_pairs = [p + offset for p in self.rerun_pairs]
        self.abandoned_pairs = [p + offset for p in self.abandoned_pairs]

    def to_dict(self) -> dict:
        return {
            "schema": "repro.pim.recovery/v1",
            "all_ok": self.all_ok,
            "faults_seen": self.faults_seen,
            "backoff_seconds": self.backoff_seconds,
            "watchdog_seconds": self.watchdog_seconds,
            "completed_pairs": sorted(self.completed_pairs),
            "rerun_pairs": sorted(self.rerun_pairs),
            "abandoned_pairs": sorted(self.abandoned_pairs),
            "jobs": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecoveryReport":
        """Rebuild a report from :meth:`to_dict` output (journal replay).

        ``to_dict`` sorts its pair lists, so a report that round-trips
        through the journal carries sorted pair indices; aggregate
        figures (faults_seen, backoff) are recomputed properties and
        therefore cannot drift from the per-job records.
        """
        return cls(
            records=[JobRecoveryRecord.from_dict(j) for j in data.get("jobs", ())],
            completed_pairs=[int(p) for p in data.get("completed_pairs", ())],
            rerun_pairs=[int(p) for p in data.get("rerun_pairs", ())],
            abandoned_pairs=[int(p) for p in data.get("abandoned_pairs", ())],
        )

    def summary(self) -> str:
        parts = [
            f"{len(self.completed_pairs)} pairs completed",
            f"{len(self.rerun_pairs)} re-run",
            f"{len(self.abandoned_pairs)} abandoned",
            f"{self.faults_seen} fault(s) seen",
        ]
        return ", ".join(parts)

    def count_into(self, registry: "MetricsRegistry") -> None:
        """Fold the report into the PR-2 metrics registry."""
        faults = registry.counter(
            "pim_fault_errors_total", "injected faults surfaced, by error type"
        )
        retries = registry.counter(
            "pim_job_retries_total", "failed job attempts that were retried"
        )
        attempts = registry.histogram(
            "pim_job_attempts",
            "recovery attempts per DPU job",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16),
        )
        requeues = registry.counter(
            "pim_pairs_requeued_total", "pairs moved onto a spare healthy DPU"
        )
        abandoned = registry.counter(
            "pim_pairs_abandoned_total", "pairs given up on after recovery"
        )
        backoff = registry.counter(
            "pim_backoff_seconds_total", "modeled backoff spent in recovery"
        )
        watchdog_trips = registry.counter(
            "pim_watchdog_trips_total", "launches declared stalled by deadline expiry"
        )
        watchdog = registry.counter(
            "pim_watchdog_seconds_total", "modeled watchdog detection latency"
        )
        for rec in self.records:
            for kind in rec.errors:
                faults.inc(kind=kind)
                if kind == "TaskletStallError":
                    watchdog_trips.inc()
            if rec.errors and not rec.abandoned:
                retries.inc(len(rec.errors))
            attempts.observe(rec.attempts)
            if rec.requeued:
                requeues.inc(rec.num_pairs)
            if rec.abandoned:
                abandoned.inc(rec.num_pairs)
        if self.backoff_seconds:
            backoff.inc(self.backoff_seconds)
        if self.watchdog_seconds:
            watchdog.inc(self.watchdog_seconds)


def assign_pairs(
    report: RecoveryReport, num_dpus: int, batch_sizes: dict[int, int]
) -> None:
    """Fill the report's pair-index lists from the round-robin contract.

    Pair ``local`` of logical DPU ``d`` is global index
    ``d + local * num_dpus`` — the same contract
    :class:`~repro.pim.system.PimSystem` merges records under.
    """
    for rec in report.records:
        size = batch_sizes.get(rec.dpu_id, rec.num_pairs)
        indices = [rec.dpu_id + local * num_dpus for local in range(size)]
        if rec.abandoned:
            report.abandoned_pairs.extend(indices)
        elif rec.clean:
            report.completed_pairs.extend(indices)
        else:
            report.completed_pairs.extend(indices)
            report.rerun_pairs.extend(indices)


def spare_placements(
    dpu_id: int, all_ids: Iterable[int], plan: FaultPlan
) -> tuple[int, ...]:
    """Deterministic requeue candidates for ``dpu_id``: healthy peers,
    starting just after it (round-robin) so spare load spreads."""
    ids = sorted(set(all_ids))
    healthy = [i for i in ids if i != dpu_id and not plan.always_dead(i)]
    if not healthy:
        return ()
    # rotate so the first candidate is the next healthy id after dpu_id
    pivot = next((n for n, i in enumerate(healthy) if i > dpu_id), 0)
    return tuple(healthy[pivot:] + healthy[:pivot])
