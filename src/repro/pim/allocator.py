"""The paper's custom two-level memory allocator.

WFA's reference implementation allocates wavefronts from a growable
malloc-backed arena.  On UPMEM that design is unusable: WRAM is 64 KB
*shared by all tasklets*, MRAM is reachable only through 8-byte-aligned
DMA, and there is no malloc on the DPU.  The paper replaces it with a
custom allocator that (a) hands out 8-byte-aligned blocks so every block
is DMA-able, and (b) places bulk WFA metadata in MRAM, staging it through
small WRAM buffers on demand — which is what "unleashes the maximum
threads" (paper §I).

This module models that allocator faithfully:

* :class:`BumpAllocator` — an 8-byte-aligning bump (arena) allocator over
  an address range; O(1) alloc, whole-arena reset between alignments,
  exactly like the C original's ``mm_allocator`` reset discipline.
* :class:`TaskletAllocator` — the per-tasklet view: one WRAM arena (for
  sequence buffers, staging buffers, and — under the ``"wram"`` policy —
  all WFA metadata) and one MRAM arena (bulk metadata under the
  ``"mram"`` policy).

Capacity failures raise :class:`AllocationError`; the kernel-configuration
layer uses them to discover the maximum tasklet count each policy
supports — the trade-off at the heart of the paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.pim.dma import DMA_ALIGN, aligned_size

__all__ = ["BumpAllocator", "TaskletAllocator", "Allocation"]


@dataclass(frozen=True)
class Allocation:
    """One allocated block: space and placement."""

    addr: int
    size: int
    space: str  # "wram" | "mram"


class BumpAllocator:
    """8-byte-aligning bump allocator over ``[base, base + capacity)``."""

    def __init__(self, base: int, capacity: int, space: str) -> None:
        if base % DMA_ALIGN != 0:
            raise AllocationError(
                f"{space} arena base {base:#x} not {DMA_ALIGN}-byte aligned"
            )
        if capacity < 0:
            raise AllocationError(f"{space} arena capacity negative: {capacity}")
        self.base = base
        self.capacity = capacity
        self.space = space
        self.cursor = 0
        self.high_water = 0
        self.allocations = 0

    def alloc(self, nbytes: int) -> Allocation:
        """Allocate ``nbytes`` rounded up to the 8-byte DMA granularity."""
        if nbytes < 0:
            raise AllocationError(f"negative allocation: {nbytes}")
        size = aligned_size(max(nbytes, 1))
        if self.cursor + size > self.capacity:
            raise AllocationError(
                f"{self.space} arena exhausted: need {size} bytes, "
                f"{self.capacity - self.cursor} of {self.capacity} free"
            )
        addr = self.base + self.cursor
        self.cursor += size
        self.high_water = max(self.high_water, self.cursor)
        self.allocations += 1
        return Allocation(addr=addr, size=size, space=self.space)

    def reset(self) -> None:
        """Free everything at once (between alignments)."""
        self.cursor = 0

    @property
    def used(self) -> int:
        return self.cursor

    @property
    def free(self) -> int:
        return self.capacity - self.cursor


class TaskletAllocator:
    """Per-tasklet two-level allocator: a WRAM arena plus an MRAM arena.

    Args:
        wram_base / wram_capacity: this tasklet's slice of the shared
            64 KB WRAM (the DPU-level configuration divides WRAM among
            tasklets; bases must be 8-byte aligned).
        mram_base / mram_capacity: this tasklet's metadata region in MRAM
            (unused — zero capacity — under the ``"wram"`` policy).
        metadata_policy: where :meth:`alloc_metadata` places blocks.
    """

    def __init__(
        self,
        wram_base: int,
        wram_capacity: int,
        mram_base: int,
        mram_capacity: int,
        metadata_policy: str = "mram",
    ) -> None:
        if metadata_policy not in ("mram", "wram"):
            raise AllocationError(f"unknown metadata_policy {metadata_policy!r}")
        self.wram = BumpAllocator(wram_base, wram_capacity, "wram")
        self.mram = BumpAllocator(mram_base, mram_capacity, "mram")
        self.metadata_policy = metadata_policy

    def alloc_buffer(self, nbytes: int) -> Allocation:
        """Allocate a WRAM working buffer (sequences, staging, results)."""
        return self.wram.alloc(nbytes)

    def alloc_metadata(self, nbytes: int) -> Allocation:
        """Allocate WFA metadata per the configured placement policy."""
        if self.metadata_policy == "wram":
            return self.wram.alloc(nbytes)
        return self.mram.alloc(nbytes)

    def reset_metadata(self) -> None:
        """Release all per-alignment metadata (between read pairs).

        Under the ``"wram"`` policy metadata shares the WRAM arena with
        long-lived buffers, so the kernel snapshots the arena cursor
        before each alignment and restores it instead; this method only
        resets the MRAM arena.
        """
        self.mram.reset()

    def wram_mark(self) -> int:
        """Snapshot of the WRAM arena cursor (for scoped frees)."""
        return self.wram.cursor

    def wram_release(self, mark: int) -> None:
        """Roll the WRAM arena back to a snapshot."""
        if not 0 <= mark <= self.wram.cursor:
            raise AllocationError(
                f"invalid WRAM release mark {mark} (cursor {self.wram.cursor})"
            )
        self.wram.cursor = mark
