"""The full PIM system: distribution, launch, collection, timing.

Reproduces the paper's execution structure end to end:

1. the host distributes read pairs evenly across DPU MRAM banks
   (:meth:`PimSystem.align` / :meth:`PimSystem.model_run`);
2. every DPU runs the WFA kernel over its private batch, tasklets
   working independently;
3. the host gathers result records from MRAM.

Two entry points:

* :meth:`PimSystem.align` — align a concrete list of pairs.  All logical
  DPUs receive work round-robin; the first ``num_simulated_dpus`` are
  byte-accurately simulated and their slowest kernel time stands for the
  system (exact when ``num_simulated_dpus == num_dpus``).
* :meth:`PimSystem.model_run` — the paper-scale methodology: per-DPU
  load is ``ceil(num_pairs / num_dpus)`` (1954 pairs for 5M over 2560
  DPUs); each simulated DPU aligns an i.i.d. sample of ``k`` pairs and
  its kernel time is scaled by ``load / k``.  Transfer time always uses
  exact full-system byte counts (they are computable without simulation
  because records are fixed-size).

Both entry points express each simulated DPU's work as a
:class:`~repro.pim.parallel.DpuJob` and hand the batch to
:func:`~repro.pim.parallel.execute_jobs`, which runs jobs sequentially
or over a process pool (``PimSystemConfig.workers``); records merge
deterministically by ``dpu_id``, so the two modes are result-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.cigar import Cigar
from repro.data.datasets import DatasetSpec
from repro.data.generator import ReadPair
from repro.errors import ConfigError
from repro.pim.config import PimSystemConfig
from repro.pim.dpu import DpuKernelStats
from repro.pim.faults import (
    FaultPlan,
    RecoveryReport,
    RetryPolicy,
    assign_pairs,
    spare_placements,
)
from repro.pim.kernel import KernelConfig, WfaDpuKernel
from repro.pim.layout import HEADER_BYTES, MramLayout
from repro.pim.parallel import (
    DpuJob,
    DpuJobResult,
    GeneratorSpec,
    execute_jobs,
    execute_jobs_resilient,
)
from repro.pim.trace import KernelTrace
from repro.pim.trace import merge as merge_traces
from repro.pim.transfer import HostTransferEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import RunTelemetry

__all__ = ["PimRunResult", "PimSystem"]


@dataclass
class PimRunResult:
    """Timing and functional outcome of one PIM run.

    ``kernel_seconds`` is the paper's "Kernel" series;
    ``total_seconds`` (kernel + both transfers + launch overhead) is the
    paper's "Total".
    """

    num_pairs: int  # modeled workload size
    pairs_simulated: int  # functionally aligned pairs
    tasklets: int
    metadata_policy: str
    kernel_seconds: float
    transfer_in_seconds: float
    transfer_out_seconds: float
    launch_seconds: float
    bytes_in: int
    bytes_out: int
    per_dpu: list[DpuKernelStats] = field(default_factory=list)
    #: functional results: (global pair index, score, cigar).  The global
    #: index follows the round-robin distribution contract shared by
    #: :meth:`PimSystem.align` and :meth:`PimSystem.model_run`: the
    #: ``local``-th record gathered from DPU ``d`` is pair
    #: ``d + local * num_dpus``.
    results: list[tuple[int, int, Optional[Cigar]]] = field(default_factory=list)
    #: aligned-region starts per gathered pair index: (pattern_start,
    #: text_start) — zeros for global alignment, clipping under ends-free.
    regions: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: kernel-time scale factor applied for sampled runs (1.0 = exact)
    scale_factor: float = 1.0
    #: graceful-degradation report of a fault-tolerant run (``None`` for
    #: runs without a :class:`~repro.pim.faults.FaultPlan`)
    recovery: Optional[RecoveryReport] = None
    #: physical DPUs the run was placed on (``None`` = the full fleet).
    #: Set when a health ledger quarantined part of the fleet; the
    #: round-robin index contract then runs over ``len(active_dpus)``
    #: slots instead of ``num_dpus``.
    active_dpus: Optional[tuple[int, ...]] = None

    @property
    def transfer_seconds(self) -> float:
        return self.transfer_in_seconds + self.transfer_out_seconds

    @property
    def recovery_overhead_seconds(self) -> float:
        """Modeled host-side recovery cost (backoff waits + watchdog
        detection latency).  Kept out of :attr:`total_seconds` — whose
        section breakdown telemetry reconciles exactly — and charged at
        the scheduler level (:attr:`~repro.pim.scheduler.ScheduledRun.total_seconds`),
        where multi-round degradation accumulates."""
        return self.recovery.overhead_seconds if self.recovery is not None else 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.kernel_seconds
            + self.transfer_seconds
            + self.launch_seconds
        )

    def throughput(self) -> float:
        """End-to-end pairs aligned per second (the paper's Total)."""
        return self.num_pairs / self.total_seconds if self.total_seconds else 0.0

    def kernel_throughput(self) -> float:
        """Pairs per second counting kernel time only (the paper's Kernel)."""
        return self.num_pairs / self.kernel_seconds if self.kernel_seconds else 0.0

    def dominant_bound(self) -> str:
        """Which DPU pipeline bound dominated across simulated DPUs."""
        if not self.per_dpu:
            return "none"
        counts: dict[str, int] = {}
        for s in self.per_dpu:
            counts[s.bound] = counts.get(s.bound, 0) + 1
        return max(counts, key=counts.__getitem__)


class PimSystem:
    """A configured UPMEM system ready to align read-pair workloads."""

    def __init__(
        self,
        config: PimSystemConfig,
        kernel_config: Optional[KernelConfig] = None,
        telemetry: Optional["RunTelemetry"] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.kernel_config = (
            kernel_config if kernel_config is not None else KernelConfig()
        )
        #: optional :class:`~repro.obs.telemetry.RunTelemetry` — when
        #: attached, every run collects kernel traces and worker metric
        #: snapshots and lays its sections on the model timeline.
        self.telemetry = telemetry
        #: optional :class:`~repro.pim.faults.FaultPlan` every run
        #: executes under; jobs then verify gathered results end to end
        #: and route through the recovery layer.
        self.fault_plan = fault_plan
        #: recovery policy for fault-tolerant runs (defaults applied when
        #: a plan is present and no policy was given).
        self.retry_policy = retry_policy
        self.kernel = WfaDpuKernel(self.kernel_config)
        self.transfer = HostTransferEngine(
            config.transfer,
            registry=telemetry.registry if telemetry is not None else None,
        )
        # Admission check: the WRAM plan must hold at this tasklet count.
        self.kernel.plan_wram(
            config.dpu, config.tasklets, config.metadata_policy
        )

    # -- layout -----------------------------------------------------------

    def plan_layout(self, pairs_per_dpu: int) -> MramLayout:
        """MRAM layout for a per-DPU batch of ``pairs_per_dpu`` pairs."""
        kc = self.kernel_config
        metadata = (
            kc.metadata_peak_bytes() if self.config.metadata_policy == "mram" else 0
        )
        return MramLayout.plan(
            num_pairs=pairs_per_dpu,
            max_pattern_len=kc.max_seq_len,
            max_text_len=kc.max_seq_len,
            max_cigar_ops=kc.max_cigar_ops,
            tasklets=self.config.tasklets,
            metadata_bytes_per_tasklet=metadata,
            mram_capacity=self.config.dpu.mram_bytes,
        )

    # -- helpers -----------------------------------------------------------

    def _tasklet_assignments(self, batch_size: int) -> list[list[int]]:
        """Round-robin local indices over the configured tasklets."""
        t = self.config.tasklets
        return [list(range(tid, batch_size, t)) for tid in range(t)]

    def _make_job(
        self,
        dpu_id: int,
        layout: MramLayout,
        pairs: Optional[tuple[ReadPair, ...]] = None,
        generator: Optional[GeneratorSpec] = None,
        pull: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        physical: Optional[int] = None,
        spare_pool: Optional[tuple[int, ...]] = None,
    ) -> DpuJob:
        """Package one simulated DPU's work for (possibly remote) execution.

        ``dpu_id`` is the *logical slot* (index-mapping identity);
        ``physical`` pins the job onto a specific physical DPU when a
        health ledger has shrunk the placement set.  Requeue spares are
        drawn from ``spare_pool`` (default: the whole fleet) so a
        quarantined DPU is never used as a spare either.
        """
        collect = self.telemetry is not None
        spares: tuple[int, ...] = ()
        placement = dpu_id if physical is None else physical
        if fault_plan is not None:
            pool = (
                spare_pool if spare_pool is not None else range(self.config.num_dpus)
            )
            spares = spare_placements(placement, pool, fault_plan)
        return DpuJob(
            dpu_id=dpu_id,
            layout=layout,
            dpu_config=self.config.dpu,
            transfer_config=self.config.transfer,
            kernel_config=self.kernel_config,
            metadata_policy=self.config.metadata_policy,
            tasklets=self.config.tasklets,
            pairs=pairs,
            generator=generator,
            pull=pull,
            collect_trace=collect,
            collect_metrics=collect,
            fault_plan=fault_plan,
            physical_dpu_id=physical,
            requeue_placements=spares,
            verify=fault_plan is not None,
        )

    def _merge_records(
        self, records: list[DpuJobResult], num_slots: Optional[int] = None
    ) -> tuple[
        list[DpuKernelStats],
        list[tuple[int, int, Optional[Cigar]]],
        dict[int, tuple[int, int]],
        int,
        KernelTrace,
    ]:
        """Deterministic merge: records arrive sorted by ``dpu_id``.

        Folds each worker's transfer accounting into this system's
        engine, absorbs worker metric snapshots / kernel traces into
        the attached telemetry (in the same ``dpu_id`` order on both
        the sequential and parallel paths), and converts local record
        indices to global pair indices under the round-robin contract
        (``d + local * num_slots``; ``num_slots`` shrinks below
        ``num_dpus`` when quarantine reduced the placement set).
        """
        per_dpu: list[DpuKernelStats] = []
        results: list[tuple[int, int, Optional[Cigar]]] = []
        regions: dict[int, tuple[int, int]] = {}
        simulated = 0
        num_dpus = num_slots if num_slots is not None else self.config.num_dpus
        for rec in records:
            per_dpu.append(rec.stats)
            simulated += rec.num_pairs
            self.transfer.stats.merge(rec.transfer_stats)
            if self.telemetry is not None:
                self.telemetry.absorb_worker(rec.metrics)
            for local, score, cigar, p_start, t_start in rec.results:
                index = rec.dpu_id + local * num_dpus
                results.append((index, score, cigar))
                regions[index] = (p_start, t_start)
        run_trace = merge_traces(
            rec.trace for rec in records if rec.trace is not None
        )
        return per_dpu, results, regions, simulated, run_trace

    def _execute(self, jobs: list[DpuJob], workers: Optional[int], kind: str):
        """Run jobs, under a wall-time profiler span when telemetry is on."""
        n = self._resolve_workers(workers)
        if self.telemetry is None:
            return execute_jobs(jobs, n)
        with self.telemetry.profiler.span(
            "host_execute", kind=kind, jobs=len(jobs), workers=n
        ):
            return execute_jobs(jobs, n)

    def _execute_recovered(
        self,
        jobs: list[DpuJob],
        workers: Optional[int],
        kind: str,
        policy: RetryPolicy,
    ) -> tuple[list[DpuJobResult], RecoveryReport]:
        """Fault-tolerant job execution under the same profiling span."""
        n = self._resolve_workers(workers)
        if self.telemetry is None:
            return execute_jobs_resilient(jobs, n, policy)
        with self.telemetry.profiler.span(
            "host_execute", kind=kind, jobs=len(jobs), workers=n
        ):
            return execute_jobs_resilient(jobs, n, policy)

    def _run_jobs(
        self,
        jobs: list[DpuJob],
        workers: Optional[int],
        kind: str,
        fault_plan: Optional[FaultPlan],
        retry_policy: Optional[RetryPolicy],
        num_slots: Optional[int] = None,
    ) -> tuple[list[DpuJobResult], Optional[RecoveryReport]]:
        """Dispatch jobs on the plain or the recovered path.

        With a fault plan, the report's pair-index attribution is filled
        in under the round-robin contract (over ``num_slots`` logical
        slots) and its counters land in the attached telemetry registry.
        """
        if fault_plan is None:
            return self._execute(jobs, workers, kind), None
        policy = (
            retry_policy
            if retry_policy is not None
            else (self.retry_policy if self.retry_policy is not None else RetryPolicy())
        )
        records, report = self._execute_recovered(jobs, workers, kind, policy)
        assign_pairs(
            report,
            num_slots if num_slots is not None else self.config.num_dpus,
            {job.dpu_id: len(job.batch()) for job in jobs},
        )
        if self.telemetry is not None:
            report.count_into(self.telemetry.registry)
        return records, report

    def _resolve_workers(self, workers: Optional[int]) -> int:
        return self.config.workers if workers is None else workers

    def _system_bytes(
        self, num_pairs: int, layout: MramLayout, num_slots: Optional[int] = None
    ) -> tuple[int, int]:
        """Full-system transfer byte counts (headers per *active* bank)."""
        banks = num_slots if num_slots is not None else self.config.num_dpus
        bytes_in = num_pairs * layout.input_record_size + banks * HEADER_BYTES
        bytes_out = num_pairs * layout.result_record_size
        return bytes_in, bytes_out

    # -- concrete batch alignment ------------------------------------------------

    def _resolve_active(
        self, active_dpus: Optional[tuple[int, ...]]
    ) -> Optional[tuple[int, ...]]:
        """Validate a quarantine-reduced placement set (``None`` = full)."""
        if active_dpus is None:
            return None
        active = tuple(sorted(set(active_dpus)))
        if not active:
            raise ConfigError("active_dpus must name at least one DPU")
        if active[0] < 0 or active[-1] >= self.config.num_dpus:
            raise ConfigError(
                f"active_dpus {active} out of range for "
                f"{self.config.num_dpus} DPUs"
            )
        if len(active) == self.config.num_dpus:
            return None  # full fleet: identical to the unconstrained path
        return active

    def align(
        self,
        pairs: list[ReadPair],
        collect_results: bool = True,
        verify: bool = False,
        workers: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        active_dpus: Optional[tuple[int, ...]] = None,
    ) -> PimRunResult:
        """Align a concrete batch, distributed over all logical DPUs.

        With ``verify=True`` every gathered result is re-checked on the
        host: the CIGAR is validated against its pair and re-scored
        under the kernel's penalty model (raises
        :class:`~repro.errors.KernelError` on any inconsistency) — the
        simulated-hardware analogue of WFA's verification mode.

        ``workers`` overrides ``config.workers`` for this run;
        ``fault_plan``/``retry_policy`` override the system-level ones.
        A run under a fault plan verifies every gathered record in the
        worker, recovers per the policy (retry, backoff, requeue onto
        healthy DPUs), and attaches a
        :class:`~repro.pim.faults.RecoveryReport` as ``result.recovery``.

        ``active_dpus`` restricts placement to a subset of the physical
        fleet (quarantine — see :mod:`repro.pim.health`): pairs are
        distributed round-robin over ``len(active_dpus)`` logical slots,
        slot ``s`` runs on physical DPU ``active_dpus[s]``, and requeue
        spares come from the active set only.  Capacity loss is modeled
        honestly — fewer DPUs take bigger batches and the kernel takes
        longer.
        """
        n = len(pairs)
        active = self._resolve_active(active_dpus)
        num_slots = self.config.num_dpus if active is None else len(active)
        batches = [pairs[s::num_slots] for s in range(min(num_slots, max(n, 1)))]
        max_batch = max((len(b) for b in batches), default=0)
        layout = self.plan_layout(max(max_batch, 1))
        plan = fault_plan if fault_plan is not None else self.fault_plan

        pull = collect_results or verify
        jobs = [
            self._make_job(
                s,
                layout,
                pairs=tuple(batch),
                pull=pull,
                fault_plan=plan,
                physical=None if active is None else active[s],
                spare_pool=active,
            )
            for s, batch in enumerate(batches[: self.config.num_simulated_dpus])
            if batch
        ]
        records, recovery = self._run_jobs(
            jobs, workers, "align", plan, retry_policy, num_slots=num_slots
        )
        per_dpu, results, regions, simulated, run_trace = self._merge_records(
            records, num_slots=num_slots
        )

        if verify:
            self._verify_results(pairs, results, regions)
            if not collect_results:
                results = []
                regions = {}
        kernel_seconds = max((s.seconds for s in per_dpu), default=0.0)
        bytes_in, bytes_out = self._system_bytes(n, layout, num_slots=num_slots)
        run = PimRunResult(
            num_pairs=n,
            pairs_simulated=simulated,
            tasklets=self.config.tasklets,
            metadata_policy=self.config.metadata_policy,
            kernel_seconds=kernel_seconds,
            transfer_in_seconds=self.transfer.to_dpu_seconds(
                bytes_in, self.config.num_ranks
            ),
            transfer_out_seconds=self.transfer.from_dpu_seconds(
                bytes_out, self.config.num_ranks
            ),
            launch_seconds=self.transfer.launch_seconds(),
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            per_dpu=per_dpu,
            results=results,
            regions=regions,
            recovery=recovery,
            active_dpus=active,
        )
        self._record_run("align", run, run_trace)
        return run

    def _record_run(
        self, kind: str, run: PimRunResult, trace: KernelTrace
    ) -> None:
        if self.telemetry is not None:
            self.telemetry.on_run(
                kind,
                run,
                trace,
                seconds_per_cycle=self.config.dpu.timing.seconds(1.0),
            )

    def _verify_results(
        self,
        pairs: list[ReadPair],
        results: list[tuple[int, int, Optional[Cigar]]],
        regions: Optional[dict[int, tuple[int, int]]] = None,
    ) -> None:
        """Host-side re-validation of gathered results."""
        from repro.errors import KernelError

        pen = self.kernel_config.penalties
        for index, score, cigar in results:
            pair = pairs[index]
            if cigar is None:
                continue
            p_start, t_start = (regions or {}).get(index, (0, 0))
            try:
                cigar.validate(
                    pair.pattern[p_start : p_start + cigar.pattern_length()],
                    pair.text[t_start : t_start + cigar.text_length()],
                )
            except Exception as exc:  # CigarError carries the detail
                raise KernelError(
                    f"pair {index}: gathered CIGAR invalid: {exc}"
                ) from exc
            rescored = cigar.score(pen)
            if rescored != score:
                raise KernelError(
                    f"pair {index}: gathered score {score} != CIGAR rescoring "
                    f"{rescored}"
                )

    # -- paper-scale modeled run ---------------------------------------------------

    def model_run(
        self,
        spec: DatasetSpec,
        sample_pairs_per_dpu: int = 256,
        collect_results: bool = False,
        workers: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> PimRunResult:
        """Model a full-scale run of ``spec`` (e.g. the paper's 5M pairs).

        Each simulated DPU aligns ``min(sample_pairs_per_dpu, load)``
        i.i.d. pairs drawn from the spec's distribution (seeded per DPU);
        kernel time is scaled to the true per-DPU load.  With
        ``collect_results=True`` the gathered records carry global
        indices under the same round-robin contract as :meth:`align`
        (``d + local * num_dpus``) and populate ``regions``.
        """
        if sample_pairs_per_dpu < 1:
            raise ConfigError("sample_pairs_per_dpu must be >= 1")
        load = math.ceil(spec.num_pairs / self.config.num_dpus)
        if load == 0:
            raise ConfigError("empty dataset spec")
        # A sample smaller than ~2 pairs/tasklet leaves tasklets idle and
        # inflates the pipeline's latency bound in a way the full (large,
        # balanced) load would not; round the sample up to keep the
        # measured throughput/latency mix representative.
        k = min(max(sample_pairs_per_dpu, 2 * self.config.tasklets), load)
        scale = load / k
        layout = self.plan_layout(k)

        plan = fault_plan if fault_plan is not None else self.fault_plan
        jobs = [
            self._make_job(
                d,
                layout,
                generator=GeneratorSpec(
                    length=spec.length,
                    error_rate=spec.error_rate,
                    seed=spec.seed + 7919 * d + 1,
                    error_model=spec.error_model,
                    count=k,
                ),
                pull=collect_results,
                fault_plan=plan,
            )
            for d in range(self.config.num_simulated_dpus)
        ]
        records, recovery = self._run_jobs(
            jobs, workers, "model_run", plan, retry_policy
        )
        per_dpu, results, regions, simulated, run_trace = self._merge_records(
            records
        )
        for summary in per_dpu:
            summary.seconds *= scale
            summary.cycles *= scale

        kernel_seconds = max((s.seconds for s in per_dpu), default=0.0)
        bytes_in, bytes_out = self._system_bytes(spec.num_pairs, layout)
        run = PimRunResult(
            num_pairs=spec.num_pairs,
            pairs_simulated=simulated,
            tasklets=self.config.tasklets,
            metadata_policy=self.config.metadata_policy,
            kernel_seconds=kernel_seconds,
            transfer_in_seconds=self.transfer.to_dpu_seconds(
                bytes_in, self.config.num_ranks
            ),
            transfer_out_seconds=self.transfer.from_dpu_seconds(
                bytes_out, self.config.num_ranks
            ),
            launch_seconds=self.transfer.launch_seconds(),
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            per_dpu=per_dpu,
            results=results,
            regions=regions,
            scale_factor=scale,
            recovery=recovery,
        )
        self._record_run("model_run", run, run_trace)
        return run
