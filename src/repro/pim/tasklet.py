"""Tasklet execution contexts.

A *tasklet* is one of the up-to-24 hardware threads of a DPU.  Tasklets
share the DPU's WRAM, MRAM and DMA engine; the kernel gives each tasklet
a private WRAM slice (via :class:`~repro.pim.allocator.TaskletAllocator`)
so that no inter-thread synchronization is needed — the paper's design:
"each DPU thread aligns multiple read pairs independently from other DPU
threads to avoid the overhead of inter-thread synchronization".

The context accumulates the per-tasklet work totals that the DPU pipeline
model needs (instructions issued, DMA cycles occupied, pairs completed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pim.allocator import TaskletAllocator

__all__ = ["TaskletContext", "TaskletStats"]


@dataclass
class TaskletStats:
    """Work executed by one tasklet over a kernel launch."""

    tasklet_id: int
    instructions: float = 0.0
    dma_cycles: float = 0.0
    dma_transfers: int = 0
    dma_bytes: int = 0
    pairs_done: int = 0
    #: functional WFA totals, kept for reporting / cross-checks
    cells_computed: int = 0
    extend_steps: int = 0

    def add_dma(self, cycles: float, nbytes: int) -> None:
        self.dma_cycles += cycles
        self.dma_transfers += 1
        self.dma_bytes += nbytes


@dataclass
class TaskletContext:
    """Private state of one running tasklet."""

    tasklet_id: int
    allocator: TaskletAllocator
    stats: TaskletStats = field(init=False)
    # WRAM buffer addresses, filled by the kernel at setup.
    input_buffer: int = -1
    result_buffer: int = -1
    staging_buffers: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        self.stats = TaskletStats(tasklet_id=self.tasklet_id)
