"""Rank-level structure and summaries.

A UPMEM *rank* is the transfer/launch granularity of the SDK: 64 DPUs
sharing a DDR4 rank, loaded and copied to as a unit.  The system model
mostly works at the two ends of the hierarchy (whole system for
transfers, single DPU for kernels); this module provides the middle
view — grouping per-DPU kernel statistics into per-rank summaries, which
is how real UPMEM profiling tools report utilization and how load
imbalance across the machine is diagnosed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.pim.dpu import DpuKernelStats

__all__ = ["RankSummary", "group_by_rank", "imbalance"]


@dataclass(frozen=True)
class RankSummary:
    """Aggregated kernel statistics for one rank."""

    rank_id: int
    dpus: int
    pairs_done: int
    instructions: float
    dma_bytes: int
    #: the rank finishes when its slowest DPU does
    seconds: float
    #: mean DPU busy time / rank time — 1.0 means perfectly balanced
    utilization: float


def group_by_rank(
    per_dpu: list[DpuKernelStats], dpus_per_rank: int = 64
) -> list[RankSummary]:
    """Fold per-DPU stats into per-rank summaries (by DPU id)."""
    if dpus_per_rank < 1:
        raise ConfigError("dpus_per_rank must be >= 1")
    ranks: dict[int, list[DpuKernelStats]] = {}
    for stats in per_dpu:
        ranks.setdefault(stats.dpu_id // dpus_per_rank, []).append(stats)
    out = []
    for rank_id in sorted(ranks):
        members = ranks[rank_id]
        slowest = max(s.seconds for s in members)
        mean = sum(s.seconds for s in members) / len(members)
        out.append(
            RankSummary(
                rank_id=rank_id,
                dpus=len(members),
                pairs_done=sum(s.pairs_done for s in members),
                instructions=sum(s.instructions for s in members),
                dma_bytes=sum(s.dma_bytes for s in members),
                seconds=slowest,
                utilization=(mean / slowest) if slowest > 0 else 1.0,
            )
        )
    return out


def imbalance(per_dpu: list[DpuKernelStats]) -> float:
    """System-level load imbalance: slowest DPU / mean DPU time.

    1.0 means perfect balance; the sampled-measurement methodology
    reports this so extrapolations from few simulated DPUs carry their
    own error bar.
    """
    if not per_dpu:
        return 1.0
    times = [s.seconds for s in per_dpu]
    mean = sum(times) / len(times)
    return (max(times) / mean) if mean > 0 else 1.0
