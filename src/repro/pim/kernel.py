"""The WFA DPU kernel: per-tasklet alignment loop on simulated hardware.

This mirrors the paper's kernel exactly (§I, last two paragraphs):

1. each tasklet owns a private slice of WRAM and a list of read pairs;
2. per pair, it DMAs the input record MRAM->WRAM, aligns with WFA, and
   DMAs the result record WRAM->MRAM;
3. WFA's malloc is replaced by the custom two-level allocator
   (:mod:`repro.pim.allocator`);
4. under the paper's ``"mram"`` metadata policy, wavefronts are allocated
   in MRAM and staged through small WRAM buffers on demand (so 64 KB of
   shared WRAM never caps the tasklet count); under the ``"wram"``
   ablation policy everything lives in WRAM and the supported tasklet
   count collapses.

Fidelity notes (see DESIGN.md §2):

* Sequence and result bytes genuinely flow through the simulated
  MRAM/WRAM/DMA path — the host packs records into MRAM, the kernel
  parses them out of WRAM after a validated DMA, and results round-trip
  the same way.
* The WFA arithmetic itself runs on the host Python engine for speed;
  its *allocation log* is then replayed against the allocator and the
  DMA engine, transfer by transfer, so capacity, alignment, and traffic
  volumes are enforced/charged exactly as the DPU code would incur them.
  Staged metadata buffer *contents* are not semantically meaningful
  (they are scratch), so the replay reuses the reserved regions without
  re-packing offsets.
* Instruction counts come from the operation counters via
  :class:`~repro.perf.costs.DpuCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.core.aligner import AlignmentResult
from repro.core.backtrace import backtrace
from repro.core.heuristics import AdaptiveReduction
from repro.core.span import AlignmentSpan
from repro.core.penalties import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    Penalties,
    TwoPieceAffinePenalties,
)
from repro.core.wfa import WfaEngine
from repro.core.wfa_batch import BatchPairView, BatchWfaEngine
from repro.errors import AllocationError, AlignmentError, KernelError
from repro.pim.allocator import TaskletAllocator
from repro.pim.config import DpuConfig
from repro.pim.dma import aligned_size
from repro.pim.dpu import Dpu
from repro.pim.layout import MramLayout
from repro.pim.tasklet import TaskletContext, TaskletStats
from repro.pim.trace import KernelTrace, TraceEvent
from repro.perf.costs import DpuCostModel

__all__ = ["KernelConfig", "WramPlan", "WfaDpuKernel", "max_supported_tasklets"]


def per_edit_cost(penalties: Penalties) -> int:
    """Worst-case penalty of one edit operation under ``penalties``."""
    if isinstance(penalties, TwoPieceAffinePenalties):
        return max(penalties.mismatch, penalties.gap_cost(1))
    if isinstance(penalties, AffinePenalties):
        return max(penalties.mismatch, penalties.gap_open + penalties.gap_extend)
    if isinstance(penalties, LinearPenalties):
        return max(penalties.mismatch, penalties.indel)
    if isinstance(penalties, EditPenalties):
        return 1
    raise KernelError(f"unsupported penalty model: {penalties!r}")


@dataclass(frozen=True)
class KernelConfig:
    """Compile-time parameters of the DPU kernel.

    The kernel, like real DPU code, must size every buffer statically:
    ``max_read_len`` and ``max_edits`` bound the score (hence wavefront
    width, metadata footprint and CIGAR length) for admission planning.
    """

    penalties: Penalties = field(default_factory=AffinePenalties)
    max_read_len: int = 100
    max_edits: int = 4
    traceback: bool = True
    adaptive: bool = False
    #: WRAM staging granularity for MRAM-resident metadata.  ``None``
    #: stages whole wavefronts (buffers scale with the score bound, the
    #: paper's baseline design); a fixed chunk size (multiple of 8, up to
    #: 2048) decouples WRAM footprint from score at the price of more
    #: DMA transfers — the engineering answer to the WRAM pressure that
    #: long reads / high E create (see the staging-chunk ablation).
    staging_chunk_bytes: Optional[int] = None
    #: alignment span.  Defaults to global (the paper's mode).  Ends-free
    #: spans must be *bounded* (free allowances widen the score-0
    #: wavefront, hence every WRAM staging buffer) — unbounded semiglobal
    #: mapping belongs on the host or needs windowed candidates.
    span: AlignmentSpan = field(default_factory=AlignmentSpan)
    #: host-side alignment engine.  ``"scalar"`` runs the per-pair
    #: :class:`~repro.core.wfa.WfaEngine` (the differential oracle);
    #: ``"vector"`` batches a whole DPU's pairs through the NumPy
    #: :class:`~repro.core.wfa_batch.BatchWfaEngine`.  Purely a host
    #: simulation-speed knob: scores, CIGARs, counters, the wavefront
    #: log (hence DMA charging and the timing model), traces and fault
    #: behaviour are identical.  Configurations the batch engine cannot
    #: replicate exactly (ends-free spans, adaptive heuristic) silently
    #: fall back to the scalar path.
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if self.engine not in ("scalar", "vector"):
            raise KernelError(
                f"engine must be 'scalar' or 'vector', got {self.engine!r}"
            )
        if self.max_read_len < 1:
            raise KernelError(f"max_read_len must be >= 1, got {self.max_read_len}")
        if self.max_edits < 0:
            raise KernelError(f"max_edits must be >= 0, got {self.max_edits}")
        if self.staging_chunk_bytes is not None:
            c = self.staging_chunk_bytes
            if c < 8 or c > 2048 or c % 8 != 0:
                raise KernelError(
                    f"staging_chunk_bytes must be a multiple of 8 in [8, 2048], "
                    f"got {c}"
                )
        span_width = self.span.pattern_begin_free + self.span.text_begin_free
        if span_width > 4 * self.max_seq_len:
            raise KernelError(
                "ends-free allowances too large for a static kernel plan: "
                f"begin-free width {span_width} exceeds 4x max_seq_len"
            )

    @property
    def max_score(self) -> int:
        """Upper bound on any in-budget pair's alignment penalty."""
        return max(1, self.max_edits * per_edit_cost(self.penalties))

    @property
    def max_seq_len(self) -> int:
        """Largest read either slot must hold: insertions lengthen reads."""
        return self.max_read_len + self.max_edits

    @property
    def max_wavefront_width(self) -> int:
        """Max diagonals per wavefront.

        The range grows by 2 per score on top of the score-0 seed width
        (1 for global; wider when begin-free spans seed extra diagonals).
        """
        seed_width = 1 + self.span.pattern_begin_free + self.span.text_begin_free
        return 2 * self.max_score + 2 + seed_width

    @property
    def max_cigar_ops(self) -> int:
        """Max RLE runs: d edits split match runs at most 2d+1 ways."""
        return 2 * self.max_edits + 3

    @property
    def wavefront_components(self) -> int:
        """Wavefront components per score (5/3/1 by metric)."""
        if isinstance(self.penalties, TwoPieceAffinePenalties):
            return 5
        if isinstance(self.penalties, AffinePenalties):
            return 3
        return 1

    def metadata_peak_bytes(self) -> int:
        """Worst-case packed metadata for one alignment (full memory mode).

        Score ``s`` allocates ``components`` wavefronts of at most
        ``2s + 3`` offsets (4 bytes each, every block rounded up to the
        8-byte DMA granularity); summing over all scores up to the bound
        gives the arena size both policies must admit.
        """
        comps = self.wavefront_components
        seed_width = 1 + self.span.pattern_begin_free + self.span.text_begin_free
        return sum(
            comps * aligned_size(4 * (2 * s + 2 + seed_width))
            for s in range(self.max_score + 1)
        )

    def heuristic(self) -> Optional[Callable]:
        return AdaptiveReduction() if self.adaptive else None


@dataclass(frozen=True)
class WramPlan:
    """Static WRAM map for one tasklet's slice."""

    slice_bytes: int
    input_off: int
    result_off: int
    staging_off: int  # base of the staging area ("mram" policy only)
    staging_buffers: int
    staging_buffer_bytes: int
    metadata_off: int  # base of the in-WRAM metadata arena ("wram" policy)
    metadata_bytes: int

    @property
    def used_bytes(self) -> int:
        return max(
            self.staging_off + self.staging_buffers * self.staging_buffer_bytes,
            self.metadata_off + self.metadata_bytes,
        )


#: staged wavefronts resident simultaneously under the "mram" policy, by
#: component count: affine needs up to 4 sources (M_{s-x}, M_{s-o-e},
#: I_{s-e}, D_{s-e}) + 3 destinations; two-piece affine 7 sources + 5
#: destinations; single-component metrics 2 sources + 1 destination.
STAGING_BUFFERS_BY_COMPONENTS = {1: 3, 3: 7, 5: 12}


class WfaDpuKernel:
    """Executes the WFA alignment loop on a simulated DPU."""

    def __init__(
        self,
        config: KernelConfig,
        cost_model: Optional[DpuCostModel] = None,
    ) -> None:
        self.config = config
        self.cost_model = cost_model if cost_model is not None else DpuCostModel()

    # -- static planning ------------------------------------------------------

    def input_record_bytes(self) -> int:
        return 8 + 2 * aligned_size(self.config.max_seq_len)

    def result_record_bytes(self) -> int:
        return 8 + aligned_size(4 * self.config.max_cigar_ops)

    def plan_wram(
        self, dpu_config: DpuConfig, tasklets: int, metadata_policy: str
    ) -> WramPlan:
        """Divide WRAM among ``tasklets`` and map one slice.

        Raises :class:`KernelError` when the per-tasklet slice cannot hold
        the kernel's buffers — the admission failure that caps the tasklet
        count (the paper's central WRAM-pressure problem).
        """
        if not 1 <= tasklets <= dpu_config.max_tasklets:
            raise KernelError(
                f"tasklets must be in [1, {dpu_config.max_tasklets}], got {tasklets}"
            )
        if metadata_policy not in ("mram", "wram"):
            raise KernelError(f"unknown metadata_policy {metadata_policy!r}")
        slice_bytes = (dpu_config.wram_bytes // tasklets) // 8 * 8

        input_off = 0
        result_off = input_off + aligned_size(self.input_record_bytes())
        after_result = result_off + aligned_size(self.result_record_bytes())
        if metadata_policy == "mram":
            if self.config.staging_chunk_bytes is not None:
                staging_buffer_bytes = self.config.staging_chunk_bytes
            else:
                staging_buffer_bytes = aligned_size(
                    4 * self.config.max_wavefront_width
                )
            staging = STAGING_BUFFERS_BY_COMPONENTS[self.config.wavefront_components]
            plan = WramPlan(
                slice_bytes=slice_bytes,
                input_off=input_off,
                result_off=result_off,
                staging_off=after_result,
                staging_buffers=staging,
                staging_buffer_bytes=staging_buffer_bytes,
                metadata_off=after_result,
                metadata_bytes=0,
            )
        else:
            metadata_bytes = aligned_size(self.config.metadata_peak_bytes())
            plan = WramPlan(
                slice_bytes=slice_bytes,
                input_off=input_off,
                result_off=result_off,
                staging_off=after_result,
                staging_buffers=0,
                staging_buffer_bytes=0,
                metadata_off=after_result,
                metadata_bytes=metadata_bytes,
            )
        if plan.used_bytes > slice_bytes:
            raise KernelError(
                f"WRAM slice of {slice_bytes} B (64KB / {tasklets} tasklets) "
                f"cannot hold kernel buffers ({plan.used_bytes} B needed, "
                f"policy={metadata_policy!r}, max_score={self.config.max_score})"
            )
        return plan

    # -- execution ------------------------------------------------------

    def run(
        self,
        dpu: Dpu,
        layout: MramLayout,
        assignments: list[list[int]],
        metadata_policy: str = "mram",
        collect_results: bool = False,
        trace: Optional[KernelTrace] = None,
    ) -> tuple[list[TaskletStats], list[tuple[int, AlignmentResult]]]:
        """Run the kernel on one DPU.

        Args:
            dpu: the target DPU (its MRAM must already hold the header
                and input records).
            layout: the MRAM layout used by the host.
            assignments: ``assignments[t]`` lists the input-record indices
                tasklet ``t`` processes.
            metadata_policy: "mram" (paper) or "wram" (ablation).
            collect_results: additionally return the in-Python alignment
                results, for cross-checking against the MRAM records.
            trace: optional :class:`~repro.pim.trace.KernelTrace` that
                receives per-pair phase events (fetch/align/metadata/
                writeback) with their cycle and byte costs.

        Returns:
            ``(tasklet_stats, results)`` where ``results`` is empty unless
            ``collect_results``.
        """
        tasklets = len(assignments)
        plan = self.plan_wram(dpu.config, tasklets, metadata_policy)
        if layout.max_cigar_ops < self.config.max_cigar_ops and self.config.traceback:
            raise KernelError(
                "layout reserves fewer CIGAR runs than the kernel may emit"
            )
        contexts = []
        for t in range(tasklets):
            base = t * plan.slice_bytes
            alloc = TaskletAllocator(
                wram_base=base,
                wram_capacity=plan.slice_bytes,
                mram_base=layout.metadata_addr(t)
                if layout.metadata_bytes_per_tasklet > 0
                else layout.metadata_base,
                mram_capacity=layout.metadata_bytes_per_tasklet,
                metadata_policy=metadata_policy,
            )
            # Reserve the fixed buffers exactly as planned.
            input_alloc = alloc.alloc_buffer(aligned_size(self.input_record_bytes()))
            result_alloc = alloc.alloc_buffer(aligned_size(self.result_record_bytes()))
            staging = []
            for _ in range(plan.staging_buffers):
                staging.append(alloc.alloc_buffer(plan.staging_buffer_bytes).addr)
            ctx = TaskletContext(tasklet_id=t, allocator=alloc)
            ctx.input_buffer = input_alloc.addr
            ctx.result_buffer = result_alloc.addr
            ctx.staging_buffers = tuple(staging)
            contexts.append(ctx)

        precomputed: Optional[dict[int, BatchPairView]] = None
        if (
            self.config.engine == "vector"
            and self.config.span.is_global
            and not self.config.adaptive
        ):
            precomputed = self._prepare_vector(dpu, layout, assignments)

        results: list[tuple[int, AlignmentResult]] = []
        for ctx, indices in zip(contexts, assignments):
            for index in indices:
                result = self._align_one(
                    dpu, layout, ctx, index, metadata_policy, trace, precomputed
                )
                if collect_results:
                    results.append((index, result))
        return [ctx.stats for ctx in contexts], results

    def _prepare_vector(
        self,
        dpu: Dpu,
        layout: MramLayout,
        assignments: list[list[int]],
    ) -> dict[int, BatchPairView]:
        """Batch-align the whole DPU's pairs with the vectorized engine.

        Reads the input records directly out of MRAM — the same bytes the
        per-tasklet DMA will fetch (fault injection corrupts MRAM before
        the kernel runs), without touching the DMA engine, so transfer
        charging and trace events stay exactly where the scalar path puts
        them.  ``_align_one`` still parses each pair out of WRAM after
        its charged fetch and only uses the precomputed result when the
        sequences match byte-for-byte; any divergence (e.g. a corrupting
        DMA fault hook) falls back to the scalar engine.
        """
        cfg = self.config
        indices = [index for tasklet in assignments for index in tasklet]
        if not indices:
            return {}
        pairs = []
        for index in indices:
            record = dpu.mram.read(
                layout.input_addr(index), layout.input_record_size
            )
            pairs.append(layout.unpack_pair(record))
        engine = BatchWfaEngine(
            [(p.pattern, p.text) for p in pairs],
            cfg.penalties,
            memory_mode="full" if cfg.traceback else "low",
            max_score=cfg.max_score,
            span=cfg.span,
        )
        return dict(zip(indices, engine.run()))

    # -- one pair ------------------------------------------------------

    def _align_one(
        self,
        dpu: Dpu,
        layout: MramLayout,
        ctx: TaskletContext,
        index: int,
        metadata_policy: str,
        trace: Optional[KernelTrace] = None,
        precomputed: Optional[dict[int, BatchPairView]] = None,
    ) -> AlignmentResult:
        cfg = self.config
        stats = ctx.stats
        # 1. Fetch the input record MRAM -> WRAM.
        size = layout.input_record_size
        cycles = dpu.dma.read_large(layout.input_addr(index), ctx.input_buffer, size)
        stats.add_dma(cycles, size)
        if trace is not None:
            trace.record(
                TraceEvent(
                    tasklet_id=ctx.tasklet_id,
                    pair_index=index,
                    phase="fetch",
                    cycles=cycles,
                    dma_bytes=size,
                    dpu_id=dpu.dpu_id,
                )
            )
        record = dpu.wram.read(ctx.input_buffer, size)
        pair = layout.unpack_pair(record)

        # 2. Align (functional engine; counters drive the cost replay).
        # A precomputed batch view is used only when its sequences match
        # what the charged DMA actually delivered (fault hooks may have
        # corrupted the WRAM copy since the batch ran over MRAM).
        view = precomputed.get(index) if precomputed is not None else None
        if view is not None and (view.pattern, view.text) != (
            pair.pattern,
            pair.text,
        ):
            view = None
        if view is not None:
            if view.error is not None:
                raise KernelError(
                    f"pair {index} exceeded the kernel score bound "
                    f"{cfg.max_score}: {view.error}"
                )
            engine = view
            score = view.final_score
        else:
            engine = WfaEngine(
                pair.pattern,
                pair.text,
                cfg.penalties,
                memory_mode="full" if cfg.traceback else "low",
                heuristic=cfg.heuristic(),
                max_score=cfg.max_score,
                span=cfg.span,
            )
            try:
                score = engine.run()
            except AlignmentError as exc:
                raise KernelError(
                    f"pair {index} exceeded the kernel score bound "
                    f"{cfg.max_score}: {exc}"
                ) from exc
        cigar = backtrace(engine) if cfg.traceback else None
        counters = engine.counters

        instructions = self.cost_model.instructions(counters, pairs=1)
        stats.instructions += instructions
        stats.cells_computed += counters.cells_computed
        stats.extend_steps += counters.extend_steps
        if trace is not None:
            trace.record(
                TraceEvent(
                    tasklet_id=ctx.tasklet_id,
                    pair_index=index,
                    phase="align",
                    cycles=instructions,  # 1 instr/cycle at full pipeline
                    instructions=instructions,
                    detail=f"score={score} cells={counters.cells_computed}",
                    dpu_id=dpu.dpu_id,
                )
            )

        # 3. Replay metadata allocation/staging against the allocator+DMA.
        mark = ctx.allocator.wram_mark()
        dma_before = (stats.dma_cycles, stats.dma_bytes)
        try:
            self._replay_metadata(dpu, ctx, counters, metadata_policy)
        except AllocationError as exc:
            raise KernelError(
                f"metadata arena overflow on pair {index} "
                f"(policy={metadata_policy!r}): {exc}"
            ) from exc
        finally:
            ctx.allocator.reset_metadata()
            ctx.allocator.wram_release(mark)
        if trace is not None:
            trace.record(
                TraceEvent(
                    tasklet_id=ctx.tasklet_id,
                    pair_index=index,
                    phase="metadata",
                    cycles=stats.dma_cycles - dma_before[0],
                    dma_bytes=stats.dma_bytes - dma_before[1],
                    detail=metadata_policy,
                    dpu_id=dpu.dpu_id,
                )
            )

        # 4. Write the result record WRAM -> MRAM.
        p_end = engine.end_offset - engine.end_k
        t_end = engine.end_offset
        p_start = p_end - cigar.pattern_length() if cigar is not None else 0
        t_start = t_end - cigar.text_length() if cigar is not None else 0
        record_out = layout.pack_result(score, cigar, p_start, t_start)
        dpu.wram.write(ctx.result_buffer, record_out)
        cycles = dpu.dma.write_large(
            ctx.result_buffer, layout.result_addr(index), layout.result_record_size
        )
        stats.add_dma(cycles, layout.result_record_size)
        if trace is not None:
            trace.record(
                TraceEvent(
                    tasklet_id=ctx.tasklet_id,
                    pair_index=index,
                    phase="writeback",
                    cycles=cycles,
                    dma_bytes=layout.result_record_size,
                    dpu_id=dpu.dpu_id,
                )
            )
        stats.pairs_done += 1

        return AlignmentResult(
            score=score,
            cigar=cigar,
            counters=counters,
            penalties=cfg.penalties,
            pattern_len=len(pair.pattern),
            text_len=len(pair.text),
            exact=not cfg.adaptive,
            pattern_start=p_start,
            pattern_end=p_end,
            text_start=t_start,
            text_end=t_end,
        )

    def _replay_metadata(
        self,
        dpu: Dpu,
        ctx: TaskletContext,
        counters,
        metadata_policy: str,
    ) -> None:
        """Replay the engine's wavefront allocations on the DPU memory.

        ``"wram"`` policy: every wavefront is bump-allocated from the
        tasklet's WRAM arena (overflow = the paper's thread-count
        problem); cell accesses are plain WRAM load/stores already priced
        into the instruction costs — no DMA.

        ``"mram"`` policy: wavefronts are bump-allocated from the
        tasklet's MRAM arena.  Each is DMA-written once at creation
        (stage-out) and DMA-read back once per later score that uses it
        as a recurrence source — M wavefronts twice under affine
        penalties (mismatch source and gap-open source), I/D once —
        plus once more during traceback.
        """
        log = counters.wavefront_log
        if not log:
            return
        if metadata_policy == "wram":
            for _score, _comp, lo, hi in log:
                ctx.allocator.alloc_metadata(4 * (hi - lo + 1))
            return

        computed_scores = {score for score, _c, _l, _h in log}
        pen = self.config.penalties
        if isinstance(pen, TwoPieceAffinePenalties):

            def reads_of(s: int, comp: str) -> int:
                if comp == "M":
                    return (
                        int(s + pen.mismatch in computed_scores)
                        + int(s + pen.gap_open1 + pen.gap_extend1 in computed_scores)
                        + int(s + pen.gap_open2 + pen.gap_extend2 in computed_scores)
                    )
                if comp in ("I", "D"):
                    return int(s + pen.gap_extend1 in computed_scores)
                return int(s + pen.gap_extend2 in computed_scores)

        elif isinstance(pen, AffinePenalties):
            reads_of = lambda s, comp: (  # noqa: E731 - small local table
                int(s + pen.mismatch in computed_scores)
                + int(s + pen.gap_open + pen.gap_extend in computed_scores)
                if comp == "M"
                else int(s + pen.gap_extend in computed_scores)
            )
        elif isinstance(pen, LinearPenalties):
            reads_of = lambda s, comp: int(  # noqa: E731
                s + pen.mismatch in computed_scores
            ) + int(s + pen.indel in computed_scores)
        else:  # edit
            reads_of = lambda s, comp: int(s + 1 in computed_scores)  # noqa: E731

        stage = ctx.staging_buffers[0] if ctx.staging_buffers else ctx.input_buffer
        chunk = self.config.staging_chunk_bytes
        for score, comp, lo, hi in log:
            nbytes = aligned_size(4 * (hi - lo + 1))
            alloc = ctx.allocator.alloc_metadata(nbytes)
            # Stage-out at creation.
            cycles = self._stage(dpu, stage, alloc.addr, nbytes, chunk, write=True)
            stats_reads = reads_of(score, comp)
            if self.config.traceback:
                stats_reads += 1
            ctx.stats.add_dma(cycles, nbytes)
            # Stage-in for each later use.
            for _ in range(stats_reads):
                cycles = self._stage(
                    dpu, stage, alloc.addr, nbytes, chunk, write=False
                )
                ctx.stats.add_dma(cycles, nbytes)

    @staticmethod
    def _stage(
        dpu: Dpu, stage: int, mram_addr: int, nbytes: int, chunk: Optional[int],
        write: bool,
    ) -> float:
        """Move ``nbytes`` between the staging buffer and MRAM.

        Whole-wavefront mode reuses the large staging buffer; chunked
        mode loops a fixed-size buffer over the block (more transfers,
        constant WRAM).
        """
        if chunk is None:
            if write:
                return dpu.dma.write_large(stage, mram_addr, nbytes)
            return dpu.dma.read_large(mram_addr, stage, nbytes)
        cycles = 0.0
        done = 0
        while done < nbytes:
            piece = min(chunk, nbytes - done)
            if write:
                cycles += dpu.dma.write(stage, mram_addr + done, piece)
            else:
                cycles += dpu.dma.read(mram_addr + done, stage, piece)
            done += piece
        return cycles


def max_supported_tasklets(
    kernel: WfaDpuKernel, dpu_config: DpuConfig, metadata_policy: str
) -> int:
    """Largest tasklet count whose WRAM plan is admissible (0 if none).

    This is the quantitative form of the paper's design argument: under
    the ``"wram"`` policy the metadata arena eats the slice and few
    tasklets fit; under the ``"mram"`` policy all 24 usually do.
    """
    best = 0
    for t in range(1, dpu_config.max_tasklets + 1):
        try:
            kernel.plan_wram(dpu_config, t, metadata_policy)
        except KernelError:
            continue
        best = t
    return best
