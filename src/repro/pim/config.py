"""UPMEM PIM architecture configuration.

Numbers and their provenance:

* **DPU organization** — a UPMEM DIMM is a DDR4-2400 module with PIM
  chips; each DPU is an in-order 32-bit RISC core with up to 24 hardware
  threads (tasklets), a private 64 MB MRAM bank and a 64 KB WRAM
  scratchpad (paper §I; Devaux, Hot Chips 2019).
* **Pipeline** — DPUs use revolving fine-grained multithreading: an
  instruction from the *same* tasklet can be dispatched at most once
  every 11 cycles, so the pipeline only reaches one-instruction-per-cycle
  throughput with >= 11 active tasklets (PrIM, Gómez-Luna et al. 2021).
* **Clock** — the paper's system runs DPUs at 425 MHz.
* **MRAM DMA** — explicit 8-byte-aligned DMA between MRAM and WRAM, sizes
  multiple of 8 in [8, 2048] bytes; streaming bandwidth ~628 MB/s per DPU
  with a fixed per-transfer setup cost (PrIM microbenchmarks).
* **Host transfers** — parallel CPU->DPU / DPU->CPU copies across all
  ranks; PrIM's *peak* aggregate figures at ~2556 DPUs are 6.68 / 4.07
  GB/s.  The defaults below are *effective* scatter/gather bandwidths
  (including SDK rank-interleaving and buffer-assembly overhead),
  calibrated so the paper's Kernel-vs-Total split is reproduced; see
  ``repro/perf/calibration.py`` for the derivation.
* **Scale** — the paper's system has 20 DIMMs = 2560 DPUs (2 ranks per
  DIMM, 64 DPUs per rank).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

__all__ = [
    "DpuTimingConfig",
    "DpuConfig",
    "HostTransferConfig",
    "PimSystemConfig",
    "upmem_paper_system",
    "upmem_single_rank",
    "MB",
    "KB",
]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class DpuTimingConfig:
    """Cycle-level timing parameters of one DPU."""

    frequency_hz: float = 425e6
    #: minimum cycles between two instructions of the same tasklet
    #: (revolving-pipeline dispatch period).
    pipeline_period: int = 11
    #: fixed cycles to set up one MRAM<->WRAM DMA transfer.
    dma_setup_cycles: float = 77.0
    #: cycles to stream each 8-byte beat of a DMA transfer.  5.4 cycles
    #: per 8 B at 425 MHz is ~630 MB/s, matching PrIM's measured
    #: streaming bandwidth.
    dma_cycles_per_8b: float = 5.4

    def validate(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigError("frequency_hz must be positive")
        if self.pipeline_period < 1:
            raise ConfigError("pipeline_period must be >= 1")
        if self.dma_setup_cycles < 0 or self.dma_cycles_per_8b <= 0:
            raise ConfigError("DMA cycle parameters must be positive")

    def dma_cycles(self, nbytes: int) -> float:
        """Cycles for one DMA transfer of ``nbytes`` (already validated)."""
        beats = (nbytes + 7) // 8
        return self.dma_setup_cycles + beats * self.dma_cycles_per_8b

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds at this clock."""
        return cycles / self.frequency_hz


@dataclass(frozen=True)
class DpuConfig:
    """Capacity and threading parameters of one DPU."""

    mram_bytes: int = 64 * MB
    wram_bytes: int = 64 * KB
    max_tasklets: int = 24
    timing: DpuTimingConfig = field(default_factory=DpuTimingConfig)

    def validate(self) -> None:
        if self.mram_bytes <= 0 or self.wram_bytes <= 0:
            raise ConfigError("memory sizes must be positive")
        if not 1 <= self.max_tasklets <= 24:
            raise ConfigError("max_tasklets must be in [1, 24]")
        self.timing.validate()


@dataclass(frozen=True)
class HostTransferConfig:
    """Effective aggregate host<->DPU copy bandwidths (full system).

    ``peak_*`` document PrIM's ideal parallel-transfer peaks;
    ``effective_*`` are what the scatter/gather of many small per-pair
    records achieves and are the values the timing model uses.
    """

    peak_to_dpu_bytes_per_s: float = 6.68e9
    peak_from_dpu_bytes_per_s: float = 4.07e9
    #: ~99% of PrIM's peaks: the workload pushes one large contiguous
    #: block (~430 KB) per DPU, exactly the regime where parallel
    #: transfers peak.
    effective_to_dpu_bytes_per_s: float = 6.6e9
    effective_from_dpu_bytes_per_s: float = 4.02e9
    #: per-rank copy bandwidth (PrIM: parallel transfers scale with the
    #: number of ranks until the aggregate saturates; a single rank moves
    #: ~0.7 GB/s in, ~0.45 GB/s out).  Small systems are rank-bound, the
    #: paper's 40-rank system is aggregate-bound.
    per_rank_to_dpu_bytes_per_s: float = 0.7e9
    per_rank_from_dpu_bytes_per_s: float = 0.45e9
    #: fixed software overhead per launch (rank setup, parameter copy).
    launch_overhead_s: float = 0.01

    def validate(self) -> None:
        for name in (
            "peak_to_dpu_bytes_per_s",
            "peak_from_dpu_bytes_per_s",
            "effective_to_dpu_bytes_per_s",
            "effective_from_dpu_bytes_per_s",
            "per_rank_to_dpu_bytes_per_s",
            "per_rank_from_dpu_bytes_per_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.launch_overhead_s < 0:
            raise ConfigError("launch_overhead_s must be >= 0")


@dataclass(frozen=True)
class PimSystemConfig:
    """A full UPMEM system: many DPUs plus host-transfer characteristics.

    ``num_simulated_dpus`` bounds how many DPUs are *functionally*
    simulated; work is distributed round-robin, so simulating a
    representative subset and extrapolating per-DPU time to ``num_dpus``
    is exact up to load-imbalance noise (which the experiments measure
    and report).  Set it equal to ``num_dpus`` for small systems.
    """

    num_dpus: int = 2560
    num_ranks: int = 40
    tasklets: int = 16
    dpu: DpuConfig = field(default_factory=DpuConfig)
    transfer: HostTransferConfig = field(default_factory=HostTransferConfig)
    num_simulated_dpus: int = 4
    #: metadata placement policy: "mram" (the paper's design: WFA
    #: wavefronts live in MRAM, staged through WRAM on demand) or "wram"
    #: (everything in WRAM; caps the usable tasklet count).
    metadata_policy: str = "mram"
    #: host worker processes for the per-DPU simulations: 1 = sequential
    #: (in-process), N > 1 = a process pool of N, 0 = one per CPU core.
    #: Parallel runs are result-identical to sequential runs (see
    #: ``repro.pim.parallel``), so this only trades host wall clock for
    #: cores when ``num_simulated_dpus`` is raised for fidelity.
    workers: int = 1

    def validate(self) -> None:
        if self.num_dpus < 1:
            raise ConfigError("num_dpus must be >= 1")
        if self.num_ranks < 1 or self.num_dpus % self.num_ranks != 0:
            raise ConfigError("num_dpus must be a positive multiple of num_ranks")
        if not 1 <= self.tasklets <= self.dpu.max_tasklets:
            raise ConfigError(
                f"tasklets must be in [1, {self.dpu.max_tasklets}], got {self.tasklets}"
            )
        if not 1 <= self.num_simulated_dpus <= self.num_dpus:
            raise ConfigError("num_simulated_dpus must be in [1, num_dpus]")
        if self.metadata_policy not in ("mram", "wram"):
            raise ConfigError(f"unknown metadata_policy {self.metadata_policy!r}")
        if self.workers < 0:
            raise ConfigError(f"workers must be >= 0, got {self.workers}")
        self.dpu.validate()
        self.transfer.validate()

    @property
    def dpus_per_rank(self) -> int:
        return self.num_dpus // self.num_ranks

    def with_(self, **changes) -> "PimSystemConfig":
        """Functional update helper (frozen dataclass)."""
        return replace(self, **changes)


def upmem_paper_system(
    tasklets: int = 16,
    num_simulated_dpus: int = 4,
    metadata_policy: str = "mram",
) -> PimSystemConfig:
    """The paper's full-scale system: 20 DIMMs = 2560 DPUs @ 425 MHz."""
    cfg = PimSystemConfig(
        num_dpus=2560,
        num_ranks=40,
        tasklets=tasklets,
        num_simulated_dpus=num_simulated_dpus,
        metadata_policy=metadata_policy,
    )
    cfg.validate()
    return cfg


def upmem_single_rank(
    tasklets: int = 16, metadata_policy: str = "mram"
) -> PimSystemConfig:
    """A single 64-DPU rank, fully simulated — for tests and examples."""
    cfg = PimSystemConfig(
        num_dpus=64,
        num_ranks=1,
        tasklets=tasklets,
        num_simulated_dpus=64,
        metadata_policy=metadata_policy,
    )
    cfg.validate()
    return cfg
