"""Write-ahead journal + checkpoint for crash-resumable batch runs.

A host crash mid-batch today loses every completed round; at the
paper's scale (millions of pairs over thousands of DPUs) that is hours
of modeled device time.  This module gives :class:`~repro.pim.scheduler.BatchScheduler`
durable, resumable runs:

* the scheduler opens a :class:`RunJournal` before the first round and
  appends one record per completed round — admitted-workload
  fingerprint, per-round placement, the full gathered result set
  (digest-keyed by the workload), and the round's recovery outcome;
* a crashed run is resumed with
  :meth:`~repro.pim.scheduler.BatchScheduler.resume_run`, which replays
  the journaled rounds *idempotently* (no device work, no re-shifting,
  no double-counted recovery) and executes only the incomplete
  remainder — the final :class:`~repro.pim.scheduler.ScheduledRun` is
  byte-identical to an uninterrupted run's, a guarantee the test suite
  pins at ``workers=0`` and ``workers=2``.

File format (``repro.pim.journal/v1``): JSONL.  Line 1 is the header —
schema tag plus a :func:`workload_fingerprint` of everything that
determines the run's outcome (pair digest, round size, system shape,
fault plan, retry policy, health policy).  Each subsequent line is one
``{"type": "round", "index": k, "start": ..., "size": ..., "result": ...}``
record carrying a fully serialized :class:`~repro.pim.system.PimRunResult`
(floats round-trip exactly through JSON's shortest-repr encoding, so
replayed timings are bit-equal).  Appends are atomic at record
granularity: the journal rewrites to a temp file in the same directory
and ``os.replace``\\ s it over the old one, so a crash leaves either the
old or the new journal, never a torn line — and a torn final line from
some other writer is tolerated (ignored) at load.

Resume refuses to mix workloads: a journal whose fingerprint does not
match the offered workload/configuration raises
:class:`~repro.errors.JournalError` instead of silently splicing
results from a different run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.core.cigar import Cigar
from repro.errors import JournalError
from repro.pim.dpu import DpuKernelStats
from repro.pim.faults import FaultPlan, RecoveryReport, RetryPolicy
from repro.pim.system import PimRunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.generator import ReadPair
    from repro.pim.health import HealthPolicy

__all__ = [
    "JOURNAL_SCHEMA",
    "RunJournal",
    "workload_fingerprint",
    "result_to_dict",
    "result_from_dict",
]

JOURNAL_SCHEMA = "repro.pim.journal/v1"


def workload_fingerprint(
    pairs: "list[ReadPair]",
    pairs_per_round: int,
    num_dpus: int,
    tasklets: int,
    metadata_policy: str,
    collect_results: bool,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    health_policy: Optional["HealthPolicy"] = None,
) -> dict:
    """Digest of everything that determines a journaled run's outcome.

    Two runs with equal fingerprints are guaranteed to produce
    byte-identical rounds (the simulator is deterministic in these
    inputs), which is exactly the property resume relies on when it
    splices journaled rounds into a fresh run.  ``workers`` is
    deliberately absent: parallel and sequential execution are
    result-identical, so a run journaled at ``workers=2`` may resume at
    ``workers=0`` and vice versa.  ``shards`` is absent for the same
    reason — placement never changes results — and lives in the fleet
    manifest (``repro.pim.fleet/v1``) instead, where
    :meth:`~repro.pim.fleet.FleetCoordinator.resume_run` checks it
    explicitly; a fleet run journaled at any worker count resumes at
    any other.
    """
    digest = hashlib.sha256()
    for pair in pairs:
        digest.update(pair.pattern.encode())
        digest.update(b"\t")
        digest.update(pair.text.encode())
        digest.update(b"\n")
    doc = {
        "pairs_digest": digest.hexdigest(),
        "num_pairs": len(pairs),
        "pairs_per_round": pairs_per_round,
        "num_dpus": num_dpus,
        "tasklets": tasklets,
        "metadata_policy": metadata_policy,
        "collect_results": bool(collect_results),
        "fault_plan": fault_plan.to_dict() if fault_plan is not None else None,
        "retry_policy": asdict(retry_policy) if retry_policy is not None else None,
        "health_policy": asdict(health_policy) if health_policy is not None else None,
    }
    # Normalise through JSON so a fingerprint loaded back from a journal
    # compares equal to a freshly computed one (tuples become lists).
    return json.loads(json.dumps(doc))


# -- PimRunResult serialization ------------------------------------------------


def result_to_dict(run: PimRunResult) -> dict:
    """JSON-ready round checkpoint; inverse of :func:`result_from_dict`.

    List orderings are preserved verbatim (``results`` arrives in the
    deterministic dpu-then-local merge order; ``regions`` keeps dict
    insertion order) so the reconstruction is byte-identical, not just
    set-equal.
    """
    return {
        "num_pairs": run.num_pairs,
        "pairs_simulated": run.pairs_simulated,
        "tasklets": run.tasklets,
        "metadata_policy": run.metadata_policy,
        "kernel_seconds": run.kernel_seconds,
        "transfer_in_seconds": run.transfer_in_seconds,
        "transfer_out_seconds": run.transfer_out_seconds,
        "launch_seconds": run.launch_seconds,
        "bytes_in": run.bytes_in,
        "bytes_out": run.bytes_out,
        "per_dpu": [asdict(s) for s in run.per_dpu],
        "results": [
            [index, score, None if cigar is None else str(cigar)]
            for index, score, cigar in run.results
        ],
        "regions": [[index, p, t] for index, (p, t) in run.regions.items()],
        "scale_factor": run.scale_factor,
        "recovery": run.recovery.to_dict() if run.recovery is not None else None,
        "active_dpus": None if run.active_dpus is None else list(run.active_dpus),
    }


def result_from_dict(data: dict) -> PimRunResult:
    """Rebuild a round's :class:`PimRunResult` from its journal record."""
    try:
        return PimRunResult(
            num_pairs=int(data["num_pairs"]),
            pairs_simulated=int(data["pairs_simulated"]),
            tasklets=int(data["tasklets"]),
            metadata_policy=str(data["metadata_policy"]),
            kernel_seconds=float(data["kernel_seconds"]),
            transfer_in_seconds=float(data["transfer_in_seconds"]),
            transfer_out_seconds=float(data["transfer_out_seconds"]),
            launch_seconds=float(data["launch_seconds"]),
            bytes_in=int(data["bytes_in"]),
            bytes_out=int(data["bytes_out"]),
            per_dpu=[DpuKernelStats(**s) for s in data["per_dpu"]],
            results=[
                (
                    int(index),
                    int(score),
                    None if cigar is None else Cigar.from_string(cigar),
                )
                for index, score, cigar in data["results"]
            ],
            regions={
                int(index): (int(p), int(t)) for index, p, t in data["regions"]
            },
            scale_factor=float(data["scale_factor"]),
            recovery=(
                RecoveryReport.from_dict(data["recovery"])
                if data["recovery"] is not None
                else None
            ),
            active_dpus=(
                None
                if data["active_dpus"] is None
                else tuple(int(d) for d in data["active_dpus"])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"malformed round record: {exc}") from exc


# -- the journal file ----------------------------------------------------------


class RunJournal:
    """One run's JSONL journal: a header line plus per-round records.

    The whole journal is kept in memory (a run has at most a few dozen
    rounds) and rewritten atomically on every append: serialize to a
    temp file alongside the target, ``os.replace`` over it.  Loading
    tolerates a torn trailing line (dropped with the partial round it
    described) but raises :class:`~repro.errors.JournalError` for a
    missing/foreign header or records that do not parse.
    """

    def __init__(self, path: Union[str, Path], header: dict) -> None:
        self.path = Path(path)
        self.header = header
        self._records: list[dict] = []

    # -- constructors -----------------------------------------------------

    @classmethod
    def create(cls, path: Union[str, Path], fingerprint: dict) -> "RunJournal":
        """Start a fresh journal (truncating any previous file at ``path``)."""
        journal = cls(path, {"schema": JOURNAL_SCHEMA, "fingerprint": fingerprint})
        journal._write()
        return journal

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunJournal":
        """Load an existing journal, dropping a torn trailing line."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc
        lines = text.splitlines()
        if not lines:
            raise JournalError(f"journal {path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(f"journal {path} has a malformed header") from exc
        if not isinstance(header, dict) or header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {path} is not a {JOURNAL_SCHEMA} document "
                f"(got {header.get('schema') if isinstance(header, dict) else header!r})"
            )
        journal = cls(path, header)
        for n, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if n == len(lines):
                    break  # torn trailing line: the crash interrupted a write
                raise JournalError(f"journal {path}: malformed record at line {n}")
            if not isinstance(record, dict) or record.get("type") != "round":
                raise JournalError(
                    f"journal {path}: unexpected record at line {n}"
                )
            journal._records.append(record)
        return journal

    # -- contents ---------------------------------------------------------

    @property
    def fingerprint(self) -> dict:
        return self.header.get("fingerprint", {})

    @property
    def records(self) -> list[dict]:
        return list(self._records)

    def rounds(self) -> dict[int, dict]:
        """Completed rounds by index (first record per index wins, so a
        replayed-and-reappended round can never diverge)."""
        out: dict[int, dict] = {}
        for record in self._records:
            index = int(record["index"])
            if index not in out:
                out[index] = record
        return out

    def append_round(
        self, index: int, start: int, size: int, result: PimRunResult
    ) -> None:
        """Durably record one completed round (atomic rewrite)."""
        self._records.append(
            {
                "type": "round",
                "index": index,
                "start": start,
                "size": size,
                "result": result_to_dict(result),
            }
        )
        self._write()

    def validate_fingerprint(self, expected: dict) -> None:
        """Refuse to resume against a different workload/configuration."""
        if self.fingerprint != expected:
            mismatched = sorted(
                key
                for key in set(self.fingerprint) | set(expected)
                if self.fingerprint.get(key) != expected.get(key)
            )
            raise JournalError(
                "journal fingerprint does not match the offered workload/"
                f"configuration (differs in: {', '.join(mismatched) or 'shape'})"
            )

    # -- disk -------------------------------------------------------------

    def _write(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(self.header, sort_keys=True)]
        lines += [json.dumps(r, sort_keys=True) for r in self._records]
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write("\n".join(lines) + "\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
