"""Byte-accurate simulated DPU memories.

Two memory spaces per DPU, as on real UPMEM hardware:

* :class:`Wram` — the 64 KB SRAM scratchpad.  Load/store accessible by
  tasklets (modelled with :meth:`read`/:meth:`write`); shared by all
  tasklets of a DPU, which is why the paper cannot keep per-thread WFA
  metadata there without sacrificing thread count.
* :class:`Mram` — the 64 MB DRAM bank.  *Not* directly load/store
  accessible: tasklets move data with DMA transfers (see
  :mod:`repro.pim.dma`), and the host reads/writes it through
  :meth:`host_read`/:meth:`host_write` (the CPU<->DPU transfer path).

Both enforce bounds; MRAM backing storage grows lazily so that
simulating a 64 MB bank that only ever holds a few hundred KB of reads
costs a few hundred KB of host memory.
"""

from __future__ import annotations

from repro.errors import MemoryFault

__all__ = ["SimMemory", "Wram", "Mram"]


class SimMemory:
    """Bounds-checked byte-addressable memory with access accounting."""

    def __init__(self, capacity: int, name: str = "mem") -> None:
        if capacity <= 0:
            raise MemoryFault(f"{name}: capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._data = bytearray()
        # Accounting (bytes moved through this memory).
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0

    # -- bounds / growth ----------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if size < 0:
            raise MemoryFault(f"{self.name}: negative access size {size}")
        if addr < 0 or addr + size > self.capacity:
            raise MemoryFault(
                f"{self.name}: access [{addr}, {addr + size}) outside "
                f"capacity {self.capacity}"
            )

    def _ensure(self, end: int) -> None:
        if len(self._data) < end:
            self._data.extend(b"\x00" * (end - len(self._data)))

    # -- access ------------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at ``addr``; unwritten bytes read as zero."""
        self._check(addr, size)
        self._ensure(addr + size)
        self.bytes_read += size
        self.read_ops += 1
        return bytes(self._data[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr``."""
        self._check(addr, len(data))
        self._ensure(addr + len(data))
        self._data[addr : addr + len(data)] = data
        self.bytes_written += len(data)
        self.write_ops += 1

    # -- small typed helpers (little-endian, as on the 32-bit DPU) ---------

    def read_u32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def write_u32(self, addr: int, value: int) -> None:
        if not 0 <= value < 2**32:
            raise MemoryFault(f"{self.name}: u32 out of range: {value}")
        self.write(addr, value.to_bytes(4, "little"))

    def read_i32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little", signed=True)

    def write_i32(self, addr: int, value: int) -> None:
        if not -(2**31) <= value < 2**31:
            raise MemoryFault(f"{self.name}: i32 out of range: {value}")
        self.write(addr, value.to_bytes(4, "little", signed=True))

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        if not 0 <= value < 2**64:
            raise MemoryFault(f"{self.name}: u64 out of range: {value}")
        self.write(addr, value.to_bytes(8, "little"))

    def flip_bits(self, addr: int, size: int, num_bits: int, rng) -> list[int]:
        """Flip ``num_bits`` random bits inside ``[addr, addr + size)``.

        The fault-injection hook: models radiation/transfer bit rot in a
        seeded, reproducible way (``rng`` is any ``random.Random``).
        Returns the absolute bit positions flipped (byte*8 + bit), sorted,
        so fault plans can be logged and replayed.  Does not touch the
        access counters — corruption is not a modeled memory operation.
        """
        if num_bits < 0:
            raise MemoryFault(f"{self.name}: num_bits must be >= 0, got {num_bits}")
        if size <= 0 and num_bits > 0:
            raise MemoryFault(f"{self.name}: cannot corrupt empty range at {addr}")
        self._check(addr, size)
        self._ensure(addr + size)
        positions = sorted(rng.randrange(size * 8) for _ in range(num_bits))
        for pos in positions:
            byte, bit = addr + pos // 8, pos % 8
            self._data[byte] ^= 1 << bit
        return [(addr + p // 8) * 8 + p % 8 for p in positions]

    def reset_counters(self) -> None:
        self.bytes_read = self.bytes_written = 0
        self.read_ops = self.write_ops = 0


class Wram(SimMemory):
    """The 64 KB working RAM (SRAM scratchpad) of one DPU."""

    def __init__(self, capacity: int = 64 * 1024) -> None:
        super().__init__(capacity, name="WRAM")


class Mram(SimMemory):
    """The 64 MB main RAM (DRAM bank) of one DPU.

    Host-side transfers use the ``host_*`` methods so that the transfer
    engine can account host traffic separately from on-DPU DMA traffic.
    """

    def __init__(self, capacity: int = 64 * 1024 * 1024) -> None:
        super().__init__(capacity, name="MRAM")
        self.host_bytes_in = 0
        self.host_bytes_out = 0

    def host_write(self, addr: int, data: bytes) -> None:
        """CPU -> MRAM copy (counted as host input traffic)."""
        self.write(addr, data)
        self.host_bytes_in += len(data)

    def host_read(self, addr: int, size: int) -> bytes:
        """MRAM -> CPU copy (counted as host output traffic)."""
        data = self.read(addr, size)
        self.host_bytes_out += size
        return data
