"""The MRAM<->WRAM DMA engine of one DPU.

UPMEM tasklets cannot load/store MRAM directly: they issue DMA transfers
(``mram_read``/``mram_write`` in the SDK) with hard restrictions that this
model enforces exactly:

* the MRAM address must be **8-byte aligned**;
* the WRAM address must be 8-byte aligned (the SDK requires the buffer
  to be 8-byte aligned for correctness at all sizes);
* the size must be a **multiple of 8** between **8 and 2048** bytes.

These restrictions are the reason the paper replaces WFA's allocator: a
malloc that hands out unaligned, oddly-sized blocks cannot be staged to
MRAM.  :meth:`DmaEngine.read`/:meth:`DmaEngine.write` raise
:class:`AlignmentFault` on any violation — the simulator fails the same
way the hardware (or its simulator) would.

Each DPU has a single DMA engine shared by all tasklets, so DMA cycles
are accumulated globally per DPU (and per tasklet for occupancy
accounting); the DPU timing model treats total DMA cycles as one of its
bounding terms.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AlignmentFault
from repro.pim.config import DpuTimingConfig
from repro.pim.memory import Mram, Wram

__all__ = ["DMA_MIN", "DMA_MAX", "DMA_ALIGN", "DmaEngine", "aligned_size"]

DMA_ALIGN = 8
DMA_MIN = 8
DMA_MAX = 2048


def aligned_size(nbytes: int) -> int:
    """Round ``nbytes`` up to the DMA granularity (multiple of 8)."""
    return (nbytes + DMA_ALIGN - 1) // DMA_ALIGN * DMA_ALIGN


class DmaEngine:
    """Per-DPU DMA engine: validates, moves bytes, accounts cycles."""

    def __init__(self, mram: Mram, wram: Wram, timing: DpuTimingConfig) -> None:
        self.mram = mram
        self.wram = wram
        self.timing = timing
        self.transfers = 0
        self.bytes_moved = 0
        self.cycles = 0.0
        #: fault-injection hook: called with the transfer size before any
        #: bytes move; may raise (e.g. a tasklet-stall watchdog trip).
        #: See :class:`repro.pim.faults.FaultInjector`.
        self.fault_hook: "Callable[[int], None] | None" = None

    def _validate(self, mram_addr: int, wram_addr: int, size: int) -> None:
        if mram_addr % DMA_ALIGN != 0:
            raise AlignmentFault(
                f"MRAM address {mram_addr:#x} not {DMA_ALIGN}-byte aligned"
            )
        if wram_addr % DMA_ALIGN != 0:
            raise AlignmentFault(
                f"WRAM address {wram_addr:#x} not {DMA_ALIGN}-byte aligned"
            )
        if size % DMA_ALIGN != 0 or not DMA_MIN <= size <= DMA_MAX:
            raise AlignmentFault(
                f"DMA size {size} invalid: must be a multiple of {DMA_ALIGN} "
                f"in [{DMA_MIN}, {DMA_MAX}]"
            )

    def _charge(self, size: int) -> float:
        cycles = self.timing.dma_cycles(size)
        self.transfers += 1
        self.bytes_moved += size
        self.cycles += cycles
        return cycles

    def read(self, mram_addr: int, wram_addr: int, size: int) -> float:
        """MRAM -> WRAM transfer; returns the cycles charged."""
        self._validate(mram_addr, wram_addr, size)
        if self.fault_hook is not None:
            self.fault_hook(size)
        data = self.mram.read(mram_addr, size)
        self.wram.write(wram_addr, data)
        return self._charge(size)

    def write(self, wram_addr: int, mram_addr: int, size: int) -> float:
        """WRAM -> MRAM transfer; returns the cycles charged."""
        self._validate(mram_addr, wram_addr, size)
        if self.fault_hook is not None:
            self.fault_hook(size)
        data = self.wram.read(wram_addr, size)
        self.mram.write(mram_addr, data)
        return self._charge(size)

    def read_large(self, mram_addr: int, wram_addr: int, size: int) -> float:
        """Read of any 8-aligned size, split into <=2048-byte transfers.

        Mirrors the chunking loop every real DPU program writes around
        ``mram_read`` for buffers above the 2048-byte DMA limit.
        """
        if size % DMA_ALIGN != 0:
            raise AlignmentFault(f"read_large size {size} not a multiple of 8")
        cycles = 0.0
        done = 0
        while done < size:
            chunk = min(DMA_MAX, size - done)
            cycles += self.read(mram_addr + done, wram_addr + done, chunk)
            done += chunk
        return cycles

    def write_large(self, wram_addr: int, mram_addr: int, size: int) -> float:
        """Write counterpart of :meth:`read_large`."""
        if size % DMA_ALIGN != 0:
            raise AlignmentFault(f"write_large size {size} not a multiple of 8")
        cycles = 0.0
        done = 0
        while done < size:
            chunk = min(DMA_MAX, size - done)
            cycles += self.write(wram_addr + done, mram_addr + done, chunk)
            done += chunk
        return cycles

    def reset_counters(self) -> None:
        self.transfers = 0
        self.bytes_moved = 0
        self.cycles = 0.0
