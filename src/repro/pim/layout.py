"""MRAM data layout: how read pairs and results live in a DPU's bank.

The host and the DPU kernel agree on a fixed-slot layout so that record
addresses are computable (no pointer chasing through MRAM) and every
record boundary is 8-byte aligned (DMA-able):

::

    0x00  header (64 B): magic, num_pairs, slot sizes, region bases
    .     input region:  num_pairs fixed-size input records
    .     output region: num_pairs fixed-size result records
    .     metadata region: per-tasklet WFA-metadata arenas (paper's
          "store the metadata in MRAM" design)

Input record: ``u32 pattern_len | u32 text_len | pattern (padded to 8) |
text (padded to 8)``.  Result record: ``i32 score | u32 n_ops |
u32 pattern_start | u32 text_start | n_ops x u32 packed RLE CIGAR
(padded to 8)`` where each op packs ``length << 8 | ascii(op)`` and the
start fields give the aligned region's origin (0 for global alignment;
meaningful under ends-free spans).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cigar import Cigar, CigarOp
from repro.data.generator import ReadPair
from repro.errors import LayoutError
from repro.pim.dma import aligned_size
from repro.pim.memory import Mram

__all__ = ["MramLayout", "HEADER_BYTES", "LAYOUT_MAGIC"]

HEADER_BYTES = 64
LAYOUT_MAGIC = 0x5746_4150_494D_0001  # "WFA PIM" v1


@dataclass(frozen=True)
class MramLayout:
    """Computed layout of one DPU's MRAM bank for a batch of pairs."""

    num_pairs: int
    pattern_slot: int  # padded bytes reserved per pattern
    text_slot: int
    max_cigar_ops: int  # RLE runs reservable per result
    metadata_bytes_per_tasklet: int
    tasklets: int

    @classmethod
    def plan(
        cls,
        num_pairs: int,
        max_pattern_len: int,
        max_text_len: int,
        max_cigar_ops: int,
        tasklets: int,
        metadata_bytes_per_tasklet: int = 0,
        mram_capacity: int = 64 * 1024 * 1024,
    ) -> "MramLayout":
        """Size the regions and check the bank can hold them."""
        if num_pairs < 0:
            raise LayoutError(f"num_pairs must be >= 0, got {num_pairs}")
        if max_pattern_len < 0 or max_text_len < 0:
            raise LayoutError("sequence slot lengths must be >= 0")
        if max_cigar_ops < 1:
            raise LayoutError("max_cigar_ops must be >= 1")
        if tasklets < 1:
            raise LayoutError("tasklets must be >= 1")
        layout = cls(
            num_pairs=num_pairs,
            pattern_slot=aligned_size(max(max_pattern_len, 1)),
            text_slot=aligned_size(max(max_text_len, 1)),
            max_cigar_ops=max_cigar_ops,
            metadata_bytes_per_tasklet=aligned_size(metadata_bytes_per_tasklet),
            tasklets=tasklets,
        )
        if layout.total_bytes > mram_capacity:
            raise LayoutError(
                f"layout needs {layout.total_bytes} bytes, MRAM bank holds "
                f"{mram_capacity}"
            )
        return layout

    # -- region geometry -----------------------------------------------------

    @property
    def input_record_size(self) -> int:
        return 8 + self.pattern_slot + self.text_slot

    @property
    def result_record_size(self) -> int:
        return 16 + aligned_size(4 * self.max_cigar_ops)

    @property
    def input_base(self) -> int:
        return HEADER_BYTES

    @property
    def output_base(self) -> int:
        return self.input_base + self.num_pairs * self.input_record_size

    @property
    def metadata_base(self) -> int:
        return self.output_base + self.num_pairs * self.result_record_size

    @property
    def total_bytes(self) -> int:
        return self.metadata_base + self.tasklets * self.metadata_bytes_per_tasklet

    def input_addr(self, index: int) -> int:
        self._check_index(index)
        return self.input_base + index * self.input_record_size

    def result_addr(self, index: int) -> int:
        self._check_index(index)
        return self.output_base + index * self.result_record_size

    def metadata_addr(self, tasklet: int) -> int:
        if not 0 <= tasklet < self.tasklets:
            raise LayoutError(f"tasklet {tasklet} outside [0, {self.tasklets})")
        return self.metadata_base + tasklet * self.metadata_bytes_per_tasklet

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_pairs:
            raise LayoutError(f"pair index {index} outside [0, {self.num_pairs})")

    # -- host-side serialization ---------------------------------------------

    def write_header(self, mram: Mram) -> None:
        """Write the layout header the DPU kernel parses at startup."""
        words = [
            LAYOUT_MAGIC,
            self.num_pairs,
            self.pattern_slot,
            self.text_slot,
            self.max_cigar_ops,
            self.metadata_bytes_per_tasklet,
            self.tasklets,
            0,
        ]
        data = b"".join(w.to_bytes(8, "little") for w in words)
        assert len(data) == HEADER_BYTES
        mram.host_write(0, data)

    @classmethod
    def read_header(cls, mram: Mram) -> "MramLayout":
        """Parse a header back into a layout (what the kernel does)."""
        data = mram.read(0, HEADER_BYTES)
        words = [
            int.from_bytes(data[i : i + 8], "little") for i in range(0, HEADER_BYTES, 8)
        ]
        if words[0] != LAYOUT_MAGIC:
            raise LayoutError(f"bad layout magic {words[0]:#x}")
        return cls(
            num_pairs=words[1],
            pattern_slot=words[2],
            text_slot=words[3],
            max_cigar_ops=words[4],
            metadata_bytes_per_tasklet=words[5],
            tasklets=words[6],
        )

    def pack_pair(self, pair: ReadPair) -> bytes:
        """Serialize one pair into its fixed-size input record."""
        p = pair.pattern.encode("ascii")
        t = pair.text.encode("ascii")
        if len(p) > self.pattern_slot:
            raise LayoutError(
                f"pattern of {len(p)} bytes exceeds slot {self.pattern_slot}"
            )
        if len(t) > self.text_slot:
            raise LayoutError(f"text of {len(t)} bytes exceeds slot {self.text_slot}")
        record = (
            len(p).to_bytes(4, "little")
            + len(t).to_bytes(4, "little")
            + p.ljust(self.pattern_slot, b"\x00")
            + t.ljust(self.text_slot, b"\x00")
        )
        assert len(record) == self.input_record_size
        return record

    def unpack_pair(self, record: bytes) -> ReadPair:
        """Deserialize an input record (the kernel-side view)."""
        if len(record) != self.input_record_size:
            raise LayoutError(
                f"input record of {len(record)} bytes, expected "
                f"{self.input_record_size}"
            )
        plen = int.from_bytes(record[0:4], "little")
        tlen = int.from_bytes(record[4:8], "little")
        if plen > self.pattern_slot or tlen > self.text_slot:
            raise LayoutError("input record lengths exceed their slots")
        try:
            pattern = record[8 : 8 + plen].decode("ascii")
            text = record[
                8 + self.pattern_slot : 8 + self.pattern_slot + tlen
            ].decode("ascii")
        except UnicodeDecodeError as exc:
            raise LayoutError(f"input record holds non-ASCII bytes: {exc}") from exc
        return ReadPair(pattern=pattern, text=text)

    def pack_result(
        self,
        score: int,
        cigar: Cigar | None,
        pattern_start: int = 0,
        text_start: int = 0,
    ) -> bytes:
        """Serialize a result record (what the kernel writes back)."""
        ops = list(cigar.ops) if cigar is not None else []
        if len(ops) > self.max_cigar_ops:
            raise LayoutError(
                f"CIGAR with {len(ops)} runs exceeds slot of {self.max_cigar_ops}"
            )
        if pattern_start < 0 or text_start < 0:
            raise LayoutError("aligned-region starts must be >= 0")
        # High bit of the op-count word distinguishes "CIGAR present" from
        # score-only results (an empty CIGAR — empty vs empty pair — is a
        # valid present CIGAR).
        n_ops_field = len(ops) | (0x8000_0000 if cigar is not None else 0)
        body = bytearray()
        body += score.to_bytes(4, "little", signed=True)
        body += n_ops_field.to_bytes(4, "little")
        body += pattern_start.to_bytes(4, "little")
        body += text_start.to_bytes(4, "little")
        for op in ops:
            if op.length >= 1 << 24:
                raise LayoutError(f"CIGAR run of {op.length} too long to pack")
            body += ((op.length << 8) | ord(op.op)).to_bytes(4, "little")
        record = bytes(body).ljust(self.result_record_size, b"\x00")
        assert len(record) == self.result_record_size
        return record

    def unpack_result(self, record: bytes) -> tuple[int, Cigar | None]:
        """Deserialize a result record (the host-side gather view)."""
        if len(record) != self.result_record_size:
            raise LayoutError(
                f"result record of {len(record)} bytes, expected "
                f"{self.result_record_size}"
            )
        score = int.from_bytes(record[0:4], "little", signed=True)
        n_ops_field = int.from_bytes(record[4:8], "little")
        has_cigar = bool(n_ops_field & 0x8000_0000)
        n_ops = n_ops_field & 0x7FFF_FFFF
        if n_ops > self.max_cigar_ops:
            raise LayoutError(f"result claims {n_ops} CIGAR runs > slot")
        if not has_cigar:
            return score, None
        ops = []
        for i in range(n_ops):
            word = int.from_bytes(record[16 + 4 * i : 20 + 4 * i], "little")
            ops.append(CigarOp(word >> 8, chr(word & 0xFF)))
        return score, Cigar(ops)

    def unpack_result_region(self, record: bytes) -> tuple[int, int]:
        """The aligned region's ``(pattern_start, text_start)``.

        Zero for global alignments; the clipped-prefix lengths under
        ends-free spans.
        """
        if len(record) != self.result_record_size:
            raise LayoutError(
                f"result record of {len(record)} bytes, expected "
                f"{self.result_record_size}"
            )
        pattern_start = int.from_bytes(record[8:12], "little")
        text_start = int.from_bytes(record[12:16], "little")
        return pattern_start, text_start
