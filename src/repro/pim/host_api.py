"""An UPMEM-SDK-flavoured host API over the simulator.

The real UPMEM host library exposes ``dpu_alloc`` / ``dpu_load`` /
``dpu_copy_to`` / ``dpu_launch`` / ``dpu_copy_from`` / ``dpu_free``; this
facade mirrors that surface over the simulated system so code written
against the SDK's idioms ports naturally, and so the simulator can be
driven at the same granularity real host programs use:

    with dpu_alloc(64) as dpu_set:
        dpu_set.load(WfaDpuKernel(kernel_config))
        dpu_set.copy_to(layout, batches)
        stats = dpu_set.launch(tasklets=16)
        results = dpu_set.copy_from(counts)

The higher-level :class:`~repro.pim.system.PimSystem` remains the
recommended entry point; this facade exists for SDK-style control and
for tests that exercise phases independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cigar import Cigar
from repro.data.generator import ReadPair
from repro.errors import ConfigError, PimError
from repro.pim.config import DpuConfig, HostTransferConfig
from repro.pim.dpu import Dpu, DpuKernelStats
from repro.pim.faults import FaultInjector, FaultPlan
from repro.pim.kernel import WfaDpuKernel
from repro.pim.layout import MramLayout
from repro.pim.transfer import HostTransferEngine

__all__ = ["DpuSet", "dpu_alloc"]


@dataclass
class DpuSet:
    """A set of allocated (simulated) DPUs, SDK style."""

    num_dpus: int
    dpu_config: DpuConfig = field(default_factory=DpuConfig)
    transfer_config: HostTransferConfig = field(default_factory=HostTransferConfig)
    #: optional fault plan; the SDK facade has no recovery layer, so
    #: injected faults surface to the caller as the typed
    #: :class:`~repro.errors.FaultError` subclasses (attempt 0 faults
    #: only — rerun phases yourself to model retries at this level).
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.num_dpus < 1:
            raise ConfigError("dpu_alloc needs at least one DPU")
        self.dpus = [Dpu(self.dpu_config, dpu_id=i) for i in range(self.num_dpus)]
        self.transfer = HostTransferEngine(self.transfer_config)
        self._kernel: Optional[WfaDpuKernel] = None
        self._layout: Optional[MramLayout] = None
        self._batch_sizes: list[int] = [0] * self.num_dpus
        self._freed = False

    def _injector(self, dpu_id: int) -> Optional[FaultInjector]:
        if self.fault_plan is None or not self.fault_plan.targets(dpu_id):
            return None
        return self.fault_plan.injector(dpu_id, attempt=0)

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "DpuSet":
        return self

    def __exit__(self, *exc) -> None:
        self.free()

    def free(self) -> None:
        """Release the set (further use raises, like the SDK's handle)."""
        self._freed = True
        self.dpus = []

    def _check_alive(self) -> None:
        if self._freed:
            raise PimError("DPU set has been freed")

    # -- SDK-ish phases --------------------------------------------------------

    def load(self, kernel: WfaDpuKernel) -> None:
        """Load a kernel 'binary' onto every DPU of the set."""
        self._check_alive()
        self._kernel = kernel

    def copy_to(self, layout: MramLayout, batches: list[list[ReadPair]]) -> int:
        """Push per-DPU input batches; returns total bytes moved."""
        self._check_alive()
        if len(batches) != self.num_dpus:
            raise ConfigError(
                f"need one batch per DPU ({self.num_dpus}), got {len(batches)}"
            )
        self._layout = layout
        moved = 0
        for dpu, batch in zip(self.dpus, batches):
            self.transfer.injector = self._injector(dpu.dpu_id)
            try:
                moved += self.transfer.push_batch(dpu, layout, batch)
            finally:
                self.transfer.injector = None
            self._batch_sizes[dpu.dpu_id] = len(batch)
        return moved

    def launch(self, tasklets: int, metadata_policy: str = "mram") -> list[DpuKernelStats]:
        """Run the loaded kernel on every DPU; returns per-DPU stats."""
        self._check_alive()
        if self._kernel is None:
            raise PimError("no kernel loaded (call load() first)")
        if self._layout is None:
            raise PimError("no input data (call copy_to() first)")
        stats = []
        for dpu in self.dpus:
            injector = self._injector(dpu.dpu_id)
            if injector is not None:
                injector.check_launch()
                injector.attach_dma(dpu)
            size = self._batch_sizes[dpu.dpu_id]
            assignments = [list(range(t, size, tasklets)) for t in range(tasklets)]
            tasklet_stats, _ = self._kernel.run(
                dpu, self._layout, assignments, metadata_policy
            )
            stats.append(dpu.summarize(tasklet_stats))
        return stats

    def copy_from(self) -> list[list[tuple[int, Optional[Cigar]]]]:
        """Gather every DPU's result records (per-DPU lists)."""
        self._check_alive()
        if self._layout is None:
            raise PimError("nothing to gather (no layout)")
        out = []
        for dpu in self.dpus:
            size = self._batch_sizes[dpu.dpu_id]
            self.transfer.injector = self._injector(dpu.dpu_id)
            try:
                results, _ = self.transfer.pull_results(dpu, self._layout, size)
            finally:
                self.transfer.injector = None
            out.append(results)
        return out


def dpu_alloc(
    num_dpus: int,
    dpu_config: Optional[DpuConfig] = None,
    transfer_config: Optional[HostTransferConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> DpuSet:
    """Allocate a simulated DPU set (use as a context manager)."""
    return DpuSet(
        num_dpus=num_dpus,
        dpu_config=dpu_config if dpu_config is not None else DpuConfig(),
        transfer_config=(
            transfer_config if transfer_config is not None else HostTransferConfig()
        ),
        fault_plan=fault_plan,
    )
