"""DPU kernel event tracing.

An optional recorder the WFA kernel feeds per-pair phase events into
(fetch / align / metadata / writeback, with their cycle costs and byte
volumes).  Useful for debugging kernel behaviour, teaching the cost
structure, and sanity-checking the timing model's attribution — the
trace's per-phase totals must reconcile with the tasklet statistics,
which a test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.perf.report import format_table

__all__ = ["TraceEvent", "KernelTrace"]

PHASES = ("fetch", "align", "metadata", "writeback")


@dataclass(frozen=True)
class TraceEvent:
    """One kernel phase execution on one tasklet."""

    tasklet_id: int
    pair_index: int
    phase: str
    cycles: float = 0.0
    dma_bytes: int = 0
    instructions: float = 0.0
    detail: str = ""


@dataclass
class KernelTrace:
    """Ordered event log of one kernel launch."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    # -- queries -----------------------------------------------------------

    def for_tasklet(self, tasklet_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.tasklet_id == tasklet_id]

    def for_pair(self, pair_index: int) -> list[TraceEvent]:
        return [e for e in self.events if e.pair_index == pair_index]

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Per-phase sums of cycles / bytes / instructions."""
        out: dict[str, dict[str, float]] = {
            p: {"cycles": 0.0, "dma_bytes": 0.0, "instructions": 0.0}
            for p in PHASES
        }
        for e in self.events:
            bucket = out.setdefault(
                e.phase, {"cycles": 0.0, "dma_bytes": 0.0, "instructions": 0.0}
            )
            bucket["cycles"] += e.cycles
            bucket["dma_bytes"] += e.dma_bytes
            bucket["instructions"] += e.instructions
        return out

    def pairs_traced(self) -> int:
        return len({(e.tasklet_id, e.pair_index) for e in self.events})

    # -- rendering -----------------------------------------------------------

    def report(self) -> str:
        totals = self.phase_totals()
        grand_cycles = sum(t["cycles"] for t in totals.values()) or 1.0
        rows = [
            (
                phase,
                f"{vals['cycles']:.0f}",
                f"{vals['cycles'] / grand_cycles:.0%}",
                f"{int(vals['dma_bytes'])}",
                f"{vals['instructions']:.0f}",
            )
            for phase, vals in totals.items()
            if vals["cycles"] or vals["instructions"] or vals["dma_bytes"]
        ]
        return format_table(
            ["phase", "cycles", "share", "dma bytes", "instructions"],
            rows,
            title=f"kernel trace ({self.pairs_traced()} pair executions)",
        )

    def timeline(self, tasklet_id: int, width: int = 60) -> str:
        """Proportional text timeline of one tasklet's phases."""
        events = self.for_tasklet(tasklet_id)
        total = sum(e.cycles for e in events)
        if total <= 0:
            return f"tasklet {tasklet_id}: (no cycles recorded)"
        glyph = {"fetch": "f", "align": "A", "metadata": "m", "writeback": "w"}
        bar = []
        for e in events:
            cells = max(1, round(e.cycles / total * width)) if e.cycles else 0
            bar.append(glyph.get(e.phase, "?") * cells)
        return f"tasklet {tasklet_id}: [{''.join(bar)}]"


def merge(traces: Iterable[KernelTrace]) -> KernelTrace:
    """Combine traces from several DPUs into one log."""
    merged = KernelTrace()
    for t in traces:
        merged.events.extend(t.events)
    return merged
