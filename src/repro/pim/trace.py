"""DPU kernel event tracing.

An optional recorder the WFA kernel feeds per-pair phase events into
(fetch / align / metadata / writeback, with their cycle costs and byte
volumes).  Useful for debugging kernel behaviour, teaching the cost
structure, and sanity-checking the timing model's attribution — the
trace's per-phase totals must reconcile with the tasklet statistics,
which a test asserts.

Every event carries the ``dpu_id`` of the DPU it executed on, so traces
merged across DPUs (:func:`merge`) keep full attribution: filter with
:meth:`KernelTrace.for_dpu` or pass ``dpu_id`` to
:meth:`KernelTrace.for_tasklet` / :meth:`KernelTrace.timeline` when
tasklet ids alone are ambiguous.  The span-based profiler and the
Chrome-trace exporter (:mod:`repro.obs`) consume these events to lay
per-tasklet phase spans on the model timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.perf.report import format_table

__all__ = ["TraceEvent", "KernelTrace", "merge"]

PHASES = ("fetch", "align", "metadata", "writeback")


@dataclass(frozen=True)
class TraceEvent:
    """One kernel phase execution on one tasklet."""

    tasklet_id: int
    pair_index: int
    phase: str
    cycles: float = 0.0
    dma_bytes: int = 0
    instructions: float = 0.0
    detail: str = ""
    #: which DPU the event executed on (kept through :func:`merge`).
    dpu_id: int = 0


@dataclass
class KernelTrace:
    """Ordered event log of one kernel launch."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    # -- queries -----------------------------------------------------------

    def for_tasklet(
        self, tasklet_id: int, dpu_id: Optional[int] = None
    ) -> list[TraceEvent]:
        """Events of one tasklet; pass ``dpu_id`` to disambiguate merged
        multi-DPU traces (tasklet ids repeat across DPUs)."""
        return [
            e
            for e in self.events
            if e.tasklet_id == tasklet_id
            and (dpu_id is None or e.dpu_id == dpu_id)
        ]

    def for_pair(self, pair_index: int) -> list[TraceEvent]:
        return [e for e in self.events if e.pair_index == pair_index]

    def for_dpu(self, dpu_id: int) -> "KernelTrace":
        """The sub-trace of one DPU (events keep their order)."""
        return KernelTrace(events=[e for e in self.events if e.dpu_id == dpu_id])

    def dpus_traced(self) -> list[int]:
        """Sorted distinct DPU ids appearing in the trace."""
        return sorted({e.dpu_id for e in self.events})

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Per-phase sums of cycles / bytes / instructions.

        Ordering contract: the known :data:`PHASES` come first (always
        present, zeroed if unseen), then any custom phases in the order
        their first event was recorded — so reports and downstream
        exporters render unknown phases deterministically.
        """
        out: dict[str, dict[str, float]] = {
            p: {"cycles": 0.0, "dma_bytes": 0.0, "instructions": 0.0}
            for p in PHASES
        }
        for e in self.events:
            bucket = out.setdefault(
                e.phase, {"cycles": 0.0, "dma_bytes": 0.0, "instructions": 0.0}
            )
            bucket["cycles"] += e.cycles
            bucket["dma_bytes"] += e.dma_bytes
            bucket["instructions"] += e.instructions
        return out

    def pairs_traced(self) -> int:
        return len({(e.dpu_id, e.tasklet_id, e.pair_index) for e in self.events})

    # -- rendering -----------------------------------------------------------

    def report(self) -> str:
        """Per-phase totals table; covers custom phases after the known
        ones, in first-recorded order (zero-activity phases are
        omitted)."""
        totals = self.phase_totals()
        grand_cycles = sum(t["cycles"] for t in totals.values()) or 1.0
        rows = [
            (
                phase,
                f"{vals['cycles']:.0f}",
                f"{vals['cycles'] / grand_cycles:.0%}",
                f"{int(vals['dma_bytes'])}",
                f"{vals['instructions']:.0f}",
            )
            for phase, vals in totals.items()
            if vals["cycles"] or vals["instructions"] or vals["dma_bytes"]
        ]
        return format_table(
            ["phase", "cycles", "share", "dma bytes", "instructions"],
            rows,
            title=f"kernel trace ({self.pairs_traced()} pair executions)",
        )

    def timeline(
        self, tasklet_id: int, width: int = 60, dpu_id: Optional[int] = None
    ) -> str:
        """Proportional text timeline of one tasklet's phases.

        Zero-cycle events occupy no cells; any event of at least one
        cycle gets at least one cell; unknown phases render as ``?``.
        """
        events = self.for_tasklet(tasklet_id, dpu_id=dpu_id)
        total = sum(e.cycles for e in events)
        label = (
            f"dpu {dpu_id} tasklet {tasklet_id}"
            if dpu_id is not None
            else f"tasklet {tasklet_id}"
        )
        if total <= 0:
            return f"{label}: (no cycles recorded)"
        glyph = {"fetch": "f", "align": "A", "metadata": "m", "writeback": "w"}
        bar = []
        for e in events:
            cells = max(1, round(e.cycles / total * width)) if e.cycles else 0
            bar.append(glyph.get(e.phase, "?") * cells)
        return f"{label}: [{''.join(bar)}]"


def merge(traces: Iterable[KernelTrace]) -> KernelTrace:
    """Combine traces from several DPUs into one log.

    Events keep their per-trace order (and their ``dpu_id``
    attribution); traces are concatenated in the order given, so
    callers that iterate DPUs in ``dpu_id`` order get a deterministic
    merged log.
    """
    merged = KernelTrace()
    for t in traces:
        merged.events.extend(t.events)
    return merged
