"""UPMEM PIM substrate: functional + timing simulator.

Models the architecture the paper runs on — DPUs with private
MRAM (64 MB) and WRAM (64 KB), 8-byte-aligned DMA, up to 24 tasklets on a
revolving 11-cycle pipeline, host transfers across ranks — plus the
paper's contributions on top: the custom two-level allocator and the
MRAM-metadata WFA kernel.
"""

from repro.pim.ablation import (
    STANDARD_ABLATIONS,
    STANDARD_ABLATION_NAMES,
    AblationConfig,
    ablation_by_name,
)
from repro.pim.allocator import Allocation, BumpAllocator, TaskletAllocator
from repro.pim.config import (
    DpuConfig,
    DpuTimingConfig,
    HostTransferConfig,
    PimSystemConfig,
    upmem_paper_system,
    upmem_single_rank,
)
from repro.pim.dma import DMA_ALIGN, DMA_MAX, DMA_MIN, DmaEngine, aligned_size
from repro.pim.dpu import Dpu, DpuKernelStats
from repro.pim.faults import (
    DpuDeath,
    FaultInjector,
    FaultPlan,
    JobRecoveryRecord,
    MramCorruption,
    RecoveryReport,
    RetryPolicy,
    TaskletStall,
    TransferTruncation,
    spare_placements,
)
from repro.pim.fleet import (
    FAULT_DOMAINS,
    MANIFEST_SCHEMA,
    FleetCoordinator,
    FleetRun,
    ShardOutcome,
    ShardTask,
    run_fleet_shard,
    shard_journal_name,
    slice_fault_plan,
)
from repro.pim.health import CircuitBreaker, FleetHealth, HealthPolicy
from repro.pim.journal import (
    JOURNAL_SCHEMA,
    RunJournal,
    result_from_dict,
    result_to_dict,
    workload_fingerprint,
)
from repro.pim.kernel import (
    KernelConfig,
    WfaDpuKernel,
    WramPlan,
    max_supported_tasklets,
)
from repro.pim.layout import MramLayout
from repro.pim.memory import Mram, SimMemory, Wram
from repro.pim.host_api import DpuSet, dpu_alloc
from repro.pim.parallel import (
    DpuJob,
    DpuJobResult,
    GeneratorSpec,
    ResilientOutcome,
    execute_jobs,
    execute_jobs_resilient,
    resolve_workers,
    run_dpu_job,
    run_dpu_job_resilient,
)
from repro.pim.rank import RankSummary, group_by_rank, imbalance
from repro.pim.scheduler import BatchSchedule, BatchScheduler, ScheduledRun
from repro.pim.system import PimRunResult, PimSystem
from repro.pim.tasklet import TaskletContext, TaskletStats
from repro.pim.trace import KernelTrace, TraceEvent
from repro.pim.transfer import HostTransferEngine, TransferStats

__all__ = [
    "AblationConfig",
    "STANDARD_ABLATIONS",
    "STANDARD_ABLATION_NAMES",
    "ablation_by_name",
    "BumpAllocator",
    "TaskletAllocator",
    "Allocation",
    "DpuConfig",
    "DpuTimingConfig",
    "HostTransferConfig",
    "PimSystemConfig",
    "upmem_paper_system",
    "upmem_single_rank",
    "DmaEngine",
    "DMA_ALIGN",
    "DMA_MIN",
    "DMA_MAX",
    "aligned_size",
    "Dpu",
    "DpuKernelStats",
    "KernelConfig",
    "WfaDpuKernel",
    "WramPlan",
    "max_supported_tasklets",
    "MramLayout",
    "Mram",
    "Wram",
    "SimMemory",
    "PimSystem",
    "PimRunResult",
    "BatchScheduler",
    "BatchSchedule",
    "ScheduledRun",
    "DpuSet",
    "dpu_alloc",
    "DpuJob",
    "DpuJobResult",
    "GeneratorSpec",
    "ResilientOutcome",
    "execute_jobs",
    "execute_jobs_resilient",
    "resolve_workers",
    "run_dpu_job",
    "run_dpu_job_resilient",
    "FaultPlan",
    "FaultInjector",
    "DpuDeath",
    "MramCorruption",
    "TransferTruncation",
    "TaskletStall",
    "RetryPolicy",
    "JobRecoveryRecord",
    "RecoveryReport",
    "spare_placements",
    "HealthPolicy",
    "CircuitBreaker",
    "FleetHealth",
    "FleetCoordinator",
    "FleetRun",
    "ShardTask",
    "ShardOutcome",
    "run_fleet_shard",
    "slice_fault_plan",
    "shard_journal_name",
    "MANIFEST_SCHEMA",
    "FAULT_DOMAINS",
    "RunJournal",
    "JOURNAL_SCHEMA",
    "workload_fingerprint",
    "result_to_dict",
    "result_from_dict",
    "RankSummary",
    "group_by_rank",
    "imbalance",
    "TaskletContext",
    "KernelTrace",
    "TraceEvent",
    "TaskletStats",
    "HostTransferEngine",
    "TransferStats",
]
