"""One simulated DPU: memories, DMA engine, and the pipeline timing model.

Functional state (MRAM, WRAM, DMA) is byte-accurate.  Timing follows the
PrIM characterization of the real pipeline:

* The DPU is an in-order core with **revolving fine-grained
  multithreading**: at most one instruction of the *same* tasklet can be
  dispatched every ``pipeline_period`` (= 11) cycles.  With ``T``
  tasklets executing ``n_i`` instructions each, execution is
  *latency-bound* (``period * max_i n_i`` cycles) below 11 tasklets and
  *throughput-bound* (``sum_i n_i`` cycles, one instruction per cycle)
  at or above 11 — the reason the paper works so hard to run many
  tasklets.
* The single DMA engine serializes all tasklets' MRAM transfers, adding
  a third bound: total DMA cycles.

``kernel_cycles = max(sum_i n_i, period * max_i n_i, sum_i dma_i)``

This three-term max is a standard bottleneck (roofline-style) model: it
assumes perfect overlap of compute and DMA across tasklets, which PrIM
shows the hardware approaches when >= 11 tasklets are active.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.pim.config import DpuConfig
from repro.pim.dma import DmaEngine
from repro.pim.memory import Mram, Wram
from repro.pim.tasklet import TaskletStats

__all__ = ["Dpu", "DpuKernelStats"]


@dataclass
class DpuKernelStats:
    """Timing summary of one kernel launch on one DPU."""

    dpu_id: int
    tasklets: int
    pairs_done: int
    instructions: float
    dma_cycles: float
    dma_bytes: int
    cycles: float
    seconds: float
    #: which of the three bounds won: "throughput" | "latency" | "dma"
    bound: str


class Dpu:
    """A single DPU with its private memories and DMA engine."""

    def __init__(self, config: DpuConfig, dpu_id: int = 0) -> None:
        config.validate()
        self.config = config
        self.dpu_id = dpu_id
        self.mram = Mram(config.mram_bytes)
        self.wram = Wram(config.wram_bytes)
        self.dma = DmaEngine(self.mram, self.wram, config.timing)

    def kernel_cycles(self, tasklet_stats: list[TaskletStats]) -> tuple[float, str]:
        """Apply the pipeline model to per-tasklet work totals.

        Returns ``(cycles, bound)`` where ``bound`` names the binding
        term.
        """
        if not tasklet_stats:
            return 0.0, "throughput"
        if len(tasklet_stats) > self.config.max_tasklets:
            raise ConfigError(
                f"{len(tasklet_stats)} tasklets exceed the DPU limit "
                f"{self.config.max_tasklets}"
            )
        total_instr = sum(t.instructions for t in tasklet_stats)
        max_instr = max(t.instructions for t in tasklet_stats)
        total_dma = sum(t.dma_cycles for t in tasklet_stats)
        latency_bound = self.config.timing.pipeline_period * max_instr
        candidates = {
            "throughput": total_instr,
            "latency": latency_bound,
            "dma": total_dma,
        }
        bound = max(candidates, key=candidates.__getitem__)
        return candidates[bound], bound

    def summarize(
        self, tasklet_stats: list[TaskletStats]
    ) -> DpuKernelStats:
        """Bundle per-tasklet stats into a :class:`DpuKernelStats`."""
        cycles, bound = self.kernel_cycles(tasklet_stats)
        return DpuKernelStats(
            dpu_id=self.dpu_id,
            tasklets=len(tasklet_stats),
            pairs_done=sum(t.pairs_done for t in tasklet_stats),
            instructions=sum(t.instructions for t in tasklet_stats),
            dma_cycles=sum(t.dma_cycles for t in tasklet_stats),
            dma_bytes=sum(t.dma_bytes for t in tasklet_stats),
            cycles=cycles,
            seconds=self.config.timing.seconds(cycles),
            bound=bound,
        )
