"""A banded-DP DPU kernel — the "other alignment algorithm" comparator.

The paper's future work includes "comparing to PIM implementations of
other alignment algorithms"; this kernel provides that comparison point:
classical banded Gotoh DP (see :mod:`repro.baselines.banded`) ported to
the same DPU execution structure as the WFA kernel.

Differences from the WFA kernel that the model captures:

* work is ``O(read_len x band)`` cells regardless of sequence
  similarity, vs WFA's ``O(read_len + score^2)`` — on the paper's
  low-error reads WFA computes an order of magnitude fewer cells;
* the working set is 6 DP rows (M/I/D x 2), which live comfortably in
  WRAM for short reads but scale with read length rather than with
  error rate — so the WRAM-pressure profile differs from WFA's, which
  the tasklet-admission sweep exposes.

Score-only (no traceback): a full-matrix banded traceback would need
``O(n x band)`` MRAM staging; the comparison experiment therefore runs
both kernels in score-only mode, apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.banded import banded_gotoh_score
from repro.core.penalties import AffinePenalties, Penalties
from repro.errors import AlignmentError, KernelError
from repro.pim.allocator import TaskletAllocator
from repro.pim.config import DpuConfig
from repro.pim.dma import aligned_size
from repro.pim.dpu import Dpu
from repro.pim.layout import MramLayout
from repro.pim.tasklet import TaskletContext, TaskletStats

__all__ = ["BandedKernelConfig", "BandedDpuKernel"]


@dataclass(frozen=True)
class BandedCostModel:
    """Scalar DPU instructions per banded-DP event.

    A banded Gotoh cell updates three matrices: ~3 loads, 6 add/min
    pairs, a char compare and 3 stores — ~22 scalar instructions.
    """

    per_cell: float = 22.0
    per_row_overhead: float = 20.0
    per_pair_overhead: float = 300.0


@dataclass(frozen=True)
class BandedKernelConfig:
    """Static parameters of the banded DPU kernel."""

    penalties: Penalties = field(default_factory=AffinePenalties)
    max_read_len: int = 100
    band: int = 5

    def __post_init__(self) -> None:
        if self.max_read_len < 1:
            raise KernelError(f"max_read_len must be >= 1, got {self.max_read_len}")
        if self.band < 1:
            raise KernelError(f"band must be >= 1, got {self.band}")

    @property
    def row_bytes(self) -> int:
        """One DP row of int32 cells (full width for addressing simplicity)."""
        return aligned_size(4 * (self.max_read_len + 1))

    @property
    def rows_needed(self) -> int:
        """M/I/D x {previous, current}."""
        return 6


class BandedDpuKernel:
    """Banded Gotoh on the simulated DPU (score-only)."""

    def __init__(
        self,
        config: BandedKernelConfig,
        cost_model: BandedCostModel | None = None,
    ) -> None:
        self.config = config
        self.cost_model = cost_model if cost_model is not None else BandedCostModel()

    def input_record_bytes(self) -> int:
        return 8 + 2 * aligned_size(self.config.max_read_len)

    def result_record_bytes(self) -> int:
        return 16  # score + flags, padded

    def wram_bytes_per_tasklet(self) -> int:
        """Fixed per-tasklet WRAM need (buffers + 6 DP rows)."""
        return (
            aligned_size(self.input_record_bytes())
            + aligned_size(self.result_record_bytes())
            + self.config.rows_needed * self.config.row_bytes
        )

    def plan_check(self, dpu_config: DpuConfig, tasklets: int) -> None:
        """Raise :class:`KernelError` if ``tasklets`` do not fit WRAM."""
        if not 1 <= tasklets <= dpu_config.max_tasklets:
            raise KernelError(
                f"tasklets must be in [1, {dpu_config.max_tasklets}], got {tasklets}"
            )
        slice_bytes = (dpu_config.wram_bytes // tasklets) // 8 * 8
        need = self.wram_bytes_per_tasklet()
        if need > slice_bytes:
            raise KernelError(
                f"banded kernel needs {need} B per tasklet; slice is "
                f"{slice_bytes} B at {tasklets} tasklets"
            )

    def max_supported_tasklets(self, dpu_config: DpuConfig) -> int:
        best = 0
        for t in range(1, dpu_config.max_tasklets + 1):
            try:
                self.plan_check(dpu_config, t)
            except KernelError:
                continue
            best = t
        return best

    def cells_for(self, n: int, m: int) -> int:
        """Exact banded cell count (3 matrices per (i, j) position)."""
        band = self.config.band
        positions = 0
        for ii in range(1, n + 1):
            lo = max(1, ii - band)
            hi = min(m, ii + band)
            if hi >= lo:
                positions += hi - lo + 1
        return 3 * positions

    def run(
        self,
        dpu: Dpu,
        layout: MramLayout,
        assignments: list[list[int]],
    ) -> list[TaskletStats]:
        """Run the banded kernel over the assigned input records."""
        tasklets = len(assignments)
        self.plan_check(dpu.config, tasklets)
        if layout.input_record_size > aligned_size(self.input_record_bytes()):
            raise KernelError(
                "layout input records exceed the kernel's input buffer "
                f"({layout.input_record_size} > {self.input_record_bytes()})"
            )
        slice_bytes = (dpu.config.wram_bytes // tasklets) // 8 * 8
        stats_out: list[TaskletStats] = []
        for t, indices in enumerate(assignments):
            alloc = TaskletAllocator(
                wram_base=t * slice_bytes,
                wram_capacity=slice_bytes,
                mram_base=layout.metadata_base,
                mram_capacity=0,
                metadata_policy="wram",
            )
            input_buf = alloc.alloc_buffer(aligned_size(self.input_record_bytes())).addr
            result_buf = alloc.alloc_buffer(
                aligned_size(self.result_record_bytes())
            ).addr
            for _ in range(self.config.rows_needed):
                alloc.alloc_buffer(self.config.row_bytes)
            ctx = TaskletContext(tasklet_id=t, allocator=alloc)
            ctx.input_buffer = input_buf
            ctx.result_buffer = result_buf
            for index in indices:
                self._align_one(dpu, layout, ctx, index)
            stats_out.append(ctx.stats)
        return stats_out

    def _align_one(
        self, dpu: Dpu, layout: MramLayout, ctx: TaskletContext, index: int
    ) -> None:
        size = layout.input_record_size
        cycles = dpu.dma.read_large(layout.input_addr(index), ctx.input_buffer, size)
        ctx.stats.add_dma(cycles, size)
        record = dpu.wram.read(ctx.input_buffer, size)
        pair = layout.unpack_pair(record)
        n, m = len(pair.pattern), len(pair.text)
        try:
            score = banded_gotoh_score(
                pair.pattern, pair.text, self.config.penalties, self.config.band
            )
        except AlignmentError as exc:
            raise KernelError(
                f"pair {index} not alignable within band {self.config.band}: {exc}"
            ) from exc
        cells = self.cells_for(n, m)
        cm = self.cost_model
        ctx.stats.instructions += (
            cells * cm.per_cell + n * cm.per_row_overhead + cm.per_pair_overhead
        )
        ctx.stats.cells_computed += cells
        # Result record: score only (no CIGAR in score-only mode).  Only
        # the 16-byte score prefix of the slot is written; the host-side
        # unpack reads the full slot, whose tail stays zero in MRAM.
        out = layout.pack_result(score, None)[: self.result_record_bytes()]
        dpu.wram.write(ctx.result_buffer, out)
        cycles = dpu.dma.write_large(
            ctx.result_buffer, layout.result_addr(index), len(out)
        )
        ctx.stats.add_dma(cycles, len(out))
        ctx.stats.pairs_done += 1
