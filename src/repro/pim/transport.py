"""Modeled coordinator<->shard transport with seeded network faults.

The fleet layer (:mod:`repro.pim.fleet`) federates shards the way the
authors' follow-up framework paper dispatches work across real PIM
ranks — but real ranks sit behind a *network*, and a coordinator that
keeps flaky ranks busy needs an explicit message-passing boundary to
hang its retries, timeouts, and work-stealing off.  This module is that
boundary, entirely on the modeled clock (nothing ever sleeps):

* typed :class:`Envelope`/:class:`Ack` records with **idempotency
  keys** (``"work/round-0003"``), so redelivery is safe by
  construction: the receiver dedups on key, and a duplicate arrival is
  absorbed and counted, never double-executed;
* a seeded, declarative :class:`NetworkFaultPlan` — per-link drop,
  duplicate, reorder, delay, and partition windows — in the same
  frozen-dataclass style as :class:`repro.pim.faults.FaultPlan`; every
  fault site derives its RNG arithmetically from
  ``(seed, shard, round, direction, attempt, site)``, so the same plan
  drops the same envelopes on every run;
* **at-least-once delivery**: a dropped or partition-blocked envelope
  is retransmitted after a modeled per-link timeout with bounded
  exponential backoff, up to ``max_redeliveries`` attempts — no pair is
  ever silently lost (exhaustion raises a typed
  :class:`~repro.errors.TransportError` instead);
* per-link :class:`~repro.pim.health.CircuitBreaker`\\ s fed by
  delivery outcomes, so a flaky link is quarantined out of
  steal-target selection and surfaces in
  :meth:`ShardTransport.link_healthy_fraction` (the serve dispatcher's
  degraded-network backpressure signal).

The *hedged re-dispatch* (work-stealing of in-flight rounds) lives in
:meth:`repro.pim.fleet.FleetCoordinator` — it owns the shards — but the
transport records the steal (``steal`` event, ``pim_net_steals_total``)
and absorbs the losing result of a steal race through the same dedup
path as any other duplicate.

Determinism contract: the transport is consulted **only** when the
plan actually injects faults (``NetworkFaultPlan.is_calm()`` is
``False``).  Under a calm plan the fleet takes its direct path
untouched — zero transport counters, events, or modeled seconds — which
is what keeps the calm-network transport path byte-identical to the
pre-transport fleet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import EventLog
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "LinkDrop",
    "LinkDuplicate",
    "LinkDelay",
    "LinkReorder",
    "Partition",
    "NetworkFaultPlan",
    "TransportPolicy",
    "Envelope",
    "Ack",
    "Delivery",
    "ShardTransport",
    "TransportReport",
]

#: message directions over a coordinator<->shard link.
DIRECTIONS = ("work", "result")

_DIR_CODES = {"work": 1, "result": 2}
_SITE_CODES = {"drop": 1, "duplicate": 2, "delay": 3, "reorder": 4}


def _link_rand(
    seed: int, shard: int, round_index: int, direction: str, attempt: int, site: str
) -> float:
    """Seeded uniform [0, 1) for one fault site of one delivery attempt.

    Arithmetic mixing (never string hashing — a process-salted hash
    would desync across pool workers), same discipline as
    :class:`repro.pim.faults.FaultInjector`.
    """
    mix = (
        seed * 1_000_003
        + shard * 9_176
        + round_index * 131
        + _DIR_CODES[direction] * 53
        + attempt * 17
        + _SITE_CODES[site]
    )
    return random.Random(mix).random()


def _applies(fault_direction: str, direction: str) -> bool:
    return fault_direction in ("both", direction)


def _check_direction(direction: str, what: str) -> None:
    if direction not in DIRECTIONS + ("both",):
        raise ConfigError(
            f"{what} direction must be one of {DIRECTIONS + ('both',)}, "
            f"got {direction!r}"
        )


# -- the declarative plan ------------------------------------------------------


@dataclass(frozen=True)
class LinkDrop:
    """Envelopes on one shard's link are lost with probability ``p``."""

    shard_id: int
    p: float = 0.1
    direction: str = "both"

    def __post_init__(self) -> None:
        if not 0 <= self.p <= 1:
            raise ConfigError(f"drop p must be in [0, 1], got {self.p}")
        _check_direction(self.direction, "drop")


@dataclass(frozen=True)
class LinkDuplicate:
    """Delivered envelopes arrive twice with probability ``p``.

    The duplicate copy is absorbed by receiver-side dedup on the
    idempotency key — it is counted, never re-executed.
    """

    shard_id: int
    p: float = 0.1
    direction: str = "both"

    def __post_init__(self) -> None:
        if not 0 <= self.p <= 1:
            raise ConfigError(f"duplicate p must be in [0, 1], got {self.p}")
        _check_direction(self.direction, "duplicate")


@dataclass(frozen=True)
class LinkDelay:
    """Every delivery on one shard's link takes ``delay_s`` extra modeled
    seconds, plus a seeded jitter in ``[0, jitter_s)``."""

    shard_id: int
    delay_s: float = 0.001
    jitter_s: float = 0.0
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ConfigError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.jitter_s < 0:
            raise ConfigError(f"jitter_s must be >= 0, got {self.jitter_s}")
        _check_direction(self.direction, "delay")


@dataclass(frozen=True)
class LinkReorder:
    """With probability ``p`` an envelope is overtaken in flight and
    arrives ``penalty_s`` late.

    Modeled as a pure extra latency: the fleet executes rounds in global
    round order regardless of arrival interleaving, so overtaking can
    move time but never results.
    """

    shard_id: int
    p: float = 0.1
    penalty_s: float = 0.002
    direction: str = "both"

    def __post_init__(self) -> None:
        if not 0 <= self.p <= 1:
            raise ConfigError(f"reorder p must be in [0, 1], got {self.p}")
        if self.penalty_s < 0:
            raise ConfigError(f"penalty_s must be >= 0, got {self.penalty_s}")
        _check_direction(self.direction, "reorder")


@dataclass(frozen=True)
class Partition:
    """A window of modeled time during which links are fully severed.

    ``shard_ids`` names the cut links; empty means *every* link (a
    coordinator-side partition).  Delivery attempts inside the window
    are blocked (``net_partition`` event) and retried after it heals.
    """

    start_s: float
    end_s: float
    shard_ids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigError(f"start_s must be >= 0, got {self.start_s}")
        if self.end_s <= self.start_s:
            raise ConfigError(
                f"end_s must be > start_s, got [{self.start_s}, {self.end_s}]"
            )

    def covers(self, shard: int, t_s: float) -> bool:
        if not self.start_s <= t_s < self.end_s:
            return False
        return not self.shard_ids or shard in self.shard_ids


@dataclass(frozen=True)
class NetworkFaultPlan:
    """Declarative, seeded description of every network fault a run sees."""

    seed: int = 0
    drops: tuple[LinkDrop, ...] = ()
    duplicates: tuple[LinkDuplicate, ...] = ()
    delays: tuple[LinkDelay, ...] = ()
    reorders: tuple[LinkReorder, ...] = ()
    partitions: tuple[Partition, ...] = ()

    def is_calm(self) -> bool:
        """True when the plan injects nothing — the fleet then bypasses
        the transport entirely (byte-identity with the direct path).

        Zero-effect entries count as nothing: a drop/duplicate/reorder
        at ``p=0``, a delay of zero seconds with zero jitter, and an
        empty partition window are all calm, so a sweep parameterized
        down to intensity zero takes the same direct path as no plan.
        """
        return not (
            any(d.p > 0.0 for d in self.drops)
            or any(d.p > 0.0 for d in self.duplicates)
            or any(d.delay_s > 0.0 or d.jitter_s > 0.0 for d in self.delays)
            or any(r.p > 0.0 for r in self.reorders)
            or any(w.end_s > w.start_s for w in self.partitions)
        )

    def partitioned_until(self, shard: int, t_s: float) -> Optional[float]:
        """End of the partition window covering ``(shard, t_s)``, if any."""
        until: Optional[float] = None
        for window in self.partitions:
            if window.covers(shard, t_s):
                if until is None or window.end_s > until:
                    until = window.end_s
        return until

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "drops": [
                {"shard_id": f.shard_id, "p": f.p, "direction": f.direction}
                for f in self.drops
            ],
            "duplicates": [
                {"shard_id": f.shard_id, "p": f.p, "direction": f.direction}
                for f in self.duplicates
            ],
            "delays": [
                {
                    "shard_id": f.shard_id,
                    "delay_s": f.delay_s,
                    "jitter_s": f.jitter_s,
                    "direction": f.direction,
                }
                for f in self.delays
            ],
            "reorders": [
                {
                    "shard_id": f.shard_id,
                    "p": f.p,
                    "penalty_s": f.penalty_s,
                    "direction": f.direction,
                }
                for f in self.reorders
            ],
            "partitions": [
                {
                    "start_s": w.start_s,
                    "end_s": w.end_s,
                    "shard_ids": list(w.shard_ids),
                }
                for w in self.partitions
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "NetworkFaultPlan":
        if not isinstance(doc, dict):
            raise ConfigError(f"network fault plan must be an object, got {doc!r}")
        unknown = set(doc) - {
            "seed",
            "drops",
            "duplicates",
            "delays",
            "reorders",
            "partitions",
        }
        if unknown:
            raise ConfigError(
                f"network fault plan has unknown keys {sorted(unknown)}"
            )
        try:
            return cls(
                seed=int(doc.get("seed", 0)),
                drops=tuple(
                    LinkDrop(
                        shard_id=int(f["shard_id"]),
                        p=float(f.get("p", 0.1)),
                        direction=str(f.get("direction", "both")),
                    )
                    for f in doc.get("drops", ())
                ),
                duplicates=tuple(
                    LinkDuplicate(
                        shard_id=int(f["shard_id"]),
                        p=float(f.get("p", 0.1)),
                        direction=str(f.get("direction", "both")),
                    )
                    for f in doc.get("duplicates", ())
                ),
                delays=tuple(
                    LinkDelay(
                        shard_id=int(f["shard_id"]),
                        delay_s=float(f.get("delay_s", 0.001)),
                        jitter_s=float(f.get("jitter_s", 0.0)),
                        direction=str(f.get("direction", "both")),
                    )
                    for f in doc.get("delays", ())
                ),
                reorders=tuple(
                    LinkReorder(
                        shard_id=int(f["shard_id"]),
                        p=float(f.get("p", 0.1)),
                        penalty_s=float(f.get("penalty_s", 0.002)),
                        direction=str(f.get("direction", "both")),
                    )
                    for f in doc.get("reorders", ())
                ),
                partitions=tuple(
                    Partition(
                        start_s=float(w["start_s"]),
                        end_s=float(w["end_s"]),
                        shard_ids=tuple(int(s) for s in w.get("shard_ids", ())),
                    )
                    for w in doc.get("partitions", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed network fault plan: {exc}") from exc


# -- delivery policy -----------------------------------------------------------


@dataclass(frozen=True)
class TransportPolicy:
    """How the coordinator times out, retries, and hedges deliveries.

    All durations are modeled seconds.  ``hedge=False`` (the default)
    is pure timeout-retry: a blocked link is retried with bounded
    backoff until it heals or ``max_redeliveries`` exhausts.  With
    ``hedge=True`` the coordinator additionally arms a hedge timer per
    round: if the round's work envelope is not acknowledged within
    ``hedge_timeout_s``, the in-flight round is *stolen* onto the next
    healthy shard while the original delivery keeps trying — the two
    results race, and the loser is absorbed by dedup.
    """

    link_timeout_s: float = 0.002
    backoff_base_s: float = 0.001
    backoff_factor: float = 2.0
    max_backoff_s: float = 0.01
    max_redeliveries: int = 64
    hedge: bool = False
    hedge_timeout_s: float = 0.01
    breaker_cooldown_s: float = 0.02

    def __post_init__(self) -> None:
        if self.link_timeout_s <= 0:
            raise ConfigError(
                f"link_timeout_s must be > 0, got {self.link_timeout_s}"
            )
        if self.backoff_base_s < 0:
            raise ConfigError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff_s < self.backoff_base_s:
            raise ConfigError(
                f"max_backoff_s must be >= backoff_base_s, got "
                f"{self.max_backoff_s} < {self.backoff_base_s}"
            )
        if self.max_redeliveries < 1:
            raise ConfigError(
                f"max_redeliveries must be >= 1, got {self.max_redeliveries}"
            )
        if self.hedge_timeout_s <= 0:
            raise ConfigError(
                f"hedge_timeout_s must be > 0, got {self.hedge_timeout_s}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ConfigError(
                f"breaker_cooldown_s must be > 0, got {self.breaker_cooldown_s}"
            )

    def backoff(self, attempt: int) -> float:
        """Bounded exponential backoff before retransmission ``attempt``."""
        return min(
            self.backoff_base_s * (self.backoff_factor**attempt),
            self.max_backoff_s,
        )


# -- wire records --------------------------------------------------------------


@dataclass(frozen=True)
class Envelope:
    """One typed message on a coordinator<->shard link.

    The ``key`` is the idempotency key — identical across every
    retransmission of the same logical message, which is what makes
    at-least-once delivery safe: the receiver executes the first
    arrival and absorbs the rest.
    """

    key: str
    direction: str
    round_index: int
    shard: int
    attempt: int
    sent_s: float

    @staticmethod
    def make_key(direction: str, round_index: int) -> str:
        return f"{direction}/round-{round_index:04d}"


@dataclass(frozen=True)
class Ack:
    """Receiver acknowledgement of one envelope (by idempotency key)."""

    key: str
    received_s: float
    duplicate: bool = False


@dataclass(frozen=True)
class Delivery:
    """Outcome of delivering one logical message over one link."""

    envelope: Envelope
    ack: Optional[Ack]
    ok: bool
    arrive_s: float
    attempts: int
    gave_up_s: float = 0.0


# -- per-run report ------------------------------------------------------------


@dataclass
class TransportReport:
    """What the network did to one fleet run (JSON-ready via to_dict).

    ``makespan_s`` is the networked analogue of the direct fleet's
    makespan: the latest result *receipt* at the coordinator, minus the
    run's start — network time is on the critical path, as it is on
    real rank deployments.
    """

    start_s: float = 0.0
    #: modeled coordinator receipt time of each round's surviving result
    receipts: dict[int, float] = field(default_factory=dict)
    #: which shard's result survived for each round
    survivors: dict[int, int] = field(default_factory=dict)
    #: per-shard modeled busy seconds (execution only, not wire time)
    shard_busy_s: dict[int, float] = field(default_factory=dict)
    drops: int = 0
    redeliveries: int = 0
    duplicates_absorbed: int = 0
    partition_blocked: int = 0
    steals: int = 0

    @property
    def makespan_s(self) -> float:
        if not self.receipts:
            return 0.0
        return max(self.receipts.values()) - self.start_s

    def to_dict(self) -> dict:
        return {
            "schema": "repro.pim.transport/v1",
            "makespan_s": self.makespan_s,
            "rounds": len(self.receipts),
            "survivors": {str(r): s for r, s in sorted(self.survivors.items())},
            "shard_busy_s": {
                str(k): v for k, v in sorted(self.shard_busy_s.items())
            },
            "drops": self.drops,
            "redeliveries": self.redeliveries,
            "duplicates_absorbed": self.duplicates_absorbed,
            "partition_blocked": self.partition_blocked,
            "steals": self.steals,
        }


# -- the transport -------------------------------------------------------------


class ShardTransport:
    """At-least-once delivery over faulty modeled links, with dedup.

    One instance per :class:`~repro.pim.fleet.FleetCoordinator`; link
    circuit breakers persist across runs (a flaky link stays
    quarantined between runs, exactly like a flaky DPU does), while the
    per-run :class:`TransportReport` and the receiver's dedup table
    reset on :meth:`begin_run`.
    """

    def __init__(
        self,
        shards: int,
        plan: NetworkFaultPlan,
        policy: Optional[TransportPolicy] = None,
        registry: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.plan = plan
        self.policy = policy if policy is not None else TransportPolicy()
        self.events = events
        from repro.pim.health import CircuitBreaker, HealthPolicy

        breaker_policy = HealthPolicy(
            window=8,
            failure_threshold=3,
            cooldown_s=self.policy.breaker_cooldown_s,
        )
        self.links = {k: CircuitBreaker(breaker_policy) for k in range(shards)}
        self._seen: set[str] = set()
        self._runs = 0
        self._rng_salt = 0
        self.report = TransportReport()
        self._envelopes = self._drops = self._redeliveries = None
        self._duplicates = self._partition_blocked = self._steals = None
        if registry is not None:
            self._envelopes = registry.counter(
                "pim_net_envelopes_total",
                "transport envelopes delivered, by direction",
            )
            self._drops = registry.counter(
                "pim_net_drops_total", "envelopes lost on a link"
            )
            self._redeliveries = registry.counter(
                "pim_net_redeliveries_total",
                "retransmissions after modeled link timeouts",
            )
            self._duplicates = registry.counter(
                "pim_net_duplicates_absorbed_total",
                "duplicate arrivals absorbed by idempotency-key dedup",
            )
            self._partition_blocked = registry.counter(
                "pim_net_partition_blocked_total",
                "delivery attempts blocked by an active partition window",
            )
            self._steals = registry.counter(
                "pim_net_steals_total",
                "in-flight rounds hedged onto another shard",
            )

    # -- run lifecycle -----------------------------------------------------

    def begin_run(self, now: float) -> TransportReport:
        """Reset per-run state (report + dedup table); breakers persist.

        Round indices restart at 0 every run, so the fault RNG is salted
        with a per-run counter — without it, a long-lived transport (the
        serve path runs one ``fleet.run`` per batch) would replay the
        exact same drop/duplicate decisions for every batch.  The first
        run's salt is 0, so a single-run workload is byte-identical to a
        fresh transport and all pinned single-run behaviors hold.
        """
        self._seen = set()
        self._rng_salt = self._runs * 7_919_993
        self._runs += 1
        self.report = TransportReport(start_s=now)
        return self.report

    # -- link health ---------------------------------------------------------

    def link_ok(self, shard: int, now: float) -> bool:
        """Whether a link is eligible for new traffic (breaker not open)."""
        from repro.pim.health import OPEN

        return self.links[shard].state(now) != OPEN

    def link_healthy_fraction(self, now: float) -> float:
        """Fraction of links not currently quarantined — the degraded-
        network backpressure signal the serve dispatcher consumes."""
        ok = sum(1 for k in range(self.shards) if self.link_ok(k, now))
        return ok / self.shards

    def link_states(self, now: float) -> dict[int, str]:
        return {k: self.links[k].state(now) for k in range(self.shards)}

    # -- delivery ------------------------------------------------------------

    def deliver(
        self, direction: str, round_index: int, shard: int, t_send: float
    ) -> Delivery:
        """Deliver one logical message at-least-once over one link.

        Walks the modeled retransmission loop: a partition-blocked or
        dropped attempt waits out the link timeout plus bounded backoff
        and retries (``net_redeliver``), up to
        ``policy.max_redeliveries`` attempts.  Returns a failed
        :class:`Delivery` (``ok=False``) on exhaustion — the *caller*
        decides between stealing the round and raising
        :class:`~repro.errors.TransportError`, because only the caller
        knows whether another shard can take the work.
        """
        if direction not in DIRECTIONS:
            raise ConfigError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}"
            )
        plan, policy = self.plan, self.policy
        key = Envelope.make_key(direction, round_index)
        t = t_send
        envelope = Envelope(key, direction, round_index, shard, 0, t_send)
        for attempt in range(policy.max_redeliveries):
            envelope = Envelope(key, direction, round_index, shard, attempt, t)
            until = plan.partitioned_until(shard, t)
            if until is not None:
                self.report.partition_blocked += 1
                if self._partition_blocked is not None:
                    self._partition_blocked.inc()
                if self.events is not None:
                    from repro.obs.events import NET_PARTITION

                    self.events.publish(
                        NET_PARTITION,
                        t,
                        round=round_index,
                        shard=shard,
                        direction=direction,
                        until_s=until,
                    )
                self.links[shard].record_failure(t)
                t = self._retransmit(envelope, t)
                continue
            if self._fires(shard, round_index, direction, attempt, "drop"):
                self.report.drops += 1
                if self._drops is not None:
                    self._drops.inc()
                if self.events is not None:
                    from repro.obs.events import NET_DROP

                    self.events.publish(
                        NET_DROP,
                        t,
                        round=round_index,
                        shard=shard,
                        direction=direction,
                        attempt=attempt,
                    )
                self.links[shard].record_failure(t)
                t = self._retransmit(envelope, t)
                continue
            arrive = t + self._latency(shard, round_index, direction, attempt)
            self.links[shard].record_success(arrive)
            if self._envelopes is not None:
                self._envelopes.inc(direction=direction)
            duplicate = key in self._seen
            self._seen.add(key)
            if duplicate:
                self._absorb_duplicate()
            if self._fires(shard, round_index, direction, attempt, "duplicate"):
                # the wire delivered a second copy; dedup absorbs it
                self._absorb_duplicate()
            return Delivery(
                envelope=envelope,
                ack=Ack(key=key, received_s=arrive, duplicate=duplicate),
                ok=True,
                arrive_s=arrive,
                attempts=attempt + 1,
            )
        return Delivery(
            envelope=envelope,
            ack=None,
            ok=False,
            arrive_s=t,
            attempts=policy.max_redeliveries,
            gave_up_s=t,
        )

    def _retransmit(self, envelope: Envelope, t: float) -> float:
        """Charge the timeout + backoff for one retransmission."""
        backoff = self.policy.backoff(envelope.attempt)
        self.report.redeliveries += 1
        if self._redeliveries is not None:
            self._redeliveries.inc()
        retry_at = t + self.policy.link_timeout_s + backoff
        if self.events is not None:
            from repro.obs.events import NET_REDELIVER

            self.events.publish(
                NET_REDELIVER,
                retry_at,
                round=envelope.round_index,
                shard=envelope.shard,
                direction=envelope.direction,
                attempt=envelope.attempt + 1,
                backoff_s=backoff,
            )
        return retry_at

    def _fires(
        self, shard: int, round_index: int, direction: str, attempt: int, site: str
    ) -> bool:
        faults = self.plan.drops if site == "drop" else self.plan.duplicates
        for f in faults:
            if f.shard_id == shard and _applies(f.direction, direction):
                roll = _link_rand(
                    self.plan.seed + self._rng_salt,
                    shard, round_index, direction, attempt, site,
                )
                if roll < f.p:
                    return True
        return False

    def _latency(
        self, shard: int, round_index: int, direction: str, attempt: int
    ) -> float:
        latency = 0.0
        for d in self.plan.delays:
            if d.shard_id == shard and _applies(d.direction, direction):
                jitter = 0.0
                if d.jitter_s:
                    jitter = d.jitter_s * _link_rand(
                        self.plan.seed + self._rng_salt,
                        shard, round_index, direction, attempt, "delay",
                    )
                latency += d.delay_s + jitter
        for ro in self.plan.reorders:
            if ro.shard_id == shard and _applies(ro.direction, direction):
                roll = _link_rand(
                    self.plan.seed + self._rng_salt,
                    shard, round_index, direction, attempt, "reorder",
                )
                if roll < ro.p:
                    latency += ro.penalty_s
        return latency

    # -- dedup + stealing ----------------------------------------------------

    def _absorb_duplicate(self) -> None:
        self.report.duplicates_absorbed += 1
        if self._duplicates is not None:
            self._duplicates.inc()

    def absorb_extra_result(self, round_index: int, shard: int) -> None:
        """A steal race produced a second result for ``round_index``;
        the loser is absorbed by dedup, never double-counted."""
        self._absorb_duplicate()

    def note_steal(
        self, round_index: int, from_shard: int, to_shard: int, t_s: float
    ) -> None:
        """Record a hedged re-dispatch of an in-flight round."""
        self.report.steals += 1
        if self._steals is not None:
            self._steals.inc()
        if self.events is not None:
            from repro.obs.events import STEAL

            self.events.publish(
                STEAL,
                t_s,
                round=round_index,
                from_shard=from_shard,
                to_shard=to_shard,
            )
