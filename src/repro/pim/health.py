"""Fleet-health ledger: per-DPU circuit breakers and quarantine.

PR 3's recovery layer tolerates faults *within* a run: a dead DPU's
batch is retried, backed off, and requeued onto spares — but nothing
remembers that the DPU was bad, so the next round places work on it
again and pays the full retry tax every time.  At the paper's scale
(2560 DPUs kept busy for millions of pairs) a single persistently bad
rank re-tried forever dominates the modeled run time.

This module is the *across-round* memory: a :class:`FleetHealth` ledger
holds one :class:`CircuitBreaker` per physical DPU, fed by the
:class:`~repro.pim.faults.RecoveryReport` s each round produces (the
per-attempt ``(placement, error)`` log attributes failures to physical
hardware even after requeues).  The :class:`~repro.pim.scheduler.BatchScheduler`
consults the ledger when planning a round: quarantined DPUs are
excluded from placement entirely — the round runs on the healthy
remainder (honestly modeled: fewer DPUs means bigger per-DPU batches
and longer kernels) instead of burning retries — and the capacity loss
is surfaced as metrics plus a typed
:class:`~repro.errors.DegradedCapacity` warning.

Breaker discipline (the classic closed → open → half-open machine, on
the *modeled* clock — never wall time, never slept):

* **closed** — the DPU takes placements.  Failures accumulate in a
  sliding window of the most recent ``window`` outcomes; when the
  window holds ``failure_threshold`` failures the breaker *opens*.
* **open** — the DPU is quarantined.  After ``cooldown_s`` modeled
  seconds the breaker moves to *half-open* on its next query.
* **half-open** — probation: the DPU takes placements again (probe
  traffic).  ``probe_successes`` consecutive successes close the
  breaker; any failure reopens it and restarts the cooldown.

Everything is deterministic: breakers are stored and queried in DPU-id
order, state changes depend only on the observed outcome sequence and
the modeled timestamps, and the ledger can be reconstructed exactly by
replaying journaled recovery reports (crash-resume keeps quarantine
decisions identical).
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ConfigError, DegradedCapacity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import EventLog
    from repro.obs.metrics import MetricsRegistry
    from repro.pim.faults import RecoveryReport

__all__ = ["HealthPolicy", "CircuitBreaker", "FleetHealth", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class HealthPolicy:
    """Tuning knobs for the per-DPU circuit breakers."""

    #: sliding window length (most recent outcomes per DPU considered)
    window: int = 8
    #: failures within the window that open the breaker
    failure_threshold: int = 3
    #: modeled seconds a breaker stays open before probation
    cooldown_s: float = 0.05
    #: consecutive half-open successes required to close the breaker
    probe_successes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if not 1 <= self.failure_threshold <= self.window:
            raise ConfigError(
                f"failure_threshold must be in [1, window={self.window}], "
                f"got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ConfigError("cooldown_s must be >= 0")
        if self.probe_successes < 1:
            raise ConfigError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )


class CircuitBreaker:
    """Closed → open → half-open breaker for one physical DPU.

    All timestamps are modeled seconds supplied by the caller; the
    breaker never reads a wall clock.  The open → half-open transition
    happens lazily on :meth:`state` queries once the cooldown has
    elapsed — callers that query in a deterministic order (see
    :class:`FleetHealth`) therefore see deterministic transitions.
    """

    def __init__(self, policy: HealthPolicy) -> None:
        self.policy = policy
        self._state = CLOSED
        self._window: deque[bool] = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._probe_streak = 0
        #: lifetime counters (diagnostics / ledger snapshots)
        self.failures = 0
        self.successes = 0
        self.times_opened = 0

    # -- queries ---------------------------------------------------------

    def state(self, now: float) -> str:
        """Current state at modeled time ``now`` (may promote to
        half-open once the cooldown has elapsed)."""
        if self._state == OPEN and now >= self._opened_at + self.policy.cooldown_s:
            self._state = HALF_OPEN
            self._probe_streak = 0
        return self._state

    def allows(self, now: float) -> bool:
        """Whether the DPU may take placements at ``now`` (closed or
        half-open probation — open means quarantined)."""
        return self.state(now) != OPEN

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the current sliding window."""
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    # -- outcomes --------------------------------------------------------

    def record_failure(self, now: float) -> str:
        """Account one failed placement; returns the resulting state."""
        self.failures += 1
        state = self.state(now)
        if state == HALF_OPEN:
            # a probe failed: reopen and restart the cooldown
            self._trip(now)
        else:
            self._window.append(True)
            if sum(self._window) >= self.policy.failure_threshold:
                self._trip(now)
        return self._state

    def record_success(self, now: float) -> str:
        """Account one successful placement; returns the resulting state."""
        self.successes += 1
        state = self.state(now)
        if state == HALF_OPEN:
            self._probe_streak += 1
            if self._probe_streak >= self.policy.probe_successes:
                self._state = CLOSED
                self._window.clear()
                self._probe_streak = 0
        elif state == CLOSED:
            self._window.append(False)
        return self._state

    def _trip(self, now: float) -> None:
        self._state = OPEN
        self._opened_at = now
        self._window.clear()
        self._probe_streak = 0
        self.times_opened += 1

    def to_dict(self, now: float) -> dict:
        return {
            "state": self.state(now),
            "failures": self.failures,
            "successes": self.successes,
            "times_opened": self.times_opened,
            "failure_rate": self.failure_rate,
        }

    # -- state transfer ----------------------------------------------------

    def export_state(self) -> dict:
        """Picklable/JSON-able full internal state (no lazy promotion).

        Unlike :meth:`to_dict` this is a *lossless* snapshot — the
        sliding window, probe streak, and open timestamp travel too, so
        a breaker reconstructed via :meth:`import_state` behaves
        byte-identically from the next outcome on.  This is how a
        process-pool fleet shard ships its health delta home (see
        :class:`~repro.pim.fleet.ShardOutcome`).
        """
        return {
            "state": self._state,
            "window": list(self._window),
            "opened_at": self._opened_at,
            "probe_streak": self._probe_streak,
            "failures": self.failures,
            "successes": self.successes,
            "times_opened": self.times_opened,
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self._state = state["state"]
        self._window = deque(
            (bool(b) for b in state["window"]), maxlen=self.policy.window
        )
        self._opened_at = float(state["opened_at"])
        self._probe_streak = int(state["probe_streak"])
        self.failures = int(state["failures"])
        self.successes = int(state["successes"])
        self.times_opened = int(state["times_opened"])


class FleetHealth:
    """Per-DPU health ledger over one physical fleet.

    Feed it round outcomes (:meth:`observe_report` /
    :meth:`observe_success`), ask it who may take work
    (:meth:`plan_round` / :meth:`available`).  The ledger keeps a
    monotone modeled clock — callers pass timestamps from whatever
    timeline they run on (scheduler model time, the serve virtual
    clock) and the ledger takes the max, so replays and resumed runs
    reconstruct identical breaker states.
    """

    def __init__(
        self,
        num_dpus: int,
        policy: Optional[HealthPolicy] = None,
        registry: Optional["MetricsRegistry"] = None,
        events: Optional["EventLog"] = None,
    ) -> None:
        if num_dpus < 1:
            raise ConfigError(f"num_dpus must be >= 1, got {num_dpus}")
        self.policy = policy if policy is not None else HealthPolicy()
        self.num_dpus = num_dpus
        self.breakers = {d: CircuitBreaker(self.policy) for d in range(num_dpus)}
        self._now = 0.0
        self._registry = registry
        #: optional structured event sink — every breaker state change
        #: becomes a typed ``breaker`` event (dpu, old, new) at the
        #: modeled time the outcome was recorded.
        self.events = events
        self._transitions = None
        self._quarantined_gauge = None
        self._capacity_gauge = None
        if registry is not None:
            self._transitions = registry.counter(
                "pim_breaker_transitions_total",
                "circuit-breaker state transitions, by new state",
            )
            self._quarantined_gauge = registry.gauge(
                "pim_dpus_quarantined", "DPUs currently quarantined (breaker open)"
            )
            self._capacity_gauge = registry.gauge(
                "pim_healthy_capacity",
                "fraction of the fleet available for placement",
            )

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def advance(self, now: float) -> float:
        """Advance the ledger clock (monotone max) and return it."""
        self._now = max(self._now, now)
        return self._now

    # -- outcome ingestion -----------------------------------------------

    def record_failure(self, dpu_id: int, now: Optional[float] = None) -> str:
        now = self.advance(self._now if now is None else now)
        before = self.breakers[dpu_id].state(now)
        after = self.breakers[dpu_id].record_failure(now)
        self._count_transition(before, after, dpu_id, now)
        return after

    def record_success(self, dpu_id: int, now: Optional[float] = None) -> str:
        now = self.advance(self._now if now is None else now)
        before = self.breakers[dpu_id].state(now)
        after = self.breakers[dpu_id].record_success(now)
        self._count_transition(before, after, dpu_id, now)
        return after

    def observe_report(
        self, report: "RecoveryReport", now: Optional[float] = None
    ) -> None:
        """Fold one round's recovery outcomes into the ledger.

        Failures are attributed to *physical* placements via each
        record's ``attempts_log`` (``errors`` alone cannot say which
        DPU misbehaved after a requeue); the final successful placement
        earns a success.  Records are walked in list order — reports
        keep records sorted by logical id — so replaying the same
        report always produces the same breaker states.
        """
        now = self.advance(self._now if now is None else now)
        for rec in report.records:
            for placement, _kind in rec.attempts_log:
                if placement in self.breakers:
                    self.record_failure(placement, now)
            if rec.final_placement is not None and rec.final_placement in self.breakers:
                self.record_success(rec.final_placement, now)

    def observe_success(
        self, dpu_ids: Iterable[int], now: Optional[float] = None
    ) -> None:
        """Credit a clean (fault-free) round to every participating DPU."""
        now = self.advance(self._now if now is None else now)
        for d in sorted(set(dpu_ids)):
            if d in self.breakers:
                self.record_success(d, now)

    # -- placement queries -------------------------------------------------

    def available(self, now: Optional[float] = None) -> tuple[int, ...]:
        """Sorted physical DPU ids allowed to take placements (closed or
        half-open probation).  Queries breakers in id order, so any
        cooldown-driven open → half-open promotions happen
        deterministically."""
        now = self.advance(self._now if now is None else now)
        return tuple(
            d for d in range(self.num_dpus) if self.breakers[d].allows(now)
        )

    def quarantined(self, now: Optional[float] = None) -> tuple[int, ...]:
        now = self.advance(self._now if now is None else now)
        return tuple(
            d for d in range(self.num_dpus) if not self.breakers[d].allows(now)
        )

    def healthy_fraction(self, now: Optional[float] = None) -> float:
        return len(self.available(now)) / self.num_dpus

    def plan_round(self, now: Optional[float] = None) -> tuple[int, ...]:
        """Active placement set for the next scheduler round.

        Quarantined DPUs are excluded; the capacity gauges are updated
        and a :class:`~repro.errors.DegradedCapacity` warning is issued
        when the round runs below full strength.  If *every* breaker is
        open (total quarantine), the full fleet is returned instead —
        refusing to place work at all would deadlock the run, so the
        whole fleet becomes probe traffic (and the warning says so).
        """
        now = self.advance(self._now if now is None else now)
        active = self.available(now)
        quarantined = self.num_dpus - len(active)
        if self._quarantined_gauge is not None:
            self._quarantined_gauge.set(quarantined)
        if self._capacity_gauge is not None:
            self._capacity_gauge.set(len(active) / self.num_dpus if active else 0.0)
        if not active:
            warnings.warn(
                f"all {self.num_dpus} DPUs quarantined at t={now:.6f}; "
                "forcing a full-fleet probe round",
                DegradedCapacity,
                stacklevel=2,
            )
            return tuple(range(self.num_dpus))
        if quarantined:
            warnings.warn(
                f"{quarantined} of {self.num_dpus} DPUs quarantined at "
                f"t={now:.6f}; round placed on {len(active)} healthy DPUs",
                DegradedCapacity,
                stacklevel=2,
            )
        return active

    # -- documents ---------------------------------------------------------

    def states(self, now: Optional[float] = None) -> dict[int, str]:
        now = self.advance(self._now if now is None else now)
        return {d: self.breakers[d].state(now) for d in range(self.num_dpus)}

    def to_dict(self, now: Optional[float] = None) -> dict:
        now = self.advance(self._now if now is None else now)
        return {
            "schema": "repro.pim.health/v1",
            "now": now,
            "num_dpus": self.num_dpus,
            "available": list(self.available(now)),
            "quarantined": list(self.quarantined(now)),
            "breakers": {
                str(d): self.breakers[d].to_dict(now) for d in range(self.num_dpus)
            },
        }

    # -- state transfer ----------------------------------------------------

    def export_state(self) -> dict:
        """Lossless, picklable ledger state (clock + every breaker).

        The fleet coordinator ships this into process-pool shard workers
        (so a worker's ledger starts exactly where the coordinator's
        persistent one left off) and back out again as the
        :class:`~repro.pim.fleet.ShardOutcome` health delta.  Replaying
        an exported state through :meth:`import_state` is byte-identical
        to having observed the outcomes in-process — the property that
        lets ``shard_workers > 1`` carry health ledgers at all.
        """
        return {
            "now": self._now,
            "breakers": {
                str(d): self.breakers[d].export_state()
                for d in range(self.num_dpus)
            },
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        Counters/events attached to this ledger are *not* replayed —
        the process that observed the outcomes already published them.
        """
        self._now = max(self._now, float(state["now"]))
        for key, breaker_state in state["breakers"].items():
            d = int(key)
            if d in self.breakers:
                self.breakers[d].import_state(breaker_state)

    def _count_transition(
        self, before: str, after: str, dpu_id: int, now: float
    ) -> None:
        if before == after:
            return
        if self._transitions is not None:
            self._transitions.inc(to=after)
        if self.events is not None:
            from repro.obs.events import BREAKER

            self.events.publish(BREAKER, now, dpu=dpu_id, old=before, new=after)
