"""Host<->DPU transfer engine.

Models the paper's host loop: "one CPU thread distributes read pairs
evenly across DPU MRAMs using parallel data transfers ... when the DPUs
complete, the CPU thread transfers the results back from the DPU MRAMs."

Functionally, :meth:`HostTransferEngine.push_batch` packs pair records and
writes them (plus the layout header) into a simulated DPU's MRAM, and
:meth:`HostTransferEngine.pull_results` parses result records back out —
so the integration tests can verify that scores/CIGARs survive the full
round trip through the memory system.

For timing, transfers to/from *all* DPUs proceed in parallel across
ranks; the model divides total bytes by the configured effective
aggregate bandwidth (see :class:`~repro.pim.config.HostTransferConfig`
for why "effective" != PrIM's peak).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.cigar import Cigar
from repro.data.generator import ReadPair
from repro.errors import CorruptResultError, LayoutError
from repro.pim.config import HostTransferConfig
from repro.pim.dpu import Dpu
from repro.pim.layout import HEADER_BYTES, MramLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.pim.faults import FaultInjector

__all__ = ["HostTransferEngine", "TransferStats"]


@dataclass
class TransferStats:
    """Bytes actually moved to/from the simulated DPUs."""

    bytes_to_dpu: int = 0
    bytes_from_dpu: int = 0
    pushes: int = 0
    pulls: int = 0

    def merge(self, other: "TransferStats") -> None:
        """Fold another engine's counters in (parallel-run merge path)."""
        self.bytes_to_dpu += other.bytes_to_dpu
        self.bytes_from_dpu += other.bytes_from_dpu
        self.pushes += other.pushes
        self.pulls += other.pulls


class HostTransferEngine:
    """Functional copies + aggregate-bandwidth timing.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, every
    functional push/pull also counts into ``pim_transfer_bytes_total``
    (by direction) and ``pim_transfer_ops_total`` (by op) — the
    engine-level view the telemetry layer aggregates across workers.
    """

    def __init__(
        self,
        config: HostTransferConfig,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.stats = TransferStats()
        #: optional :class:`~repro.pim.faults.FaultInjector` for the DPU
        #: this engine is currently copying to/from.  When set, pushes and
        #: pulls honor its truncation budgets, apply its MRAM corruption
        #: windows, and surface parse failures as typed
        #: :class:`~repro.errors.CorruptResultError`\ s.
        self.injector: Optional["FaultInjector"] = None
        self._bytes_metric = (
            registry.counter(
                "pim_transfer_bytes_total",
                "host<->DPU record bytes actually copied",
            )
            if registry is not None
            else None
        )
        self._ops_metric = (
            registry.counter(
                "pim_transfer_ops_total", "host<->DPU batch copy operations"
            )
            if registry is not None
            else None
        )

    def _observe(self, direction: str, op: str, nbytes: int) -> None:
        if self._bytes_metric is not None:
            self._bytes_metric.inc(nbytes, direction=direction)
            self._ops_metric.inc(op=op)

    # -- functional ------------------------------------------------------

    def push_batch(
        self, dpu: Dpu, layout: MramLayout, pairs: list[ReadPair]
    ) -> int:
        """Write header + input records into ``dpu``'s MRAM; returns bytes."""
        if len(pairs) > layout.num_pairs:
            raise LayoutError(
                f"batch of {len(pairs)} pairs exceeds layout capacity "
                f"{layout.num_pairs}"
            )
        limit = self.injector.push_limit() if self.injector is not None else None
        total = HEADER_BYTES + len(pairs) * layout.input_record_size
        if limit is not None and limit < HEADER_BYTES:
            raise self.injector.truncated("push", 0, total)
        layout.write_header(dpu.mram)
        moved = HEADER_BYTES
        for i, pair in enumerate(pairs):
            record = layout.pack_pair(pair)
            if limit is not None and moved + len(record) > limit:
                # Partial copy landed; account what moved, then fail typed.
                self.stats.bytes_to_dpu += moved
                self._observe("to_dpu", "push", moved)
                raise self.injector.truncated("push", moved, total)
            dpu.mram.host_write(layout.input_addr(i), record)
            moved += len(record)
        if self.injector is not None:
            self.injector.after_push(dpu, layout)
        self.stats.bytes_to_dpu += moved
        self.stats.pushes += 1
        self._observe("to_dpu", "push", moved)
        return moved

    def pull_results(
        self, dpu: Dpu, layout: MramLayout, count: int
    ) -> tuple[list[tuple[int, Cigar | None]], int]:
        """Read ``count`` result records from ``dpu``'s MRAM.

        Returns ``(results, bytes_moved)`` with results in record order.
        """
        if count > layout.num_pairs:
            raise LayoutError(
                f"cannot pull {count} results from a layout of {layout.num_pairs}"
            )
        results = []
        moved = 0
        limit = self._before_pull(dpu, layout)
        for i in range(count):
            record = self._pull_record(dpu, layout, i, moved, count, limit)
            results.append(self._unpack(layout, record, i))
            moved += len(record)
        self.stats.bytes_from_dpu += moved
        self.stats.pulls += 1
        self._observe("from_dpu", "pull", moved)
        return results, moved

    def pull_results_full(
        self, dpu: Dpu, layout: MramLayout, count: int
    ) -> tuple[list[tuple[int, Cigar | None, int, int]], int]:
        """Like :meth:`pull_results`, also decoding the aligned-region
        starts: ``(score, cigar, pattern_start, text_start)`` per pair."""
        if count > layout.num_pairs:
            raise LayoutError(
                f"cannot pull {count} results from a layout of {layout.num_pairs}"
            )
        results = []
        moved = 0
        limit = self._before_pull(dpu, layout)
        for i in range(count):
            record = self._pull_record(dpu, layout, i, moved, count, limit)
            score, cigar = self._unpack(layout, record, i)
            p_start, t_start = layout.unpack_result_region(record)
            results.append((score, cigar, p_start, t_start))
            moved += len(record)
        self.stats.bytes_from_dpu += moved
        self.stats.pulls += 1
        self._observe("from_dpu", "pull", moved)
        return results, moved

    # -- fault-aware pull plumbing ------------------------------------------

    def _before_pull(self, dpu: Dpu, layout: MramLayout) -> Optional[int]:
        """Apply pre-pull corruption; return the pull byte budget.

        Under injection the gather also re-parses the MRAM layout header
        and checks it against the layout this engine pushed — a rotted
        header means the whole result region is untrustworthy, so the
        pull fails typed before a single record is read.
        """
        if self.injector is None:
            return None
        self.injector.before_pull(dpu, layout)
        try:
            echoed = MramLayout.read_header(dpu.mram)
        except LayoutError as exc:
            raise CorruptResultError(
                f"MRAM layout header failed to parse: {exc}",
                dpu_id=self.injector.dpu_id,
            ) from exc
        if echoed != layout:
            raise CorruptResultError(
                "MRAM layout header does not match the pushed layout",
                dpu_id=self.injector.dpu_id,
            )
        return self.injector.pull_limit()

    def _pull_record(
        self,
        dpu: Dpu,
        layout: MramLayout,
        index: int,
        moved: int,
        count: int,
        limit: Optional[int],
    ) -> bytes:
        size = layout.result_record_size
        if limit is not None and moved + size > limit:
            self.stats.bytes_from_dpu += moved
            self._observe("from_dpu", "pull", moved)
            raise self.injector.truncated("pull", moved, count * size)
        return dpu.mram.host_read(layout.result_addr(index), size)

    def _unpack(self, layout: MramLayout, record: bytes, index: int):
        """Parse one result record; typed error under fault injection.

        Without an injector this is plain :meth:`MramLayout.unpack_result`
        (parse failures stay :class:`~repro.errors.LayoutError`, a
        programming-error signal).  With one attached, a parse failure
        means injected corruption landed in the record header, so it
        surfaces as :class:`~repro.errors.CorruptResultError` — typed,
        catchable, retryable.
        """
        if self.injector is None:
            return layout.unpack_result(record)
        try:
            return layout.unpack_result(record)
        except LayoutError as exc:
            raise CorruptResultError(
                f"result record {index} failed to parse: {exc}",
                dpu_id=self.injector.dpu_id,
            ) from exc

    # -- timing ------------------------------------------------------------

    def to_dpu_seconds(self, total_bytes: int, num_ranks: int = 0) -> float:
        """Modeled wall time for a parallel CPU->DPU push of ``total_bytes``.

        Bound by the larger of the aggregate-bandwidth time and (when
        ``num_ranks`` is given) the per-rank time — few-rank systems are
        rank-bandwidth-bound, full systems aggregate-bound.
        """
        aggregate = total_bytes / self.config.effective_to_dpu_bytes_per_s
        if num_ranks <= 0:
            return aggregate
        per_rank = (total_bytes / num_ranks) / self.config.per_rank_to_dpu_bytes_per_s
        return max(aggregate, per_rank)

    def from_dpu_seconds(self, total_bytes: int, num_ranks: int = 0) -> float:
        """Modeled wall time for a parallel DPU->CPU pull of ``total_bytes``."""
        aggregate = total_bytes / self.config.effective_from_dpu_bytes_per_s
        if num_ranks <= 0:
            return aggregate
        per_rank = (
            total_bytes / num_ranks
        ) / self.config.per_rank_from_dpu_bytes_per_s
        return max(aggregate, per_rank)

    def launch_seconds(self) -> float:
        """Fixed software launch overhead per kernel invocation."""
        return self.config.launch_overhead_s
