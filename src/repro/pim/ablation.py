"""One switchboard for the resilience/serving knobs an ablation flips.

The robustness features grew up in different layers — circuit breakers
in :mod:`repro.pim.health`, requeue budgets in
:class:`~repro.pim.faults.RetryPolicy`, the write-ahead journal in
:mod:`repro.pim.journal`, CPU fallback and the result cache in
:mod:`repro.serve` — so "run the same workload with the breaker off"
used to mean hand-editing three call sites.  :class:`AblationConfig`
is the single frozen description of which of those features are on,
plus the two architecture knobs ablation tables care about (alignment
``engine`` and shard count), with helpers that translate the toggles
into the per-layer policy objects each call site expects.

The named :data:`STANDARD_ABLATIONS` vocabulary is the campaign
runner's default grid axis (see :mod:`repro.qa.campaign`): an all-on
``baseline`` followed by one-feature-off variants, the structure of the
ablation tables in Diab et al.'s follow-up framework paper and RAPIDx.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError
from repro.pim.faults import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pim.health import HealthPolicy

__all__ = [
    "AblationConfig",
    "STANDARD_ABLATIONS",
    "STANDARD_ABLATION_NAMES",
    "ablation_by_name",
]

_ENGINES = ("vector", "scalar")


@dataclass(frozen=True)
class AblationConfig:
    """Which resilience/serving features one run keeps enabled.

    ``shards=None`` means "whatever the caller's baseline shard count
    is" — only ablations that exist to *pin* the shard count (e.g.
    ``shards_1``) set it.
    """

    name: str = "baseline"
    #: per-DPU circuit breakers + quarantine-aware placement.
    breaker: bool = True
    #: requeue of a failed DPU's batch onto spare healthy DPUs
    #: (off = retries in place only; persistent faults then abandon).
    requeue: bool = True
    #: write-ahead journal (crash/resume byte-identity).
    journal: bool = True
    #: serve-layer CPU fallback under degraded capacity.
    fallback: bool = True
    #: serve-layer digest-keyed result cache.
    cache: bool = True
    #: host-side alignment engine (``"vector"`` or ``"scalar"``).
    engine: str = "vector"
    #: pinned shard count; ``None`` inherits the caller's default.
    shards: Optional[int] = None

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("ablation needs a non-empty name")
        if self.engine not in _ENGINES:
            raise ConfigError(
                f"ablation engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigError(f"ablation shards must be >= 1, got {self.shards}")

    @property
    def all_on(self) -> bool:
        """True when every toggled feature is enabled (a baseline shape)."""
        return (
            self.breaker
            and self.requeue
            and self.journal
            and self.fallback
            and self.cache
        )

    # -- per-layer translations -------------------------------------------

    def resolve_shards(self, default: int) -> int:
        """The shard count this ablation runs at."""
        return default if self.shards is None else self.shards

    def health_policy(
        self, base: Optional["HealthPolicy"] = None
    ) -> Optional["HealthPolicy"]:
        """The breaker policy to install (``None`` when the breaker is off)."""
        if not self.breaker:
            return None
        if base is not None:
            return base
        from repro.pim.health import HealthPolicy

        return HealthPolicy()

    def retry_policy(self, base: Optional[RetryPolicy] = None) -> RetryPolicy:
        """``base`` (or the default policy) with requeue zeroed when off."""
        policy = base if base is not None else RetryPolicy()
        if self.requeue:
            return policy
        return replace(policy, max_requeues=0)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "breaker": self.breaker,
            "requeue": self.requeue,
            "journal": self.journal,
            "fallback": self.fallback,
            "cache": self.cache,
            "engine": self.engine,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AblationConfig":
        try:
            out = cls(
                name=str(data["name"]),
                breaker=bool(data["breaker"]),
                requeue=bool(data["requeue"]),
                journal=bool(data["journal"]),
                fallback=bool(data["fallback"]),
                cache=bool(data["cache"]),
                engine=str(data["engine"]),
                shards=None if data.get("shards") is None else int(data["shards"]),
            )
        except KeyError as exc:
            raise ConfigError(f"ablation dict missing key {exc}") from exc
        out.validate()
        return out


#: the default campaign axis: all-on baseline first, then one knob off
#: per variant (plus the two architecture pins).
STANDARD_ABLATIONS: tuple[AblationConfig, ...] = (
    AblationConfig(name="baseline"),
    AblationConfig(name="breaker_off", breaker=False),
    AblationConfig(name="requeue_off", requeue=False),
    AblationConfig(name="journal_off", journal=False),
    AblationConfig(name="fallback_off", fallback=False),
    AblationConfig(name="cache_off", cache=False),
    AblationConfig(name="scalar_engine", engine="scalar"),
    AblationConfig(name="shards_1", shards=1),
)

STANDARD_ABLATION_NAMES: tuple[str, ...] = tuple(
    a.name for a in STANDARD_ABLATIONS
)


def ablation_by_name(name: str) -> AblationConfig:
    """Look up a standard ablation by name (:class:`~repro.errors.ConfigError`
    on an unknown one)."""
    for ablation in STANDARD_ABLATIONS:
        if ablation.name == name:
            return ablation
    raise ConfigError(
        f"unknown ablation {name!r}; known: {', '.join(STANDARD_ABLATION_NAMES)}"
    )
