"""Gotoh's gap-affine dynamic programming — the classical exact baseline.

This is the O(n·m) algorithm WFA supersedes; we implement it as the *gold
reference*: the library's central correctness invariant (property-tested)
is that WFA's score equals Gotoh's score on every input.

Semantics match :class:`~repro.core.penalties.AffinePenalties` (penalty
minimization, match = 0, gap of length ``l`` costs ``open + l·extend``)
so scores are directly comparable with WFA's.

Two entry points:

* :func:`gotoh_score` — score-only, NumPy-vectorized over anti-rows
  (row-at-a-time recurrence), O(min memory).
* :func:`gotoh_align` — full matrices + traceback to a CIGAR.
"""

from __future__ import annotations

import numpy as np

from repro.core.cigar import Cigar, CigarOp
from repro.core.penalties import AffinePenalties, LinearPenalties, Penalties
from repro.errors import AlignmentError

__all__ = ["gotoh_score", "gotoh_align", "INF"]

#: Effectively-infinite penalty; small enough to add without overflow.
INF = np.int64(2**31)


def _penalty_params(penalties: Penalties) -> tuple[int, int, int]:
    """Normalize a penalty model to (mismatch, gap_open, gap_extend).

    Gap-linear and edit metrics are affine with ``gap_open = 0``, so the
    same DP covers all three.
    """
    if isinstance(penalties, AffinePenalties):
        return penalties.mismatch, penalties.gap_open, penalties.gap_extend
    if isinstance(penalties, LinearPenalties):
        return penalties.mismatch, 0, penalties.indel
    # EditPenalties (or anything scoring like it).
    return penalties.mismatch_cost(), 0, penalties.gap_cost(1)


def gotoh_score(pattern: str, text: str, penalties: Penalties) -> int:
    """Optimal gap-affine alignment penalty, score only.

    Row-wise vectorized: M and D rows are pure elementwise updates; the I
    matrix has a horizontal dependence that is resolved with the standard
    prefix-minimum trick (``I[j] = min_{j' < j}(cand[j'] + e*(j - j'))``
    becomes a running minimum over ``cand[j'] - e*j'``).
    """
    n, m = len(pattern), len(text)
    x, o, e = _penalty_params(penalties)
    pat = np.frombuffer(pattern.encode("ascii"), dtype=np.uint8)
    txt = np.frombuffer(text.encode("ascii"), dtype=np.uint8)

    # Row 0: aligning empty pattern prefix to text prefixes (pure insertion).
    j = np.arange(m + 1, dtype=np.int64)
    m_row = np.where(j == 0, 0, o + e * j)
    d_row = np.full(m + 1, INF, dtype=np.int64)
    i_row = m_row.copy()
    i_row[0] = INF

    for vi in range(1, n + 1):
        prev_m, prev_d = m_row, d_row
        # Vertical (deletion) component: open from M above or extend D above.
        d_row = np.minimum(prev_m + o + e, prev_d + e)
        # Diagonal (match/mismatch) component.
        sub = np.where(txt == pat[vi - 1], 0, x)
        diag = prev_m[:-1] + sub
        # Horizontal (insertion) needs a left-to-right scan; do it with a
        # running minimum on cand[j'] - e*j' (cand = best of open/extend
        # entry at column j').
        m_new = np.empty(m + 1, dtype=np.int64)
        i_new = np.empty(m + 1, dtype=np.int64)
        m_new[0] = o + e * vi
        i_new[0] = INF
        # First compute M without I (M = min(diag, D)); then fold I in a scan.
        m_wo_i = np.empty(m + 1, dtype=np.int64)
        m_wo_i[0] = m_new[0]
        m_wo_i[1:] = np.minimum(diag, d_row[1:])
        run = m_wo_i[0] + o  # best (M[j'] + o - e*j') seen so far, at j'=0
        base = run
        for jj in range(1, m + 1):
            i_val = base + e * jj
            i_new[jj] = i_val
            m_val = min(m_wo_i[jj], i_val)
            m_new[jj] = m_val
            cand = m_val + o - e * jj
            if cand < base:
                base = cand
        m_row, d_row, i_row = m_new, d_row, i_new

    score = int(m_row[m])
    if score >= INF:
        raise AlignmentError("gotoh_score produced no finite score")  # pragma: no cover
    return score


def gotoh_align(pattern: str, text: str, penalties: Penalties) -> tuple[int, Cigar]:
    """Optimal gap-affine alignment with traceback.

    Returns ``(score, cigar)``.  Uses full O(n·m) matrices; intended for
    the read lengths of the paper (hundreds to low thousands of bp).
    """
    n, m = len(pattern), len(text)
    x, o, e = _penalty_params(penalties)

    M = np.full((n + 1, m + 1), INF, dtype=np.int64)
    I = np.full((n + 1, m + 1), INF, dtype=np.int64)
    D = np.full((n + 1, m + 1), INF, dtype=np.int64)
    M[0, 0] = 0
    for jj in range(1, m + 1):
        I[0, jj] = o + e * jj
        M[0, jj] = I[0, jj]
    for ii in range(1, n + 1):
        D[ii, 0] = o + e * ii
        M[ii, 0] = D[ii, 0]

    pat = pattern
    txt = text
    for ii in range(1, n + 1):
        pc = pat[ii - 1]
        M_prev = M[ii - 1]
        D_prev = D[ii - 1]
        M_cur = M[ii]
        I_cur = I[ii]
        D_cur = D[ii]
        for jj in range(1, m + 1):
            i_val = min(M_cur[jj - 1] + o + e, I_cur[jj - 1] + e)
            d_val = min(M_prev[jj] + o + e, D_prev[jj] + e)
            diag = M_prev[jj - 1] + (0 if pc == txt[jj - 1] else x)
            I_cur[jj] = i_val
            D_cur[jj] = d_val
            M_cur[jj] = min(diag, i_val, d_val)

    score = int(M[n, m])
    cigar = _traceback(pattern, text, M, I, D, x, o, e)
    return score, cigar


def _traceback(
    pattern: str,
    text: str,
    M: np.ndarray,
    I: np.ndarray,
    D: np.ndarray,
    x: int,
    o: int,
    e: int,
) -> Cigar:
    n, m = len(pattern), len(text)
    ops: list[CigarOp] = []

    def emit(op: str, length: int = 1) -> None:
        if length <= 0:
            return
        if ops and ops[-1].op == op:
            ops[-1] = CigarOp(ops[-1].length + length, op)
        else:
            ops.append(CigarOp(length, op))

    ii, jj = n, m
    state = "M"
    while ii > 0 or jj > 0:
        if state == "M":
            val = M[ii, jj]
            if ii > 0 and jj > 0:
                sub = 0 if pattern[ii - 1] == text[jj - 1] else x
                if val == M[ii - 1, jj - 1] + sub:
                    emit("M" if sub == 0 else "X")
                    ii -= 1
                    jj -= 1
                    continue
            if val == I[ii, jj]:
                state = "I"
                continue
            if val == D[ii, jj]:
                state = "D"
                continue
            raise AlignmentError(
                f"Gotoh traceback dead end at M[{ii},{jj}]"
            )  # pragma: no cover
        elif state == "I":
            val = I[ii, jj]
            emit("I")
            if jj > 1 and val == I[ii, jj - 1] + e:
                jj -= 1
                continue
            if val == M[ii, jj - 1] + o + e:
                jj -= 1
                state = "M"
                continue
            # Column 1 of row 0 boundary: opening from M[ii,0].
            if jj > 0 and val == I[ii, jj - 1] + e:
                jj -= 1
                continue
            raise AlignmentError(
                f"Gotoh traceback dead end at I[{ii},{jj}]"
            )  # pragma: no cover
        else:  # state == "D"
            val = D[ii, jj]
            emit("D")
            if ii > 1 and val == D[ii - 1, jj] + e:
                ii -= 1
                continue
            if val == M[ii - 1, jj] + o + e:
                ii -= 1
                state = "M"
                continue
            if ii > 0 and val == D[ii - 1, jj] + e:
                ii -= 1
                continue
            raise AlignmentError(
                f"Gotoh traceback dead end at D[{ii},{jj}]"
            )  # pragma: no cover
    ops.reverse()
    return Cigar(ops)
