"""Banded gap-affine dynamic programming.

The classical heuristic answer to full-matrix DP cost: only compute cells
within ``band`` diagonals of the main diagonal.  Exact whenever the
optimal alignment stays inside the band (guaranteed when the edit
distance ``d`` satisfies ``d <= band - |m - n|``), otherwise an upper
bound — exactly the trade-off the paper's workloads (reads within an edit
threshold E) are designed around.

Also used as the "other alignment algorithm" PIM kernel for the paper's
future-work comparison (experiment Ext. E in DESIGN.md).

Complexity: O((n + m) · band) cells.  Rows are allocated fresh per
iteration for clarity; the cost models meter *cells computed*, not Python
allocations, so this costs nothing where it matters.
"""

from __future__ import annotations

import math

from repro.core.cigar import Cigar, CigarOp
from repro.core.penalties import Penalties
from repro.baselines.gotoh import _penalty_params
from repro.errors import AlignmentError

__all__ = ["banded_gotoh_score", "banded_gotoh_align", "band_for_error_rate"]

_INF = 2**31


def band_for_error_rate(length: int, error_rate: float, slack: int = 2) -> int:
    """Band width sufficient for pairs within ``error_rate`` edits.

    A pair of ~``length`` bp reads with at most ``ceil(error_rate*length)``
    edits strays at most that many diagonals from the main diagonal;
    ``slack`` extra diagonals absorb length differences.
    """
    return int(math.ceil(error_rate * length)) + slack


def banded_gotoh_score(
    pattern: str, text: str, penalties: Penalties, band: int
) -> int:
    """Gap-affine penalty within a band of ``band`` diagonals.

    Returns the optimal score if the optimal path fits the band; raises
    :class:`AlignmentError` if no path at all fits (band smaller than
    ``|m - n|``).
    """
    score, _ = _banded(pattern, text, penalties, band, traceback=False)
    return score


def banded_gotoh_align(
    pattern: str, text: str, penalties: Penalties, band: int
) -> tuple[int, Cigar]:
    """Banded alignment with traceback; see :func:`banded_gotoh_score`."""
    score, cigar = _banded(pattern, text, penalties, band, traceback=True)
    assert cigar is not None
    return score, cigar


def _banded(
    pattern: str, text: str, penalties: Penalties, band: int, traceback: bool
) -> tuple[int, Cigar | None]:
    n, m = len(pattern), len(text)
    if band < 1:
        raise AlignmentError(f"band must be >= 1, got {band}")
    if abs(m - n) > band:
        raise AlignmentError(
            f"band {band} cannot reach the corner: |m - n| = {abs(m - n)}"
        )
    x, o, e = _penalty_params(penalties)

    def fresh_row() -> list[int]:
        return [_INF] * (m + 1)

    prev_m = fresh_row()
    prev_d = fresh_row()
    prev_m[0] = 0
    for jj in range(1, min(band, m) + 1):
        prev_m[jj] = o + e * jj

    # Full matrices retained only when a traceback is requested.
    M = [prev_m[:]] if traceback else None
    I = [fresh_row()] if traceback else None
    D = [prev_d[:]] if traceback else None
    if traceback:
        for jj in range(1, min(band, m) + 1):
            I[0][jj] = o + e * jj

    for ii in range(1, n + 1):
        lo = max(0, ii - band)
        hi = min(m, ii + band)
        cur_m = fresh_row()
        cur_i = fresh_row()
        cur_d = fresh_row()
        if lo == 0:
            cur_d[0] = o + e * ii
            cur_m[0] = cur_d[0]
        for jj in range(max(lo, 1), hi + 1):
            i_open = cur_m[jj - 1] + o + e if cur_m[jj - 1] < _INF else _INF
            i_ext = cur_i[jj - 1] + e if cur_i[jj - 1] < _INF else _INF
            i_val = min(i_open, i_ext)
            d_open = prev_m[jj] + o + e if prev_m[jj] < _INF else _INF
            d_ext = prev_d[jj] + e if prev_d[jj] < _INF else _INF
            d_val = min(d_open, d_ext)
            if prev_m[jj - 1] < _INF:
                diag = prev_m[jj - 1] + (
                    0 if pattern[ii - 1] == text[jj - 1] else x
                )
            else:
                diag = _INF
            cur_i[jj] = i_val
            cur_d[jj] = d_val
            cur_m[jj] = min(diag, i_val, d_val)
        if traceback:
            M.append(cur_m)
            I.append(cur_i)
            D.append(cur_d)
        prev_m, prev_d = cur_m, cur_d

    score = prev_m[m]
    if score >= _INF:
        raise AlignmentError(f"no alignment found within band {band}")
    if not traceback:
        return int(score), None
    cigar = _traceback_banded(pattern, text, M, I, D, x, o, e)
    return int(score), cigar


def _traceback_banded(pattern, text, M, I, D, x, o, e) -> Cigar:
    n, m = len(pattern), len(text)
    ops: list[CigarOp] = []

    def emit(op: str) -> None:
        if ops and ops[-1].op == op:
            ops[-1] = CigarOp(ops[-1].length + 1, op)
        else:
            ops.append(CigarOp(1, op))

    ii, jj = n, m
    state = "M"
    guard = 2 * (n + m) + 4
    while (ii > 0 or jj > 0) and guard > 0:
        guard -= 1
        if state == "M":
            val = M[ii][jj]
            if ii > 0 and jj > 0 and M[ii - 1][jj - 1] < _INF:
                sub = 0 if pattern[ii - 1] == text[jj - 1] else x
                if val == M[ii - 1][jj - 1] + sub:
                    emit("M" if sub == 0 else "X")
                    ii -= 1
                    jj -= 1
                    continue
            if val == I[ii][jj]:
                state = "I"
                continue
            if val == D[ii][jj]:
                state = "D"
                continue
            raise AlignmentError(f"banded traceback dead end at M[{ii}][{jj}]")
        elif state == "I":
            val = I[ii][jj]
            emit("I")
            if jj > 0 and I[ii][jj - 1] < _INF and val == I[ii][jj - 1] + e:
                jj -= 1
                continue
            if jj > 0 and M[ii][jj - 1] < _INF and val == M[ii][jj - 1] + o + e:
                jj -= 1
                state = "M"
                continue
            raise AlignmentError(f"banded traceback dead end at I[{ii}][{jj}]")
        else:
            val = D[ii][jj]
            emit("D")
            if ii > 0 and D[ii - 1][jj] < _INF and val == D[ii - 1][jj] + e:
                ii -= 1
                continue
            if ii > 0 and M[ii - 1][jj] < _INF and val == M[ii - 1][jj] + o + e:
                ii -= 1
                state = "M"
                continue
            raise AlignmentError(f"banded traceback dead end at D[{ii}][{jj}]")
    if guard == 0:
        raise AlignmentError("banded traceback did not terminate")  # pragma: no cover
    ops.reverse()
    return Cigar(ops)
