"""Bit-parallel and plain-DP Levenshtein distance references.

* :func:`myers_edit_distance` — Myers' 1999 bit-parallel algorithm in its
  *global* (whole-vs-whole) form: the horizontal boundary delta ``+1`` is
  shifted into the PH vector each step, so the tracked score is
  ``D[n][j]`` and, after consuming the whole text, the Levenshtein
  distance.  Python's arbitrary-precision integers stand in for the
  64-bit-block machinery of the C original — the bitwise recurrence is
  identical.
* :func:`levenshtein_dp` — the textbook O(n·m) DP, NumPy row-vectorized;
  deliberately boring, used as the independent oracle in property tests
  (generator edit budgets, edit-metric WFA, and the bit-parallel code all
  get checked against it).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["myers_edit_distance", "levenshtein_dp"]


def myers_edit_distance(pattern: str, text: str) -> int:
    """Global Levenshtein distance via Myers' bit-parallel recurrence."""
    n = len(pattern)
    if n == 0:
        return len(text)
    if len(text) == 0:
        return n

    peq: dict[str, int] = defaultdict(int)
    for i, ch in enumerate(pattern):
        peq[ch] |= 1 << i

    full = (1 << n) - 1
    high = 1 << (n - 1)
    pv = full  # vertical +1 deltas (column j=0: D[i][0] - D[i-1][0] = +1)
    mv = 0
    score = n  # D[n][0]

    for ch in text:
        eq = peq[ch]
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & full)
        mh = pv & xh
        if ph & high:
            score += 1
        if mh & high:
            score -= 1
        # Shift the horizontal deltas up one row; the OR-ed 1 is the
        # boundary delta D[0][j] - D[0][j-1] = +1 of *global* alignment
        # (the approximate-matching original shifts in 0 here).
        ph = ((ph << 1) | 1) & full
        mh = (mh << 1) & full
        pv = (mh | (~(xv | ph) & full)) & full
        mv = ph & xv

    return score


def levenshtein_dp(a: str, b: str) -> int:
    """Textbook Levenshtein DP, one NumPy-vectorized row at a time."""
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    bv = np.frombuffer(b.encode("ascii"), dtype=np.uint8)
    prev = np.arange(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        cur = np.empty(m + 1, dtype=np.int64)
        cur[0] = i
        sub = prev[:-1] + (bv != ord(a[i - 1]))
        dele = prev[1:] + 1
        best = np.minimum(sub, dele)
        # Insertions propagate left-to-right; resolve with a running scan.
        run = cur[0]
        for j in range(1, m + 1):
            run = min(run + 1, best[j - 1])
            cur[j] = run
        prev = cur
    return int(prev[m])
