"""Two-piece gap-affine dynamic programming oracle.

The classical DP counterpart of the two-piece affine metric
(:class:`~repro.core.penalties.TwoPieceAffinePenalties`): five matrices
(M, I1, I2, D1, D2), where piece ``p`` opens with ``open_p + extend_p``
and extends with ``extend_p``, and M takes the minimum over both pieces.
Used purely as the correctness oracle for the affine-2p WFA engine.
"""

from __future__ import annotations

from repro.core.penalties import TwoPieceAffinePenalties
from repro.errors import AlignmentError

__all__ = ["gotoh2p_score"]

_INF = 2**31


def gotoh2p_score(
    pattern: str, text: str, penalties: TwoPieceAffinePenalties
) -> int:
    """Optimal two-piece gap-affine alignment penalty (score only)."""
    if not isinstance(penalties, TwoPieceAffinePenalties):
        raise AlignmentError("gotoh2p_score requires TwoPieceAffinePenalties")
    n, m = len(pattern), len(text)
    x = penalties.mismatch
    o1, e1 = penalties.gap_open1, penalties.gap_extend1
    o2, e2 = penalties.gap_open2, penalties.gap_extend2

    prev_m = [_INF] * (m + 1)
    prev_d1 = [_INF] * (m + 1)
    prev_d2 = [_INF] * (m + 1)
    prev_m[0] = 0
    for jj in range(1, m + 1):
        prev_m[jj] = penalties.gap_cost(jj)

    for ii in range(1, n + 1):
        cur_m = [_INF] * (m + 1)
        cur_i1 = [_INF] * (m + 1)
        cur_i2 = [_INF] * (m + 1)
        cur_d1 = [_INF] * (m + 1)
        cur_d2 = [_INF] * (m + 1)
        cur_m[0] = penalties.gap_cost(ii)
        cur_d1[0] = o1 + e1 * ii
        cur_d2[0] = o2 + e2 * ii
        pc = pattern[ii - 1]
        for jj in range(1, m + 1):
            i1 = min(cur_m[jj - 1] + o1 + e1, cur_i1[jj - 1] + e1)
            i2 = min(cur_m[jj - 1] + o2 + e2, cur_i2[jj - 1] + e2)
            d1 = min(prev_m[jj] + o1 + e1, prev_d1[jj] + e1)
            d2 = min(prev_m[jj] + o2 + e2, prev_d2[jj] + e2)
            diag = prev_m[jj - 1] + (0 if pc == text[jj - 1] else x)
            cur_i1[jj] = i1
            cur_i2[jj] = i2
            cur_d1[jj] = d1
            cur_d2[jj] = d2
            cur_m[jj] = min(diag, i1, i2, d1, d2)
        prev_m, prev_d1, prev_d2 = cur_m, cur_d1, cur_d2

    score = prev_m[m]
    if score >= _INF:  # pragma: no cover - unreachable for finite inputs
        raise AlignmentError("gotoh2p_score produced no finite score")
    return int(score)
