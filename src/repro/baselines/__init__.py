"""Classical alignment baselines used for correctness oracles and context.

* Gotoh gap-affine DP (full and banded) — WFA's exact-score reference.
* Myers O(ND) — indel (LCS) distance.
* Myers 1999 bit-parallel + textbook DP — Levenshtein references.
"""

from repro.baselines.banded import (
    band_for_error_rate,
    banded_gotoh_align,
    banded_gotoh_score,
)
from repro.baselines.bitparallel import levenshtein_dp, myers_edit_distance
from repro.baselines.bounded import bounded_edit_distance
from repro.baselines.gotoh import gotoh_align, gotoh_score
from repro.baselines.gotoh2p import gotoh2p_score
from repro.baselines.gotoh_endsfree import gotoh_endsfree_score
from repro.baselines.linear_space import myers_miller_align
from repro.baselines.myers_ond import myers_indel_distance

__all__ = [
    "gotoh_score",
    "gotoh_align",
    "gotoh2p_score",
    "gotoh_endsfree_score",
    "myers_miller_align",
    "banded_gotoh_score",
    "banded_gotoh_align",
    "band_for_error_rate",
    "myers_indel_distance",
    "myers_edit_distance",
    "levenshtein_dp",
    "bounded_edit_distance",
]
