"""Myers–Miller linear-space optimal gap-affine alignment (1988).

Hirschberg's divide-and-conquer adapted to affine gaps: the pattern is
split at its middle row; forward and backward Gotoh passes over that row
yield, for every column ``j``, the best total cost of a path crossing at
``(i*, j)`` either in the match/mismatch state (``CC + RR``) or inside a
vertical gap (``DD + SS - gap_open`` — both halves paid one opening of
the same gap).  Recursion on the winning crossing point needs only two
O(N) cost rows at a time, so the full optimal CIGAR is recovered in
linear space — the classical answer to the same memory pressure that
motivates BiWFA.

The boundary parameters ``tb``/``te`` carry the gap-opening cost charged
at the top/bottom edges of a subproblem: 0 when the edge lies inside an
already-open gap of the parent problem (Myers & Miller's fix for gaps
crossing the split row), ``gap_open`` otherwise.

Used as: (a) an independently-derived oracle for the WFA stack, and
(b) the library's linear-memory traceback option for very long
sequences.
"""

from __future__ import annotations

from repro.core.cigar import Cigar, CigarOp
from repro.core.penalties import AffinePenalties, Penalties
from repro.baselines.gotoh import _penalty_params
from repro.errors import AlignmentError

__all__ = ["myers_miller_align"]

_INF = 2**31


def myers_miller_align(
    pattern: str, text: str, penalties: Penalties
) -> tuple[int, Cigar]:
    """Optimal gap-affine alignment in linear space.

    Accepts any penalty model expressible as (mismatch, open, extend)
    (affine; linear and edit as open = 0 cases).  Returns
    ``(score, cigar)`` identical in score to
    :func:`repro.baselines.gotoh.gotoh_align`.
    """
    x, g, h = _penalty_params(penalties)
    ops: list[CigarOp] = []

    def emit(op: str, count: int = 1) -> None:
        if count <= 0:
            return
        if ops and ops[-1].op == op:
            ops[-1] = CigarOp(ops[-1].length + count, op)
        else:
            ops.append(CigarOp(count, op))

    _diff(pattern, text, g, g, x, g, h, emit)
    cigar = Cigar(ops)
    return cigar.score(penalties), cigar


def _forward_rows(
    a: str, b: str, tb: int, x: int, g: int, h: int
) -> tuple[list[int], list[int]]:
    """Gotoh rows for aligning all of ``a`` to prefixes of ``b``.

    Returns ``(CC, DD)``: best cost ending at ``(len(a), j)`` in any
    state / in a vertical-gap (deletion) state.  ``tb`` is the opening
    cost charged to a deletion gap touching the top boundary.
    """
    n, m = len(a), len(b)
    cc = [0] * (m + 1)
    dd = [0] * (m + 1)
    # Row 0: insertions along the top (interior opening g).
    cc[0] = 0
    for j in range(1, m + 1):
        cc[j] = g + h * j
    for j in range(m + 1):
        dd[j] = cc[j] + (tb if j == 0 else g)  # pre-opened entry cost base
    # In-place row updates.
    for i in range(1, n + 1):
        diag = cc[0]  # cc[j-1] of the previous row
        cc[0] = tb + h * i
        dd[0] = cc[0]
        e_ins = _INF  # I state of the current row
        ai = a[i - 1]
        for j in range(1, m + 1):
            d_del = min(dd[j] + h, cc[j] + g + h)  # from previous row
            e_ins = min(e_ins + h, cc[j - 1] + g + h)
            sub = diag + (0 if ai == b[j - 1] else x)
            diag = cc[j]
            best = min(sub, d_del, e_ins)
            cc[j] = best
            dd[j] = d_del
    return cc, dd


def _diff(
    a: str, b: str, tb: int, te: int, x: int, g: int, h: int, emit
) -> None:
    """Emit the optimal alignment of ``a`` vs ``b`` (Myers-Miller)."""
    n, m = len(a), len(b)
    if m == 0:
        emit("D", n)
        return
    if n == 0:
        emit("I", m)
        return
    if n == 1:
        _base_single(a, b, tb, te, x, g, h, emit)
        return

    i_mid = n // 2
    cc, dd = _forward_rows(a[:i_mid], b, tb, x, g, h)
    rr, ss = _forward_rows(a[i_mid:][::-1], b[::-1], te, x, g, h)
    rr = rr[::-1]
    ss = ss[::-1]

    best = _INF
    best_j = 0
    best_in_gap = False
    for j in range(m + 1):
        through_m = cc[j] + rr[j]
        through_d = dd[j] + ss[j] - g
        if through_m <= through_d:
            if through_m < best:
                best, best_j, best_in_gap = through_m, j, False
        else:
            if through_d < best:
                best, best_j, best_in_gap = through_d, j, True
    if best >= _INF:  # pragma: no cover - unreachable for finite inputs
        raise AlignmentError("linear-space combine found no crossing point")

    if not best_in_gap:
        _diff(a[:i_mid], b[:best_j], tb, g, x, g, h, emit)
        _diff(a[i_mid:], b[best_j:], g, te, x, g, h, emit)
    else:
        # The optimal path crosses row i_mid inside a deletion: rows
        # i_mid and i_mid+1 are both deleted; the gap may extend into
        # both halves, so their facing boundaries open for free.
        _diff(a[: i_mid - 1], b[:best_j], tb, 0, x, g, h, emit)
        emit("D", 2)
        _diff(a[i_mid + 1 :], b[best_j:], 0, te, x, g, h, emit)


def _base_single(
    a: str, b: str, tb: int, te: int, x: int, g: int, h: int, emit
) -> None:
    """Optimal alignment of a single character against ``b``.

    Two shapes: delete ``a`` (opening at the cheaper boundary) and
    insert all of ``b``; or match/substitute ``a`` against some ``b[j]``
    with the rest of ``b`` inserted around it.
    """
    m = len(b)
    a0 = a[0]
    best = min(tb, te) + h + (g + h * m)  # delete + insert-everything
    best_j = -1  # -1 encodes the deletion shape
    for j in range(m):
        cost = 0 if b[j] == a0 else x
        if j > 0:
            cost += g + h * j
        if j < m - 1:
            cost += g + h * (m - 1 - j)
        if cost < best:
            best = cost
            best_j = j
    if best_j < 0:
        # Emission order: if the bottom boundary is the cheaper opening,
        # the deletion abuts the following subproblem; order I then D so
        # adjacent deletions merge.  Cost is order-independent.
        if te < tb:
            emit("I", m)
            emit("D", 1)
        else:
            emit("D", 1)
            emit("I", m)
    else:
        emit("I", best_j)
        emit("X" if b[best_j] != a0 else "M", 1)
        emit("I", m - 1 - best_j)
