"""Ends-free gap-affine DP oracle.

Classical DP counterpart of WFA's ends-free spans
(:class:`~repro.core.span.AlignmentSpan`): prefixes within the begin-free
allowances start at cost 0, and the final score is the minimum over every
boundary cell whose remaining suffix fits the end-free allowance of the
*other* sequence (matching WFA2's termination: at least one sequence is
fully consumed).  Score-only, plain Python — used purely as the
correctness oracle for the span-aware WFA engine.
"""

from __future__ import annotations

from repro.baselines.gotoh import _penalty_params
from repro.core.penalties import Penalties
from repro.core.span import AlignmentSpan
from repro.errors import AlignmentError

__all__ = ["gotoh_endsfree_score"]

_INF = 2**31


def gotoh_endsfree_score(
    pattern: str, text: str, penalties: Penalties, span: AlignmentSpan
) -> int:
    """Optimal ends-free gap-affine penalty (score only)."""
    n, m = len(pattern), len(text)
    span = span.clamped(n, m)
    x, o, e = _penalty_params(penalties)

    # Row 0: free skip up to text_begin_free, gaps beyond.
    prev_m = [_INF] * (m + 1)
    prev_d = [_INF] * (m + 1)
    prev_i = [_INF] * (m + 1)
    prev_m[0] = 0
    for jj in range(1, m + 1):
        i_val = min(
            prev_m[jj - 1] + o + e if prev_m[jj - 1] < _INF else _INF,
            prev_i[jj - 1] + e if prev_i[jj - 1] < _INF else _INF,
        )
        prev_i[jj] = i_val
        free = 0 if jj <= span.text_begin_free else _INF
        prev_m[jj] = min(free, i_val)

    best = _INF
    if n - 0 <= 0 or True:
        # row 0 may already touch the end conditions
        best = _candidates(prev_m, 0, n, m, span, best)

    col_m_free_limit = span.pattern_begin_free
    col_m = prev_m[0]
    col_d = _INF
    for ii in range(1, n + 1):
        cur_m = [_INF] * (m + 1)
        cur_i = [_INF] * (m + 1)
        cur_d = [_INF] * (m + 1)
        # Column 0: free skip of the pattern prefix, deletions beyond.
        d_val = min(
            col_m + o + e if col_m < _INF else _INF,
            col_d + e if col_d < _INF else _INF,
        )
        cur_d[0] = d_val
        cur_m[0] = min(0 if ii <= col_m_free_limit else _INF, d_val)
        pc = pattern[ii - 1]
        for jj in range(1, m + 1):
            i_val = min(
                cur_m[jj - 1] + o + e if cur_m[jj - 1] < _INF else _INF,
                cur_i[jj - 1] + e if cur_i[jj - 1] < _INF else _INF,
            )
            d_val = min(
                prev_m[jj] + o + e if prev_m[jj] < _INF else _INF,
                prev_d[jj] + e if prev_d[jj] < _INF else _INF,
            )
            if prev_m[jj - 1] < _INF:
                diag = prev_m[jj - 1] + (0 if pc == text[jj - 1] else x)
            else:
                diag = _INF
            cur_i[jj] = i_val
            cur_d[jj] = d_val
            cur_m[jj] = min(diag, i_val, d_val)
        best = _candidates(cur_m, ii, n, m, span, best)
        prev_m, prev_i, prev_d = cur_m, cur_i, cur_d
        col_m, col_d = cur_m[0], cur_d[0]

    if best >= _INF:
        raise AlignmentError("ends-free DP found no admissible end point")
    return int(best)


def _candidates(
    row_m: list[int], ii: int, n: int, m: int, span: AlignmentSpan, best: int
) -> int:
    """Fold row ``ii``'s admissible end cells into the running best."""
    # End at (ii, m): text fully consumed; pattern remainder must fit.
    if n - ii <= span.pattern_end_free and row_m[m] < best:
        best = row_m[m]
    # End at (n, jj): pattern fully consumed; text remainder must fit.
    if ii == n:
        for jj in range(m + 1):
            if m - jj <= span.text_end_free and row_m[jj] < best:
                best = row_m[jj]
    return best
