"""Myers' O(ND) difference algorithm (1986).

Computes the *indel* distance (insertions + deletions only, i.e. the LCS
distance) between two sequences with the furthest-reaching D-path
technique — historically the first "wavefront-shaped" alignment algorithm
and the direct ancestor of WFA.

Cross-check identity used by the test-suite: the indel distance equals
the WFA score under ``LinearPenalties(mismatch=2, indel=1)``, because a
substitution is exactly as expensive as a deletion plus an insertion.
"""

from __future__ import annotations

from repro.errors import AlignmentError

__all__ = ["myers_indel_distance"]


def myers_indel_distance(a: str, b: str, max_d: int | None = None) -> int:
    """Length of the shortest edit script (insertions/deletions only).

    Args:
        a: first sequence (length N).
        b: second sequence (length M).
        max_d: optional cap; exceeding it raises :class:`AlignmentError`
            (useful for bounded-distance filtering).

    Returns:
        The indel (LCS) distance ``N + M - 2·LCS(a, b)``.
    """
    n, m = len(a), len(b)
    limit = n + m if max_d is None else min(max_d, n + m)
    # V[k] = furthest x (index into a) on diagonal k = x - y.
    # Stored in a dict for sparse clarity; the D loop touches O(D) diagonals.
    v: dict[int, int] = {1: 0}
    for d in range(limit + 1):
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
                x = v.get(k + 1, 0)  # move down (insertion into a's frame)
            else:
                x = v.get(k - 1, 0) + 1  # move right (deletion)
            y = x - k
            # Snake: follow the diagonal while characters match.
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                return d
    raise AlignmentError(
        f"indel distance exceeds cap {limit} for lengths ({n}, {m})"
    )
