"""Bounded (thresholded) edit distance — Ukkonen's banded algorithm.

``bounded_edit_distance(a, b, k)`` answers "is the Levenshtein distance
at most k, and if so what is it?" in O(k·min(n,m)) time by computing only
the 2k+1 diagonals that any ≤k-edit alignment can touch, with an early
abort when a whole band row exceeds the threshold.

This is the classic *pre-alignment filter* primitive: genomics pipelines
(including this paper's authors' filtering line of work) use a cheap
bounded check to discard obviously-dissimilar candidate pairs before
paying for full alignment.  See :mod:`repro.pipeline` for the
filter-then-align composition.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AlignmentError

__all__ = ["bounded_edit_distance"]

_INF = 2**31


def bounded_edit_distance(a: str, b: str, k: int) -> Optional[int]:
    """Levenshtein distance if it is <= ``k``, else ``None``.

    Args:
        a, b: the sequences.
        k: inclusive threshold; must be >= 0.
    """
    if k < 0:
        raise AlignmentError(f"threshold must be >= 0, got {k}")
    n, m = len(a), len(b)
    if abs(n - m) > k:
        return None
    if n == 0 or m == 0:
        d = max(n, m)
        return d if d <= k else None

    # Row-wise DP restricted to the band |j - i| <= k.
    prev = [j if j <= k else _INF for j in range(m + 1)]
    for i in range(1, n + 1):
        lo = max(1, i - k)
        hi = min(m, i + k)
        cur = [_INF] * (m + 1)
        if i - 0 <= k:
            cur[0] = i
        row_min = cur[0] if cur[0] < _INF else _INF
        for j in range(lo, hi + 1):
            sub = prev[j - 1] + (0 if a[i - 1] == b[j - 1] else 1)
            dele = prev[j] + 1 if prev[j] < _INF else _INF
            ins = cur[j - 1] + 1 if cur[j - 1] < _INF else _INF
            best = min(sub, dele, ins)
            cur[j] = best
            if best < row_min:
                row_min = best
        if row_min > k:  # every path already exceeds the threshold
            return None
        prev = cur
    d = prev[m]
    return int(d) if d <= k else None
