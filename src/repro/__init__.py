"""repro — reproduction of Diab et al., "High-throughput Pairwise Alignment
with the Wavefront Algorithm using Processing-in-Memory" (IPDPS 2022).

Top-level re-exports cover the most common entry points:

* :class:`WavefrontAligner` / penalty models — align sequence pairs.
* :mod:`repro.data` — synthetic read-pair workloads and ``.seq`` I/O.
* :mod:`repro.pim` — the UPMEM functional + timing simulator.
* :mod:`repro.cpu` — the multicore CPU runner and roofline model.
* :mod:`repro.experiments` — the paper's Fig. 1 and extension sweeps.
"""

from repro.core import (
    AdaptiveReduction,
    AffinePenalties,
    AlignmentResult,
    AlignmentSpan,
    BiWfaScorer,
    biwfa_score,
    Cigar,
    EditPenalties,
    LinearPenalties,
    Penalties,
    StaticBand,
    TwoPieceAffinePenalties,
    WavefrontAligner,
)

__version__ = "1.0.0"

__all__ = [
    "WavefrontAligner",
    "AlignmentResult",
    "AlignmentSpan",
    "BiWfaScorer",
    "biwfa_score",
    "Cigar",
    "Penalties",
    "EditPenalties",
    "LinearPenalties",
    "AffinePenalties",
    "TwoPieceAffinePenalties",
    "AdaptiveReduction",
    "StaticBand",
    "__version__",
]
