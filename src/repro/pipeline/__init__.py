"""Composed pipelines: pre-alignment filtering in front of PIM alignment."""

from repro.pipeline.filter_align import (
    FilterAlignPipeline,
    FilterAlignResult,
    FilterStats,
)

__all__ = ["FilterAlignPipeline", "FilterAlignResult", "FilterStats"]
