"""Filter-then-align: pre-alignment filtering composed with PIM alignment.

A standard genomics systems pattern (and the research line of this
paper's co-authors — pre-alignment filters like Shouji/SneakySnake):
before paying for full gap-affine alignment, reject candidate pairs
whose edit distance provably exceeds a threshold with a much cheaper
bounded check.  Here:

* **stage 1 (host)** — Ukkonen's banded bounded-edit-distance filter
  (:func:`repro.baselines.bounded.bounded_edit_distance`) marks each
  pair accept/reject;
* **stage 2 (PIM)** — accepted pairs go to the simulated UPMEM system
  for full WFA alignment; rejected pairs are reported unaligned.

The value proposition is workload-dependent: on clean datasets (all
pairs within E) the filter is pure overhead; on contaminated candidate
sets (seed-and-extend false positives) it removes most of the PIM work
and shrinks the host->DPU transfers too.  ``bench_filter_pipeline``
quantifies the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.bounded import bounded_edit_distance
from repro.core.cigar import Cigar
from repro.data.generator import ReadPair
from repro.errors import ConfigError
from repro.pim.system import PimRunResult, PimSystem

__all__ = ["FilterStats", "FilterAlignResult", "FilterAlignPipeline"]


@dataclass
class FilterStats:
    """Stage-1 outcome."""

    total: int = 0
    accepted: int = 0
    #: modeled host filter time (bounded DP cells / filter rate)
    seconds: float = 0.0
    cells: int = 0

    @property
    def rejected(self) -> int:
        return self.total - self.accepted

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.total if self.total else 1.0


@dataclass
class FilterAlignResult:
    """End-to-end outcome of the two-stage pipeline."""

    filter_stats: FilterStats
    pim: Optional[PimRunResult]
    #: per input pair: (accepted, score-or-None, cigar-or-None)
    outcomes: list[tuple[bool, Optional[int], Optional[Cigar]]] = field(
        default_factory=list
    )

    @property
    def total_seconds(self) -> float:
        pim_s = self.pim.total_seconds if self.pim is not None else 0.0
        return self.filter_stats.seconds + pim_s

    def throughput(self) -> float:
        return (
            self.filter_stats.total / self.total_seconds
            if self.total_seconds
            else 0.0
        )


class FilterAlignPipeline:
    """Bounded-edit filter (host) in front of a :class:`PimSystem`."""

    #: modeled host filter speed: banded-DP cells per second per thread,
    #: times the thread count of the paper's CPU running the filter.
    FILTER_CELLS_PER_SECOND = 2.0e9 * 56

    def __init__(
        self,
        system: PimSystem,
        max_edits: int,
        filter_cells_per_second: Optional[float] = None,
    ) -> None:
        if max_edits < 0:
            raise ConfigError("max_edits must be >= 0")
        self.system = system
        self.max_edits = max_edits
        self.filter_rate = (
            filter_cells_per_second
            if filter_cells_per_second is not None
            else self.FILTER_CELLS_PER_SECOND
        )
        if self.filter_rate <= 0:
            raise ConfigError("filter_cells_per_second must be positive")

    def _filter(self, pairs: list[ReadPair]) -> tuple[list[bool], FilterStats]:
        stats = FilterStats(total=len(pairs))
        mask = []
        k = self.max_edits
        for pair in pairs:
            verdict = bounded_edit_distance(pair.pattern, pair.text, k)
            accepted = verdict is not None
            mask.append(accepted)
            stats.accepted += int(accepted)
            # band cells actually touched (worst case if it ran to the end)
            stats.cells += (2 * k + 1) * min(len(pair.pattern), len(pair.text))
        stats.seconds = stats.cells / self.filter_rate
        return mask, stats

    def run(self, pairs: list[ReadPair]) -> FilterAlignResult:
        """Filter, align survivors on the PIM system, merge outcomes."""
        if not pairs:
            raise ConfigError("pipeline needs at least one pair")
        mask, stats = self._filter(pairs)
        survivors = [p for p, ok in zip(pairs, mask) if ok]
        pim_run = self.system.align(survivors) if survivors else None

        by_survivor: dict[int, tuple[int, Optional[Cigar]]] = {}
        if pim_run is not None:
            for idx, score, cigar in pim_run.results:
                by_survivor[idx] = (score, cigar)

        outcomes: list[tuple[bool, Optional[int], Optional[Cigar]]] = []
        cursor = 0
        for ok in mask:
            if not ok:
                outcomes.append((False, None, None))
                continue
            score, cigar = by_survivor.get(cursor, (None, None))
            outcomes.append((True, score, cigar))
            cursor += 1
        return FilterAlignResult(
            filter_stats=stats, pim=pim_run, outcomes=outcomes
        )
