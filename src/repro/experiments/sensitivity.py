"""Calibration sensitivity analysis.

The timing models carry characterized constants (DMA setup cycles,
per-cell instruction costs, effective bandwidths, ...).  This experiment
perturbs each key constant and reports how the Fig. 1 headline ratios
move — quantifying which conclusions are robust to calibration error and
which are not.  A reproduction that models honestly should show:

* the *who-wins* conclusion (PIM > CPU) survives large perturbations;
* the exact multipliers move roughly linearly with the anchored
  constants (as expected — they were anchored, see
  ``repro.perf.calibration``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from repro.core.penalties import AffinePenalties
from repro.cpu.config import CpuConfig, xeon_gold_5120_dual
from repro.cpu.model import CpuModel
from repro.cpu.runner import CpuRunner
from repro.data.datasets import DatasetSpec
from repro.perf.report import format_table
from repro.pim.config import (
    DpuTimingConfig,
    HostTransferConfig,
    PimSystemConfig,
    upmem_paper_system,
)
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem

__all__ = ["SensitivityPoint", "SensitivityResult", "sensitivity_analysis"]


@dataclass
class SensitivityPoint:
    """Headline ratios under one perturbed configuration."""

    label: str
    total_speedup: float
    kernel_speedup: float


@dataclass
class SensitivityResult:
    baseline: SensitivityPoint
    points: list[SensitivityPoint] = field(default_factory=list)

    def report(self) -> str:
        rows = [
            (
                p.label,
                f"{p.total_speedup:.2f}x",
                f"{p.kernel_speedup:.1f}x",
                f"{p.total_speedup / self.baseline.total_speedup - 1:+.0%}"
                if p is not self.baseline
                else "baseline",
            )
            for p in [self.baseline] + self.points
        ]
        return format_table(
            ["configuration", "total speedup", "kernel speedup", "delta"],
            rows,
            title="sensitivity of Fig. 1 headline ratios (E=2%)",
        )

    def all_pim_wins(self) -> bool:
        return all(p.total_speedup > 1.0 for p in [self.baseline] + self.points)


def _evaluate(
    spec: DatasetSpec,
    cpu_cfg: CpuConfig,
    pim_cfg: PimSystemConfig,
    cpu_sample: int,
    pim_sample: int,
) -> tuple[float, float]:
    """(total_speedup, kernel_speedup) of PIM over the 56T CPU."""
    measurement = CpuRunner(AffinePenalties()).measure(spec.sample(cpu_sample))
    cpu_time = (
        CpuModel(cpu_cfg)
        .time_for(
            measurement.counters,
            measurement.pairs,
            measurement.seq_bytes_per_pair,
            spec.num_pairs,
            cpu_cfg.max_threads,
        )
        .seconds
    )
    kc = KernelConfig(max_read_len=spec.length, max_edits=max(spec.edit_budget, 1))
    run = PimSystem(pim_cfg, kc).model_run(spec, sample_pairs_per_dpu=pim_sample)
    return cpu_time / run.total_seconds, cpu_time / run.kernel_seconds


def sensitivity_analysis(
    factor: float = 1.5,
    cpu_sample: int = 120,
    pim_sample: int = 32,
) -> SensitivityResult:
    """Perturb each key constant by ``x factor`` and ``/ factor``."""
    spec = DatasetSpec(num_pairs=5_000_000, length=100, error_rate=0.02, seed=0)
    base_cpu = xeon_gold_5120_dual()
    base_pim = upmem_paper_system(tasklets=16, num_simulated_dpus=1)

    total, kernel = _evaluate(spec, base_cpu, base_pim, cpu_sample, pim_sample)
    result = SensitivityResult(
        baseline=SensitivityPoint("baseline", total, kernel)
    )

    def pim_with_timing(**changes) -> PimSystemConfig:
        timing = dataclasses.replace(base_pim.dpu.timing, **changes)
        dpu = dataclasses.replace(base_pim.dpu, timing=timing)
        return base_pim.with_(dpu=dpu)

    def pim_with_transfer(**changes) -> PimSystemConfig:
        transfer = dataclasses.replace(base_pim.transfer, **changes)
        return base_pim.with_(transfer=transfer)

    knobs: list[tuple[str, Callable[[float], tuple[CpuConfig, PimSystemConfig]]]] = [
        (
            "DMA setup cycles",
            lambda f: (
                base_cpu,
                pim_with_timing(
                    dma_setup_cycles=DpuTimingConfig().dma_setup_cycles * f
                ),
            ),
        ),
        (
            "DMA streaming rate",
            lambda f: (
                base_cpu,
                pim_with_timing(
                    dma_cycles_per_8b=DpuTimingConfig().dma_cycles_per_8b * f
                ),
            ),
        ),
        (
            "host transfer bandwidth",
            lambda f: (
                base_cpu,
                pim_with_transfer(
                    effective_to_dpu_bytes_per_s=(
                        HostTransferConfig().effective_to_dpu_bytes_per_s * f
                    ),
                    effective_from_dpu_bytes_per_s=(
                        HostTransferConfig().effective_from_dpu_bytes_per_s * f
                    ),
                ),
            ),
        ),
        (
            "CPU effective bandwidth",
            lambda f: (
                base_cpu.with_(
                    mem_bandwidth_bytes_per_s=(
                        base_cpu.mem_bandwidth_bytes_per_s * f
                    )
                ),
                base_pim,
            ),
        ),
    ]

    for name, make in knobs:
        for f, tag in ((factor, f"x{factor:g}"), (1 / factor, f"/{factor:g}")):
            cpu_cfg, pim_cfg = make(f)
            t, k = _evaluate(spec, cpu_cfg, pim_cfg, cpu_sample, pim_sample)
            result.points.append(SensitivityPoint(f"{name} {tag}", t, k))
    return result
