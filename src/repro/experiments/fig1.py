"""Reproduction of the paper's Fig. 1 (its only figure).

"Time for aligning 5 million read pairs using WFA": for each edit
threshold E in {2%, 4%}, bars for the CPU at 1..56 threads and for the
PIM system's Kernel and Total times, from which §II's headline speedups
follow (Total 4.87x / 4.05x, Kernel 37.4x / 12.3x).

Methodology (DESIGN.md §5): operation counts are measured functionally on
seeded samples and extrapolated — per-pair counts are i.i.d. by
construction.  CPU times come from the roofline model over the measured
counts; PIM times from the cycle-level DPU model at the paper's operating
point (2560 DPUs, 1954 pairs per DPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.penalties import AffinePenalties, Penalties
from repro.cpu.config import CpuConfig, xeon_gold_5120_dual
from repro.cpu.model import CpuModel, CpuTimeBreakdown
from repro.cpu.runner import CpuRunner
from repro.data.datasets import DatasetSpec
from repro.perf.calibration import PAPER_TARGETS
from repro.perf.report import format_comparison, format_series, format_table
from repro.pim.config import PimSystemConfig, upmem_paper_system
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimRunResult, PimSystem

__all__ = ["Fig1Config", "Fig1Panel", "Fig1Result", "run_fig1"]

PAPER_THREAD_COUNTS = (1, 2, 4, 8, 16, 32, 56)


@dataclass(frozen=True)
class Fig1Config:
    """Parameters of the Fig. 1 reproduction (defaults = the paper's)."""

    num_pairs: int = 5_000_000
    read_length: int = 100
    error_rates: tuple[float, ...] = (0.02, 0.04)
    thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS
    penalties: Penalties = field(default_factory=AffinePenalties)
    tasklets: int = 16
    seed: int = 0
    #: pairs functionally measured for the CPU count extrapolation.
    cpu_sample_pairs: int = 300
    #: pairs functionally simulated per DPU (scaled to the true load).
    pim_sample_pairs_per_dpu: int = 48
    num_simulated_dpus: int = 2


@dataclass
class Fig1Panel:
    """One error-rate panel of the figure."""

    error_rate: float
    spec: DatasetSpec
    cpu_curve: list[CpuTimeBreakdown]
    pim: PimRunResult

    @property
    def cpu_best_seconds(self) -> float:
        """The maximum-thread (56T) CPU time — the paper's reference bar."""
        return self.cpu_curve[-1].seconds

    @property
    def total_speedup(self) -> float:
        return self.cpu_best_seconds / self.pim.total_seconds

    @property
    def kernel_speedup(self) -> float:
        return self.cpu_best_seconds / self.pim.kernel_seconds

    def series(self) -> dict[str, float]:
        """All bars of this panel, labeled as in the figure."""
        out = {f"CPU-{b.threads}T": b.seconds for b in self.cpu_curve}
        out["PIM-Kernel"] = self.pim.kernel_seconds
        out["PIM-Total"] = self.pim.total_seconds
        return out


@dataclass
class Fig1Result:
    """Both panels plus report formatting."""

    config: Fig1Config
    panels: list[Fig1Panel]

    def panel(self, error_rate: float) -> Fig1Panel:
        for p in self.panels:
            if abs(p.error_rate - error_rate) < 1e-12:
                return p
        raise KeyError(f"no panel for error rate {error_rate}")

    def comparison_rows(self) -> list[tuple[str, float, float]]:
        """Paper-vs-measured rows for the headline speedups."""
        rows: list[tuple[str, float, float]] = []
        targets = {
            0.02: (PAPER_TARGETS.total_speedup_e2, PAPER_TARGETS.kernel_speedup_e2),
            0.04: (PAPER_TARGETS.total_speedup_e4, PAPER_TARGETS.kernel_speedup_e4),
        }
        for p in self.panels:
            t = targets.get(round(p.error_rate, 4))
            if t is None:
                continue
            rows.append((f"total_speedup_E{p.error_rate:.0%}", t[0], p.total_speedup))
            rows.append(
                (f"kernel_speedup_E{p.error_rate:.0%}", t[1], p.kernel_speedup)
            )
        return rows

    def report(self) -> str:
        """The figure as text: per-panel bars + speedup summary."""
        blocks: list[str] = []
        for p in self.panels:
            bars = p.series()
            blocks.append(
                format_table(
                    ["bar", "seconds", "pairs/s"],
                    [
                        (name, f"{sec:.4g}", f"{p.spec.num_pairs / sec:,.0f}")
                        for name, sec in bars.items()
                    ],
                    title=(
                        f"Fig. 1 panel E={p.error_rate:.0%} — "
                        f"{p.spec.describe()}"
                    ),
                )
            )
            blocks.append(
                format_series(
                    f"cpu_scaling_E{p.error_rate:.0%}",
                    [b.threads for b in p.cpu_curve],
                    [b.seconds for b in p.cpu_curve],
                )
            )
            blocks.append(
                f"PIM split E={p.error_rate:.0%}: kernel={p.pim.kernel_seconds:.4g}s "
                f"xfer_in={p.pim.transfer_in_seconds:.4g}s "
                f"xfer_out={p.pim.transfer_out_seconds:.4g}s "
                f"launch={p.pim.launch_seconds:.4g}s "
                f"(DPU bound: {p.pim.dominant_bound()})"
            )
        rows = self.comparison_rows()
        if rows:
            blocks.append(format_comparison(rows))
        return "\n\n".join(blocks)


def run_fig1(
    config: Fig1Config | None = None,
    cpu_config: CpuConfig | None = None,
    pim_config: PimSystemConfig | None = None,
) -> Fig1Result:
    """Run the full Fig. 1 reproduction and return both panels."""
    cfg = config if config is not None else Fig1Config()
    cpu_cfg = cpu_config if cpu_config is not None else xeon_gold_5120_dual()
    panels: list[Fig1Panel] = []
    for e in cfg.error_rates:
        spec = DatasetSpec(
            num_pairs=cfg.num_pairs,
            length=cfg.read_length,
            error_rate=e,
            seed=cfg.seed,
        )
        # CPU: functional measurement + roofline curve.
        runner = CpuRunner(cfg.penalties)
        sample = spec.sample(cfg.cpu_sample_pairs)
        measurement = runner.measure(sample)
        model = CpuModel(cpu_cfg)
        curve = model.scaling_curve(
            measurement.counters,
            measurement.pairs,
            measurement.seq_bytes_per_pair,
            spec.num_pairs,
            list(cfg.thread_counts),
        )
        # PIM: cycle-level model at the paper's operating point.
        p_cfg = (
            pim_config
            if pim_config is not None
            else upmem_paper_system(
                tasklets=cfg.tasklets, num_simulated_dpus=cfg.num_simulated_dpus
            )
        )
        kernel_cfg = KernelConfig(
            penalties=cfg.penalties,
            max_read_len=cfg.read_length,
            max_edits=max(spec.edit_budget, 1),
        )
        system = PimSystem(p_cfg, kernel_cfg)
        pim = system.model_run(
            spec, sample_pairs_per_dpu=cfg.pim_sample_pairs_per_dpu
        )
        panels.append(
            Fig1Panel(error_rate=e, spec=spec, cpu_curve=curve, pim=pim)
        )
    return Fig1Result(config=cfg, panels=panels)
