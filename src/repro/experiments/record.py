"""Machine-readable experiment records.

Serializes experiment results (Fig. 1 panels, sweeps, sensitivity) to a
stable JSON schema so downstream tooling — regression dashboards,
plotting scripts, CI checks — can consume the reproduction's numbers
without scraping text tables.  ``record_fig1`` is what
``repro fig1 --json`` writes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro import __version__
from repro.experiments.fig1 import Fig1Result
from repro.experiments.sweeps import SweepResult
from repro.perf.calibration import PAPER_TARGETS

__all__ = ["fig1_to_dict", "sweep_to_dict", "write_record"]

SCHEMA_VERSION = 1


def fig1_to_dict(result: Fig1Result) -> dict:
    """Stable dictionary form of a Fig. 1 reproduction."""
    panels = []
    for p in result.panels:
        panels.append(
            {
                "error_rate": p.error_rate,
                "workload": p.spec.describe(),
                "cpu_seconds_by_threads": {
                    str(b.threads): b.seconds for b in p.cpu_curve
                },
                "cpu_bound_by_threads": {
                    str(b.threads): b.bound for b in p.cpu_curve
                },
                "pim": {
                    "kernel_seconds": p.pim.kernel_seconds,
                    "transfer_in_seconds": p.pim.transfer_in_seconds,
                    "transfer_out_seconds": p.pim.transfer_out_seconds,
                    "launch_seconds": p.pim.launch_seconds,
                    "total_seconds": p.pim.total_seconds,
                    "tasklets": p.pim.tasklets,
                    "metadata_policy": p.pim.metadata_policy,
                    "dominant_bound": p.pim.dominant_bound(),
                    "bytes_in": p.pim.bytes_in,
                    "bytes_out": p.pim.bytes_out,
                },
                "total_speedup": p.total_speedup,
                "kernel_speedup": p.kernel_speedup,
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "library_version": __version__,
        "experiment": "fig1",
        "paper_targets": {
            "total_speedup_e2": PAPER_TARGETS.total_speedup_e2,
            "total_speedup_e4": PAPER_TARGETS.total_speedup_e4,
            "kernel_speedup_e2": PAPER_TARGETS.kernel_speedup_e2,
            "kernel_speedup_e4": PAPER_TARGETS.kernel_speedup_e4,
        },
        "panels": panels,
    }


def sweep_to_dict(result: SweepResult) -> dict:
    """Stable dictionary form of any sweep."""
    return {
        "schema_version": SCHEMA_VERSION,
        "library_version": __version__,
        "experiment": "sweep",
        "name": result.name,
        "columns": result.columns,
        "rows": [
            {"label": r.label, "values": r.values} for r in result.rows
        ],
    }


def write_record(record: dict, path: Union[str, Path]) -> Path:
    """Write a record as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
