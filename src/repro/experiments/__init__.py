"""Experiment harnesses: Fig. 1 and the ablation/extension sweeps."""

from repro.experiments.fig1 import Fig1Config, Fig1Panel, Fig1Result, run_fig1
from repro.experiments.sensitivity import (
    SensitivityPoint,
    SensitivityResult,
    sensitivity_analysis,
)
from repro.experiments.sweeps import (
    SweepResult,
    SweepRow,
    algorithm_comparison,
    allocator_policy_ablation,
    dpu_count_sweep,
    error_rate_sweep,
    read_length_sweep,
    staging_chunk_ablation,
    tasklet_sweep,
)

__all__ = [
    "Fig1Config",
    "Fig1Panel",
    "Fig1Result",
    "run_fig1",
    "SweepResult",
    "SweepRow",
    "tasklet_sweep",
    "allocator_policy_ablation",
    "read_length_sweep",
    "error_rate_sweep",
    "dpu_count_sweep",
    "staging_chunk_ablation",
    "SensitivityPoint",
    "SensitivityResult",
    "sensitivity_analysis",
    "algorithm_comparison",
]
