"""Ablations and extension sweeps (DESIGN.md experiment index, rows A-F).

* :func:`tasklet_sweep` — DPU kernel time vs tasklet count (Abl. B:
  the 11-stage pipeline makes tasklets nearly free up to ~11).
* :func:`allocator_policy_ablation` — the paper's central design choice
  (Abl. A): metadata in MRAM admits all 24 tasklets; metadata in WRAM
  collapses the admissible tasklet count (and with it throughput).
* :func:`read_length_sweep` / :func:`error_rate_sweep` — the paper's
  named future work (Ext. C/D): scaling to longer reads and higher E.
* :func:`algorithm_comparison` — WFA vs banded-DP DPU kernels (Ext. E).

All sweeps use the sampled-measurement methodology of
:meth:`~repro.pim.system.PimSystem.model_run`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.penalties import AffinePenalties, Penalties
from repro.baselines.banded import band_for_error_rate
from repro.data.datasets import DatasetSpec
from repro.data.generator import ReadPairGenerator
from repro.errors import KernelError
from repro.perf.report import format_table
from repro.pim.config import PimSystemConfig, upmem_paper_system
from repro.pim.dpu import Dpu
from repro.pim.kernel import KernelConfig, WfaDpuKernel, max_supported_tasklets
from repro.pim.kernel_banded import BandedDpuKernel, BandedKernelConfig
from repro.pim.layout import MramLayout
from repro.pim.system import PimSystem
from repro.pim.transfer import HostTransferEngine

__all__ = [
    "SweepRow",
    "SweepResult",
    "tasklet_sweep",
    "allocator_policy_ablation",
    "read_length_sweep",
    "error_rate_sweep",
    "algorithm_comparison",
    "dpu_count_sweep",
]


@dataclass
class SweepRow:
    """One sweep point: a label plus named measurements."""

    label: str
    values: dict[str, float] = field(default_factory=dict)


@dataclass
class SweepResult:
    """A named sweep with uniform row schema."""

    name: str
    columns: list[str]
    rows: list[SweepRow]

    def report(self) -> str:
        return format_table(
            ["point"] + self.columns,
            [
                [r.label] + [f"{r.values.get(c, float('nan')):.5g}" for c in self.columns]
                for r in self.rows
            ],
            title=self.name,
        )

    def series(self, column: str) -> list[float]:
        return [r.values[column] for r in self.rows]


def _default_spec(error_rate: float = 0.02, length: int = 100) -> DatasetSpec:
    return DatasetSpec(
        num_pairs=5_000_000, length=length, error_rate=error_rate, seed=0
    )


def tasklet_sweep(
    error_rate: float = 0.02,
    tasklet_counts: tuple[int, ...] = (1, 2, 4, 8, 11, 16, 20, 24),
    metadata_policy: str = "mram",
    sample_pairs_per_dpu: int = 32,
    penalties: Penalties | None = None,
) -> SweepResult:
    """Kernel time vs tasklets (Abl. B).  Inadmissible points are skipped."""
    pen = penalties if penalties is not None else AffinePenalties()
    spec = _default_spec(error_rate)
    rows: list[SweepRow] = []
    for t in tasklet_counts:
        try:
            cfg = upmem_paper_system(
                tasklets=t, num_simulated_dpus=1, metadata_policy=metadata_policy
            )
            kc = KernelConfig(
                penalties=pen,
                max_read_len=spec.length,
                max_edits=max(spec.edit_budget, 1),
            )
            system = PimSystem(cfg, kc)
        except KernelError:
            rows.append(
                SweepRow(label=f"{t}T", values={"kernel_s": float("nan"), "admitted": 0})
            )
            continue
        res = system.model_run(spec, sample_pairs_per_dpu=sample_pairs_per_dpu)
        rows.append(
            SweepRow(
                label=f"{t}T",
                values={
                    "kernel_s": res.kernel_seconds,
                    "total_s": res.total_seconds,
                    "admitted": 1,
                },
            )
        )
    return SweepResult(
        name=f"tasklet sweep (E={error_rate:.0%}, policy={metadata_policy})",
        columns=["kernel_s", "total_s", "admitted"],
        rows=rows,
    )


def allocator_policy_ablation(
    error_rate: float = 0.04,
    sample_pairs_per_dpu: int = 32,
    penalties: Penalties | None = None,
) -> SweepResult:
    """MRAM- vs WRAM-resident metadata (Abl. A, the paper's key design).

    For each policy: the maximum admissible tasklet count and the kernel
    time at that count.  The MRAM policy should admit the full 24 and win
    on throughput — the paper's argument for its allocator.
    """
    pen = penalties if penalties is not None else AffinePenalties()
    spec = _default_spec(error_rate)
    kc = KernelConfig(
        penalties=pen, max_read_len=spec.length, max_edits=max(spec.edit_budget, 1)
    )
    kernel = WfaDpuKernel(kc)
    rows: list[SweepRow] = []
    base = upmem_paper_system(num_simulated_dpus=1)
    for policy in ("wram", "mram"):
        best_t = max_supported_tasklets(kernel, base.dpu, policy)
        if best_t == 0:
            rows.append(
                SweepRow(label=policy, values={"max_tasklets": 0, "kernel_s": float("nan")})
            )
            continue
        cfg = upmem_paper_system(
            tasklets=best_t, num_simulated_dpus=1, metadata_policy=policy
        )
        system = PimSystem(cfg, kc)
        res = system.model_run(spec, sample_pairs_per_dpu=sample_pairs_per_dpu)
        rows.append(
            SweepRow(
                label=policy,
                values={
                    "max_tasklets": best_t,
                    "kernel_s": res.kernel_seconds,
                    "total_s": res.total_seconds,
                },
            )
        )
    return SweepResult(
        name=f"allocator policy ablation (E={error_rate:.0%})",
        columns=["max_tasklets", "kernel_s", "total_s"],
        rows=rows,
    )


def _admitted_tasklets(kc: KernelConfig, preferred: int = 16) -> int:
    """Largest usable tasklet count <= ``preferred`` for this kernel.

    Bigger scores mean bigger WRAM staging buffers, so long reads / high
    error thresholds genuinely force fewer tasklets — the very challenge
    the paper's future work names.  Sweeps report the admitted count.
    """
    base = upmem_paper_system(num_simulated_dpus=1)
    cap = max_supported_tasklets(WfaDpuKernel(kc), base.dpu, "mram")
    return min(preferred, cap)


def read_length_sweep(
    lengths: tuple[int, ...] = (100, 200, 500, 1000),
    error_rate: float = 0.02,
    sample_pairs_per_dpu: int = 8,
    penalties: Penalties | None = None,
) -> SweepResult:
    """Future work Ext. C: scaling to longer reads.

    The workload holds total bases constant-ish per DPU by reducing the
    pair count with length, as a real sequencing workload would.
    """
    pen = penalties if penalties is not None else AffinePenalties()
    rows: list[SweepRow] = []
    for length in lengths:
        num_pairs = 5_000_000 * 100 // length
        spec = DatasetSpec(
            num_pairs=num_pairs, length=length, error_rate=error_rate, seed=0
        )
        kc = KernelConfig(
            penalties=pen, max_read_len=length, max_edits=max(spec.edit_budget, 1)
        )
        tasklets = _admitted_tasklets(kc)
        if tasklets == 0:
            rows.append(
                SweepRow(
                    label=f"{length}bp",
                    values={
                        "tasklets": 0,
                        "kernel_s": float("nan"),
                        "total_s": float("nan"),
                        "pairs_per_s": float("nan"),
                        "bases_per_s": float("nan"),
                    },
                )
            )
            continue
        cfg = upmem_paper_system(tasklets=tasklets, num_simulated_dpus=1)
        system = PimSystem(cfg, kc)
        res = system.model_run(spec, sample_pairs_per_dpu=sample_pairs_per_dpu)
        rows.append(
            SweepRow(
                label=f"{length}bp",
                values={
                    "tasklets": tasklets,
                    "kernel_s": res.kernel_seconds,
                    "total_s": res.total_seconds,
                    "pairs_per_s": res.throughput(),
                    "bases_per_s": res.throughput() * 2 * length,
                },
            )
        )
    return SweepResult(
        name=f"read length sweep (E={error_rate:.0%}, constant total bases)",
        columns=["tasklets", "kernel_s", "total_s", "pairs_per_s", "bases_per_s"],
        rows=rows,
    )


def error_rate_sweep(
    rates: tuple[float, ...] = (0.01, 0.02, 0.04, 0.06, 0.08, 0.10),
    sample_pairs_per_dpu: int = 16,
    penalties: Penalties | None = None,
) -> SweepResult:
    """Future work Ext. D: higher edit-distance thresholds."""
    pen = penalties if penalties is not None else AffinePenalties()
    rows: list[SweepRow] = []
    for rate in rates:
        spec = _default_spec(rate)
        kc = KernelConfig(
            penalties=pen,
            max_read_len=spec.length,
            max_edits=max(spec.edit_budget, 1),
        )
        tasklets = _admitted_tasklets(kc)
        if tasklets == 0:
            rows.append(
                SweepRow(
                    label=f"E={rate:.0%}",
                    values={
                        "tasklets": 0,
                        "kernel_s": float("nan"),
                        "total_s": float("nan"),
                        "pairs_per_s": float("nan"),
                    },
                )
            )
            continue
        cfg = upmem_paper_system(tasklets=tasklets, num_simulated_dpus=1)
        system = PimSystem(cfg, kc)
        res = system.model_run(spec, sample_pairs_per_dpu=sample_pairs_per_dpu)
        rows.append(
            SweepRow(
                label=f"E={rate:.0%}",
                values={
                    "tasklets": tasklets,
                    "kernel_s": res.kernel_seconds,
                    "total_s": res.total_seconds,
                    "pairs_per_s": res.throughput(),
                },
            )
        )
    return SweepResult(
        name="error rate sweep (100bp, 5M pairs)",
        columns=["tasklets", "kernel_s", "total_s", "pairs_per_s"],
        rows=rows,
    )


def dpu_count_sweep(
    dpu_counts: tuple[int, ...] = (64, 256, 640, 1280, 2560),
    error_rate: float = 0.02,
    sample_pairs_per_dpu: int = 32,
) -> SweepResult:
    """System-size scaling: kernel time shrinks with DPUs, transfers don't."""
    rows: list[SweepRow] = []
    spec = _default_spec(error_rate)
    for num in dpu_counts:
        cfg = PimSystemConfig(
            num_dpus=num,
            num_ranks=max(1, num // 64),
            tasklets=16,
            num_simulated_dpus=1,
        )
        kc = KernelConfig(
            max_read_len=spec.length, max_edits=max(spec.edit_budget, 1)
        )
        system = PimSystem(cfg, kc)
        res = system.model_run(spec, sample_pairs_per_dpu=sample_pairs_per_dpu)
        rows.append(
            SweepRow(
                label=f"{num}DPU",
                values={
                    "kernel_s": res.kernel_seconds,
                    "total_s": res.total_seconds,
                    "pairs_per_s": res.throughput(),
                },
            )
        )
    return SweepResult(
        name=f"DPU count sweep (E={error_rate:.0%})",
        columns=["kernel_s", "total_s", "pairs_per_s"],
        rows=rows,
    )


def staging_chunk_ablation(
    length: int = 1000,
    error_rate: float = 0.02,
    chunks: tuple = (None, 1024, 512, 256, 128),
    sample_pairs_per_dpu: int = 4,
    penalties: Penalties | None = None,
) -> SweepResult:
    """Ext. I: whole-wavefront vs chunked metadata staging on long reads.

    Whole-wavefront staging sizes WRAM buffers by the score bound, which
    starves tasklets on long reads; fixed-size chunks keep WRAM constant
    at the price of more DMA transfers.  The sweep shows the trade:
    chunked staging recovers tasklet admission (and usually net kernel
    time) exactly where the paper's future work needs it.
    """
    pen = penalties if penalties is not None else AffinePenalties()
    spec = DatasetSpec(
        num_pairs=500_000, length=length, error_rate=error_rate, seed=0
    )
    base = upmem_paper_system(num_simulated_dpus=1)
    rows: list[SweepRow] = []
    for chunk in chunks:
        kc = KernelConfig(
            penalties=pen,
            max_read_len=length,
            max_edits=max(spec.edit_budget, 1),
            staging_chunk_bytes=chunk,
        )
        cap = max_supported_tasklets(WfaDpuKernel(kc), base.dpu, "mram")
        label = "whole" if chunk is None else f"{chunk}B"
        if cap == 0:
            rows.append(
                SweepRow(
                    label=label,
                    values={"tasklets": 0, "kernel_s": float("nan")},
                )
            )
            continue
        tasklets = min(16, cap)
        cfg = upmem_paper_system(tasklets=tasklets, num_simulated_dpus=1)
        system = PimSystem(cfg, kc)
        res = system.model_run(spec, sample_pairs_per_dpu=sample_pairs_per_dpu)
        rows.append(
            SweepRow(
                label=label,
                values={
                    "tasklets": tasklets,
                    "kernel_s": res.kernel_seconds,
                    "total_s": res.total_seconds,
                },
            )
        )
    return SweepResult(
        name=f"metadata staging granularity ({length}bp, E={error_rate:.0%})",
        columns=["tasklets", "kernel_s", "total_s"],
        rows=rows,
    )


def algorithm_comparison(
    error_rate: float = 0.02,
    sample_pairs_per_dpu: int = 32,
    tasklets: int = 16,
) -> SweepResult:
    """Ext. E: WFA vs banded-DP DPU kernels, both score-only."""
    spec = _default_spec(error_rate)
    load = math.ceil(spec.num_pairs / 2560)
    k = min(sample_pairs_per_dpu, load)
    scale = load / k
    gen = ReadPairGenerator(
        length=spec.length, error_rate=spec.error_rate, seed=spec.seed + 1
    )
    pairs = gen.pairs(k)
    base = upmem_paper_system(tasklets=tasklets, num_simulated_dpus=1)

    rows: list[SweepRow] = []

    # WFA kernel, score-only.
    kc = KernelConfig(
        max_read_len=spec.length,
        max_edits=max(spec.edit_budget, 1),
        traceback=False,
    )
    system = PimSystem(base, kc)
    layout = system.plan_layout(k)
    dpu = Dpu(base.dpu, dpu_id=0)
    system.transfer.push_batch(dpu, layout, pairs)
    stats, _ = system.kernel.run(
        dpu, layout, system._tasklet_assignments(k), base.metadata_policy
    )
    summary = dpu.summarize(stats)
    rows.append(
        SweepRow(
            label="wfa",
            values={
                "kernel_s": summary.seconds * scale,
                "cells_per_pair": sum(t.cells_computed for t in stats) / k,
            },
        )
    )

    # Banded kernel, score-only, band sized for the error threshold.
    band = band_for_error_rate(spec.length, spec.error_rate)
    seq_slot = spec.length + max(spec.edit_budget, 1)
    bkc = BandedKernelConfig(max_read_len=seq_slot, band=band)
    bkernel = BandedDpuKernel(bkc)
    bkernel.plan_check(base.dpu, tasklets)
    layout_b = MramLayout.plan(
        num_pairs=k,
        max_pattern_len=seq_slot,
        max_text_len=seq_slot,
        max_cigar_ops=2,
        tasklets=tasklets,
        metadata_bytes_per_tasklet=0,
        mram_capacity=base.dpu.mram_bytes,
    )
    dpu_b = Dpu(base.dpu, dpu_id=1)
    transfer = HostTransferEngine(base.transfer)
    transfer.push_batch(dpu_b, layout_b, pairs)
    assignments = [list(range(t, k, tasklets)) for t in range(tasklets)]
    bstats = bkernel.run(dpu_b, layout_b, assignments)
    bsummary = dpu_b.summarize(bstats)
    rows.append(
        SweepRow(
            label=f"banded(band={band})",
            values={
                "kernel_s": bsummary.seconds * scale,
                "cells_per_pair": sum(t.cells_computed for t in bstats) / k,
            },
        )
    )
    return SweepResult(
        name=f"algorithm comparison on the DPU (E={error_rate:.0%}, score-only)",
        columns=["kernel_s", "cells_per_pair"],
        rows=rows,
    )
