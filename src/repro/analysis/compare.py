"""Cross-implementation result comparison.

Tools for validating one aligner's output against another's over a
workload — the harness behind the "PIM port changes nothing semantic"
claim (paper: "we apply no optimizations to the WFA PIM implementation
compared to the original").  Reports score agreement, CIGAR agreement
(scores can agree while paths differ — co-optimal alignments are
expected) and the offending pairs when they disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.cigar import Cigar
from repro.errors import ConfigError

__all__ = ["Disagreement", "ComparisonReport", "compare_scores", "compare_alignments"]


@dataclass(frozen=True)
class Disagreement:
    """One pair where the two result sets differ."""

    index: int
    kind: str  # "score" | "cigar"
    left: object
    right: object


@dataclass
class ComparisonReport:
    """Outcome of comparing two result sets over one workload."""

    total: int
    score_matches: int
    cigar_matches: int
    cigars_compared: int
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def scores_agree(self) -> bool:
        return self.score_matches == self.total

    @property
    def score_agreement(self) -> float:
        return self.score_matches / self.total if self.total else 1.0

    def report(self) -> str:
        lines = [
            f"pairs compared : {self.total}",
            f"score agreement: {self.score_matches}/{self.total}",
        ]
        if self.cigars_compared:
            lines.append(
                f"cigar agreement: {self.cigar_matches}/{self.cigars_compared} "
                "(path differences between co-optimal alignments are benign)"
            )
        for d in self.disagreements[:10]:
            lines.append(f"  pair {d.index}: {d.kind} {d.left!r} != {d.right!r}")
        if len(self.disagreements) > 10:
            lines.append(f"  ... and {len(self.disagreements) - 10} more")
        return "\n".join(lines)


def compare_scores(
    left: Sequence[int], right: Sequence[int]
) -> ComparisonReport:
    """Compare two per-pair score lists (same workload order)."""
    if len(left) != len(right):
        raise ConfigError(
            f"result sets differ in size: {len(left)} vs {len(right)}"
        )
    if not left:
        raise ConfigError("cannot compare empty result sets")
    report = ComparisonReport(
        total=len(left), score_matches=0, cigar_matches=0, cigars_compared=0
    )
    for i, (a, b) in enumerate(zip(left, right)):
        if a == b:
            report.score_matches += 1
        else:
            report.disagreements.append(
                Disagreement(index=i, kind="score", left=a, right=b)
            )
    return report


def compare_alignments(
    left: Sequence[tuple[int, Optional[Cigar]]],
    right: Sequence[tuple[int, Optional[Cigar]]],
) -> ComparisonReport:
    """Compare (score, cigar) result lists (same workload order)."""
    report = compare_scores([s for s, _ in left], [s for s, _ in right])
    for i, ((_, ca), (_, cb)) in enumerate(zip(left, right)):
        if ca is None or cb is None:
            continue
        report.cigars_compared += 1
        if ca == cb:
            report.cigar_matches += 1
        else:
            report.disagreements.append(
                Disagreement(index=i, kind="cigar", left=str(ca), right=str(cb))
            )
    return report
