"""Result analysis: batch statistics and cross-implementation comparison."""

from repro.analysis.compare import (
    ComparisonReport,
    Disagreement,
    compare_alignments,
    compare_scores,
)
from repro.analysis.mapping_eval import MappingEvaluation, evaluate_mappings
from repro.analysis.stats import BatchStats, Distribution, summarize_results

__all__ = [
    "BatchStats",
    "Distribution",
    "summarize_results",
    "ComparisonReport",
    "Disagreement",
    "compare_scores",
    "compare_alignments",
    "MappingEvaluation",
    "evaluate_mappings",
]
