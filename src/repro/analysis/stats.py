"""Alignment result statistics.

Summaries a practitioner wants after aligning a batch: score and
identity distributions, CIGAR-operation totals, error-type breakdowns —
plus the workload-level distance histogram the E-threshold datasets are
defined by.  Pure-Python over :class:`~repro.core.aligner.AlignmentResult`
lists; NumPy only for the percentile math.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.aligner import AlignmentResult
from repro.errors import ConfigError

__all__ = ["Distribution", "BatchStats", "summarize_results"]


@dataclass(frozen=True)
class Distribution:
    """Five-number-ish summary of one metric over a batch."""

    count: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Distribution":
        if not values:
            raise ConfigError("cannot summarize an empty value list")
        arr = np.asarray(values, dtype=np.float64)
        q25, q50, q75 = np.percentile(arr, [25, 50, 75])
        return cls(
            count=len(values),
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            p25=float(q25),
            median=float(q50),
            p75=float(q75),
            maximum=float(arr.max()),
        )

    def describe(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3g} "
            f"min/p25/med/p75/max={self.minimum:.3g}/{self.p25:.3g}/"
            f"{self.median:.3g}/{self.p75:.3g}/{self.maximum:.3g}"
        )


@dataclass
class BatchStats:
    """Aggregate statistics for a batch of alignment results."""

    scores: Distribution
    identities: Distribution
    op_totals: dict[str, int] = field(default_factory=dict)
    exact_fraction: float = 1.0
    score_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def mismatch_rate(self) -> float:
        """Mismatches per aligned (M+X) column."""
        aligned = self.op_totals.get("M", 0) + self.op_totals.get("X", 0)
        return self.op_totals.get("X", 0) / aligned if aligned else 0.0

    @property
    def gap_rate(self) -> float:
        """Gap columns per alignment column."""
        total = sum(self.op_totals.values())
        gaps = self.op_totals.get("I", 0) + self.op_totals.get("D", 0)
        return gaps / total if total else 0.0

    def report(self) -> str:
        lines = [
            f"scores     : {self.scores.describe()}",
            f"identities : {self.identities.describe()}",
            f"ops        : "
            + " ".join(f"{k}={v}" for k, v in sorted(self.op_totals.items())),
            f"mismatch rate : {self.mismatch_rate:.4f}",
            f"gap rate      : {self.gap_rate:.4f}",
            f"exact results : {self.exact_fraction:.0%}",
        ]
        return "\n".join(lines)


def summarize_results(results: Iterable[AlignmentResult]) -> BatchStats:
    """Fold a batch of results into :class:`BatchStats`.

    Results without CIGARs (score-only) contribute to score statistics
    but not to identity/op statistics; a batch that is entirely
    score-only still summarizes (identity defaults to 1.0 per WFA
    convention for the degenerate case of no columns — callers wanting
    strictness should align with traceback).
    """
    scores: list[float] = []
    identities: list[float] = []
    ops = {"M": 0, "X": 0, "I": 0, "D": 0}
    hist: dict[int, int] = {}
    exact = 0
    total = 0
    for res in results:
        total += 1
        scores.append(res.score)
        hist[res.score] = hist.get(res.score, 0) + 1
        if res.exact:
            exact += 1
        if res.cigar is not None:
            identities.append(res.identity())
            for op, count in res.cigar.counts().items():
                ops[op] += count
    if total == 0:
        raise ConfigError("cannot summarize an empty result batch")
    return BatchStats(
        scores=Distribution.of(scores),
        identities=Distribution.of(identities if identities else [1.0]),
        op_totals=ops,
        exact_fraction=exact / total,
        score_histogram=dict(sorted(hist.items())),
    )
