"""Mapping accuracy evaluation against simulation ground truth.

The read simulator (:class:`~repro.data.simulator.ReferenceSampler`)
knows where every read came from; this module scores a set of PAF
mappings against that truth — the standard simulated-read evaluation
(as done by tools like mason/pbsim evaluations): a mapping is *correct*
when it places the read on the right strand within a positional
tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.paf import PafRecord
from repro.data.simulator import SampledRead
from repro.errors import ConfigError

__all__ = ["MappingEvaluation", "evaluate_mappings"]


@dataclass
class MappingEvaluation:
    """Aggregate accuracy of a mapping run."""

    total: int
    correct: int
    wrong_position: int
    wrong_strand: int
    tolerance: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 1.0

    def report(self) -> str:
        return (
            f"mapped reads      : {self.total}\n"
            f"correct (+-{self.tolerance}bp): {self.correct} "
            f"({self.accuracy:.1%})\n"
            f"wrong position    : {self.wrong_position}\n"
            f"wrong strand      : {self.wrong_strand}"
        )


def evaluate_mappings(
    records: Sequence[PafRecord],
    truth: Sequence[SampledRead],
    tolerance: int = 5,
    window_offsets: Sequence[int] | None = None,
) -> MappingEvaluation:
    """Score mappings against the simulator's ground truth.

    Args:
        records: one PAF record per read, in read order.
        truth: the :class:`SampledRead` objects, same order.
        tolerance: allowed positional error in bases.
        window_offsets: when reads were aligned inside *windows* rather
            than the whole reference, the window's start offset per read
            (so ``target_start`` translates to a reference position);
            omit when targets are full-reference coordinates.
    """
    if len(records) != len(truth):
        raise ConfigError(
            f"records ({len(records)}) and truth ({len(truth)}) differ in size"
        )
    if tolerance < 0:
        raise ConfigError("tolerance must be >= 0")
    if window_offsets is not None and len(window_offsets) != len(records):
        raise ConfigError("window_offsets must match records in length")

    correct = wrong_pos = wrong_strand = 0
    for i, (rec, read) in enumerate(zip(records, truth)):
        expected_strand = "-" if read.reverse else "+"
        if rec.strand != expected_strand:
            wrong_strand += 1
            continue
        base = window_offsets[i] if window_offsets is not None else 0
        mapped_position = base + rec.target_start
        if abs(mapped_position - read.position) <= tolerance:
            correct += 1
        else:
            wrong_pos += 1
    return MappingEvaluation(
        total=len(records),
        correct=correct,
        wrong_position=wrong_pos,
        wrong_strand=wrong_strand,
        tolerance=tolerance,
    )
