"""Calibration: how the model constants were anchored, and the targets.

The reproduction is *functional-first*: all operation counts (wavefront
cells, extension steps, DMA transfers and bytes, record sizes) are
measured by executing the real algorithm.  What remains are per-platform
rate constants.  This module records (a) the paper's published numbers,
(b) the provenance of every constant, and (c) the anchoring procedure,
so the calibration is reproducible and auditable.

Published targets (paper Fig. 1 and §II)
-----------------------------------------

======================  =======  =======
quantity                E = 2%   E = 4%
======================  =======  =======
Total speedup vs 56T    4.87x    4.05x
Kernel speedup vs 56T   37.4x    12.3x
======================  =======  =======

plus the qualitative observation that CPU time flattens with threads.

Anchoring procedure
-------------------

1. **DPU side is derived, not fitted.**  Kernel cycles come from
   measured counts x the hand-compiled scalar instruction costs
   (:class:`~repro.perf.costs.DpuCostModel`) and the PrIM pipeline / DMA
   constants (11-cycle dispatch period, 77-cycle DMA setup, 5.4
   cycles per 8 B ~= 630 MB/s streaming).  At the paper's operating
   point (1954 pairs/DPU, 16 tasklets) this yields a kernel time of
   ~32 ms (E=2%) / ~85 ms (E=4%) for the full 5M pairs.
2. **Host transfers are near-peak.**  The workload ships one ~430 KB
   contiguous block per DPU — precisely PrIM's peak parallel-transfer
   regime — so effective bandwidths are set to ~99% of PrIM's measured
   peaks (6.68 / 4.07 GB/s).
3. **The CPU anchor.**  The paper gives no absolute CPU time, only the
   37.4x E=2% kernel speedup; we anchor the 56-thread CPU time to it:
   ``C(2%) = 37.4 x K(2%) ~= 1.2 s`` (~4.2 M pairs/s aggregate, ~75 k
   pairs/s/thread — in line with the 2021 reference implementation on
   100 bp reads).  The effective-bandwidth constant of
   :class:`~repro.cpu.config.CpuConfig` (8.9 GB/s — ~8% of STREAM,
   reflecting the malloc-heavy, NUMA-unaware access pattern) places the
   56-thread point on the memory roof at that anchor; the CPU
   instruction-cost constants put the compute/memory crossover near 8
   threads, reproducing the flattening of Fig. 1.

Everything else (the E=4% column, the thread-scaling curve, the
kernel/total split) is then *predicted* by the models, not fitted;
EXPERIMENTS.md tabulates predicted vs published.

Known deviation: our kernel model scales ~2.7x from E=2% to 4% (cells
scale 3.5x, diluted by extension/traceback/overhead) where the paper's
two kernel speedups imply ~3.3x; consequently the modeled E=4% kernel
speedup is ~15x vs the published 12.3x.  The direction and magnitude
class (an order below the E=2% headline) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperTargets", "PAPER_TARGETS"]


@dataclass(frozen=True)
class PaperTargets:
    """The numbers Fig. 1 / §II of the paper report."""

    total_speedup_e2: float = 4.87
    total_speedup_e4: float = 4.05
    kernel_speedup_e2: float = 37.4
    kernel_speedup_e4: float = 12.3
    cpu_threads: int = 56
    num_pairs: int = 5_000_000
    read_length: int = 100

    def as_rows(self) -> list[tuple[str, float]]:
        """(label, value) rows for reports."""
        return [
            ("total_speedup_E2%", self.total_speedup_e2),
            ("total_speedup_E4%", self.total_speedup_e4),
            ("kernel_speedup_E2%", self.kernel_speedup_e2),
            ("kernel_speedup_E4%", self.kernel_speedup_e4),
        ]


PAPER_TARGETS = PaperTargets()
