"""Performance plumbing: cost tables, calibration record, reporting."""

from repro.perf.calibration import PAPER_TARGETS, PaperTargets
from repro.perf.costs import CpuCostModel, DpuCostModel
from repro.perf.energy import EnergyBreakdown, EnergyModel
from repro.perf.report import (
    format_comparison,
    format_series,
    format_table,
    human_time,
)

__all__ = [
    "PaperTargets",
    "PAPER_TARGETS",
    "CpuCostModel",
    "DpuCostModel",
    "EnergyModel",
    "EnergyBreakdown",
    "format_table",
    "format_series",
    "format_comparison",
    "human_time",
]
