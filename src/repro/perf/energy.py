"""Energy model: CPU vs PIM energy-to-solution.

The paper reports throughput only, but energy is the standard companion
metric in PIM evaluations (e.g., PrIM §6), so the harness models it as an
extension experiment.  The model is power-based: documented busy powers
multiplied by the modeled phase durations.

Power provenance:

* ``cpu_busy_watts`` — 2x Xeon Gold 5120 at 105 W TDP each, plus ~60 W
  for 12 busy DDR4 channels and board overhead => ~270 W under load.
* ``watts_per_dimm`` — PrIM measures ~23.22 W per UPMEM DIMM with all
  DPUs active; the paper's system has 20 DIMMs (~464 W during kernels).
* ``host_watts_during_pim`` — the host core orchestrating transfers and
  launches (one busy core + memory traffic), ~80 W.
* ``pim_idle_dimm_watts`` — DRAM refresh/background while DPUs wait
  during host transfer phases, ~4 W per DIMM.

All parameters are explicit so sensitivity studies can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # imported lazily to avoid a perf <-> pim import cycle
    from repro.cpu.model import CpuTimeBreakdown
    from repro.pim.system import PimRunResult

__all__ = ["EnergyModel", "EnergyBreakdown"]


@dataclass
class EnergyBreakdown:
    """Joules per phase for one run."""

    label: str
    phases: dict[str, float]

    @property
    def total_joules(self) -> float:
        return sum(self.phases.values())

    def pairs_per_joule(self, num_pairs: int) -> float:
        return num_pairs / self.total_joules if self.total_joules else 0.0


@dataclass(frozen=True)
class EnergyModel:
    """Busy-power energy model for both platforms."""

    cpu_busy_watts: float = 270.0
    watts_per_dimm: float = 23.22
    num_dimms: int = 20
    host_watts_during_pim: float = 80.0
    pim_idle_dimm_watts: float = 4.0

    def validate(self) -> None:
        for name in (
            "cpu_busy_watts",
            "watts_per_dimm",
            "host_watts_during_pim",
            "pim_idle_dimm_watts",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.num_dimms < 1:
            raise ConfigError("num_dimms must be >= 1")

    # -- CPU -----------------------------------------------------------

    def cpu_energy(self, breakdown: CpuTimeBreakdown) -> EnergyBreakdown:
        """Energy for a modeled CPU run (whole package busy throughout)."""
        self.validate()
        return EnergyBreakdown(
            label=f"cpu-{breakdown.threads}T",
            phases={"compute": self.cpu_busy_watts * breakdown.seconds},
        )

    # -- PIM -----------------------------------------------------------

    def pim_energy(self, run: PimRunResult) -> EnergyBreakdown:
        """Energy for a modeled PIM run, split by phase.

        During the kernel all DIMMs draw busy power and the host idles
        at orchestration power; during transfers the DIMMs draw idle
        power and the host is busy.
        """
        self.validate()
        dimm_busy = self.watts_per_dimm * self.num_dimms
        dimm_idle = self.pim_idle_dimm_watts * self.num_dimms
        transfer_s = run.transfer_seconds + run.launch_seconds
        return EnergyBreakdown(
            label=f"pim-{run.tasklets}T",
            phases={
                "kernel (DIMMs busy)": dimm_busy * run.kernel_seconds,
                "kernel (host orchestrating)": (
                    self.host_watts_during_pim * run.kernel_seconds
                ),
                "transfers (host busy)": self.host_watts_during_pim * transfer_s,
                "transfers (DIMMs idle)": dimm_idle * transfer_s,
            },
        )

    def efficiency_gain(
        self, cpu: CpuTimeBreakdown, pim: PimRunResult, num_pairs: int
    ) -> float:
        """PIM-over-CPU improvement in pairs aligned per joule."""
        cpu_eff = self.cpu_energy(cpu).pairs_per_joule(num_pairs)
        pim_eff = self.pim_energy(pim).pairs_per_joule(num_pairs)
        return pim_eff / cpu_eff if cpu_eff else float("inf")
