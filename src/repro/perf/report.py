"""Plain-text table / series formatting for experiment reports.

The benchmark harness prints the same rows and series the paper's figure
shows; these helpers keep that output consistent across experiments
(fixed-width columns, explicit units, a paper-vs-measured block).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "format_comparison", "human_time"]


def human_time(seconds: float) -> str:
    """Compact human-readable duration (``1.23 s``, ``45.6 ms``...)."""
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g} us"
    return f"{seconds * 1e9:.3g} ns"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One figure series as ``name: x=y, x=y, ...`` with 3-sig-fig values."""
    points = ", ".join(f"{x}={y:.4g}" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def format_comparison(
    rows: Sequence[tuple[str, float, float]], title: str = "paper vs measured"
) -> str:
    """Paper-vs-measured block with relative deviation per row."""
    out = [
        format_table(
            ["metric", "paper", "measured", "measured/paper"],
            [
                (label, f"{paper:.3g}", f"{measured:.3g}", f"{measured / paper:.2f}x")
                for label, paper, measured in rows
            ],
            title=title,
        )
    ]
    return "\n".join(out)
