"""Operation-to-instruction cost tables.

The simulator is *functional-first*: it executes the actual WFA on the
simulated memory system and records operation counts
(:class:`~repro.core.wavefront.WfaCounters`).  Timing models then convert
counts to machine work using the per-platform cost tables below.  This is
the standard methodology of trace-driven architectural models: the counts
are exact, the per-operation costs are characterized constants.

Two tables:

* :class:`DpuCostModel` — instructions of the scalar 32-bit DPU ISA per
  WFA event.  The paper's kernel is *unvectorized* (UPMEM has no SIMD),
  so each wavefront cell costs a full scalar sequence of loads, compares,
  selects and a store; estimates derived by hand-compiling the inner
  loops (comments inline).
* :class:`CpuCostModel` — the same events on the Xeon, where the
  reference WFA is vectorized (AVX2): per-cell cost is amortized over
  SIMD lanes.  This CPU/DPU asymmetry is explicitly acknowledged by the
  paper ("we remove vectorization from the PIM version because it is not
  supported on UPMEM").

Calibration notes live in :mod:`repro.perf.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.wavefront import WfaCounters

__all__ = ["DpuCostModel", "CpuCostModel"]


@dataclass(frozen=True)
class DpuCostModel:
    """Scalar DPU instructions per WFA event.

    Hand-compile of the affine kernel inner loop (per component cell):
    each of the 2-3 candidate offsets takes 1-2 WRAM loads, an add, two
    boundary comparisons and a branch (~6 instructions); selecting the
    max adds compare/select pairs; plus the null check, store and index
    arithmetic — ~30 scalar instructions per cell on a RISC core with no
    select/min/max fusion.  Extension: load 2 chars, compare, branch,
    2 increments — ~6 per step.  Per-score overhead covers bounds
    computation, loop control and the termination test; per-pair
    overhead covers argument setup, DMA issue sequences and result
    packing.
    """

    per_cell: float = 30.0
    per_extend_step: float = 6.0
    per_score_iteration: float = 40.0
    per_backtrace_op: float = 12.0
    per_pair_overhead: float = 300.0

    def instructions(self, counters: WfaCounters, pairs: int = 1) -> float:
        """Estimated DPU instructions for the counted work."""
        return (
            counters.cells_computed * self.per_cell
            + counters.extend_steps * self.per_extend_step
            + counters.score_iterations * self.per_score_iteration
            + counters.backtrace_ops * self.per_backtrace_op
            + pairs * self.per_pair_overhead
        )


@dataclass(frozen=True)
class CpuCostModel:
    """Xeon "effective scalar instruction" costs per WFA event.

    The reference CPU implementation processes wavefront cells with AVX2
    (8-16 offsets per vector op), so per-cell instruction cost is roughly
    the scalar cost divided by an effective vector width (~10x here: 8
    lanes derated for shuffles, masks and tails).  Extension compares 8
    characters per 64-bit word.  The large per-pair overhead reflects
    the 2021 reference implementation's per-alignment allocator
    setup/teardown (``mm_allocator`` create/clear) and benchmark-harness
    bookkeeping, which dominate short-read alignments in practice.
    Units are normalized "instructions" retired by one thread; the CPU
    timing model divides by ``ipc * frequency``.
    """

    per_cell: float = 3.0
    per_extend_step: float = 1.5
    per_score_iteration: float = 30.0
    per_backtrace_op: float = 10.0
    per_pair_overhead: float = 5000.0

    def instructions(self, counters: WfaCounters, pairs: int = 1) -> float:
        """Estimated per-thread instructions for the counted work."""
        return (
            counters.cells_computed * self.per_cell
            + counters.extend_steps * self.per_extend_step
            + counters.score_iterations * self.per_score_iteration
            + counters.backtrace_ops * self.per_backtrace_op
            + pairs * self.per_pair_overhead
        )
