"""The perf ledger's registered bench scenarios.

Every scenario runs a pinned-seed workload on the **modeled clock** and
reports gated metrics (pairs/sec, modeled total/kernel seconds, latency
percentiles) that are pure functions of its configuration — identical on
any machine, at any worker count, under any CPU load.  Wall-clock
observations (vector-engine speedup, pool scaling) ride in the
non-gated ``info`` dict: they are the *reason* some knobs exist, but a
noisy CI box must never fail the gate over them.

Each scenario also identity-checks the property it is named for
(vector == scalar results, parallel == sequential results, breaker run
== retry-only run) — a ledger record is only appended if the claim the
scenario benchmarks still holds.

Percentile semantics per scenario family:

* device scenarios — percentiles over **per-DPU modeled kernel
  seconds** (the straggler distribution the paper's Kernel series
  hides);
* scheduler scenarios — percentiles over **per-round modeled total
  seconds**;
* serve scenarios — percentiles over **per-request modeled latency**
  (straight from the load report).

Quick profiles are CI-safe on one CPU (the whole catalog runs in a few
seconds); full profiles are the overnight shapes.
"""

from __future__ import annotations

import time
import warnings
from typing import List, Optional

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import DegradedCapacity, LedgerError
from repro.obs.bench import ScenarioResult, counters_from_diff, scenario
from repro.obs.telemetry import RunTelemetry
from repro.pim.config import PimSystemConfig
from repro.pim.faults import DpuDeath, FaultPlan, RetryPolicy
from repro.pim.health import FleetHealth, HealthPolicy
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem
from repro.serve.loadgen import LoadgenConfig, percentile, run_load

__all__ = ["SCENARIO_NAMES"]

#: the catalog, in registration order (kept in sync by the decorator).
SCENARIO_NAMES = (
    "engine_vector_vs_scalar",
    "host_parallel",
    "scheduler_rounds",
    "serve_replay",
    "resilience_breaker",
    "fleet_scaling",
    "campaign_grid",
    "fleet_lossy_net",
)


def _system(
    num_dpus: int,
    tasklets: int,
    length: int,
    max_edits: int,
    engine: str = "vector",
    telemetry: Optional[RunTelemetry] = None,
) -> PimSystem:
    return PimSystem(
        PimSystemConfig(
            num_dpus=num_dpus,
            num_ranks=1,
            tasklets=tasklets,
            num_simulated_dpus=num_dpus,
        ),
        KernelConfig(
            penalties=AffinePenalties(),
            max_read_len=length,
            max_edits=max_edits,
            engine=engine,
        ),
        telemetry=telemetry,
    )


def _signature(results) -> list:
    """Order-independent functional signature of run results."""
    return sorted((i, s, str(c)) for i, s, c in results)


def _pctl(values: List[float]) -> tuple:
    """(p50, p90, p99) of a modeled-seconds sample (zeros when empty)."""
    if not values:
        return (0.0, 0.0, 0.0)
    s = sorted(values)
    return (percentile(s, 50), percentile(s, 90), percentile(s, 99))


# -- 1. vector vs scalar engine -------------------------------------------


@scenario("engine_vector_vs_scalar")
def engine_vector_vs_scalar(profile: str) -> ScenarioResult:
    """The engine knob: identical modeled run, different wall clock.

    Runs the same workload through the scalar per-pair engine and the
    vectorized batch engine, asserts bit-identical results and modeled
    times (the gated claim), and reports the wall-clock speedup as info.
    """
    config = {
        "scenario": "engine_vector_vs_scalar",
        "profile": profile,
        "num_dpus": 8,
        "tasklets": 4,
        "length": 64,
        "error_rate": 0.02,
        "max_edits": 3,
        "seed": 7,
        "pairs": 128 if profile == "quick" else 2048,
    }
    pairs = ReadPairGenerator(
        length=config["length"],
        error_rate=config["error_rate"],
        seed=config["seed"],
    ).pairs(config["pairs"])

    runs = {}
    walls = {}
    for engine in ("scalar", "vector"):
        system = _system(
            config["num_dpus"],
            config["tasklets"],
            config["length"],
            config["max_edits"],
            engine=engine,
        )
        t0 = time.perf_counter()
        runs[engine] = system.align(pairs, collect_results=True)
        walls[engine] = time.perf_counter() - t0

    scalar, vector = runs["scalar"], runs["vector"]
    if _signature(scalar.results) != _signature(vector.results):
        raise LedgerError(
            "engine_vector_vs_scalar: vector engine results diverged from scalar"
        )
    if (scalar.total_seconds, scalar.kernel_seconds) != (
        vector.total_seconds,
        vector.kernel_seconds,
    ):
        raise LedgerError(
            "engine_vector_vs_scalar: modeled times differ between engines"
        )

    p50, p90, p99 = _pctl([s.seconds for s in vector.per_dpu])
    return ScenarioResult(
        scenario="engine_vector_vs_scalar",
        config=config,
        pairs_per_second=vector.throughput(),
        total_seconds=vector.total_seconds,
        kernel_seconds=vector.kernel_seconds,
        latency_p50_s=p50,
        latency_p90_s=p90,
        latency_p99_s=p99,
        info={
            "results_identical": True,
            "wall_scalar_s": walls["scalar"],
            "wall_vector_s": walls["vector"],
            "wall_speedup": (
                walls["scalar"] / walls["vector"] if walls["vector"] else 0.0
            ),
        },
    )


# -- 2. host-parallel scaling ---------------------------------------------


@scenario("host_parallel")
def host_parallel(profile: str) -> ScenarioResult:
    """Worker-pool scaling: identical results and modeled times at any
    worker count; wall-clock scaling reported as info."""
    config = {
        "scenario": "host_parallel",
        "profile": profile,
        "num_dpus": 8,
        "tasklets": 4,
        "length": 64,
        "error_rate": 0.02,
        "max_edits": 3,
        "seed": 11,
        "pairs": 96 if profile == "quick" else 1024,
        "worker_counts": [0, 2],
    }
    pairs = ReadPairGenerator(
        length=config["length"],
        error_rate=config["error_rate"],
        seed=config["seed"],
    ).pairs(config["pairs"])

    baseline = None
    walls = {}
    for workers in config["worker_counts"]:
        system = _system(
            config["num_dpus"],
            config["tasklets"],
            config["length"],
            config["max_edits"],
        )
        t0 = time.perf_counter()
        run = system.align(pairs, collect_results=True, workers=workers)
        walls[str(workers)] = time.perf_counter() - t0
        if baseline is None:
            baseline = run
        else:
            if _signature(run.results) != _signature(baseline.results):
                raise LedgerError(
                    f"host_parallel: workers={workers} diverged from sequential"
                )
            if (run.total_seconds, run.kernel_seconds) != (
                baseline.total_seconds,
                baseline.kernel_seconds,
            ):
                raise LedgerError(
                    f"host_parallel: workers={workers} changed modeled times"
                )

    p50, p90, p99 = _pctl([s.seconds for s in baseline.per_dpu])
    return ScenarioResult(
        scenario="host_parallel",
        config=config,
        pairs_per_second=baseline.throughput(),
        total_seconds=baseline.total_seconds,
        kernel_seconds=baseline.kernel_seconds,
        latency_p50_s=p50,
        latency_p90_s=p90,
        latency_p99_s=p99,
        info={
            "results_identical": True,
            "wall_seconds_by_workers": walls,
        },
    )


# -- 3. multi-round scheduler ---------------------------------------------


@scenario("scheduler_rounds")
def scheduler_rounds(profile: str) -> ScenarioResult:
    """MRAM-sized rounds through the batch scheduler, serialized vs
    overlapped, with per-scenario counter attribution via the registry
    diff."""
    config = {
        "scenario": "scheduler_rounds",
        "profile": profile,
        "num_dpus": 8,
        "tasklets": 4,
        "length": 64,
        "error_rate": 0.02,
        "max_edits": 3,
        "seed": 13,
        "pairs": 192 if profile == "quick" else 2048,
        "pairs_per_round": 64 if profile == "quick" else 512,
    }
    pairs = ReadPairGenerator(
        length=config["length"],
        error_rate=config["error_rate"],
        seed=config["seed"],
    ).pairs(config["pairs"])

    telemetry = RunTelemetry()
    system = _system(
        config["num_dpus"],
        config["tasklets"],
        config["length"],
        config["max_edits"],
        telemetry=telemetry,
    )
    before = telemetry.registry.snapshot()
    run = BatchScheduler(system).run(
        pairs, pairs_per_round=config["pairs_per_round"], collect_results=True
    )
    counters = counters_from_diff(telemetry.registry.diff(before))

    overlapped = BatchScheduler(
        _system(
            config["num_dpus"],
            config["tasklets"],
            config["length"],
            config["max_edits"],
        ),
        overlapped=True,
    ).run(pairs, pairs_per_round=config["pairs_per_round"], collect_results=True)

    p50, p90, p99 = _pctl([r.total_seconds for r in run.per_round])
    return ScenarioResult(
        scenario="scheduler_rounds",
        config=config,
        pairs_per_second=run.throughput(),
        total_seconds=run.total_seconds,
        kernel_seconds=run.kernel_seconds,
        latency_p50_s=p50,
        latency_p90_s=p90,
        latency_p99_s=p99,
        info={
            "rounds": run.schedule.rounds,
            "overlapped_total_seconds": overlapped.total_seconds,
            "overlap_speedup": (
                run.total_seconds / overlapped.total_seconds
                if overlapped.total_seconds
                else 0.0
            ),
        },
        counters=counters,
    )


# -- 4. serve-layer load replay -------------------------------------------


@scenario("serve_replay")
def serve_replay(profile: str) -> ScenarioResult:
    """A seeded load replay through the full serving stack (admission,
    micro-batching, cache, modeled device timeline)."""
    from repro.serve.clock import VirtualClock
    from repro.serve.service import build_service

    config = {
        "scenario": "serve_replay",
        "profile": profile,
        "num_dpus": 4,
        "tasklets": 4,
        "length": 16,
        "error_rate": 0.05,
        "max_edits": 4,
        "seed": 5,
        "requests": 160 if profile == "quick" else 1200,
        "rate": 2000.0,
        "pairs_per_request": 2,
        "clients": 4,
    }
    service = build_service(
        num_dpus=config["num_dpus"],
        tasklets=config["tasklets"],
        max_read_len=config["length"],
        max_edits=config["max_edits"],
        clock=VirtualClock(),
    )
    before = service.telemetry.registry.snapshot()
    report = run_load(
        service,
        LoadgenConfig(
            requests=config["requests"],
            rate=config["rate"],
            pairs_per_request=config["pairs_per_request"],
            clients=config["clients"],
            length=config["length"],
            error_rate=config["error_rate"],
            seed=config["seed"],
        ),
    )
    counters = counters_from_diff(
        service.telemetry.registry.diff(before)
    )
    kernel_seconds = service.telemetry.registry.counter(
        "pim_model_seconds_total"
    ).value(section="kernel")
    summary = report.summary()
    return ScenarioResult(
        scenario="serve_replay",
        config=config,
        pairs_per_second=summary["throughput_pairs_per_s"],
        total_seconds=summary["makespan_s"],
        kernel_seconds=kernel_seconds,
        latency_p50_s=summary["latency_p50_s"],
        latency_p90_s=summary["latency_p90_s"],
        latency_p99_s=summary["latency_p99_s"],
        info={
            "completed": summary["completed"],
            "rejected": summary["rejected"],
            "batches": summary["batches"],
            "cached_pairs": summary["cached_pairs"],
        },
        counters=counters,
    )


# -- 5. breaker vs retry-only under a dead DPU ----------------------------


@scenario("resilience_breaker")
def resilience_breaker(profile: str) -> ScenarioResult:
    """Fleet-health delta: quarantining a dead DPU must beat burning
    retries on it every round, at identical results."""
    config = {
        "scenario": "resilience_breaker",
        "profile": profile,
        "num_dpus": 8,
        "tasklets": 4,
        "dead_dpu": 3,
        "length": 64,
        "error_rate": 0.02,
        "max_edits": 3,
        "seed": 11,
        "pairs": 192 if profile == "quick" else 960,
        "pairs_per_round": 96,
        "max_attempts": 2,
        "backoff_base_s": 2e-3,
    }
    pairs = ReadPairGenerator(
        length=config["length"],
        error_rate=config["error_rate"],
        seed=config["seed"],
    ).pairs(config["pairs"])
    policy = RetryPolicy(
        max_attempts=config["max_attempts"],
        backoff_base_s=config["backoff_base_s"],
    )

    def flat(run):
        out, start = [], 0
        for rnd, size in zip(run.per_round, run.schedule.round_sizes()):
            out.extend((i + start, s, str(c)) for i, s, c in rnd.results)
            start += size
        return sorted(out)

    def run_once(health):
        system = _system(
            config["num_dpus"],
            config["tasklets"],
            config["length"],
            config["max_edits"],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            return BatchScheduler(system).run(
                pairs,
                pairs_per_round=config["pairs_per_round"],
                collect_results=True,
                fault_plan=FaultPlan(
                    deaths=(DpuDeath(dpu_id=config["dead_dpu"]),)
                ),
                retry_policy=policy,
                health=health,
            )

    retry_only = run_once(health=None)
    with_breaker = run_once(
        health=FleetHealth(
            config["num_dpus"],
            policy=HealthPolicy(window=4, failure_threshold=2, cooldown_s=1e9),
        )
    )
    if flat(retry_only) != flat(with_breaker):
        raise LedgerError(
            "resilience_breaker: breaker run results diverged from retry-only"
        )
    if with_breaker.total_seconds >= retry_only.total_seconds:
        raise LedgerError(
            "resilience_breaker: quarantine did not beat retry-only "
            f"({with_breaker.total_seconds:.6g} >= "
            f"{retry_only.total_seconds:.6g} modeled seconds)"
        )

    p50, p90, p99 = _pctl([r.total_seconds for r in with_breaker.per_round])
    return ScenarioResult(
        scenario="resilience_breaker",
        config=config,
        pairs_per_second=with_breaker.throughput(),
        total_seconds=with_breaker.total_seconds,
        kernel_seconds=with_breaker.kernel_seconds,
        latency_p50_s=p50,
        latency_p90_s=p90,
        latency_p99_s=p99,
        info={
            "results_identical": True,
            "retry_only_total_seconds": retry_only.total_seconds,
            "breaker_saved_seconds": (
                retry_only.total_seconds - with_breaker.total_seconds
            ),
        },
    )


# -- 6. sharded-fleet scaling curve ----------------------------------------


@scenario("fleet_scaling")
def fleet_scaling(profile: str) -> ScenarioResult:
    """The paper's DIMM-scaling claim on the modeled clock.

    Runs one pinned workload through :class:`~repro.pim.fleet.FleetCoordinator`
    at 1, 2, 4 and 20 shards (the paper's 20-DIMM shape), asserts the
    result stream is byte-identical at every shard count (the
    shard-equivalence claim ``tests/test_pim_fleet.py`` pins), and that
    the modeled fleet makespan strictly shrinks — i.e. throughput rises
    monotonically — from 1 through 20 shards.  Gated metrics come from
    the 4-shard point; the whole 1→2→4→20 curve rides in ``info``.
    """
    from repro.pim.fleet import FleetCoordinator

    config = {
        "scenario": "fleet_scaling",
        "profile": profile,
        "shard_counts": [1, 2, 4, 20],
        "dpus_per_shard": 4,
        "tasklets": 4,
        "length": 32,
        "error_rate": 0.05,
        "max_edits": 3,
        "seed": 17,
        "pairs": 320 if profile == "quick" else 1280,
        "pairs_per_round": 16 if profile == "quick" else 64,
    }
    pairs = ReadPairGenerator(
        length=config["length"],
        error_rate=config["error_rate"],
        seed=config["seed"],
    ).pairs(config["pairs"])
    system_config = PimSystemConfig(
        num_dpus=config["dpus_per_shard"],
        num_ranks=1,
        tasklets=config["tasklets"],
        num_simulated_dpus=config["dpus_per_shard"],
    )
    kernel_config = KernelConfig(
        penalties=AffinePenalties(),
        max_read_len=config["length"],
        max_edits=config["max_edits"],
        engine="vector",
    )

    telemetry = RunTelemetry()
    curve = []
    baseline_signature = None
    gated = None
    counters = {}
    for shards in config["shard_counts"]:
        shard_tel = telemetry if shards == 4 else None
        fleet = FleetCoordinator(
            system_config, kernel_config, shards=shards, telemetry=shard_tel
        )
        run = fleet.run(
            pairs,
            pairs_per_round=config["pairs_per_round"],
            collect_results=True,
        )
        signature = _signature(run.results())
        if baseline_signature is None:
            baseline_signature = signature
        elif signature != baseline_signature:
            raise LedgerError(
                f"fleet_scaling: shards={shards} results diverged from "
                "shards=1 (shard equivalence broken)"
            )
        if curve and run.total_seconds >= curve[-1]["total_seconds"]:
            raise LedgerError(
                "fleet_scaling: modeled makespan did not shrink from "
                f"{curve[-1]['shards']} to {shards} shards "
                f"({run.total_seconds:.6g} >= "
                f"{curve[-1]['total_seconds']:.6g} modeled seconds)"
            )
        if shard_tel is not None:
            # the 4-shard point attributes device counters through the
            # fleet's federated view (the telemetry is fresh, so the
            # full federated snapshot IS the scenario's diff-from-zero)
            counters = counters_from_diff(fleet.metrics_snapshot())
            gated = run
        curve.append(
            {
                "shards": shards,
                "total_seconds": run.total_seconds,
                "throughput": run.throughput(),
                "speedup_vs_serial": run.speedup(),
            }
        )

    p50, p90, p99 = _pctl([r.total_seconds for r in gated.per_round])
    return ScenarioResult(
        scenario="fleet_scaling",
        config=config,
        pairs_per_second=gated.throughput(),
        total_seconds=gated.total_seconds,
        kernel_seconds=gated.kernel_seconds,
        latency_p50_s=p50,
        latency_p90_s=p90,
        latency_p99_s=p99,
        info={
            "results_identical": True,
            "curve": curve,
            "throughput_1_shard": curve[0]["throughput"],
            "throughput_20_shards": curve[-1]["throughput"],
            "scaling_20_over_1": (
                curve[-1]["throughput"] / curve[0]["throughput"]
                if curve[0]["throughput"]
                else 0.0
            ),
        },
        counters=counters,
    )


# -- 7. ablation x chaos campaign grid --------------------------------------


@scenario("campaign_grid")
def campaign_grid(profile: str) -> ScenarioResult:
    """The campaign runner as a regression-tracked scenario.

    Runs a pinned ablation x fault-grid campaign (see
    :mod:`repro.qa.campaign`), identity-checks the evidence the grid
    exists to produce — the report fully revalidates, the breaker-off
    cell pays more modeled recovery than baseline under a dead DPU, and
    the journal-off cell pays a larger modeled restart bill after a
    crash — and gates on the baseline cell's modeled throughput at the
    dead-DPU point.  Percentiles are over per-cell modeled total
    seconds (the straggler spread of the grid itself).
    """
    from repro.pim.ablation import ablation_by_name
    from repro.qa.campaign import (
        CampaignConfig,
        cell_name,
        grid_point_by_name,
        run_campaign,
        validate_campaign_report,
    )

    config = {
        "scenario": "campaign_grid",
        "profile": profile,
        "pairs": 48 if profile == "quick" else 96,
        "length": 16,
        "max_edits": 4,
        "seed": 42,
        "num_dpus": 4,
        "tasklets": 2,
        "pairs_per_round": 8,
        "baseline_shards": 2,
        "serve_requests": 0 if profile == "quick" else 24,
        "ablations": ["baseline", "breaker_off", "requeue_off", "journal_off"],
        "grid": ["calm", "dead_dpu", "crash_dead"],
    }
    campaign_config = CampaignConfig(
        pairs=config["pairs"],
        length=config["length"],
        max_edits=config["max_edits"],
        seed=config["seed"],
        num_dpus=config["num_dpus"],
        tasklets=config["tasklets"],
        pairs_per_round=config["pairs_per_round"],
        baseline_shards=config["baseline_shards"],
        serve_requests=config["serve_requests"],
        ablations=tuple(ablation_by_name(n) for n in config["ablations"]),
        grid=tuple(grid_point_by_name(n) for n in config["grid"]),
    )
    report = run_campaign(campaign_config)
    validate_campaign_report(report.to_lines())
    if not report.ok:
        raise LedgerError("campaign_grid: campaign summary is not ok")

    baseline_dead = report.cell(cell_name("baseline", "dead_dpu"))["metrics"]
    breaker_off = report.cell(cell_name("breaker_off", "dead_dpu"))["metrics"]
    if breaker_off["recovery_seconds"] <= baseline_dead["recovery_seconds"]:
        raise LedgerError(
            "campaign_grid: breaker-off cell did not regress modeled "
            f"recovery ({breaker_off['recovery_seconds']:.6g} <= "
            f"{baseline_dead['recovery_seconds']:.6g} modeled seconds)"
        )
    baseline_crash = report.cell(cell_name("baseline", "crash_dead"))["metrics"]
    journal_off = report.cell(cell_name("journal_off", "crash_dead"))["metrics"]
    if (
        journal_off["restart_overhead_seconds"]
        <= baseline_crash["restart_overhead_seconds"]
    ):
        raise LedgerError(
            "campaign_grid: journal-off cell did not pay a larger modeled "
            "restart bill than baseline after a crash"
        )

    p50, p90, p99 = _pctl(
        [rec["metrics"]["total_seconds"] for rec in report.cells]
    )
    summary = report.summary()
    return ScenarioResult(
        scenario="campaign_grid",
        config=config,
        pairs_per_second=baseline_dead["throughput_pairs_per_s"],
        total_seconds=baseline_dead["total_seconds"],
        kernel_seconds=baseline_dead["kernel_seconds"],
        latency_p50_s=p50,
        latency_p90_s=p90,
        latency_p99_s=p99,
        info={
            "cells": summary["cells"],
            "oracle_ok": summary["oracle_ok"],
            "oracle_checked": summary["oracle_checked"],
            "resumes_identical": summary["resumes_identical"],
            "breaker_off_recovery_delta_s": (
                breaker_off["recovery_seconds"]
                - baseline_dead["recovery_seconds"]
            ),
            "journal_off_restart_overhead_s": (
                journal_off["restart_overhead_seconds"]
            ),
        },
    )


# -- 8. fleet over a lossy network ------------------------------------------


@scenario("fleet_lossy_net")
def fleet_lossy_net(profile: str) -> ScenarioResult:
    """The shard transport under rising link loss, identity-checked.

    Runs one pinned workload through a 4-shard fleet at 0%, 1% and 5%
    per-envelope drop probability (plus matching duplicate injection)
    on every coordinator<->shard link.  The 0% point takes the direct
    in-process path (a calm plan never constructs a transport); every
    lossy point must return the byte-identical result stream — the
    at-least-once + dedup exactly-once-effect claim — and must not
    finish faster than the calm run (redelivery only adds modeled
    time).  Gated metrics come from the 5% point, whose transport
    counters ride in ``counters`` for the ledger diff.
    """
    from repro.pim.fleet import FleetCoordinator
    from repro.pim.transport import LinkDrop, LinkDuplicate, NetworkFaultPlan

    config = {
        "scenario": "fleet_lossy_net",
        "profile": profile,
        "shards": 4,
        "dpus_per_shard": 4,
        "tasklets": 4,
        "length": 32,
        "error_rate": 0.05,
        "max_edits": 3,
        "seed": 23,
        "net_seed": 5,
        "pairs": 256 if profile == "quick" else 1024,
        "pairs_per_round": 16 if profile == "quick" else 32,
        "drop_rates": [0.0, 0.01, 0.05],
    }
    pairs = ReadPairGenerator(
        length=config["length"],
        error_rate=config["error_rate"],
        seed=config["seed"],
    ).pairs(config["pairs"])
    system_config = PimSystemConfig(
        num_dpus=config["dpus_per_shard"],
        num_ranks=1,
        tasklets=config["tasklets"],
        num_simulated_dpus=config["dpus_per_shard"],
    )
    kernel_config = KernelConfig(
        penalties=AffinePenalties(),
        max_read_len=config["length"],
        max_edits=config["max_edits"],
        engine="vector",
    )

    def net_plan(rate: float) -> NetworkFaultPlan:
        links = range(config["shards"])
        return NetworkFaultPlan(
            seed=config["net_seed"],
            drops=tuple(LinkDrop(shard_id=s, p=rate) for s in links),
            duplicates=tuple(LinkDuplicate(shard_id=s, p=rate) for s in links),
        )

    calm_signature = None
    calm_seconds = None
    gated = None
    gated_report = None
    counters = {}
    curve = []
    for rate in config["drop_rates"]:
        telemetry = RunTelemetry() if rate == config["drop_rates"][-1] else None
        fleet = FleetCoordinator(
            system_config,
            kernel_config,
            shards=config["shards"],
            net_plan=net_plan(rate),
            telemetry=telemetry,
        )
        run = fleet.run(
            pairs,
            pairs_per_round=config["pairs_per_round"],
            collect_results=True,
        )
        signature = _signature(run.results())
        if calm_signature is None:
            calm_signature = signature
            calm_seconds = run.total_seconds
            if fleet.transport is not None:
                raise LedgerError(
                    "fleet_lossy_net: a calm plan constructed a transport"
                )
        elif signature != calm_signature:
            raise LedgerError(
                f"fleet_lossy_net: drop rate {rate} results diverged from "
                "the calm run (exactly-once effect broken)"
            )
        elif run.total_seconds < calm_seconds:
            raise LedgerError(
                f"fleet_lossy_net: drop rate {rate} finished faster than "
                "the calm run on the modeled clock"
            )
        if telemetry is not None:
            counters = counters_from_diff(fleet.metrics_snapshot())
            gated = run
            gated_report = run.transport
        curve.append(
            {
                "drop_rate": rate,
                "total_seconds": run.total_seconds,
                "throughput": run.throughput(),
                "drops": 0 if run.transport is None else run.transport.drops,
                "redeliveries": (
                    0 if run.transport is None else run.transport.redeliveries
                ),
            }
        )

    if gated_report is None or gated_report.drops < 1:
        raise LedgerError(
            "fleet_lossy_net: the gated 5% point never dropped an envelope "
            "(the fault plan is not exercising the transport)"
        )
    p50, p90, p99 = _pctl([r.total_seconds for r in gated.per_round])
    return ScenarioResult(
        scenario="fleet_lossy_net",
        config=config,
        pairs_per_second=gated.throughput(),
        total_seconds=gated.total_seconds,
        kernel_seconds=gated.kernel_seconds,
        latency_p50_s=p50,
        latency_p90_s=p90,
        latency_p99_s=p99,
        info={
            "results_identical": True,
            "curve": curve,
            "calm_total_seconds": calm_seconds,
            "lossy_overhead_ratio": (
                gated.total_seconds / calm_seconds if calm_seconds else 0.0
            ),
            "duplicates_absorbed": gated_report.duplicates_absorbed,
        },
        counters=counters,
    )
