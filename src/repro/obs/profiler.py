"""Span-based profiler over two clocks: host wall time and model time.

The simulator lives in two time domains at once:

* **wall time** — how long the *host* spends simulating (what
  ``workers=N`` speeds up); measured with a monotonic clock;
* **model time** — the seconds the *timing model* attributes to the
  simulated hardware (what the paper's figures report); computed, never
  measured, and therefore identical between sequential and parallel
  runs.

A :class:`Profiler` records both as nested spans.  ``with
profiler.span("push", dpu=3): ...`` measures wall time around a code
block; :meth:`Profiler.add_model_span` / :meth:`Profiler.model_span`
place a span on the *model* timeline with an explicit start and
duration.  Spans nest via an explicit stack, and
:meth:`Profiler.totals` aggregates per span name.

Reconciliation — the invariant that per-section model spans sum to the
timing model's ``total_seconds`` — lives in
:meth:`repro.obs.telemetry.RunTelemetry.reconcile`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = ["SpanRecord", "Profiler"]


@dataclass
class SpanRecord:
    """One completed (or open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    labels: dict[str, str] = field(default_factory=dict)
    #: wall-clock times, relative to the profiler's epoch (first span).
    wall_start: Optional[float] = None
    wall_seconds: Optional[float] = None
    #: model-timeline placement (absolute seconds on the run timeline).
    model_start: Optional[float] = None
    model_seconds: Optional[float] = None

    def to_dict(self) -> dict:
        """Plain data for JSONL manifests (stable key order)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "labels": dict(sorted(self.labels.items())),
            "wall_start": self.wall_start,
            "wall_seconds": self.wall_seconds,
            "model_start": self.model_start,
            "model_seconds": self.model_seconds,
        }


class Profiler:
    """Nested span recorder with per-name aggregation."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch: Optional[float] = None
        self.records: list[SpanRecord] = []
        self._stack: list[int] = []

    # -- internals -----------------------------------------------------------

    def _now(self) -> float:
        t = self._clock()
        if self._epoch is None:
            self._epoch = t
        return t - self._epoch

    def _open(
        self,
        name: str,
        labels: dict,
        wall_start: Optional[float],
        model_start: Optional[float],
        model_seconds: Optional[float],
    ) -> SpanRecord:
        rec = SpanRecord(
            span_id=len(self.records),
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            labels={str(k): str(v) for k, v in labels.items()},
            wall_start=wall_start,
            model_start=model_start,
            model_seconds=model_seconds,
        )
        self.records.append(rec)
        return rec

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[SpanRecord]:
        """Measure wall time around a code block; nests under the
        enclosing span.  The yielded record can be annotated with model
        time via :meth:`annotate_model`."""
        start = self._now()
        rec = self._open(name, labels, start, None, None)
        self._stack.append(rec.span_id)
        try:
            yield rec
        finally:
            rec.wall_seconds = self._now() - start
            self._stack.pop()

    def add_model_span(
        self,
        name: str,
        model_start: float,
        model_seconds: float,
        **labels: object,
    ) -> SpanRecord:
        """Record a leaf span on the model timeline (no wall clock)."""
        return self._open(name, labels, None, model_start, model_seconds)

    @contextmanager
    def model_span(
        self,
        name: str,
        model_start: float,
        model_seconds: float,
        **labels: object,
    ) -> Iterator[SpanRecord]:
        """Like :meth:`add_model_span` but children recorded inside the
        ``with`` block nest under it."""
        rec = self._open(name, labels, None, model_start, model_seconds)
        self._stack.append(rec.span_id)
        try:
            yield rec
        finally:
            self._stack.pop()

    @staticmethod
    def annotate_model(
        rec: SpanRecord, model_start: float, model_seconds: float
    ) -> None:
        rec.model_start = model_start
        rec.model_seconds = model_seconds

    # -- queries -------------------------------------------------------------

    def children(self, span_id: int) -> list[SpanRecord]:
        return [r for r in self.records if r.parent_id == span_id]

    def spans(self, name: str, **labels: object) -> list[SpanRecord]:
        """Spans with this name whose labels include ``labels``."""
        want = {str(k): str(v) for k, v in labels.items()}
        return [
            r
            for r in self.records
            if r.name == name and all(r.labels.get(k) == v for k, v in want.items())
        ]

    def model_seconds(self, name: str, **labels: object) -> float:
        """Sum of model durations across matching spans."""
        return sum(
            r.model_seconds for r in self.spans(name, **labels)
            if r.model_seconds is not None
        )

    def wall_seconds(self, name: str, **labels: object) -> float:
        return sum(
            r.wall_seconds for r in self.spans(name, **labels)
            if r.wall_seconds is not None
        )

    def totals(self) -> dict[str, dict[str, float]]:
        """Per-name aggregates: span count, wall and model second sums."""
        out: dict[str, dict[str, float]] = {}
        for r in self.records:
            agg = out.setdefault(
                r.name, {"count": 0, "wall_seconds": 0.0, "model_seconds": 0.0}
            )
            agg["count"] += 1
            if r.wall_seconds is not None:
                agg["wall_seconds"] += r.wall_seconds
            if r.model_seconds is not None:
                agg["model_seconds"] += r.model_seconds
        return {name: out[name] for name in sorted(out)}

    # -- rendering -----------------------------------------------------------

    def report(self) -> str:
        """Deterministic text table of the per-name aggregates."""
        from repro.perf.report import format_table, human_time

        rows = [
            (
                name,
                str(int(agg["count"])),
                human_time(agg["wall_seconds"]) if agg["wall_seconds"] else "-",
                human_time(agg["model_seconds"]) if agg["model_seconds"] else "-",
            )
            for name, agg in self.totals().items()
        ]
        return format_table(
            ["span", "count", "wall", "model"], rows, title="profile"
        )
