"""Declarative SLOs with multi-window burn-rate alerts, on modeled time.

An :class:`SloPolicy` states the service promise — "``latency_percentile``
of requests finish within ``latency_target_s``, and no more than
``error_budget`` of all requests may be *bad*" — where a request is bad
when it was rejected, failed, or finished slower than the target.  The
monitor evaluates the promise over a replayed request stream on the
**virtual clock**: everything here is a pure function of the per-request
records, so the ``slo`` section a load replay emits can be recomputed
bit-for-bit by :func:`repro.serve.loadgen.validate_load_report` and is
byte-identical across host worker counts.

Burn rate is the classic SRE quantity: the fraction of requests that
were bad inside a trailing window, divided by the error budget.  A burn
rate of 1.0 means the service is consuming budget exactly as fast as the
SLO allows; 10 means ten times too fast.  Each :class:`BurnWindow` pairs
a long window (significance — enough samples to mean something) with a
short window (recency — the problem is still happening *now*); an alert
**fires** when both windows burn at or above the threshold and
**resolves** when either drops back below it.  Fired/resolved alert
pairs are the observable a chaos drill asserts on: capacity drops, the
alert fires; the breaker quarantines the offender, latencies recover,
the alert resolves.

Windows here are *modeled* seconds — a deterministic load replay spans
milliseconds of model time, so the defaults are sized for that scale
and every knob is configurable (CLI: ``repro loadgen --slo-target ...``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError, ServeError

__all__ = [
    "BurnWindow",
    "SloPolicy",
    "SloAlert",
    "evaluate_slo",
    "recompute_slo",
    "SLO_SCHEMA",
]

#: schema tag stamped into every emitted ``slo`` section.
SLO_SCHEMA = "repro.obs.slo/v1"


@dataclass(frozen=True)
class BurnWindow:
    """One long/short window pair with its firing threshold."""

    #: trailing long window (modeled seconds) — significance
    long_s: float
    #: trailing short window (modeled seconds) — recency
    short_s: float
    #: burn-rate multiple at/above which the alert fires
    threshold: float

    def __post_init__(self) -> None:
        if self.long_s <= 0 or self.short_s <= 0:
            raise ConfigError("burn windows must be > 0 modeled seconds")
        if self.short_s > self.long_s:
            raise ConfigError(
                f"short window {self.short_s} must not exceed long window "
                f"{self.long_s}"
            )
        if self.threshold <= 0:
            raise ConfigError(f"threshold must be > 0, got {self.threshold}")

    def to_dict(self) -> dict:
        return {
            "long_s": self.long_s,
            "short_s": self.short_s,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class SloPolicy:
    """A latency-percentile / error-budget service-level objective."""

    #: a completed request is *good* iff ``latency_s <= latency_target_s``
    latency_target_s: float = 1e-3
    #: the percentile the target speaks about (reported, and checked
    #: against the stream's overall outcome)
    latency_percentile: float = 99.0
    #: tolerated bad fraction of all requests (the error budget)
    error_budget: float = 0.01
    #: burn-rate alert windows (evaluated independently, in order)
    windows: Tuple[BurnWindow, ...] = (
        BurnWindow(long_s=20e-3, short_s=2.5e-3, threshold=10.0),
        BurnWindow(long_s=80e-3, short_s=10e-3, threshold=5.0),
    )

    def __post_init__(self) -> None:
        if self.latency_target_s <= 0:
            raise ConfigError(
                f"latency_target_s must be > 0, got {self.latency_target_s}"
            )
        if not 0 < self.latency_percentile <= 100:
            raise ConfigError(
                f"latency_percentile must be in (0, 100], got "
                f"{self.latency_percentile}"
            )
        if not 0 < self.error_budget < 1:
            raise ConfigError(
                f"error_budget must be in (0, 1), got {self.error_budget}"
            )
        if not self.windows:
            raise ConfigError("an SloPolicy needs at least one BurnWindow")

    def to_dict(self) -> dict:
        return {
            "latency_target_s": self.latency_target_s,
            "latency_percentile": self.latency_percentile,
            "error_budget": self.error_budget,
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SloPolicy":
        return cls(
            latency_target_s=float(data["latency_target_s"]),
            latency_percentile=float(data["latency_percentile"]),
            error_budget=float(data["error_budget"]),
            windows=tuple(
                BurnWindow(
                    long_s=float(w["long_s"]),
                    short_s=float(w["short_s"]),
                    threshold=float(w["threshold"]),
                )
                for w in data["windows"]
            ),
        )


@dataclass
class SloAlert:
    """One fire (and optional resolve) of a burn-rate alert."""

    window: BurnWindow
    fired_t_s: float
    burn_at_fire: float
    resolved_t_s: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "window": self.window.to_dict(),
            "fired_t_s": self.fired_t_s,
            "burn_at_fire": self.burn_at_fire,
            "resolved_t_s": self.resolved_t_s,
        }


@dataclass
class _SloSample:
    t_s: float
    bad: bool


def _samples_from_records(
    records: Sequence[Mapping], policy: SloPolicy
) -> List[_SloSample]:
    """Project request records onto the SLO event stream.

    A request lands on the timeline at its terminal instant —
    ``completion_s`` for completed requests, ``arrival_s`` for rejected
    ones (a rejection is decided at admission).  Bad = rejected, or
    slower than the latency target.  The stream is sorted by
    ``(t_s, record order)`` so identical timestamps keep a stable order.
    """
    samples = []
    for i, rec in enumerate(records):
        if rec.get("record", "request") != "request":
            continue
        if rec["status"] == "ok":
            t = rec["completion_s"]
            bad = rec["latency_s"] > policy.latency_target_s
        else:
            t = rec["arrival_s"]
            bad = True
        samples.append((t, i, _SloSample(t_s=t, bad=bad)))
    samples.sort(key=lambda item: (item[0], item[1]))
    return [s for _, _, s in samples]


def _burn(samples: Sequence[_SloSample], upto: int, t: float, window_s: float,
          budget: float) -> float:
    """Burn rate over ``(t - window_s, t]`` using samples[:upto + 1]."""
    total = bad = 0
    lo = t - window_s
    for i in range(upto, -1, -1):
        s = samples[i]
        if s.t_s <= lo:
            break
        total += 1
        if s.bad:
            bad += 1
    if total == 0:
        return 0.0
    return (bad / total) / budget


def evaluate_slo(records: Sequence[Mapping], policy: SloPolicy) -> dict:
    """Evaluate a policy over per-request records; returns the ``slo`` doc.

    Pure and deterministic: same records + same policy → byte-identical
    document (the property ``validate_load_report`` leans on).  The
    alert state machine advances once per sample, in timeline order:
    for each :class:`BurnWindow`, the alert fires when both the long-
    and short-window burn rates sit at/above the threshold, and resolves
    at the first later sample where either falls below it.
    """
    samples = _samples_from_records(records, policy)
    n = len(samples)
    bad_total = sum(1 for s in samples if s.bad)
    bad_fraction = bad_total / n if n else 0.0

    alerts: List[SloAlert] = []
    active: List[Optional[SloAlert]] = [None] * len(policy.windows)
    for i, s in enumerate(samples):
        for w_idx, window in enumerate(policy.windows):
            long_burn = _burn(samples, i, s.t_s, window.long_s, policy.error_budget)
            short_burn = _burn(samples, i, s.t_s, window.short_s, policy.error_budget)
            firing = (
                long_burn >= window.threshold and short_burn >= window.threshold
            )
            current = active[w_idx]
            if firing and current is None:
                alert = SloAlert(
                    window=window, fired_t_s=s.t_s, burn_at_fire=long_burn
                )
                alerts.append(alert)
                active[w_idx] = alert
            elif not firing and current is not None:
                current.resolved_t_s = s.t_s
                active[w_idx] = None

    # The achieved percentile latency, for the report reader (nearest
    # rank over completed requests; 0.0 when none completed).
    ok_latencies = sorted(
        rec["latency_s"]
        for rec in records
        if rec.get("record", "request") == "request" and rec["status"] == "ok"
    )
    if ok_latencies:
        rank = max(
            1, math.ceil(policy.latency_percentile / 100.0 * len(ok_latencies))
        )
        achieved = ok_latencies[rank - 1]
    else:
        achieved = 0.0

    return {
        "schema": SLO_SCHEMA,
        "policy": policy.to_dict(),
        "requests": n,
        "good": n - bad_total,
        "bad": bad_total,
        "bad_fraction": bad_fraction,
        "budget_consumed": bad_fraction / policy.error_budget,
        "met": bad_fraction <= policy.error_budget,
        "achieved_latency_s": achieved,
        "alerts_fired": len(alerts),
        "alerts_resolved": sum(1 for a in alerts if a.resolved_t_s is not None),
        "alerts": [a.to_dict() for a in alerts],
    }


def recompute_slo(records: Sequence[Mapping], slo_doc: Mapping) -> dict:
    """Recompute an emitted ``slo`` section from the request records.

    Rebuilds the policy from the document itself and re-runs
    :func:`evaluate_slo`; raises :class:`~repro.errors.ServeError` when
    the recomputation disagrees with the document on any field — the
    check a validator needs to trust an ``slo`` section it did not
    produce.  Returns the recomputed document.
    """
    if slo_doc.get("schema") != SLO_SCHEMA:
        raise ServeError(
            f"unknown slo schema: {slo_doc.get('schema')!r} "
            f"(expected {SLO_SCHEMA!r})"
        )
    try:
        policy = SloPolicy.from_dict(slo_doc["policy"])
    except (KeyError, TypeError, ValueError, ConfigError) as exc:
        raise ServeError(f"slo section has a malformed policy: {exc}") from exc
    recomputed = evaluate_slo(records, policy)
    if recomputed != dict(slo_doc):
        diffs = [
            key
            for key in set(recomputed) | set(slo_doc)
            if recomputed.get(key) != slo_doc.get(key)
        ]
        raise ServeError(
            f"slo section disagrees with recomputation on {sorted(diffs)}"
        )
    return recomputed
