"""Structured event log: the *why* behind the metric curves.

Counters say a run's healthy capacity dropped; they cannot say which
breaker opened, which launch the watchdog declared dead, or when the
serve layer started routing batches to the CPU.  The :class:`EventLog`
is the bounded, deterministic record of those decisions: the health,
resilience, scheduler, and serve layers publish **typed** events into
the log attached to a :class:`~repro.obs.telemetry.RunTelemetry`, and
the exporters render them as JSONL (schema ``repro.obs.events/v1``) and
as instant-event annotations on the Chrome trace — so a chaos drill's
trace shows *why* capacity dropped, not just that it did.

Determinism contract: events carry **modeled** timestamps (never wall
time) and a monotonically increasing sequence number assigned at
publish; every publisher sits on the host side of the host-parallel
split, so a ``workers=2`` run publishes the byte-identical event stream
a sequential run does (pinned in ``tests/test_obs_events.py``).

The log is bounded (``capacity`` events, oldest dropped first) so a
long-lived service cannot grow it without limit; drops are counted and
surfaced in the header rather than silent.

Event kinds (the closed vocabulary — publishing anything else raises a
typed :class:`~repro.errors.TelemetryError`):

===================  ====================================================
kind                 published by / meaning
===================  ====================================================
``breaker``          :class:`~repro.pim.health.FleetHealth` — a circuit
                     breaker changed state (attrs: ``dpu``, ``old``,
                     ``new``)
``watchdog``         :class:`~repro.pim.scheduler.BatchScheduler` — a
                     launch was declared stalled by watchdog-deadline
                     expiry (attrs: ``dpu``, ``round``)
``journal_replay``   scheduler resume path — a journaled round was
                     spliced in instead of executed (attrs: ``round``,
                     ``pairs``)
``fallback``         :class:`~repro.serve.dispatcher.BatchDispatcher` —
                     CPU fallback engaged/disengaged (attrs: ``state``
                     ``"active"``/``"recovered"``, ``healthy_fraction``)
``shed``             :class:`~repro.serve.service.AlignmentService` — a
                     lower-priority request was shed under overload
                     (attrs: ``request``, ``priority``, ``pairs``)
``deadline``         service — a request missed its modeled deadline
                     (attrs: ``request``, ``deadline_s``)
``slo_alert``        :mod:`repro.obs.slo` — a burn-rate alert fired or
                     resolved (attrs: ``state`` ``"fire"``/``"resolve"``,
                     ``window_s``, ``burn``)
``rebalance``        :class:`~repro.pim.fleet.FleetCoordinator` — the
                     active shard set changed and rounds were rebalanced
                     (attrs: ``active``, ``shards``, ``excluded``)
``campaign_cell``    :func:`~repro.qa.campaign.run_campaign` — one
                     ablation x fault-grid cell finished (attrs:
                     ``ablation``, ``fault_point``, ``oracle_agreement``,
                     ``total_seconds``)
``campaign_done``    campaign runner — the full grid completed (attrs:
                     ``cells``, ``ok``)
``net_drop``         :class:`~repro.pim.transport.ShardTransport` — a
                     transport envelope was lost on a link (attrs:
                     ``round``, ``shard``, ``direction``, ``attempt``)
``net_redeliver``    transport — an envelope was retransmitted after a
                     modeled link timeout (attrs: ``round``, ``shard``,
                     ``direction``, ``attempt``, ``backoff_s``)
``net_partition``    transport — a delivery attempt was blocked by an
                     active partition window (attrs: ``round``,
                     ``shard``, ``direction``, ``until_s``)
``steal``            transport/fleet — an in-flight round was hedged
                     onto another shard after its link timed out
                     (attrs: ``round``, ``from_shard``, ``to_shard``)
===================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Union

from repro.errors import ConfigError, TelemetryError

__all__ = [
    "Event",
    "EventLog",
    "EVENT_KINDS",
    "EVENTS_SCHEMA",
    "BREAKER",
    "WATCHDOG",
    "JOURNAL_REPLAY",
    "FALLBACK",
    "SHED",
    "DEADLINE",
    "SLO_ALERT",
    "REBALANCE",
    "CAMPAIGN_CELL",
    "CAMPAIGN_DONE",
    "NET_DROP",
    "NET_REDELIVER",
    "NET_PARTITION",
    "STEAL",
    "validate_event_log",
]

#: schema tag stamped into the JSONL header.
EVENTS_SCHEMA = "repro.obs.events/v1"

BREAKER = "breaker"
WATCHDOG = "watchdog"
JOURNAL_REPLAY = "journal_replay"
FALLBACK = "fallback"
SHED = "shed"
DEADLINE = "deadline"
SLO_ALERT = "slo_alert"
REBALANCE = "rebalance"
CAMPAIGN_CELL = "campaign_cell"
CAMPAIGN_DONE = "campaign_done"
NET_DROP = "net_drop"
NET_REDELIVER = "net_redeliver"
NET_PARTITION = "net_partition"
STEAL = "steal"

#: the closed event vocabulary — the "typed" in "typed event log".
EVENT_KINDS = frozenset(
    {
        BREAKER,
        WATCHDOG,
        JOURNAL_REPLAY,
        FALLBACK,
        SHED,
        DEADLINE,
        SLO_ALERT,
        REBALANCE,
        CAMPAIGN_CELL,
        CAMPAIGN_DONE,
        NET_DROP,
        NET_REDELIVER,
        NET_PARTITION,
        STEAL,
    }
)

#: attribute values may only be JSON scalars (schema stability).
_ATTR_TYPES = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class Event:
    """One published event: modeled time, kind, sorted scalar attrs."""

    seq: int
    t_s: float
    kind: str
    attrs: tuple  # tuple[tuple[str, scalar], ...], sorted by key

    def to_dict(self) -> dict:
        return {
            "record": "event",
            "seq": self.seq,
            "t_s": self.t_s,
            "kind": self.kind,
            "attrs": {k: v for k, v in self.attrs},
        }


class EventLog:
    """Bounded, append-only, deterministic event record.

    ``publish`` validates the kind against :data:`EVENT_KINDS` and the
    attribute values against the JSON-scalar contract, assigns the next
    sequence number, and appends.  Past ``capacity`` events the oldest
    entry is dropped (and counted) — sequence numbers keep increasing,
    so a reader can tell a truncated log from a complete one.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: List[Event] = []
        self._next_seq = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    # -- publishing --------------------------------------------------------

    def publish(self, kind: str, t_s: float, **attrs: object) -> Event:
        """Append one typed event at modeled time ``t_s``."""
        if kind not in EVENT_KINDS:
            raise TelemetryError(
                f"unknown event kind {kind!r}; known kinds: "
                f"{sorted(EVENT_KINDS)}"
            )
        if t_s < 0:
            raise TelemetryError(f"event time must be >= 0, got {t_s}")
        for key, value in attrs.items():
            if not isinstance(value, _ATTR_TYPES):
                raise TelemetryError(
                    f"event attr {key!r} must be a JSON scalar, "
                    f"got {type(value).__name__}"
                )
        event = Event(
            seq=self._next_seq,
            t_s=float(t_s),
            kind=kind,
            attrs=tuple(sorted((str(k), v) for k, v in attrs.items())),
        )
        self._next_seq += 1
        self._events.append(event)
        if len(self._events) > self.capacity:
            self._events.pop(0)
            self.dropped += 1
        return event

    # -- queries -----------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Events in publish order, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        if kind not in EVENT_KINDS:
            raise TelemetryError(f"unknown event kind {kind!r}")
        return [e for e in self._events if e.kind == kind]

    def kinds_seen(self) -> dict:
        """Event count per kind (sorted, for summaries)."""
        out: dict = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return {k: out[k] for k in sorted(out)}

    # -- documents ---------------------------------------------------------

    def header(self) -> dict:
        return {
            "record": "header",
            "schema": EVENTS_SCHEMA,
            "capacity": self.capacity,
            "events": len(self._events),
            "dropped": self.dropped,
            "kinds": self.kinds_seen(),
        }

    def to_records(self) -> List[dict]:
        return [self.header()] + [e.to_dict() for e in self._events]

    def to_jsonl(self) -> str:
        return (
            "\n".join(json.dumps(r, sort_keys=True) for r in self.to_records())
            + "\n"
        )

    def write(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_jsonl(), encoding="utf-8")


def validate_event_log(
    source: Union[str, Iterable[Mapping]],
) -> dict:
    """Check an event-log JSONL document; returns its header.

    Verifies the header schema, that every event record carries a known
    kind, that sequence numbers strictly increase, and that timestamps
    are non-negative.  Accepts a path or pre-parsed records.
    """
    from pathlib import Path

    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
        try:
            records = [json.loads(line) for line in text.splitlines() if line]
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"event log is not valid JSONL: {exc}") from exc
    else:
        records = list(source)
    if not records:
        raise TelemetryError("event log needs at least a header")
    header, *body = records
    if header.get("record") != "header" or header.get("schema") != EVENTS_SCHEMA:
        raise TelemetryError(
            f"bad header: expected schema {EVENTS_SCHEMA!r}, got {header!r}"
        )
    if header.get("events") != len(body):
        raise TelemetryError(
            f"header says {header.get('events')!r} events, found {len(body)}"
        )
    last_seq = -1
    for i, rec in enumerate(body):
        where = f"event[{i}]"
        if rec.get("record") != "event":
            raise TelemetryError(f"{where}: not an event record: {rec!r}")
        if rec.get("kind") not in EVENT_KINDS:
            raise TelemetryError(f"{where}: unknown kind {rec.get('kind')!r}")
        seq = rec.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            raise TelemetryError(
                f"{where}: seq {seq!r} does not increase past {last_seq}"
            )
        last_seq = seq
        t = rec.get("t_s")
        if not isinstance(t, (int, float)) or t < 0:
            raise TelemetryError(f"{where}: t_s must be a number >= 0")
        if not isinstance(rec.get("attrs"), dict):
            raise TelemetryError(f"{where}: attrs must be an object")
    return header
