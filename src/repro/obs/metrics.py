"""Run-level metrics: labeled counters, gauges, and histograms.

A dependency-free miniature of the Prometheus client-library data model,
sized for the simulator's needs:

* a :class:`MetricsRegistry` owns metric *families* (one per metric
  name); each family owns labeled *series* (one per distinct label set);
* rendering is deterministic — families sort by name, series by label
  items — so text and JSON output are directly comparable across runs
  and usable as golden test fixtures;
* a registry can :meth:`~MetricsRegistry.snapshot` itself into plain
  picklable data and :meth:`~MetricsRegistry.merge_snapshot` another
  registry's snapshot back in.  Merging is commutative and associative
  for counters and histograms (sums) and uses ``max`` for gauges, so
  folding worker snapshots in *any* order yields the same registry —
  the property the host-parallel engine's parallel ≡ sequential
  guarantee rests on (workers are merged in ``dpu_id`` order anyway).

Nothing here reads a clock; time belongs to
:class:`repro.obs.profiler.Profiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import CardinalityError, TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_MAX_SERIES_PER_FAMILY",
]

#: log-spaced bucket bounds suited to modeled section times (seconds).
DEFAULT_SECONDS_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0
)

#: default label-cardinality cap per family: generous enough for the
#: fleet-scale labels we legitimately use (per-DPU, per-section, per
#: breaker state — a 2560-DPU fleet stays well under it only via the
#: histogram/summary path, so per-DPU *label* use still fits), but a
#: hard stop against per-request label mistakes.
DEFAULT_MAX_SERIES_PER_FAMILY = 4096

_NAME_OK = set("abcdefghijklmnopqrstuvwxyz_:0123456789")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(
        c not in _NAME_OK for c in name.lower()
    ) or name != name.lower():
        raise TelemetryError(
            f"metric name must be lower_snake_case identifier, got {name!r}"
        )
    return name


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable, sorted form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(v: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


class Counter:
    """Monotonically increasing sum (one labeled series)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-set value (one labeled series); merges via ``max``."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Cumulative-bucket histogram (one labeled series)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Counts as Prometheus renders them: cumulative per ``le``."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


@dataclass
class MetricFamily:
    """All series of one metric name."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    buckets: Optional[tuple[float, ...]] = None  # histograms only
    series: dict = field(default_factory=dict)  # label key -> metric object
    #: label-cardinality cap; creating a series past it raises
    #: :class:`~repro.errors.CardinalityError` instead of growing forever.
    max_series: int = DEFAULT_MAX_SERIES_PER_FAMILY

    def labels(self, **labels: object):
        """The series for ``labels`` (created on first use)."""
        key = _label_key(labels)
        metric = self.series.get(key)
        if metric is None:
            if len(self.series) >= self.max_series:
                raise CardinalityError(
                    f"metric {self.name!r} would exceed its label-cardinality "
                    f"cap of {self.max_series} series; a label is probably "
                    f"carrying unbounded values (offending label set: "
                    f"{dict(key)!r})"
                )
            if self.kind == "counter":
                metric = Counter()
            elif self.kind == "gauge":
                metric = Gauge()
            else:
                metric = Histogram(self.buckets or DEFAULT_SECONDS_BUCKETS)
            self.series[key] = metric
        return metric

    # convenience for the common no-label case -------------------------------
    def inc(self, amount: float = 1.0, **labels: object) -> None:
        self.labels(**labels).inc(amount)

    def set(self, value: float, **labels: object) -> None:
        self.labels(**labels).set(value)

    def observe(self, value: float, **labels: object) -> None:
        self.labels(**labels).observe(value)

    def value(self, **labels: object) -> float:
        """Current value of one series (0 if the series never existed)."""
        metric = self.series.get(_label_key(labels))
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            return metric.sum
        return metric.value


class MetricsRegistry:
    """Ordered collection of metric families with deterministic output.

    ``max_series_per_family`` is the label-cardinality guard: every
    family registered through this registry refuses (with a typed
    :class:`~repro.errors.CardinalityError`) to create more distinct
    label sets than the cap, so a per-request label mistake fails fast
    instead of silently turning the registry into a memory leak.
    """

    def __init__(
        self, max_series_per_family: int = DEFAULT_MAX_SERIES_PER_FAMILY
    ) -> None:
        if max_series_per_family < 1:
            raise TelemetryError(
                f"max_series_per_family must be >= 1, "
                f"got {max_series_per_family}"
            )
        self._families: dict[str, MetricFamily] = {}
        self.max_series_per_family = max_series_per_family

    # -- registration --------------------------------------------------------

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        _check_name(name)
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise TelemetryError(
                    f"metric {name!r} already registered as {fam.kind}, "
                    f"cannot re-register as {kind}"
                )
            return fam
        fam = MetricFamily(
            name=name,
            kind=kind,
            help=help,
            buckets=tuple(buckets) if buckets is not None else None,
            max_series=self.max_series_per_family,
        )
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._register(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._register(name, "gauge", help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS
    ) -> MetricFamily:
        return self._register(name, "histogram", help, buckets=buckets)

    def families(self) -> Iterable[MetricFamily]:
        return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict:
        """Plain picklable data capturing every family and series.

        The format is stable (sorted names / labels) so two registries
        with the same contents produce byte-identical snapshots.
        """
        doc: dict = {"schema": "repro.obs.metrics/v1", "families": []}
        for fam in self.families():
            entry: dict = {
                "name": fam.name,
                "kind": fam.kind,
                "help": fam.help,
                "series": [],
            }
            if fam.kind == "histogram":
                entry["buckets"] = list(fam.buckets or DEFAULT_SECONDS_BUCKETS)
            for key in sorted(fam.series):
                metric = fam.series[key]
                s: dict = {"labels": {k: v for k, v in key}}
                if isinstance(metric, Histogram):
                    s["counts"] = list(metric.counts)
                    s["sum"] = metric.sum
                    s["count"] = metric.count
                else:
                    s["value"] = metric.value
                entry["series"].append(s)
            doc["families"].append(entry)
        return doc

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram cells add; gauges keep the max of the two
        values (the only order-independent choice for a "level" metric).
        """
        if snap.get("schema") != "repro.obs.metrics/v1":
            raise TelemetryError(
                f"unknown metrics snapshot schema: {snap.get('schema')!r}"
            )
        for entry in snap["families"]:
            fam = self._register(
                entry["name"],
                entry["kind"],
                entry.get("help", ""),
                buckets=entry.get("buckets"),
            )
            for s in entry["series"]:
                metric = fam.labels(**s["labels"])
                if fam.kind == "histogram":
                    counts = s["counts"]
                    if len(counts) != len(metric.counts):
                        raise TelemetryError(
                            f"histogram {fam.name!r}: bucket count mismatch "
                            f"({len(counts)} vs {len(metric.counts)})"
                        )
                    for i, c in enumerate(counts):
                        metric.counts[i] += c
                    metric.sum += s["sum"]
                    metric.count += s["count"]
                elif fam.kind == "counter":
                    metric.value += s["value"]
                else:  # gauge
                    metric.value = max(metric.value, s["value"])

    def diff(self, before: Mapping) -> dict:
        """What changed since a :meth:`snapshot` — snapshot-shaped delta.

        Counters and histogram cells subtract the earlier values (a
        series absent from ``before`` counts from zero); gauges report
        their *current* value, because a level has no meaningful delta.
        Series and families untouched since ``before`` are omitted, so
        the result is exactly the attribution a bench scenario wants:
        "these counters, moved by this much, during this scenario".
        """
        if before.get("schema") != "repro.obs.metrics/v1":
            raise TelemetryError(
                f"unknown metrics snapshot schema: {before.get('schema')!r}"
            )
        prior: dict = {}
        for entry in before["families"]:
            fam_map = prior.setdefault(entry["name"], {})
            for s in entry["series"]:
                fam_map[_label_key(s["labels"])] = s
        doc: dict = {"schema": "repro.obs.metrics/v1", "families": []}
        for fam in self.families():
            fam_prior = prior.get(fam.name, {})
            entry: dict = {
                "name": fam.name,
                "kind": fam.kind,
                "help": fam.help,
                "series": [],
            }
            if fam.kind == "histogram":
                entry["buckets"] = list(fam.buckets or DEFAULT_SECONDS_BUCKETS)
            for key in sorted(fam.series):
                metric = fam.series[key]
                old = fam_prior.get(key)
                s: dict = {"labels": {k: v for k, v in key}}
                if isinstance(metric, Histogram):
                    old_counts = old["counts"] if old else [0] * len(metric.counts)
                    if len(old_counts) != len(metric.counts):
                        raise TelemetryError(
                            f"histogram {fam.name!r}: bucket count mismatch "
                            f"({len(old_counts)} vs {len(metric.counts)})"
                        )
                    counts = [c - o for c, o in zip(metric.counts, old_counts)]
                    s["counts"] = counts
                    s["sum"] = metric.sum - (old["sum"] if old else 0.0)
                    s["count"] = metric.count - (old["count"] if old else 0)
                    if s["count"] == 0 and not any(counts) and s["sum"] == 0.0:
                        continue
                elif fam.kind == "counter":
                    s["value"] = metric.value - (old["value"] if old else 0.0)
                    if s["value"] == 0.0:
                        continue
                else:  # gauge: a level, not a rate — report where it sits now
                    s["value"] = metric.value
                    if old is not None and old["value"] == metric.value:
                        continue
                entry["series"].append(s)
            if entry["series"]:
                doc["families"].append(entry)
        return doc

    # -- rendering -----------------------------------------------------------

    @staticmethod
    def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
        if not key:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in key)
        return "{" + inner + "}"

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, deterministically ordered."""
        lines: list[str] = []
        for fam in self.families():
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for key in sorted(fam.series):
                metric = fam.series[key]
                if isinstance(metric, Histogram):
                    cumulative = metric.cumulative()
                    bounds = list(metric.buckets) + [float("inf")]
                    for bound, c in zip(bounds, cumulative):
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        bkey = key + (("le", le),)
                        lines.append(
                            f"{fam.name}_bucket{self._render_labels(bkey)} {c}"
                        )
                    lines.append(
                        f"{fam.name}_sum{self._render_labels(key)} "
                        f"{_format_value(metric.sum)}"
                    )
                    lines.append(
                        f"{fam.name}_count{self._render_labels(key)} {metric.count}"
                    )
                else:
                    lines.append(
                        f"{fam.name}{self._render_labels(key)} "
                        f"{_format_value(metric.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """JSON-ready rendering (same stable layout as :meth:`snapshot`)."""
        return self.snapshot()
