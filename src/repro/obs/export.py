"""Telemetry exporters: Prometheus text, JSONL manifests, Chrome traces.

Three disk formats, all deterministic for a given telemetry state:

* :func:`write_prometheus` — the registry in Prometheus text exposition
  format (scrape-ready, diff-able);
* :func:`write_manifest_jsonl` — one JSON object per run plus a summary
  line (the "run manifest" downstream analysis jobs consume);
* :func:`write_chrome_trace` / :func:`to_chrome_trace` — the full run in
  Chrome ``trace_event`` JSON: open the file in ``chrome://tracing`` or
  https://ui.perfetto.dev to see transfer_in → launch → kernel →
  transfer_out on the host lane and, per DPU process, every tasklet's
  fetch/align/metadata/writeback phases laid out in model time.

:func:`validate_chrome_trace` checks the trace_event schema (used by
``make trace-demo`` and the tier-1 tests) and raises
:class:`~repro.errors.TelemetryError` on any malformed event.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Mapping

from repro.errors import TelemetryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import RunTelemetry

__all__ = [
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_manifest_jsonl",
    "write_metrics_json",
    "write_prometheus",
]

#: pid of the host/model-timeline process in exported traces; DPU ``d``
#: becomes pid ``DPU_PID_BASE + d``.
HOST_PID = 0
DPU_PID_BASE = 1
#: synthetic tid carrying the whole-DPU kernel span next to tasklet lanes.
DPU_TOTAL_TID = 999


def _us(seconds: float) -> float:
    return seconds * 1e6


def to_chrome_trace(telemetry: "RunTelemetry") -> dict:
    """Render the telemetry's run segments as a Chrome trace document.

    Every event is a "complete" (``ph: "X"``) event placed on the model
    timeline: host sections on pid 0, each simulated DPU as its own
    process with one thread per tasklet (phase spans from the kernel
    trace, durations = cycles × seconds-per-cycle × the run's sampling
    scale factor) plus a synthetic "kernel total" lane.
    """
    events: list[dict] = []
    seen_pids: dict[int, str] = {HOST_PID: "host"}
    seen_tids: dict[tuple[int, int], str] = {(HOST_PID, 0): "model timeline"}

    for seg in telemetry.segments:
        r = seg.result
        run_args = {"run": seg.index, "kind": seg.kind}
        events.append(
            {
                "name": "run",
                "cat": "host",
                "ph": "X",
                "ts": _us(seg.model_start),
                "dur": _us(r.total_seconds),
                "pid": HOST_PID,
                "tid": 0,
                "args": dict(run_args, num_pairs=r.num_pairs),
            }
        )
        t = seg.model_start
        for name, dur in (
            ("transfer_in", r.transfer_in_seconds),
            ("launch", r.launch_seconds),
            ("kernel", r.kernel_seconds),
            ("transfer_out", r.transfer_out_seconds),
        ):
            events.append(
                {
                    "name": name,
                    "cat": "host",
                    "ph": "X",
                    "ts": _us(t),
                    "dur": _us(dur),
                    "pid": HOST_PID,
                    "tid": 0,
                    "args": dict(run_args),
                }
            )
            t += dur

        kernel_start = seg.kernel_start
        scale = r.scale_factor
        for stats in r.per_dpu:
            pid = DPU_PID_BASE + stats.dpu_id
            seen_pids.setdefault(pid, f"dpu {stats.dpu_id}")
            seen_tids.setdefault((pid, DPU_TOTAL_TID), "kernel total")
            events.append(
                {
                    "name": "dpu_kernel",
                    "cat": "kernel",
                    "ph": "X",
                    "ts": _us(kernel_start),
                    "dur": _us(stats.seconds),
                    "pid": pid,
                    "tid": DPU_TOTAL_TID,
                    "args": dict(
                        run_args,
                        bound=stats.bound,
                        pairs_done=stats.pairs_done,
                    ),
                }
            )
        # Per-tasklet phase spans: each tasklet's events run back to back
        # from the kernel start, in trace order (the kernel is
        # cycle-serial per tasklet, so this is its modeled schedule).
        cursors: dict[tuple[int, int], float] = {}
        for e in seg.trace.events:
            pid = DPU_PID_BASE + e.dpu_id
            seen_pids.setdefault(pid, f"dpu {e.dpu_id}")
            seen_tids.setdefault((pid, e.tasklet_id), f"tasklet {e.tasklet_id}")
            key = (pid, e.tasklet_id)
            start = cursors.get(key, kernel_start)
            dur = e.cycles * seg.seconds_per_cycle * scale
            args = dict(run_args, pair=e.pair_index)
            if e.detail:
                args["detail"] = e.detail
            events.append(
                {
                    "name": e.phase,
                    "cat": "tasklet",
                    "ph": "X",
                    "ts": _us(start),
                    "dur": _us(dur),
                    "pid": pid,
                    "tid": e.tasklet_id,
                    "args": args,
                }
            )
            cursors[key] = start + dur

    # Structured events become instant-event annotations on the host
    # lane: the trace then shows *why* a lane changed shape (a breaker
    # opened, the watchdog tripped, a journaled round was spliced in)
    # right where it happened on the model timeline.
    annotations: list[dict] = []
    for ev in telemetry.events.events():
        annotations.append(
            {
                "name": ev.kind,
                "cat": "annotation",
                "ph": "i",
                "s": "g",  # global scope: draw the line across all lanes
                "ts": _us(ev.t_s),
                "pid": HOST_PID,
                "tid": 0,
                "args": dict({k: v for k, v in ev.attrs}, seq=ev.seq),
            }
        )

    meta: list[dict] = []
    for pid in sorted(seen_pids):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": seen_pids[pid]},
            }
        )
    for pid, tid in sorted(seen_tids):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": seen_tids[(pid, tid)]},
            }
        )
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], e["name"]))
    # annotations keep publish order (ts ties broken by seq already).
    return {
        "traceEvents": meta + events + annotations,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "runs": len(telemetry.segments),
            "model_seconds_total": telemetry.model_seconds_total,
            "annotations": len(annotations),
        },
    }


def validate_chrome_trace(doc: Mapping) -> int:
    """Validate a Chrome ``trace_event`` document; returns the number of
    duration ("X") events.  Raises :class:`TelemetryError` on schema
    violations."""
    problems: list[str] = []
    if not isinstance(doc, Mapping):
        raise TelemetryError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise TelemetryError("trace document must have a 'traceEvents' list")
    duration_events = 0
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("X", "M", "B", "E", "i"):
            problems.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(e.get("name"), str) or not e["name"]:
            problems.append(f"{where}: missing name")
        for k in ("pid", "tid"):
            if not isinstance(e.get(k), int):
                problems.append(f"{where}: {k} must be an integer")
        if ph == "X":
            duration_events += 1
            ts, dur = e.get("ts"), e.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a number >= 0")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a number >= 0")
        elif ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                problems.append(f"{where}: unknown metadata event {e.get('name')!r}")
            elif not isinstance(e.get("args", {}).get("name"), str):
                problems.append(f"{where}: metadata event needs args.name")
        if "args" in e and not isinstance(e["args"], dict):
            problems.append(f"{where}: args must be an object")
    if problems:
        raise TelemetryError(
            "invalid Chrome trace:\n  " + "\n  ".join(problems[:20])
        )
    return duration_events


def write_chrome_trace(path: str, telemetry: "RunTelemetry") -> dict:
    """Validate and write the Chrome trace; returns the document."""
    doc = to_chrome_trace(telemetry)
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def write_prometheus(path: str, registry: "MetricsRegistry") -> None:
    with open(path, "w") as fh:
        fh.write(registry.render_prometheus())


def write_manifest_jsonl(path: str, telemetry: "RunTelemetry") -> None:
    """One JSON line per run, then a summary line with the metrics."""
    rows = telemetry.run_rows()
    rows.append(
        {
            "type": "summary",
            "runs": len(telemetry.segments),
            "model_seconds_total": telemetry.model_seconds_total,
            "metrics": telemetry.registry.to_dict(),
        }
    )
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")


def write_events_jsonl(path: str, telemetry: "RunTelemetry") -> None:
    """The telemetry's structured event log as validated JSONL."""
    from repro.obs.events import validate_event_log

    records = telemetry.events.to_records()
    validate_event_log(records)
    with open(path, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")


def write_metrics_json(path: str, telemetry: "RunTelemetry") -> None:
    with open(path, "w") as fh:
        json.dump(telemetry.metrics_document(), fh, indent=1, sort_keys=True)
        fh.write("\n")
