"""Unified telemetry for the PIM stack: metrics, profiling, exporters.

The paper's headline numbers are *attribution* claims — how much of a
run is kernel vs transfer vs launch, and how each kernel splits across
fetch/align/metadata/writeback.  ``repro.obs`` makes that attribution a
first-class, exportable artifact instead of something recomputed by
hand:

* :class:`~repro.obs.metrics.MetricsRegistry` — named counters / gauges
  / histograms with labels, deterministic Prometheus-text and JSON
  rendering, and picklable snapshots that merge deterministically
  (workers on the host-parallel path report through these);
* :class:`~repro.obs.profiler.Profiler` — nested spans over both host
  wall time and modeled time;
* :class:`~repro.obs.telemetry.RunTelemetry` — binds both to a
  :class:`~repro.pim.system.PimSystem`, collects per-run kernel traces,
  and enforces the reconciliation invariant (span totals == the timing
  model's ``total_seconds``);
* :mod:`~repro.obs.export` — Prometheus text, JSONL run manifests, and
  Chrome ``trace_event`` JSON for ``chrome://tracing`` / Perfetto.

See ``docs/observability.md`` for the metrics catalog and a worked
example.
"""

from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_manifest_jsonl,
    write_metrics_json,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.profiler import Profiler, SpanRecord
from repro.obs.telemetry import SECTIONS, RunSegment, RunTelemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "Profiler",
    "SpanRecord",
    "RunSegment",
    "RunTelemetry",
    "SECTIONS",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_manifest_jsonl",
    "write_metrics_json",
    "write_prometheus",
]
