"""Unified telemetry for the PIM stack: metrics, profiling, exporters.

The paper's headline numbers are *attribution* claims — how much of a
run is kernel vs transfer vs launch, and how each kernel splits across
fetch/align/metadata/writeback.  ``repro.obs`` makes that attribution a
first-class, exportable artifact instead of something recomputed by
hand:

* :class:`~repro.obs.metrics.MetricsRegistry` — named counters / gauges
  / histograms with labels, deterministic Prometheus-text and JSON
  rendering, and picklable snapshots that merge deterministically
  (workers on the host-parallel path report through these);
* :class:`~repro.obs.profiler.Profiler` — nested spans over both host
  wall time and modeled time;
* :class:`~repro.obs.telemetry.RunTelemetry` — binds both to a
  :class:`~repro.pim.system.PimSystem`, collects per-run kernel traces,
  and enforces the reconciliation invariant (span totals == the timing
  model's ``total_seconds``);
* :mod:`~repro.obs.export` — Prometheus text, JSONL run manifests, and
  Chrome ``trace_event`` JSON for ``chrome://tracing`` / Perfetto;
* :class:`~repro.obs.events.EventLog` — the bounded, deterministic
  structured event log (breaker transitions, watchdog trips, journal
  replays, fallback edges, shed/deadline decisions, SLO alerts);
* :mod:`~repro.obs.slo` — declarative latency/error-budget SLOs with
  multi-window burn-rate alerting on the virtual clock;
* :mod:`~repro.obs.bench` — the perf ledger: registered scenarios,
  schema-versioned ``BENCH_ledger.json`` records, and the
  ``repro bench compare`` regression gate.

See ``docs/observability.md`` for the metrics catalog and
``docs/perf-ledger.md`` for the ledger workflow.
"""

from repro.obs.bench import (
    LEDGER_SCHEMA,
    GateFailure,
    ScenarioResult,
    append_records,
    compare,
    config_fingerprint,
    latest_by_scenario,
    load_ledger,
    run_scenarios,
    scenario,
    scenario_names,
    validate_record,
)
from repro.obs.events import (
    EVENT_KINDS,
    EVENTS_SCHEMA,
    Event,
    EventLog,
    validate_event_log,
)
from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
    write_manifest_jsonl,
    write_metrics_json,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_MAX_SERIES_PER_FAMILY,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.profiler import Profiler, SpanRecord
from repro.obs.slo import (
    SLO_SCHEMA,
    BurnWindow,
    SloAlert,
    SloPolicy,
    evaluate_slo,
    recompute_slo,
)
from repro.obs.telemetry import SECTIONS, RunSegment, RunTelemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_MAX_SERIES_PER_FAMILY",
    "Event",
    "EventLog",
    "EVENT_KINDS",
    "EVENTS_SCHEMA",
    "validate_event_log",
    "BurnWindow",
    "SloAlert",
    "SloPolicy",
    "SLO_SCHEMA",
    "evaluate_slo",
    "recompute_slo",
    "LEDGER_SCHEMA",
    "GateFailure",
    "ScenarioResult",
    "append_records",
    "compare",
    "config_fingerprint",
    "latest_by_scenario",
    "load_ledger",
    "run_scenarios",
    "scenario",
    "scenario_names",
    "validate_record",
    "Profiler",
    "SpanRecord",
    "RunSegment",
    "RunTelemetry",
    "SECTIONS",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_manifest_jsonl",
    "write_metrics_json",
    "write_prometheus",
]
