"""Run telemetry: ties the metrics registry, profiler, and kernel traces
to the PIM execution path.

One :class:`RunTelemetry` accompanies a :class:`~repro.pim.system.PimSystem`
(and any :class:`~repro.pim.scheduler.BatchScheduler` above it) for the
lifetime of a workload.  The system calls back into it:

* :meth:`absorb_worker` — after the deterministic ``dpu_id``-ordered
  merge, each worker's picklable metrics snapshot is folded into the
  host registry (parallel ≡ sequential: snapshots are produced by the
  same per-DPU code on both paths and merged in the same order);
* :meth:`on_run` — after each ``align``/``model_run``, the run's
  sections are laid out on the **model timeline** (transfer_in →
  launch → kernel (per-DPU children) → transfer_out), counters and
  histograms are updated, and the run's merged
  :class:`~repro.pim.trace.KernelTrace` is kept as a
  :class:`RunSegment` for the Chrome-trace exporter.

Successive runs (e.g. scheduler rounds) stack serially on the model
timeline, so a multi-round workload opens in Perfetto as one
contiguous picture.

The **reconciliation invariant** (:meth:`RunTelemetry.reconcile`): for
every run, the profiler's per-section model spans must sum to the
timing model's ``total_seconds``, and the kernel span must equal
``kernel_seconds`` — the spans are the attribution the paper's
Total-vs-Kernel claims rest on, so they must never drift from the
numbers the model reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import TelemetryError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import Profiler
from repro.pim.trace import KernelTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pim.system import PimRunResult

__all__ = ["RunSegment", "RunTelemetry", "SECTIONS"]

#: the model-timeline sections of one run, in execution order.
SECTIONS = ("transfer_in", "launch", "kernel", "transfer_out")


@dataclass
class RunSegment:
    """One run's placement on the model timeline plus its kernel trace."""

    index: int
    kind: str  # "align" | "model_run"
    result: "PimRunResult"
    trace: KernelTrace
    model_start: float
    #: seconds per DPU cycle (converts trace event cycles to seconds).
    seconds_per_cycle: float

    @property
    def kernel_start(self) -> float:
        r = self.result
        return self.model_start + r.transfer_in_seconds + r.launch_seconds


class RunTelemetry:
    """Metrics + profiler + trace segments for one workload."""

    def __init__(self, events: Optional[EventLog] = None) -> None:
        self.registry = MetricsRegistry()
        self.profiler = Profiler()
        #: structured decision record (breaker flips, watchdog trips,
        #: journal replays, ...) — publishers all sit host-side, so the
        #: stream is byte-identical across worker counts.
        self.events = events if events is not None else EventLog()
        self.segments: list[RunSegment] = []
        self._cursor = 0.0  # model-time offset of the next run

        reg = self.registry
        self._runs = reg.counter("pim_runs_total", "kernel launches by entry point")
        self._pairs = reg.counter("pim_pairs_total", "modeled workload pairs")
        self._pairs_sim = reg.counter(
            "pim_pairs_simulated_total", "functionally simulated pairs"
        )
        self._model_seconds = reg.counter(
            "pim_model_seconds_total", "modeled seconds by run section"
        )
        self._model_bytes = reg.counter(
            "pim_model_bytes_total", "modeled full-system host transfer bytes"
        )
        self._dpu_kernel_seconds = reg.histogram(
            "pim_dpu_kernel_seconds", "per-DPU modeled kernel seconds"
        )

    # -- ingest --------------------------------------------------------------

    def absorb_worker(self, snapshot: Optional[dict]) -> None:
        """Merge one worker's picklable metrics snapshot (may be None)."""
        if snapshot is not None:
            self.registry.merge_snapshot(snapshot)

    def on_run(
        self,
        kind: str,
        result: "PimRunResult",
        trace: Optional[KernelTrace] = None,
        seconds_per_cycle: float = 0.0,
    ) -> RunSegment:
        """Account one completed run and advance the model timeline."""
        index = len(self.segments)
        start = self._cursor
        prof = self.profiler
        durations = {
            "transfer_in": result.transfer_in_seconds,
            "launch": result.launch_seconds,
            "kernel": result.kernel_seconds,
            "transfer_out": result.transfer_out_seconds,
        }
        with prof.model_span(
            "run", start, result.total_seconds, kind=kind, run=index
        ):
            t = start
            for section in SECTIONS:
                dur = durations[section]
                if section == "kernel":
                    with prof.model_span(section, t, dur, run=index):
                        for stats in result.per_dpu:
                            prof.add_model_span(
                                "dpu_kernel",
                                t,
                                stats.seconds,
                                run=index,
                                dpu=stats.dpu_id,
                            )
                else:
                    prof.add_model_span(section, t, dur, run=index)
                t += dur

        self._runs.inc(kind=kind)
        self._pairs.inc(result.num_pairs, kind=kind)
        self._pairs_sim.inc(result.pairs_simulated, kind=kind)
        for section in SECTIONS:
            self._model_seconds.inc(durations[section], section=section)
        self._model_bytes.inc(result.bytes_in, direction="to_dpu")
        self._model_bytes.inc(result.bytes_out, direction="from_dpu")
        for stats in result.per_dpu:
            self._dpu_kernel_seconds.observe(stats.seconds)

        segment = RunSegment(
            index=index,
            kind=kind,
            result=result,
            trace=trace if trace is not None else KernelTrace(),
            model_start=start,
            seconds_per_cycle=seconds_per_cycle,
        )
        self.segments.append(segment)
        self._cursor += result.total_seconds
        return segment

    # -- invariants ----------------------------------------------------------

    @property
    def model_seconds_total(self) -> float:
        """Model time covered by all recorded runs."""
        return self._cursor

    def reconcile(self, rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> dict:
        """Check span totals against the timing model; raise on drift.

        For every run: the four section spans must sum to the run's
        ``total_seconds``, and the kernel span must equal
        ``kernel_seconds``.  Across runs, the ``run`` spans must sum to
        the timeline cursor.  Returns a summary dict on success.
        """
        problems: list[str] = []
        prof = self.profiler
        for seg in self.segments:
            sections = sum(
                prof.model_seconds(name, run=seg.index) for name in SECTIONS
            )
            total = seg.result.total_seconds
            if not math.isclose(sections, total, rel_tol=rel_tol, abs_tol=abs_tol):
                problems.append(
                    f"run {seg.index}: section spans sum to {sections!r} but "
                    f"the timing model reports total_seconds={total!r}"
                )
            kernel = prof.model_seconds("kernel", run=seg.index)
            if not math.isclose(
                kernel, seg.result.kernel_seconds, rel_tol=rel_tol, abs_tol=abs_tol
            ):
                problems.append(
                    f"run {seg.index}: kernel span {kernel!r} != "
                    f"kernel_seconds {seg.result.kernel_seconds!r}"
                )
        run_total = prof.model_seconds("run")
        if not math.isclose(
            run_total, self._cursor, rel_tol=rel_tol, abs_tol=abs_tol
        ):
            problems.append(
                f"run spans sum to {run_total!r} but the model timeline "
                f"cursor is {self._cursor!r}"
            )
        if problems:
            raise TelemetryError(
                "telemetry reconciliation failed:\n  " + "\n  ".join(problems)
            )
        return {
            "runs": len(self.segments),
            "model_seconds": self._cursor,
        }

    # -- documents -----------------------------------------------------------

    def run_rows(self) -> list[dict]:
        """One flat dict per run (JSONL manifest rows)."""
        rows = []
        for seg in self.segments:
            r = seg.result
            rows.append(
                {
                    "type": "run",
                    "index": seg.index,
                    "kind": seg.kind,
                    "model_start": seg.model_start,
                    "num_pairs": r.num_pairs,
                    "pairs_simulated": r.pairs_simulated,
                    "tasklets": r.tasklets,
                    "metadata_policy": r.metadata_policy,
                    "kernel_seconds": r.kernel_seconds,
                    "transfer_in_seconds": r.transfer_in_seconds,
                    "transfer_out_seconds": r.transfer_out_seconds,
                    "launch_seconds": r.launch_seconds,
                    "total_seconds": r.total_seconds,
                    "bytes_in": r.bytes_in,
                    "bytes_out": r.bytes_out,
                    "scale_factor": r.scale_factor,
                    "trace_events": len(seg.trace.events),
                }
            )
        return rows

    def metrics_document(self) -> dict:
        """JSON-ready document: metrics + profile totals + run manifest."""
        return {
            "schema": "repro.obs/v1",
            "model_seconds_total": self.model_seconds_total,
            "runs": self.run_rows(),
            "profile": self.profiler.totals(),
            "metrics": self.registry.to_dict(),
        }
