"""Perf ledger: registered bench scenarios, schema-versioned records,
and a regression gate.

The repo's perf claims used to live in one-off ``benchmarks/bench_*.py``
scripts with ad-hoc output — nothing could prove a PR kept the numbers
an earlier PR won.  This module is the missing spine:

* **scenarios** — benchmark functions registered with the
  :func:`scenario` decorator.  Each runs a pinned-seed workload on the
  **modeled clock** and returns a :class:`ScenarioResult`; gated metrics
  (pairs/sec, modeled seconds, latency percentiles) are pure functions
  of the configuration, so they are bit-stable across machines, worker
  counts, and CPU load.  Wall-clock observations (engine speedups, pool
  scaling) ride along in the non-gated ``info`` dict.
* **ledger** — ``repro bench run`` appends one ``repro.obs.bench/v1``
  record per scenario to ``BENCH_ledger.json`` at the repo root: the
  scenario name, its config and config fingerprint, the gated metrics,
  per-scenario counter attribution (via
  :meth:`~repro.obs.metrics.MetricsRegistry.diff`), plus git-rev and
  host facts for provenance (never gated).
* **gate** — ``repro bench compare`` diffs the latest record per
  scenario against a committed baseline and exits non-zero when a
  gated metric regresses past its threshold (default: >10% modeled
  throughput drop, >10% modeled p99 growth), when a baseline scenario
  is missing from the ledger, or when config fingerprints disagree
  (comparing different configurations is not a regression signal, it
  is a category error — :class:`~repro.errors.LedgerError`).

See ``docs/perf-ledger.md`` for the record schema and a walkthrough of
adding a scenario.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import LedgerError

__all__ = [
    "LEDGER_SCHEMA",
    "ScenarioResult",
    "scenario",
    "scenario_names",
    "run_scenarios",
    "config_fingerprint",
    "make_record",
    "validate_record",
    "load_ledger",
    "append_records",
    "latest_by_scenario",
    "compare",
    "GateFailure",
]

#: schema tag stamped into every ledger record.
LEDGER_SCHEMA = "repro.obs.bench/v1"

#: profiles a scenario must support: ``quick`` is CI-safe on one CPU
#: (seconds, not minutes), ``full`` is the overnight shape.
PROFILES = ("quick", "full")

#: record fields the regression gate reads (everything else — git rev,
#: host facts, wall-clock info — is provenance, never gated).
GATED_FIELDS = (
    "pairs_per_second",
    "total_seconds",
    "kernel_seconds",
    "latency_p50_s",
    "latency_p90_s",
    "latency_p99_s",
)

_REQUIRED_KEYS = frozenset(
    {"schema", "scenario", "profile", "config", "config_fingerprint"}
    | set(GATED_FIELDS)
    | {"git_rev", "host", "counters", "info"}
)


@dataclass
class ScenarioResult:
    """One scenario run's measurements, pre-provenance.

    ``pairs_per_second`` and the modeled seconds are **modeled-clock**
    quantities (deterministic, gated); ``info`` holds wall-clock
    observations and any scenario-specific extras (reported, not
    gated); ``counters`` is the per-scenario counter attribution the
    registry diff produced.
    """

    scenario: str
    config: dict
    pairs_per_second: float
    total_seconds: float
    kernel_seconds: float
    latency_p50_s: float
    latency_p90_s: float
    latency_p99_s: float
    info: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)


_SCENARIOS: Dict[str, Callable[[str], ScenarioResult]] = {}


def scenario(name: str):
    """Register a bench scenario under ``name``.

    The decorated function takes one argument — the profile, ``"quick"``
    or ``"full"`` — and returns a :class:`ScenarioResult`.
    """

    def wrap(fn: Callable[[str], ScenarioResult]):
        if name in _SCENARIOS:
            raise LedgerError(f"scenario {name!r} registered twice")
        _SCENARIOS[name] = fn
        return fn

    return wrap


def scenario_names() -> List[str]:
    """Registered scenario names, sorted (importing the catalog)."""
    import repro.obs.scenarios  # noqa: F401 — registration side effect

    return sorted(_SCENARIOS)


def config_fingerprint(config: Mapping) -> str:
    """sha256 over the canonical JSON of a scenario config."""
    canon = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def counters_from_diff(diff_doc: Mapping) -> dict:
    """Flatten a registry diff into ``{counter_name: total}``.

    Only counter families survive (gauges are levels, histograms are
    distributions — neither sums meaningfully into one attribution
    number); series of one family sum across label sets.
    """
    out: dict = {}
    for fam in diff_doc.get("families", ()):
        if fam.get("kind") != "counter":
            continue
        total = sum(s.get("value", 0.0) for s in fam.get("series", ()))
        if total:
            out[fam["name"]] = total
    return {k: out[k] for k in sorted(out)}


def _git_rev() -> str:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if rev.returncode == 0:
            return rev.stdout.strip()
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        pass
    return "unknown"


def _host_facts() -> dict:
    import os

    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def make_record(result: ScenarioResult, profile: str) -> dict:
    """Stamp a scenario result into a full ``repro.obs.bench/v1`` record."""
    return {
        "schema": LEDGER_SCHEMA,
        "scenario": result.scenario,
        "profile": profile,
        "config": result.config,
        "config_fingerprint": config_fingerprint(result.config),
        "pairs_per_second": result.pairs_per_second,
        "total_seconds": result.total_seconds,
        "kernel_seconds": result.kernel_seconds,
        "latency_p50_s": result.latency_p50_s,
        "latency_p90_s": result.latency_p90_s,
        "latency_p99_s": result.latency_p99_s,
        "counters": result.counters,
        "info": result.info,
        "git_rev": _git_rev(),
        "host": _host_facts(),
    }


def validate_record(record: Mapping) -> None:
    """Schema-check one ledger record; raises :class:`LedgerError`."""
    if not isinstance(record, Mapping):
        raise LedgerError(f"ledger record must be an object, got {record!r}")
    if record.get("schema") != LEDGER_SCHEMA:
        raise LedgerError(
            f"unknown ledger schema {record.get('schema')!r} "
            f"(expected {LEDGER_SCHEMA!r})"
        )
    missing = _REQUIRED_KEYS - set(record.keys())
    if missing:
        raise LedgerError(
            f"ledger record for {record.get('scenario')!r} missing keys "
            f"{sorted(missing)}"
        )
    if record.get("profile") not in PROFILES:
        raise LedgerError(
            f"ledger record profile must be one of {PROFILES}, "
            f"got {record.get('profile')!r}"
        )
    for key in GATED_FIELDS:
        value = record[key]
        if not isinstance(value, (int, float)) or value < 0:
            raise LedgerError(
                f"{record['scenario']}: {key} must be a number >= 0, "
                f"got {value!r}"
            )
    if record["config_fingerprint"] != config_fingerprint(record["config"]):
        raise LedgerError(
            f"{record['scenario']}: config_fingerprint does not match the "
            f"embedded config (expected "
            f"{config_fingerprint(record['config'])!r})"
        )


def run_scenarios(
    names: Optional[Sequence[str]] = None,
    profile: str = "quick",
    progress: Optional[Callable[[str], None]] = None,
) -> List[dict]:
    """Run scenarios and return their stamped ledger records."""
    if profile not in PROFILES:
        raise LedgerError(f"profile must be one of {PROFILES}, got {profile!r}")
    available = scenario_names()
    chosen = list(names) if names else available
    unknown = sorted(set(chosen) - set(available))
    if unknown:
        raise LedgerError(
            f"unknown scenario(s) {unknown}; registered: {available}"
        )
    records = []
    for name in chosen:
        if progress is not None:
            progress(name)
        result = _SCENARIOS[name](profile)
        if result.scenario != name:
            raise LedgerError(
                f"scenario {name!r} returned a result labeled "
                f"{result.scenario!r}"
            )
        record = make_record(result, profile)
        validate_record(record)
        records.append(record)
    return records


# -- ledger file -----------------------------------------------------------


def load_ledger(path: Union[str, Path]) -> List[dict]:
    """Read and schema-validate a ledger (or baseline) JSON file."""
    p = Path(path)
    if not p.exists():
        return []
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise LedgerError(f"{p} is not valid JSON: {exc}") from exc
    if not isinstance(data, list):
        raise LedgerError(f"{p} must hold a JSON list of ledger records")
    for record in data:
        validate_record(record)
    return data


def append_records(path: Union[str, Path], records: Sequence[Mapping]) -> int:
    """Append records to a ledger file; returns its new length."""
    existing = load_ledger(path)
    for record in records:
        validate_record(record)
    existing.extend(dict(r) for r in records)
    Path(path).write_text(
        json.dumps(existing, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(existing)


def latest_by_scenario(records: Sequence[Mapping]) -> Dict[str, dict]:
    """The last-appended record per scenario name."""
    out: Dict[str, dict] = {}
    for record in records:
        out[record["scenario"]] = dict(record)
    return out


# -- the regression gate ---------------------------------------------------


@dataclass(frozen=True)
class GateFailure:
    """One named regression: scenario, metric, and the numbers."""

    scenario: str
    metric: str
    baseline: float
    current: float
    threshold: float

    def __str__(self) -> str:
        direction = (
            "dropped" if self.metric == "pairs_per_second" else "grew"
        )
        return (
            f"{self.scenario}: {self.metric} {direction} past the "
            f"{self.threshold:.0%} threshold "
            f"(baseline {self.baseline:.6g} -> current {self.current:.6g})"
        )


def compare(
    ledger: Sequence[Mapping],
    baseline: Sequence[Mapping],
    max_throughput_drop: float = 0.10,
    max_latency_rise: float = 0.10,
) -> List[GateFailure]:
    """Gate the latest ledger records against a baseline.

    For every baseline scenario: the ledger must hold a record for it,
    with the same config fingerprint (:class:`LedgerError` otherwise —
    different configs are incomparable, not regressed), and the gated
    metrics must not regress past the thresholds:

    * ``pairs_per_second`` must not drop more than ``max_throughput_drop``;
    * ``total_seconds``, ``kernel_seconds``, and the latency
      percentiles must not grow more than ``max_latency_rise``.

    Returns the (possibly empty) failure list, most-regressed first.
    """
    if not 0 <= max_throughput_drop < 1:
        raise LedgerError(
            f"max_throughput_drop must be in [0, 1), got {max_throughput_drop}"
        )
    if max_latency_rise < 0:
        raise LedgerError(
            f"max_latency_rise must be >= 0, got {max_latency_rise}"
        )
    current = latest_by_scenario(ledger)
    failures: List[GateFailure] = []
    for name, base in sorted(latest_by_scenario(baseline).items()):
        latest = current.get(name)
        if latest is None:
            raise LedgerError(
                f"baseline scenario {name!r} has no record in the ledger — "
                f"run `repro bench run` first"
            )
        if latest["config_fingerprint"] != base["config_fingerprint"]:
            raise LedgerError(
                f"{name}: config fingerprint {latest['config_fingerprint']} "
                f"does not match the baseline's "
                f"{base['config_fingerprint']} — the scenario configuration "
                f"changed; refresh the baseline instead of comparing"
            )
        # throughput: lower is worse
        if base["pairs_per_second"] > 0:
            drop = 1.0 - latest["pairs_per_second"] / base["pairs_per_second"]
            if drop > max_throughput_drop:
                failures.append(
                    GateFailure(
                        scenario=name,
                        metric="pairs_per_second",
                        baseline=base["pairs_per_second"],
                        current=latest["pairs_per_second"],
                        threshold=max_throughput_drop,
                    )
                )
        # modeled seconds: higher is worse
        for metric in (
            "total_seconds",
            "kernel_seconds",
            "latency_p50_s",
            "latency_p90_s",
            "latency_p99_s",
        ):
            if base[metric] <= 0:
                continue
            rise = latest[metric] / base[metric] - 1.0
            if rise > max_latency_rise:
                failures.append(
                    GateFailure(
                        scenario=name,
                        metric=metric,
                        baseline=base[metric],
                        current=latest[metric],
                        threshold=max_latency_rise,
                    )
                )
    failures.sort(
        key=lambda f: (
            -abs(
                (f.current - f.baseline) / f.baseline if f.baseline else 0.0
            ),
            f.scenario,
            f.metric,
        )
    )
    return failures
