"""Roofline timing model for the multicore CPU baseline.

The paper's key CPU observation is that WFA throughput "does not scale
well with the number of threads ... since its performance is limited by
memory bandwidth".  The standard analytic form of that behaviour is a
roofline over thread count:

``t(T) = max( W / R(T),  Q / B(T) )``

* ``W`` — total instruction work, from the functional operation counts
  via :class:`~repro.perf.costs.CpuCostModel`;
* ``R(T)`` — aggregate instruction throughput (linear in cores, derated
  SMT; :meth:`~repro.cpu.config.CpuConfig.compute_rate`);
* ``Q`` — total DRAM traffic, from the per-pair traffic model below;
* ``B(T)`` — achievable bandwidth, saturating in ``T``.

At small ``T`` the compute term dominates and scaling is near-linear; as
``T`` grows the bandwidth term takes over and the curve flattens — the
shape of the paper's Fig. 1 CPU bars.

DRAM traffic per pair: each pair's sequences and result are streamed
once (compulsory traffic), the allocator and runtime touch a further
fixed overhead, and a small fraction of the WFA wavefront metadata
spills past the caches (for 100 bp reads the few-KB metadata is largely
cache-resident — the spill fraction and overhead are calibration
constants with their rationale in :mod:`repro.perf.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.wavefront import WfaCounters
from repro.cpu.config import CpuConfig
from repro.errors import ConfigError
from repro.perf.costs import CpuCostModel

__all__ = ["CpuTrafficModel", "CpuTimeBreakdown", "CpuModel"]


@dataclass(frozen=True)
class CpuTrafficModel:
    """Per-pair DRAM traffic estimate."""

    #: bytes streamed per pair beyond the sequences themselves: result
    #: write-back, per-alignment allocator slab touches, page-granular
    #: prefetch waste (see perf/calibration.py).
    fixed_overhead_bytes: float = 1600.0
    #: multiplier on sequence bytes (read once, write-allocate etc.).
    sequence_factor: float = 2.0
    #: fraction of packed wavefront metadata that misses the caches.
    metadata_spill_fraction: float = 0.10

    def bytes_per_pair(
        self, metadata_bytes_per_pair: float, seq_bytes: float
    ) -> float:
        """DRAM bytes for one pair given its mean metadata and sequence size."""
        return (
            self.fixed_overhead_bytes
            + self.sequence_factor * seq_bytes
            + self.metadata_spill_fraction * metadata_bytes_per_pair
        )


@dataclass
class CpuTimeBreakdown:
    """Modeled run time at one thread count."""

    threads: int
    compute_seconds: float
    memory_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def bound(self) -> str:
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


@dataclass
class CpuModel:
    """Converts measured workload counts into time-vs-threads curves."""

    config: CpuConfig
    cost_model: CpuCostModel = field(default_factory=CpuCostModel)
    traffic_model: CpuTrafficModel = field(default_factory=CpuTrafficModel)

    def time_for(
        self,
        counters: WfaCounters,
        pairs_measured: int,
        seq_bytes_per_pair: float,
        total_pairs: int,
        threads: int,
    ) -> CpuTimeBreakdown:
        """Model time to align ``total_pairs`` with ``threads`` threads.

        ``counters`` must hold the *accumulated* counts of
        ``pairs_measured`` functionally aligned sample pairs; per-pair
        means are extrapolated to ``total_pairs``.
        """
        if pairs_measured < 1:
            raise ConfigError("pairs_measured must be >= 1")
        if total_pairs < 0:
            raise ConfigError("total_pairs must be >= 0")
        scale = total_pairs / pairs_measured
        work = self.cost_model.instructions(counters, pairs=pairs_measured) * scale
        metadata_pp = counters.metadata_bytes() / pairs_measured
        traffic = (
            self.traffic_model.bytes_per_pair(metadata_pp, seq_bytes_per_pair)
            * total_pairs
        )
        compute_s = work / self.config.compute_rate(threads)
        memory_s = traffic / self.config.memory_bandwidth(threads)
        return CpuTimeBreakdown(
            threads=threads, compute_seconds=compute_s, memory_seconds=memory_s
        )

    def scaling_curve(
        self,
        counters: WfaCounters,
        pairs_measured: int,
        seq_bytes_per_pair: float,
        total_pairs: int,
        thread_counts: list[int],
    ) -> list[CpuTimeBreakdown]:
        """Model the paper's thread sweep (1, 2, 4, ..., 56)."""
        return [
            self.time_for(
                counters, pairs_measured, seq_bytes_per_pair, total_pairs, t
            )
            for t in thread_counts
        ]
