"""CPU platform configuration and the paper's Xeon preset.

The paper's CPU baseline is a dual-socket Intel Xeon Gold 5120 server (14
cores x 2 sockets x 2-way SMT = 56 threads, 2.2 GHz base, 6 DDR4-2400
channels per socket, 64 GB).  :func:`xeon_gold_5120_dual` captures its
published characteristics; effective-rate parameters (IPC, SMT yield,
achievable bandwidth) are calibration constants documented in
:mod:`repro.perf.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["CpuConfig", "xeon_gold_5120_dual"]


@dataclass(frozen=True)
class CpuConfig:
    """Multicore CPU characteristics for the roofline timing model."""

    name: str = "generic-cpu"
    sockets: int = 2
    cores_per_socket: int = 14
    smt: int = 2
    frequency_hz: float = 2.2e9
    #: effective instructions per cycle per thread for the (vectorized)
    #: WFA workload, already folding in AVX throughput and stalls.
    ipc: float = 1.6
    #: marginal throughput of a second SMT thread on a busy core.
    smt_yield: float = 0.30
    #: *effective* DRAM bandwidth achievable by this workload's access
    #: pattern (small malloc-backed blocks, strided wavefront walks, two
    #: NUMA domains) — far below the ~115 GB/s STREAM figure of this
    #: machine; see perf/calibration.py for the anchoring.
    mem_bandwidth_bytes_per_s: float = 8.9e9
    #: threads at which B(T) = peak/2 in the saturating-bandwidth curve
    #: ``B(T) = peak * T / (T + bw_saturation_threads)``.
    bw_saturation_threads: float = 2.0

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1 or self.smt < 1:
            raise ConfigError("topology fields must be >= 1")
        if self.frequency_hz <= 0 or self.ipc <= 0:
            raise ConfigError("frequency and ipc must be positive")
        if not 0.0 <= self.smt_yield <= 1.0:
            raise ConfigError("smt_yield must be in [0, 1]")
        if self.mem_bandwidth_bytes_per_s <= 0 or self.bw_saturation_threads <= 0:
            raise ConfigError("bandwidth parameters must be positive")

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def max_threads(self) -> int:
        return self.physical_cores * self.smt

    def effective_cores(self, threads: int) -> float:
        """Core-equivalents delivered by ``threads`` software threads.

        Linear up to the physical core count; additional SMT siblings
        contribute ``smt_yield`` each.
        """
        if threads < 1:
            raise ConfigError(f"threads must be >= 1, got {threads}")
        if threads > self.max_threads:
            raise ConfigError(
                f"{threads} threads exceed the machine's {self.max_threads}"
            )
        if threads <= self.physical_cores:
            return float(threads)
        return self.physical_cores + (threads - self.physical_cores) * self.smt_yield

    def compute_rate(self, threads: int) -> float:
        """Aggregate instruction throughput (instructions/second)."""
        return self.effective_cores(threads) * self.frequency_hz * self.ipc

    def memory_bandwidth(self, threads: int) -> float:
        """Achievable DRAM bandwidth with ``threads`` active threads.

        Saturating: a single thread cannot issue enough outstanding
        misses to fill the channels; the curve approaches the peak as
        threads grow (classic STREAM-vs-threads behaviour).
        """
        t = float(threads)
        return self.mem_bandwidth_bytes_per_s * t / (t + self.bw_saturation_threads)

    def with_(self, **changes) -> "CpuConfig":
        return replace(self, **changes)


def xeon_gold_5120_dual() -> CpuConfig:
    """The paper's CPU: 2 x Xeon Gold 5120 (56 threads, DDR4-2400 x 12)."""
    return CpuConfig(
        name="2x Intel Xeon Gold 5120",
        sockets=2,
        cores_per_socket=14,
        smt=2,
        frequency_hz=2.2e9,
    )
