"""CPU substrate: the paper's multicore baseline (functional + roofline)."""

from repro.cpu.config import CpuConfig, xeon_gold_5120_dual
from repro.cpu.model import CpuModel, CpuTimeBreakdown, CpuTrafficModel
from repro.cpu.runner import CpuRunner, CpuSampleMeasurement

__all__ = [
    "CpuConfig",
    "xeon_gold_5120_dual",
    "CpuModel",
    "CpuTimeBreakdown",
    "CpuTrafficModel",
    "CpuRunner",
    "CpuSampleMeasurement",
]
