"""Functional CPU execution of WFA workloads.

Two roles:

* :meth:`CpuRunner.measure` — align a sample of pairs with the reference
  WFA implementation and accumulate the operation counters that the
  roofline model (:mod:`repro.cpu.model`) extrapolates to full workload
  timings.  This is the CPU-side half of the functional-first
  methodology.
* :meth:`CpuRunner.align_all` — actually align a batch, optionally
  fanning out over worker *processes* (Python threads would serialize on
  the GIL; the paper's C implementation uses threads, which our modeled
  thread counts represent — worker processes here are purely a
  wall-clock convenience for large functional runs).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.aligner import AlignmentResult, WavefrontAligner
from repro.core.penalties import AffinePenalties, Penalties
from repro.core.wavefront import WfaCounters
from repro.data.generator import ReadPair
from repro.errors import ConfigError

__all__ = ["CpuSampleMeasurement", "CpuRunner"]


@dataclass
class CpuSampleMeasurement:
    """Accumulated functional counts over a measured sample."""

    counters: WfaCounters
    pairs: int
    seq_bytes_per_pair: float
    scores: list[int] = field(default_factory=list)

    @property
    def cells_per_pair(self) -> float:
        return self.counters.cells_computed / self.pairs if self.pairs else 0.0

    @property
    def metadata_bytes_per_pair(self) -> float:
        return self.counters.metadata_bytes() / self.pairs if self.pairs else 0.0


# Module-level worker so multiprocessing can pickle it.
_WORKER_ALIGNER: Optional[WavefrontAligner] = None


def _init_worker(penalties: Penalties, heuristic, score_only: bool) -> None:
    global _WORKER_ALIGNER
    _WORKER_ALIGNER = WavefrontAligner(penalties, heuristic=heuristic)
    _WORKER_ALIGNER._score_only = score_only  # type: ignore[attr-defined]


def _align_pair(pair: ReadPair) -> AlignmentResult:
    assert _WORKER_ALIGNER is not None
    return _WORKER_ALIGNER.align(
        pair.pattern,
        pair.text,
        score_only=getattr(_WORKER_ALIGNER, "_score_only", False),
    )


class CpuRunner:
    """Reference (CPU-side) WFA executor and counter harvester."""

    def __init__(
        self,
        penalties: Optional[Penalties] = None,
        *,
        traceback: bool = True,
        adaptive: bool = False,
    ) -> None:
        self.penalties = penalties if penalties is not None else AffinePenalties()
        self.traceback = traceback
        self.heuristic = "adaptive" if adaptive else None
        self._aligner = WavefrontAligner(self.penalties, heuristic=self.heuristic)

    def measure(self, pairs: Sequence[ReadPair]) -> CpuSampleMeasurement:
        """Align every pair, accumulating counters and sequence sizes."""
        if not pairs:
            raise ConfigError("measure() needs at least one pair")
        total = WfaCounters()
        scores: list[int] = []
        seq_bytes = 0
        for pair in pairs:
            result = self._aligner.align(
                pair.pattern, pair.text, score_only=not self.traceback
            )
            total.add(result.counters)
            scores.append(result.score)
            seq_bytes += len(pair.pattern) + len(pair.text)
        return CpuSampleMeasurement(
            counters=total,
            pairs=len(pairs),
            seq_bytes_per_pair=seq_bytes / len(pairs),
            scores=scores,
        )

    def align_all(
        self, pairs: Sequence[ReadPair], workers: int = 1
    ) -> list[AlignmentResult]:
        """Align a batch, optionally in parallel worker processes."""
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if workers == 1 or len(pairs) < 2 * workers:
            return [
                self._aligner.align(
                    p.pattern, p.text, score_only=not self.traceback
                )
                for p in pairs
            ]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(self.penalties, self.heuristic, not self.traceback),
        ) as pool:
            return pool.map(_align_pair, list(pairs), chunksize=64)
