"""Seeded QA corpus: random pairs plus adversarial families.

Every case is generated under an **admission contract**: at most
``max_edits`` editing operations separate pattern and text, so any
:class:`~repro.pim.kernel.KernelConfig` built with the same
``max_edits`` admits the whole corpus (the kernel's score bound is
``max_edits * per_edit_cost`` for every supported penalty model, and a
pair reachable in ``k <= max_edits`` edits costs at most that).

The adversarial families target the aligner's historic failure modes:

* ``homopolymer`` — runs of one base with an indel inside; the optimal
  alignment is ambiguous (any of the run's positions works), which is
  exactly where traceback implementations disagree with score DPs;
* ``all_mismatch`` — no matching diagonal at all, the anti-WFA case
  (wavefronts advance one diagonal step per score unit);
* ``zero_one`` — empty/single-character sequences, the classic
  boundary bugs (empty CIGAR, deletion-only, insertion-only);
* ``near_threshold`` — exactly ``max_edits`` mutations, sitting on the
  kernel's admission boundary E where off-by-one budget math fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.generator import mutate_sequence, random_sequence
from repro.errors import QaError

__all__ = ["CorpusConfig", "QaCase", "generate_corpus", "KINDS"]

KINDS = ("random", "homopolymer", "all_mismatch", "zero_one", "near_threshold")


@dataclass(frozen=True)
class QaCase:
    """One differential-verification work item."""

    index: int
    kind: str
    pattern: str
    text: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "pattern": self.pattern,
            "text": self.text,
        }


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of a generated corpus (all cases honor ``max_edits``)."""

    max_len: int = 32
    max_edits: int = 4
    alphabet: str = "ACGT"
    kinds: tuple[str, ...] = field(default=KINDS)

    def validate(self) -> None:
        if self.max_len < 1:
            raise QaError(f"max_len must be >= 1, got {self.max_len}")
        if self.max_edits < 1:
            raise QaError(f"max_edits must be >= 1, got {self.max_edits}")
        if len(self.alphabet) < 2:
            raise QaError("alphabet needs at least two symbols")
        for kind in self.kinds:
            if kind not in KINDS:
                raise QaError(f"unknown corpus kind {kind!r} (known: {KINDS})")
        if not self.kinds:
            raise QaError("corpus needs at least one kind")


def _random_case(rng: random.Random, cfg: CorpusConfig) -> tuple[str, str]:
    length = rng.randint(1, cfg.max_len)
    errors = rng.randint(0, min(cfg.max_edits, length))
    pattern = random_sequence(length, rng, cfg.alphabet)
    return pattern, mutate_sequence(pattern, errors, rng, cfg.alphabet)


def _homopolymer_case(rng: random.Random, cfg: CorpusConfig) -> tuple[str, str]:
    base = rng.choice(cfg.alphabet)
    length = rng.randint(2, cfg.max_len)
    pattern = base * length
    # Shrink or grow the run by up to max_edits (indels inside a
    # homopolymer — every placement is an equally optimal alignment).
    delta = rng.randint(1, cfg.max_edits)
    if rng.random() < 0.5:
        text = base * max(0, length - delta)
    else:
        text = base * min(cfg.max_len, length + delta)
    return pattern, text


def _all_mismatch_case(rng: random.Random, cfg: CorpusConfig) -> tuple[str, str]:
    # Length capped by the edit budget: n substitutions need n edits.
    length = rng.randint(1, cfg.max_edits)
    a = rng.choice(cfg.alphabet)
    choices = [c for c in cfg.alphabet if c != a]
    pattern = a * length
    text = "".join(rng.choice(choices) for _ in range(length))
    return pattern, text


def _zero_one_case(rng: random.Random, cfg: CorpusConfig) -> tuple[str, str]:
    a, b = (rng.choice(cfg.alphabet) for _ in range(2))
    short = random_sequence(rng.randint(1, min(cfg.max_edits, cfg.max_len)), rng, cfg.alphabet)
    menu = [("", ""), ("", a), (b, ""), (a, b), (a, a), ("", short), (short, "")]
    return menu[rng.randrange(len(menu))]


def _near_threshold_case(rng: random.Random, cfg: CorpusConfig) -> tuple[str, str]:
    length = rng.randint(cfg.max_edits, cfg.max_len)
    pattern = random_sequence(length, rng, cfg.alphabet)
    return pattern, mutate_sequence(pattern, cfg.max_edits, rng, cfg.alphabet)


_MAKERS = {
    "random": _random_case,
    "homopolymer": _homopolymer_case,
    "all_mismatch": _all_mismatch_case,
    "zero_one": _zero_one_case,
    "near_threshold": _near_threshold_case,
}


def generate_corpus(
    trials: int, seed: int, config: CorpusConfig | None = None
) -> list[QaCase]:
    """Generate ``trials`` seeded cases, cycling through the families.

    Deterministic for a given ``(trials, seed, config)``: each case gets
    its own arithmetically derived :class:`random.Random` so corpora are
    stable under prefix extension (the first N cases of ``trials=2N``
    equal the ``trials=N`` corpus).
    """
    cfg = config if config is not None else CorpusConfig()
    cfg.validate()
    if trials < 1:
        raise QaError(f"trials must be >= 1, got {trials}")
    cases = []
    for index in range(trials):
        kind = cfg.kinds[index % len(cfg.kinds)]
        rng = random.Random(seed * 1_000_003 + index)
        pattern, text = _MAKERS[kind](rng, cfg)
        cases.append(QaCase(index=index, kind=kind, pattern=pattern, text=text))
    return cases
