"""Declarative ablation x chaos campaigns with recomputable evidence.

A *campaign* crosses an ablation axis (:data:`~repro.pim.ablation.STANDARD_ABLATIONS`
— breaker off, requeue off, journal off, scalar engine, shards pinned to
1, ...) with a seeded fault grid (:data:`STANDARD_GRID` — a persistent
DPU death, a tasklet stall, MRAM bit rot, a mid-run crash/resume, a
lossy coordinator<->shard link, a finite network partition) and runs
every resulting *cell* on the modeled clock:

1. the cell's workload (a seeded :mod:`repro.qa.corpus`) runs through a
   :class:`~repro.pim.fleet.FleetCoordinator` built from the cell's
   :class:`~repro.pim.ablation.AblationConfig`, under the grid point's
   :class:`~repro.pim.faults.FaultPlan` (``fault_domain="uniform"``, so
   the same local DPU misbehaves at every shard count and cells stay
   comparable across the ``shards`` ablation);
2. every gathered answer is checked against the differential oracle
   (CIGAR replay + re-score + the host WFA score precomputed once per
   campaign) — abandoned pairs count as disagreements, so a degraded
   cell cannot masquerade as a verified one;
3. journaled cells at a ``crash`` grid point are crash-tested: one
   shard's journal is truncated at a record boundary, the run resumed
   with a fresh coordinator, and every rebuilt journal byte-compared to
   the uninterrupted run's;
4. a small seeded load replay exercises the serve-side knobs (cache,
   CPU fallback) through :func:`~repro.serve.service.build_service`
   under the same ablation and fault plan.

Cells are pure functions of ``(campaign config, ablation, grid point)``,
so they fan out over a process pool (``workers``) and the report is
byte-identical at any worker count.  The JSONL report (schema
``repro.qa.campaign/v1``) carries per-cell metrics plus deltas versus
the all-on baseline cell *at the same grid point*;
:func:`validate_campaign_report` recomputes every derived figure —
throughput, oracle agreement, restart bookkeeping, all deltas, the
summary — and rejects reports whose cells are missing, duplicated,
reordered, or internally inconsistent (the AE-Scientist-style contract
check the ROADMAP calls for).

A crashed campaign resumes: ``resume=True`` reuses the completed cell
prefix of a torn report file and recomputes only the missing cells; the
rewritten report is byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import math
import tempfile
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional, Union

from repro.core.penalties import AffinePenalties, Penalties
from repro.data.generator import ReadPair
from repro.errors import CigarError, ConfigError, DegradedCapacity, QaError
from repro.pim.ablation import STANDARD_ABLATIONS, AblationConfig
from repro.pim.faults import (
    DpuDeath,
    FaultPlan,
    MramCorruption,
    RetryPolicy,
    TaskletStall,
)
from repro.qa.corpus import CorpusConfig, generate_corpus
from repro.qa.oracle import reference_answers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pim.transport import NetworkFaultPlan

__all__ = [
    "CAMPAIGN_SCHEMA",
    "FaultGridPoint",
    "STANDARD_GRID",
    "STANDARD_GRID_NAMES",
    "grid_point_by_name",
    "CampaignConfig",
    "CellTask",
    "run_cell",
    "CampaignReport",
    "run_campaign",
    "validate_campaign_report",
]

CAMPAIGN_SCHEMA = "repro.qa.campaign/v1"

#: breaker shape used inside campaign cells: aggressive enough that a
#: persistent fault is quarantined after one round of failures, so the
#: breaker-vs-no-breaker recovery delta shows up even on small grids.
_HEALTH_KWARGS = dict(window=4, failure_threshold=2, cooldown_s=1e9)

#: retry shape used inside campaign cells (mirrors the
#: ``resilience_breaker`` ledger scenario).
_RETRY_BASE = RetryPolicy(max_attempts=2, backoff_base_s=2e-3)

#: serve-side CPU fallback threshold: one dead DPU in a small fleet
#: drops the healthy fraction below this, so fallback engages at the
#: fault grid points (and its absence is visible in ``fallback_off``).
_FALLBACK_THRESHOLD = 0.9


# -- the fault-grid axis -------------------------------------------------------


@dataclass(frozen=True)
class FaultGridPoint:
    """One seeded chaos intensity: which faults a cell runs under.

    Fault *placement* (which DPU dies, stalls, or rots) is derived
    arithmetically from the campaign seed and the point's position in
    the grid — never from wall clock or name hashing — so the same
    campaign config always builds the same :class:`FaultPlan`.
    """

    name: str
    #: persistently dead DPUs (every attempt fails; only requeue survives).
    dead_dpus: int = 0
    #: DPUs whose first attempt stalls (watchdog-detected, retry succeeds).
    stalled_dpus: int = 0
    #: DPUs whose first-attempt output record 0 is bit-rotted
    #: (caught by result verification, retry succeeds).
    corrupt_dpus: int = 0
    #: simulate a mid-run host crash (journal truncated + resumed).
    crash: bool = False
    #: coordinator<->shard links that drop and duplicate envelopes
    #: (survived by at-least-once redelivery + receiver-side dedup).
    lossy_links: int = 0
    #: seconds the top shard's link is partitioned from the run start
    #: (finite, so redelivery always rides it out — even at one shard).
    partition_s: float = 0.0

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("fault grid point needs a non-empty name")
        for field_name in ("dead_dpus", "stalled_dpus", "corrupt_dpus", "lossy_links"):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{field_name} must be >= 0")
        if self.partition_s < 0:
            raise ConfigError("partition_s must be >= 0")
        if self.crash and self.net_active:
            raise ConfigError(
                "networked cells run inline-only (no journal), so a grid "
                "point cannot combine crash with network faults"
            )

    @property
    def faulty_dpus(self) -> int:
        return self.dead_dpus + self.stalled_dpus + self.corrupt_dpus

    @property
    def net_active(self) -> bool:
        """Whether this point injects coordinator<->shard network faults."""
        return self.lossy_links > 0 or self.partition_s > 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "dead_dpus": self.dead_dpus,
            "stalled_dpus": self.stalled_dpus,
            "corrupt_dpus": self.corrupt_dpus,
            "crash": self.crash,
            "lossy_links": self.lossy_links,
            "partition_s": self.partition_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultGridPoint":
        try:
            out = cls(
                name=str(data["name"]),
                dead_dpus=int(data["dead_dpus"]),
                stalled_dpus=int(data["stalled_dpus"]),
                corrupt_dpus=int(data["corrupt_dpus"]),
                crash=bool(data["crash"]),
                # absent in pre-transport reports; default to calm links
                lossy_links=int(data.get("lossy_links", 0)),
                partition_s=float(data.get("partition_s", 0.0)),
            )
        except KeyError as exc:
            raise ConfigError(f"fault grid point dict missing key {exc}") from exc
        out.validate()
        return out


#: the default chaos axis: calm control, each fault family alone
#: (device-side and network-side), and a combined death + mid-run
#: crash/resume drill.
STANDARD_GRID: tuple[FaultGridPoint, ...] = (
    FaultGridPoint(name="calm"),
    FaultGridPoint(name="dead_dpu", dead_dpus=1),
    FaultGridPoint(name="stall", stalled_dpus=1),
    FaultGridPoint(name="bitrot", corrupt_dpus=1),
    FaultGridPoint(name="crash_dead", dead_dpus=1, crash=True),
    FaultGridPoint(name="lossy_net", lossy_links=1),
    FaultGridPoint(name="partition", partition_s=0.05),
)

STANDARD_GRID_NAMES: tuple[str, ...] = tuple(g.name for g in STANDARD_GRID)


def grid_point_by_name(name: str) -> FaultGridPoint:
    """Look up a standard grid point by name."""
    for point in STANDARD_GRID:
        if point.name == name:
            return point
    raise ConfigError(
        f"unknown fault grid point {name!r}; known: "
        f"{', '.join(STANDARD_GRID_NAMES)}"
    )


def build_fault_plan(
    point: FaultGridPoint, num_dpus: int, seed: int, point_index: int
) -> Optional[FaultPlan]:
    """The seeded :class:`FaultPlan` one grid point injects per shard.

    Faulty DPU ids are assigned deterministically from the top of the
    per-shard id range downward (dead first, then stalled, then
    corrupt), leaving DPU 0 and the low ids as healthy requeue spares.
    The derived seed keeps bit-rot placement stable per grid point.
    """
    point.validate()
    if point.faulty_dpus == 0:
        return None
    if point.faulty_dpus >= num_dpus:
        raise ConfigError(
            f"grid point {point.name!r} faults {point.faulty_dpus} DPUs but "
            f"shards have only {num_dpus}; need at least one healthy spare"
        )
    ids = list(range(num_dpus - 1, num_dpus - 1 - point.faulty_dpus, -1))
    deaths = tuple(DpuDeath(dpu_id=ids.pop(0)) for _ in range(point.dead_dpus))
    stalls = tuple(
        TaskletStall(dpu_id=ids.pop(0), dma_budget=0)
        for _ in range(point.stalled_dpus)
    )
    corruptions = tuple(
        MramCorruption(dpu_id=ids.pop(0), region="output", num_bits=2, record=0)
        for _ in range(point.corrupt_dpus)
    )
    return FaultPlan(
        seed=seed * 1_000_003 + point_index * 8_191,
        deaths=deaths,
        stalls=stalls,
        corruptions=corruptions,
    )


def build_net_plan(
    point: FaultGridPoint, shards: int, seed: int, point_index: int
) -> Optional["NetworkFaultPlan"]:
    """The seeded :class:`NetworkFaultPlan` one grid point injects.

    Lossy links are assigned from the top of the shard-id range
    downward (mirroring :func:`build_fault_plan`'s placement), so
    shard 0's link stays clean whenever ``lossy_links < shards``; a
    partition covers the top shard's link for a finite window starting
    at the run origin, which at-least-once redelivery always rides out
    — even in the ``shards_1`` ablation where that is the only link.
    The derived seed follows the fault-plan discipline so the same
    campaign config always builds the same network plan.
    """
    point.validate()
    if not point.net_active:
        return None
    from repro.pim.transport import (
        LinkDrop,
        LinkDuplicate,
        NetworkFaultPlan,
        Partition,
    )

    if point.lossy_links > shards:
        raise ConfigError(
            f"grid point {point.name!r} marks {point.lossy_links} links "
            f"lossy but the cell runs only {shards} shard(s)"
        )
    lossy = range(shards - 1, shards - 1 - point.lossy_links, -1)
    partitions = ()
    if point.partition_s > 0.0:
        partitions = (
            Partition(start_s=0.0, end_s=point.partition_s, shard_ids=(shards - 1,)),
        )
    return NetworkFaultPlan(
        seed=seed * 1_000_003 + point_index * 8_191,
        drops=tuple(LinkDrop(shard_id=s, p=0.2) for s in lossy),
        duplicates=tuple(LinkDuplicate(shard_id=s, p=0.2) for s in lossy),
        partitions=partitions,
    )


# -- campaign configuration ----------------------------------------------------


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign, fully determined by its fields.

    ``ablations[0]`` is the baseline every other cell's deltas are
    measured against; it must be an all-on configuration.
    """

    pairs: int = 48
    length: int = 16
    max_edits: int = 4
    seed: int = 42
    num_dpus: int = 4
    tasklets: int = 2
    pairs_per_round: int = 8
    #: shard count ablations inherit unless they pin their own.
    baseline_shards: int = 2
    #: serve-phase load replay size (0 skips the serve phase).
    serve_requests: int = 24
    serve_rate: float = 4000.0
    ablations: tuple[AblationConfig, ...] = STANDARD_ABLATIONS
    grid: tuple[FaultGridPoint, ...] = STANDARD_GRID

    def validate(self) -> None:
        if self.pairs < 1:
            raise QaError(f"pairs must be >= 1, got {self.pairs}")
        if self.pairs_per_round < 1:
            raise QaError(
                f"pairs_per_round must be >= 1, got {self.pairs_per_round}"
            )
        if self.num_dpus < 1:
            raise QaError(f"num_dpus must be >= 1, got {self.num_dpus}")
        if self.baseline_shards < 1:
            raise QaError(
                f"baseline_shards must be >= 1, got {self.baseline_shards}"
            )
        if self.serve_requests < 0:
            raise QaError(
                f"serve_requests must be >= 0, got {self.serve_requests}"
            )
        if self.serve_rate <= 0:
            raise QaError(f"serve_rate must be > 0, got {self.serve_rate}")
        if not self.ablations:
            raise QaError("campaign needs at least one ablation")
        if not self.grid:
            raise QaError("campaign needs at least one fault grid point")
        if not self.ablations[0].all_on or self.ablations[0].shards is not None:
            raise QaError(
                f"ablations[0] ({self.ablations[0].name!r}) must be the "
                "all-on baseline (every feature enabled, shards inherited)"
            )
        for axis, items in (("ablation", self.ablations), ("grid", self.grid)):
            names = [item.name for item in items]
            if len(names) != len(set(names)):
                raise QaError(f"duplicate {axis} names: {sorted(names)}")
        for ablation in self.ablations:
            ablation.validate()
        for index, point in enumerate(self.grid):
            point.validate()
            # fail early, not inside a worker process
            build_fault_plan(point, self.num_dpus, self.seed, index)
        CorpusConfig(max_len=self.length, max_edits=self.max_edits).validate()

    @property
    def baseline(self) -> str:
        return self.ablations[0].name

    def cell_names(self) -> list[str]:
        """Every cell id, in the canonical (ablation-major) order."""
        return [
            cell_name(a.name, g.name) for a in self.ablations for g in self.grid
        ]

    def penalties(self) -> Penalties:
        return AffinePenalties()

    def to_dict(self) -> dict:
        return {
            "pairs": self.pairs,
            "length": self.length,
            "max_edits": self.max_edits,
            "seed": self.seed,
            "num_dpus": self.num_dpus,
            "tasklets": self.tasklets,
            "pairs_per_round": self.pairs_per_round,
            "baseline_shards": self.baseline_shards,
            "serve_requests": self.serve_requests,
            "serve_rate": self.serve_rate,
            "baseline": self.baseline,
            "ablations": [a.to_dict() for a in self.ablations],
            "grid": [g.to_dict() for g in self.grid],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        try:
            out = cls(
                pairs=int(data["pairs"]),
                length=int(data["length"]),
                max_edits=int(data["max_edits"]),
                seed=int(data["seed"]),
                num_dpus=int(data["num_dpus"]),
                tasklets=int(data["tasklets"]),
                pairs_per_round=int(data["pairs_per_round"]),
                baseline_shards=int(data["baseline_shards"]),
                serve_requests=int(data["serve_requests"]),
                serve_rate=float(data["serve_rate"]),
                ablations=tuple(
                    AblationConfig.from_dict(a) for a in data["ablations"]
                ),
                grid=tuple(FaultGridPoint.from_dict(g) for g in data["grid"]),
            )
        except (KeyError, TypeError) as exc:
            raise QaError(f"malformed campaign config: {exc}") from exc
        out.validate()
        if data.get("baseline") != out.baseline:
            raise QaError(
                f"campaign config names baseline {data.get('baseline')!r} but "
                f"ablations[0] is {out.baseline!r}"
            )
        return out


def cell_name(ablation: str, point: str) -> str:
    return f"{ablation}@{point}"


# -- one cell ------------------------------------------------------------------


@dataclass(frozen=True)
class CellTask:
    """A self-contained description of one cell; picklable.

    Mirrors :class:`~repro.pim.fleet.ShardTask` one layer up: a worker
    process computes the cell's metrics from the task alone, so the
    outcome never depends on which worker ran it or in what order.
    """

    config: CampaignConfig
    ablation: AblationConfig
    point: FaultGridPoint
    point_index: int
    #: host WFA oracle score per corpus pair (precomputed once per
    #: campaign — identical for every cell).
    expected_scores: tuple[int, ...]

    @property
    def name(self) -> str:
        return cell_name(self.ablation.name, self.point.name)


#: every key a cell's ``metrics`` dict must carry (the report contract).
METRIC_KEYS = frozenset(
    {
        "pairs",
        "shards",
        "rounds",
        "total_seconds",
        "kernel_seconds",
        "recovery_seconds",
        "throughput_pairs_per_s",
        "faults_seen",
        "rerun_pairs",
        "abandoned_pairs",
        "oracle_checked",
        "oracle_ok",
        "oracle_agreement",
        "rounds_replayed",
        "resume_checked",
        "resume_identical",
        "restart_reexecuted_rounds",
        "restart_overhead_seconds",
        "serve_completed",
        "serve_rejected",
        "serve_cached_pairs",
        "serve_fallback_pairs",
        "serve_p99_s",
        "net_drops",
        "net_redeliveries",
        "net_duplicates_absorbed",
        "net_partition_blocked",
        "net_steals",
    }
)

#: transport counters every cell reports (zero off the network points).
_NET_METRIC_KEYS = (
    "net_drops",
    "net_redeliveries",
    "net_duplicates_absorbed",
    "net_partition_blocked",
    "net_steals",
)


def _make_fleet(
    cfg: CampaignConfig,
    ablation: AblationConfig,
    net_plan: Optional["NetworkFaultPlan"] = None,
):
    from repro.pim.config import PimSystemConfig
    from repro.pim.fleet import FleetCoordinator
    from repro.pim.kernel import KernelConfig

    health_policy = None
    if ablation.breaker:
        from repro.pim.health import HealthPolicy

        health_policy = HealthPolicy(**_HEALTH_KWARGS)
    return FleetCoordinator(
        PimSystemConfig(
            num_dpus=cfg.num_dpus,
            num_ranks=1,
            tasklets=cfg.tasklets,
            num_simulated_dpus=cfg.num_dpus,
        ),
        KernelConfig(
            penalties=cfg.penalties(),
            max_read_len=cfg.length,
            max_edits=cfg.max_edits,
            engine=ablation.engine,
        ),
        shards=ablation.resolve_shards(cfg.baseline_shards),
        health_policy=health_policy,
        fault_domain="uniform",
        net_plan=net_plan,
    )


def _oracle_agreement(
    corpus, results, expected: tuple[int, ...], penalties: Penalties
) -> int:
    """How many corpus cases the gathered answers fully agree on.

    The per-cell half of the :mod:`repro.qa.oracle` hierarchy: the
    CIGAR must replay against the pair, re-score to the reported score,
    and the score must equal the precomputed host WFA answer.  A pair
    with no result (abandoned under fault injection) disagrees.
    """
    by_index = {index: (score, cigar) for index, score, cigar in results}
    ok = 0
    for case, expected_score in zip(corpus, expected):
        score, cigar = by_index.get(case.index, (None, None))
        if score is None or cigar is None:
            continue
        try:
            cigar.validate(case.pattern, case.text)
        except CigarError:
            continue
        if cigar.score(penalties) != score:
            continue
        if score != expected_score:
            continue
        ok += 1
    return ok


def _crash_and_resume(
    cfg: CampaignConfig,
    ablation: AblationConfig,
    journal_dir: Path,
    pairs: list[ReadPair],
    fault_plan: Optional[FaultPlan],
    retry_policy: RetryPolicy,
) -> tuple[int, bool]:
    """Truncate one shard journal, resume, byte-compare every file.

    Returns ``(rounds_replayed, identical)``.  Mirrors the ``make
    fleet-demo`` drill: the crash is a record-boundary truncation of
    shard 0's journal; the resumed run must rebuild it byte-identically
    to the uninterrupted run's.
    """
    pristine = {
        p.name: p.read_bytes() for p in sorted(journal_dir.iterdir())
    }
    shard0 = journal_dir / "shard-000.jsonl"
    lines = shard0.read_bytes().splitlines(keepends=True)
    shard0.write_bytes(b"".join(lines[: min(2, len(lines))]))
    resumed = _make_fleet(cfg, ablation).resume_run(
        journal_dir,
        pairs,
        pairs_per_round=cfg.pairs_per_round,
        collect_results=True,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    rebuilt = {p.name: p.read_bytes() for p in sorted(journal_dir.iterdir())}
    return resumed.rounds_replayed, rebuilt == pristine


def _serve_phase(
    cfg: CampaignConfig,
    ablation: AblationConfig,
    fault_plan: Optional[FaultPlan],
    retry_policy: RetryPolicy,
) -> dict:
    """A small seeded load replay through the serve stack.

    Exercises the serve-side knobs the batch phase cannot see (result
    cache, CPU fallback under degraded capacity) under the same
    ablation and fault plan.
    """
    from repro.pim.health import HealthPolicy
    from repro.serve.clock import VirtualClock
    from repro.serve.loadgen import LoadgenConfig, run_load
    from repro.serve.resilience import FallbackPolicy
    from repro.serve.service import ServiceConfig, build_service

    service = build_service(
        num_dpus=cfg.num_dpus,
        tasklets=cfg.tasklets,
        max_read_len=cfg.length,
        max_edits=cfg.max_edits,
        penalties=cfg.penalties(),
        config=ServiceConfig(
            max_batch_pairs=8,
            max_wait_s=1e-3,
            cache_pairs=64,
            pairs_per_round=cfg.pairs_per_round,
        ),
        clock=VirtualClock(),
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        health_policy=HealthPolicy(**_HEALTH_KWARGS),
        fallback=FallbackPolicy(min_healthy_fraction=_FALLBACK_THRESHOLD),
        shards=cfg.baseline_shards,
        ablation=ablation,
    )
    report = run_load(
        service,
        LoadgenConfig(
            requests=cfg.serve_requests,
            rate=cfg.serve_rate,
            pairs_per_request=2,
            clients=2,
            length=min(10, cfg.length),
            error_rate=0.05,
            seed=cfg.seed,
        ),
    )
    summary = report.summary()
    fallback_pairs = 0
    if service.telemetry is not None:
        fallback_pairs = int(
            service.telemetry.registry.counter(
                "serve_fallback_pairs_total"
            ).value()
        )
    return {
        "serve_completed": summary["completed"],
        "serve_rejected": summary["rejected"],
        "serve_cached_pairs": summary["cached_pairs"],
        "serve_fallback_pairs": fallback_pairs,
        "serve_p99_s": summary["latency_p99_s"],
    }


def run_cell(task: CellTask) -> dict:
    """Compute one cell's metrics; picklable in and out.

    Everything runs on the modeled clock — backoff, watchdog latency and
    serve latency are charged, never slept — so a cell's metrics are a
    pure, machine-independent function of the task.
    """
    cfg = task.config
    ablation = task.ablation
    point = task.point
    penalties = cfg.penalties()
    corpus = generate_corpus(
        cfg.pairs,
        cfg.seed,
        CorpusConfig(max_len=cfg.length, max_edits=cfg.max_edits),
    )
    pairs = [ReadPair(c.pattern, c.text) for c in corpus]
    fault_plan = build_fault_plan(point, cfg.num_dpus, cfg.seed, task.point_index)
    net_plan = build_net_plan(
        point,
        ablation.resolve_shards(cfg.baseline_shards),
        cfg.seed,
        task.point_index,
    )
    retry_policy = ablation.retry_policy(_RETRY_BASE)

    with warnings.catch_warnings(), tempfile.TemporaryDirectory() as tmp:
        warnings.simplefilter("ignore", DegradedCapacity)
        # networked runs are inline-only (the coordinator refuses to mix
        # an active net plan with a write-ahead journal), so network
        # points run journal-free under every ablation
        journal_dir = (
            Path(tmp) / "journal"
            if ablation.journal and net_plan is None
            else None
        )
        run = _make_fleet(cfg, ablation, net_plan=net_plan).run(
            pairs,
            pairs_per_round=cfg.pairs_per_round,
            collect_results=True,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            journal=journal_dir,
        )

        rounds_replayed = 0
        resume_checked = bool(point.crash and ablation.journal)
        resume_identical: Optional[bool] = None
        if resume_checked:
            rounds_replayed, resume_identical = _crash_and_resume(
                cfg, ablation, journal_dir, pairs, fault_plan, retry_policy
            )

        serve = {
            "serve_completed": 0,
            "serve_rejected": 0,
            "serve_cached_pairs": 0,
            "serve_fallback_pairs": 0,
            "serve_p99_s": 0.0,
        }
        if cfg.serve_requests > 0:
            serve = _serve_phase(cfg, ablation, fault_plan, retry_policy)

    rounds = run.schedule.rounds
    total_seconds = run.total_seconds
    recovery = run.recovery
    oracle_ok = _oracle_agreement(corpus, run.results(), task.expected_scores, penalties)

    if point.crash and not ablation.journal:
        # no write-ahead journal: a crash restarts the whole run, so the
        # modeled restart bill is every round, paid again
        restart_rounds = rounds
        restart_overhead = total_seconds
    elif point.crash:
        restart_rounds = rounds - rounds_replayed
        restart_overhead = restart_rounds * (total_seconds / rounds)
    else:
        restart_rounds = 0
        restart_overhead = 0.0

    return {
        "pairs": cfg.pairs,
        "shards": ablation.resolve_shards(cfg.baseline_shards),
        "rounds": rounds,
        "total_seconds": total_seconds,
        "kernel_seconds": run.kernel_seconds,
        "recovery_seconds": run.recovery_seconds,
        "throughput_pairs_per_s": (
            cfg.pairs / total_seconds if total_seconds > 0 else 0.0
        ),
        "faults_seen": 0 if recovery is None else recovery.faults_seen,
        "rerun_pairs": 0 if recovery is None else len(recovery.rerun_pairs),
        "abandoned_pairs": (
            0 if recovery is None else len(recovery.abandoned_pairs)
        ),
        "oracle_checked": len(corpus),
        "oracle_ok": oracle_ok,
        "oracle_agreement": oracle_ok / len(corpus),
        "rounds_replayed": rounds_replayed,
        "resume_checked": resume_checked,
        "resume_identical": resume_identical,
        "restart_reexecuted_rounds": restart_rounds,
        "restart_overhead_seconds": restart_overhead,
        "net_drops": 0 if run.transport is None else run.transport.drops,
        "net_redeliveries": (
            0 if run.transport is None else run.transport.redeliveries
        ),
        "net_duplicates_absorbed": (
            0 if run.transport is None else run.transport.duplicates_absorbed
        ),
        "net_partition_blocked": (
            0 if run.transport is None else run.transport.partition_blocked
        ),
        "net_steals": 0 if run.transport is None else run.transport.steals,
        **serve,
    }


# -- delta + summary recomputation (shared with the validator) -----------------


def compute_delta(
    metrics: dict, base: dict, baseline_cell: str
) -> dict:
    """A cell's evidence deltas versus the baseline cell at its grid point."""

    def ratio(key: str) -> float:
        return metrics[key] / base[key] if base[key] else 0.0

    return {
        "baseline_cell": baseline_cell,
        "throughput_ratio": ratio("throughput_pairs_per_s"),
        "total_seconds_ratio": ratio("total_seconds"),
        "recovery_seconds_delta": (
            metrics["recovery_seconds"] - base["recovery_seconds"]
        ),
        "oracle_agreement_delta": (
            metrics["oracle_agreement"] - base["oracle_agreement"]
        ),
        "restart_overhead_delta": (
            metrics["restart_overhead_seconds"] - base["restart_overhead_seconds"]
        ),
        "serve_p99_ratio": ratio("serve_p99_s"),
        "serve_cached_pairs_delta": (
            metrics["serve_cached_pairs"] - base["serve_cached_pairs"]
        ),
        "serve_fallback_pairs_delta": (
            metrics["serve_fallback_pairs"] - base["serve_fallback_pairs"]
        ),
    }


def compute_summary(config: CampaignConfig, cells: list[dict]) -> dict:
    """The summary record, recomputed from the cell records."""
    baseline_clean = all(
        rec["metrics"]["oracle_agreement"] == 1.0
        for rec in cells
        if rec["ablation"] == config.baseline
    )
    resumes_checked = sum(
        1 for rec in cells if rec["metrics"]["resume_checked"]
    )
    resumes_identical = sum(
        1 for rec in cells if rec["metrics"]["resume_identical"] is True
    )
    return {
        "record": "summary",
        "cells": len(cells),
        "oracle_checked": sum(rec["metrics"]["oracle_checked"] for rec in cells),
        "oracle_ok": sum(rec["metrics"]["oracle_ok"] for rec in cells),
        "resumes_checked": resumes_checked,
        "resumes_identical": resumes_identical,
        "baseline_clean": baseline_clean,
        "ok": baseline_clean and resumes_identical == resumes_checked,
    }


# -- the report ----------------------------------------------------------------


@dataclass
class CampaignReport:
    """Everything a campaign learned, ready for JSONL serialization."""

    config: CampaignConfig
    #: full cell records (``{"record": "cell", ...}``), canonical order
    cells: list[dict]

    def summary(self) -> dict:
        return compute_summary(self.config, self.cells)

    @property
    def ok(self) -> bool:
        return bool(self.summary()["ok"])

    def cell(self, name: str) -> dict:
        for rec in self.cells:
            if rec["cell"] == name:
                return rec
        raise QaError(f"no such cell {name!r} in this campaign")

    def to_lines(self) -> list[dict]:
        return (
            [
                {
                    "record": "header",
                    "schema": CAMPAIGN_SCHEMA,
                    "config": self.config.to_dict(),
                }
            ]
            + self.cells
            + [self.summary()]
        )

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for line in self.to_lines():
                fh.write(json.dumps(line, sort_keys=True) + "\n")
        return path

    def summary_text(self) -> str:
        s = self.summary()
        status = "OK" if s["ok"] else "INCONSISTENT"
        return (
            f"campaign: {s['cells']} cells "
            f"({len(self.config.ablations)} ablations x "
            f"{len(self.config.grid)} fault points), "
            f"oracle {s['oracle_ok']}/{s['oracle_checked']}, "
            f"resumes {s['resumes_identical']}/{s['resumes_checked']} "
            f"byte-identical [{status}]"
        )


# -- execution -----------------------------------------------------------------


def plan_cells(config: CampaignConfig) -> list[CellTask]:
    """Every cell task, in the canonical (ablation-major) order.

    The baseline ablation comes first, so by the time any non-baseline
    cell completes, its reference cell's metrics are already known —
    what lets the runner stream final report lines incrementally.
    """
    penalties = config.penalties()
    corpus = generate_corpus(
        config.pairs,
        config.seed,
        CorpusConfig(max_len=config.length, max_edits=config.max_edits),
    )
    expected = tuple(
        reference_answers(case.pattern, case.text, penalties)["wfa_score"]
        for case in corpus
    )
    return [
        CellTask(
            config=config,
            ablation=ablation,
            point=point,
            point_index=index,
            expected_scores=expected,
        )
        for ablation in config.ablations
        for index, point in enumerate(config.grid)
    ]


def _reusable_prefix(
    config: CampaignConfig, report_path: Path
) -> dict[str, dict]:
    """Completed cell metrics salvageable from a torn report file.

    Parses the file leniently — a torn trailing line, a missing summary,
    or trailing garbage just shortens the salvaged prefix — but a
    *well-formed header for a different campaign* is a hard error: the
    caller asked to resume the wrong file.
    """
    try:
        raw_lines = report_path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return {}
    records = []
    for line in raw_lines:
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            break  # torn write: everything past it is untrusted
    if not records:
        return {}
    header = records[0]
    if not isinstance(header, dict) or header.get("record") != "header":
        return {}
    if header.get("schema") != CAMPAIGN_SCHEMA:
        raise QaError(
            f"cannot resume {report_path}: schema "
            f"{header.get('schema')!r} is not {CAMPAIGN_SCHEMA!r}"
        )
    if header.get("config") != config.to_dict():
        raise QaError(
            f"cannot resume {report_path}: the report was produced by a "
            "different campaign configuration"
        )
    reused: dict[str, dict] = {}
    for expected_name, record in zip(config.cell_names(), records[1:]):
        if not isinstance(record, dict) or record.get("record") != "cell":
            break
        if record.get("cell") != expected_name:
            break  # reordered/foreign cell: stop trusting the prefix
        metrics = record.get("metrics")
        if not isinstance(metrics, dict) or METRIC_KEYS - metrics.keys():
            break
        reused[expected_name] = metrics
    return reused


def _cell_metrics(
    tasks: list[CellTask], reused: dict[str, dict], workers: int
) -> Iterator[tuple[CellTask, dict]]:
    """Yield ``(task, metrics)`` in canonical order, computing missing
    cells sequentially or over a process pool."""
    todo = [task for task in tasks if task.name not in reused]
    computed: dict[str, dict] = {}
    if workers > 1 and len(todo) > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(todo))
            ) as pool:
                for task, metrics in zip(todo, pool.map(run_cell, todo)):
                    computed[task.name] = metrics
        except (OSError, BrokenProcessPool):
            # pool infrastructure failure: the sequential path is
            # byte-identical (same discipline as repro.pim.fleet)
            computed.clear()
    for task in tasks:
        if task.name in reused:
            yield task, reused[task.name]
        elif task.name in computed:
            yield task, computed[task.name]
        else:
            yield task, run_cell(task)


def run_campaign(
    config: Optional[CampaignConfig] = None,
    workers: int = 0,
    report_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    telemetry=None,
) -> CampaignReport:
    """Run every cell of a campaign; see the module docstring.

    ``workers > 1`` fans cells out over a process pool (cells are pure
    functions of their task, so the report is byte-identical at any
    worker count).  With ``resume=True`` and an existing ``report_path``,
    completed cells are salvaged from the (possibly torn) file and only
    the missing ones run; the rewritten report is byte-identical to an
    uninterrupted run's.

    When ``telemetry`` (a :class:`~repro.obs.telemetry.RunTelemetry`) is
    given, one ``campaign_cell`` event per cell and a closing
    ``campaign_done`` event are published at cumulative modeled time.
    """
    cfg = config if config is not None else CampaignConfig()
    cfg.validate()
    tasks = plan_cells(cfg)
    reused: dict[str, dict] = {}
    path = Path(report_path) if report_path is not None else None
    if resume and path is not None and path.exists():
        reused = _reusable_prefix(cfg, path)

    header = {
        "record": "header",
        "schema": CAMPAIGN_SCHEMA,
        "config": cfg.to_dict(),
    }
    cells: list[dict] = []
    baseline_metrics: dict[str, dict] = {}
    fh = None
    try:
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            fh = path.open("w", encoding="utf-8")
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            fh.flush()
        for task, metrics in _cell_metrics(tasks, reused, workers):
            if task.ablation.name == cfg.baseline:
                baseline_metrics[task.point.name] = metrics
                delta = None
            else:
                base_cell = cell_name(cfg.baseline, task.point.name)
                delta = compute_delta(
                    metrics, baseline_metrics[task.point.name], base_cell
                )
            record = {
                "record": "cell",
                "cell": task.name,
                "ablation": task.ablation.name,
                "fault_point": task.point.name,
                "metrics": metrics,
                "delta": delta,
            }
            cells.append(record)
            if fh is not None:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
        report = CampaignReport(config=cfg, cells=cells)
        if fh is not None:
            fh.write(json.dumps(report.summary(), sort_keys=True) + "\n")
    finally:
        if fh is not None:
            fh.close()

    if telemetry is not None:
        from repro.obs.events import CAMPAIGN_CELL, CAMPAIGN_DONE

        now = 0.0
        for record in cells:
            metrics = record["metrics"]
            now += metrics["total_seconds"]
            telemetry.events.publish(
                CAMPAIGN_CELL,
                now,
                ablation=record["ablation"],
                fault_point=record["fault_point"],
                oracle_agreement=metrics["oracle_agreement"],
                total_seconds=metrics["total_seconds"],
            )
        summary = report.summary()
        telemetry.events.publish(
            CAMPAIGN_DONE, now, cells=summary["cells"], ok=summary["ok"]
        )
    return report


# -- the validator -------------------------------------------------------------


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise QaError(f"{where}: {message}")


def _check_metrics(
    config: CampaignConfig,
    ablation: AblationConfig,
    point: FaultGridPoint,
    metrics: dict,
    where: str,
) -> None:
    """Recompute every derived figure inside one cell's metrics."""
    missing = METRIC_KEYS - metrics.keys()
    _require(not missing, where, f"metrics missing keys {sorted(missing)}")
    _require(
        metrics["pairs"] == config.pairs,
        where,
        f"cell claims {metrics['pairs']} pairs, campaign ran {config.pairs}",
    )
    _require(
        metrics["shards"] == ablation.resolve_shards(config.baseline_shards),
        where,
        f"cell claims {metrics['shards']} shards, ablation resolves to "
        f"{ablation.resolve_shards(config.baseline_shards)}",
    )
    _require(
        metrics["rounds"]
        == math.ceil(config.pairs / config.pairs_per_round),
        where,
        f"cell claims {metrics['rounds']} rounds for {config.pairs} pairs "
        f"at {config.pairs_per_round} per round",
    )
    expected_throughput = (
        metrics["pairs"] / metrics["total_seconds"]
        if metrics["total_seconds"] > 0
        else 0.0
    )
    _require(
        metrics["throughput_pairs_per_s"] == expected_throughput,
        where,
        "throughput does not recompute from pairs / total_seconds",
    )
    _require(
        metrics["oracle_checked"] == config.pairs,
        where,
        "oracle_checked disagrees with the campaign corpus size",
    )
    _require(
        0 <= metrics["oracle_ok"] <= metrics["oracle_checked"],
        where,
        "oracle_ok out of range",
    )
    _require(
        metrics["oracle_agreement"]
        == metrics["oracle_ok"] / metrics["oracle_checked"],
        where,
        "oracle_agreement does not recompute from oracle_ok / oracle_checked",
    )
    resume_expected = bool(point.crash and ablation.journal)
    _require(
        metrics["resume_checked"] == resume_expected,
        where,
        "resume_checked disagrees with the cell's journal/crash shape",
    )
    if not resume_expected:
        _require(
            metrics["resume_identical"] is None,
            where,
            "resume_identical set on a cell that never crash-resumed",
        )
        _require(
            metrics["rounds_replayed"] == 0,
            where,
            "rounds_replayed nonzero on a cell that never crash-resumed",
        )
    if point.crash and not ablation.journal:
        _require(
            metrics["restart_reexecuted_rounds"] == metrics["rounds"]
            and metrics["restart_overhead_seconds"] == metrics["total_seconds"],
            where,
            "journal-off crash cell must bill a full restart",
        )
    elif point.crash:
        reexec = metrics["rounds"] - metrics["rounds_replayed"]
        _require(
            metrics["restart_reexecuted_rounds"] == reexec,
            where,
            "restart_reexecuted_rounds does not recompute from "
            "rounds - rounds_replayed",
        )
        _require(
            metrics["restart_overhead_seconds"]
            == reexec * (metrics["total_seconds"] / metrics["rounds"]),
            where,
            "restart_overhead_seconds does not recompute",
        )
    else:
        _require(
            metrics["restart_reexecuted_rounds"] == 0
            and metrics["restart_overhead_seconds"] == 0.0,
            where,
            "restart bookkeeping nonzero without a crash grid point",
        )
    for key in _NET_METRIC_KEYS:
        _require(metrics[key] >= 0, where, f"{key} negative")
    if not point.net_active:
        _require(
            all(metrics[key] == 0 for key in _NET_METRIC_KEYS),
            where,
            "net counters nonzero at a grid point without network faults",
        )
    if point.partition_s > 0.0:
        # the partition window opens at the run origin, so the top
        # shard's first envelope is always blocked at least once
        _require(
            metrics["net_partition_blocked"] >= 1,
            where,
            "partition grid point never blocked an envelope",
        )
    _require(
        metrics["net_steals"] == 0,
        where,
        "campaign cells run without hedging; net_steals must be 0",
    )
    if config.serve_requests == 0:
        _require(
            metrics["serve_completed"] == 0 and metrics["serve_rejected"] == 0,
            where,
            "serve figures nonzero in a campaign without a serve phase",
        )
    else:
        _require(
            metrics["serve_completed"] + metrics["serve_rejected"]
            == config.serve_requests,
            where,
            "serve completed+rejected does not add up to the replayed trace",
        )


def validate_campaign_report(source: Union[str, Path, list[dict]]) -> dict:
    """Fully recompute a campaign report; return its summary.

    Raises :class:`~repro.errors.QaError` when the report's schema is
    foreign, its cell set is missing/duplicated/reordered versus the
    declared ablation x grid cross, any per-cell derived figure
    (throughput, oracle agreement, restart bookkeeping) fails to
    recompute, any delta disagrees with the baseline cell at the same
    grid point, or the summary disagrees with the cells — the contract
    checks CI needs before citing a cell as evidence.
    """
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
        try:
            records = [json.loads(line) for line in text.splitlines() if line]
        except json.JSONDecodeError as exc:
            raise QaError(f"campaign report is not valid JSONL: {exc}") from exc
    else:
        records = list(source)

    if len(records) < 2:
        raise QaError("campaign report needs at least a header and a summary")
    header, *body, summary = records
    if header.get("record") != "header" or header.get("schema") != CAMPAIGN_SCHEMA:
        raise QaError(
            f"bad header: expected schema {CAMPAIGN_SCHEMA!r}, got {header!r}"
        )
    config = CampaignConfig.from_dict(header.get("config") or {})
    if summary.get("record") != "summary":
        raise QaError("last record must be the summary")

    expected_names = config.cell_names()
    seen_names = [rec.get("cell") for rec in body]
    if seen_names != expected_names:
        missing = sorted(set(expected_names) - set(seen_names))
        extra = sorted(set(seen_names) - set(expected_names))
        duplicated = sorted(
            {name for name in seen_names if seen_names.count(name) > 1}
        )
        detail = []
        if missing:
            detail.append(f"missing cells {missing}")
        if extra:
            detail.append(f"unknown cells {extra}")
        if duplicated:
            detail.append(f"duplicated cells {duplicated}")
        if not detail:
            detail.append("cells out of canonical order")
        raise QaError(
            "campaign cells disagree with the declared ablation x grid "
            f"cross: {'; '.join(detail)}"
        )

    ablations = {a.name: a for a in config.ablations}
    points = {g.name: g for g in config.grid}
    baseline_metrics: dict[str, dict] = {}
    for rec in body:
        where = f"cell {rec.get('cell')!r}"
        if rec.get("record") != "cell":
            raise QaError(f"{where}: not a cell record")
        ablation = ablations.get(rec.get("ablation"))
        point = points.get(rec.get("fault_point"))
        _require(ablation is not None, where, "unknown ablation")
        _require(point is not None, where, "unknown fault point")
        _require(
            rec.get("cell") == cell_name(ablation.name, point.name),
            where,
            "cell id disagrees with its ablation/fault_point fields",
        )
        metrics = rec.get("metrics")
        _require(isinstance(metrics, dict), where, "metrics must be an object")
        _check_metrics(config, ablation, point, metrics, where)
        if ablation.name == config.baseline:
            _require(
                rec.get("delta") is None,
                where,
                "baseline cells must not carry a delta",
            )
            baseline_metrics[point.name] = metrics
        else:
            base = baseline_metrics[point.name]
            expected_delta = compute_delta(
                metrics, base, cell_name(config.baseline, point.name)
            )
            _require(
                rec.get("delta") == expected_delta,
                where,
                "delta does not recompute against the baseline cell",
            )

    expected_summary = compute_summary(config, body)
    if summary != expected_summary:
        mismatched = sorted(
            key
            for key in set(summary) | set(expected_summary)
            if summary.get(key) != expected_summary.get(key)
        )
        raise QaError(
            "summary does not recompute from the cell records "
            f"(differs in: {', '.join(mismatched)})"
        )
    return summary
