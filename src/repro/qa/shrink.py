"""Greedy failing-case shrinker.

When the oracle flags a disagreement on a 30-base pair, the actual bug
usually reproduces on 3 bases.  :func:`shrink_case` minimizes a failing
``(pattern, text)`` against a caller-supplied predicate the way
Hypothesis and C-Reduce do: repeatedly delete chunks (halving the chunk
size down to single characters) from either sequence, keeping any
deletion that still fails, until a fixed point.

The predicate receives candidate ``(pattern, text)`` strings and returns
``True`` while the failure still reproduces.  It is re-run on every
candidate, so it should be the *cheap* reproduction (one kernel call),
not the full trial sweep.  Deterministic: candidates are tried in a
fixed order, so the same failing input always shrinks to the same
minimal pair.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import QaError

__all__ = ["shrink_case"]

Predicate = Callable[[str, str], bool]


def _shrink_one(keep_failing: Callable[[str], bool], seq: str) -> str:
    """Greedily delete chunks from one string while the failure holds."""
    chunk = max(1, len(seq) // 2)
    while chunk >= 1:
        start = 0
        while start < len(seq):
            candidate = seq[:start] + seq[start + chunk :]
            if keep_failing(candidate):
                seq = candidate  # keep the deletion, retry same offset
            else:
                start += chunk
        chunk //= 2
    return seq


def shrink_case(
    pattern: str,
    text: str,
    predicate: Predicate,
    max_rounds: int = 10,
) -> tuple[str, str]:
    """Minimize a failing pair; returns the smallest still-failing pair.

    Alternates pattern- and text-shrinking passes until neither side
    loses a character (or ``max_rounds`` is hit — a safety valve against
    flaky predicates, which are a bug in the caller's reproduction).
    """
    if not predicate(pattern, text):
        raise QaError("shrink_case needs a failing input (predicate was False)")
    for _ in range(max_rounds):
        before = (pattern, text)
        pattern = _shrink_one(lambda s: predicate(s, text), pattern)
        text = _shrink_one(lambda s: predicate(pattern, s), text)
        if (pattern, text) == before:
            break
    return pattern, text
