"""Differential-verification (QA) harness for the PIM aligner.

The oracle hierarchy, weakest to strongest evidence:

1. **golden** — hand-pinned cases with known scores/CIGARs (unit tests);
2. **property** — invariants on single implementations (Hypothesis);
3. **differential** — the PIM kernel against independent host
   implementations (:class:`~repro.core.aligner.WavefrontAligner`,
   Gotoh's DP, Myers' bit-parallel / O(ND) algorithms), which must all
   produce the same optimal score and mutually valid CIGARs;
4. **fault-injection** — differential agreement *under* an adversarial
   :class:`~repro.pim.faults.FaultPlan`: faults may cost retries, never
   correctness.

This package provides the corpus generators (:mod:`repro.qa.corpus`),
the oracle (:mod:`repro.qa.oracle`), a greedy failing-case shrinker
(:mod:`repro.qa.shrink`), the seeded trial runner with its JSONL
report (:mod:`repro.qa.runner`), surfaced as the ``repro qa`` CLI
subcommand, and the ablation x chaos campaign runner
(:mod:`repro.qa.campaign`, the ``repro campaign`` subcommand), which
crosses the oracle sweep with seeded fault grids and emits a
schema-validated evidence report.
"""

from repro.qa.campaign import (
    CampaignConfig,
    CampaignReport,
    FaultGridPoint,
    STANDARD_GRID,
    run_campaign,
    validate_campaign_report,
)
from repro.qa.corpus import CorpusConfig, QaCase, generate_corpus
from repro.qa.oracle import OracleVerdict, check_case, reference_answers
from repro.qa.runner import QaConfig, QaReport, run_qa, validate_qa_report
from repro.qa.shrink import shrink_case

__all__ = [
    "CorpusConfig",
    "QaCase",
    "generate_corpus",
    "OracleVerdict",
    "check_case",
    "reference_answers",
    "QaConfig",
    "QaReport",
    "run_qa",
    "validate_qa_report",
    "shrink_case",
    "CampaignConfig",
    "CampaignReport",
    "FaultGridPoint",
    "STANDARD_GRID",
    "run_campaign",
    "validate_campaign_report",
]
