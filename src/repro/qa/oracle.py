"""The differential oracle: one kernel answer vs. three independent DPs.

For every case the PIM kernel's ``(score, cigar)`` must

1. carry a CIGAR that **replays** against the input pair
   (:meth:`~repro.core.cigar.Cigar.validate`);
2. **re-score** under the penalty model to exactly the reported score
   (:meth:`~repro.core.cigar.Cigar.score`);
3. match the host :class:`~repro.core.aligner.WavefrontAligner` score;
4. match Gotoh's full-matrix DP (:func:`repro.baselines.gotoh.gotoh_score`)
   — a non-wavefront algorithm, so a shared WFA bug cannot hide here;
5. under edit penalties, additionally match Myers' bit-parallel edit
   distance and the textbook Levenshtein DP
   (:mod:`repro.baselines.bitparallel`).

Checks 1–2 are what make fault injection safe: a corrupted result
either fails to parse (typed :class:`~repro.errors.CorruptResultError`)
or fails here — it is never silently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.bitparallel import levenshtein_dp, myers_edit_distance
from repro.baselines.gotoh import gotoh_score
from repro.core.aligner import WavefrontAligner
from repro.core.cigar import Cigar
from repro.core.penalties import EditPenalties, Penalties
from repro.errors import CigarError
from repro.qa.corpus import QaCase

__all__ = ["OracleVerdict", "reference_answers", "check_case"]


@dataclass(frozen=True)
class OracleVerdict:
    """Outcome of checking one case against the oracle hierarchy."""

    case: QaCase
    pim_score: Optional[int]
    pim_cigar: Optional[str]
    expected_score: int
    failures: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            **self.case.to_dict(),
            "pim_score": self.pim_score,
            "pim_cigar": self.pim_cigar,
            "expected_score": self.expected_score,
            "ok": self.ok,
            "failures": list(self.failures),
        }


def reference_answers(pattern: str, text: str, penalties: Penalties) -> dict:
    """Independent host answers for one pair under ``penalties``."""
    wfa = WavefrontAligner(penalties).align(pattern, text)
    answers = {
        "wfa_score": wfa.score,
        "wfa_cigar": str(wfa.cigar) if wfa.cigar is not None else None,
        "gotoh_score": gotoh_score(pattern, text, penalties),
    }
    if isinstance(penalties, EditPenalties):
        answers["myers_score"] = myers_edit_distance(pattern, text)
        answers["levenshtein_score"] = levenshtein_dp(pattern, text)
    return answers


def check_case(
    case: QaCase,
    pim_score: Optional[int],
    pim_cigar: Optional[Cigar],
    penalties: Penalties,
) -> OracleVerdict:
    """Run the full oracle hierarchy on one kernel answer.

    ``pim_score=None`` marks a case the kernel never answered (e.g.
    abandoned under fault injection) — reported as its own failure kind
    so a degraded run cannot masquerade as a verified one.
    """
    answers = reference_answers(case.pattern, case.text, penalties)
    expected = answers["wfa_score"]
    failures: list[str] = []

    for name, value in answers.items():
        if name.endswith("_score") and value != expected:
            failures.append(
                f"oracle-split: {name}={value} disagrees with wfa_score={expected}"
            )

    if pim_score is None:
        failures.append("missing: kernel produced no result for this case")
        return OracleVerdict(
            case=case,
            pim_score=None,
            pim_cigar=None,
            expected_score=expected,
            failures=tuple(failures),
        )

    if pim_cigar is None:
        failures.append("missing: kernel produced a score but no CIGAR")
    else:
        try:
            pim_cigar.validate(case.pattern, case.text)
        except CigarError as exc:
            failures.append(f"cigar-invalid: {exc}")
        else:
            rescored = pim_cigar.score(penalties)
            if rescored != pim_score:
                failures.append(
                    f"score-reconstruction: CIGAR re-scores to {rescored}, "
                    f"kernel reported {pim_score}"
                )

    if pim_score != expected:
        failures.append(
            f"differential: kernel score {pim_score} != oracle score {expected}"
        )

    return OracleVerdict(
        case=case,
        pim_score=pim_score,
        pim_cigar=str(pim_cigar) if pim_cigar is not None else None,
        expected_score=expected,
        failures=tuple(failures),
    )
