"""Seeded QA trial runner with a machine-checkable JSONL report.

``run_qa`` pushes one seeded corpus through the PIM system under every
configured penalty model, checks each kernel answer against the
differential oracle (:mod:`repro.qa.oracle`), greedily shrinks any
disagreement to a minimal reproduction (:mod:`repro.qa.shrink`), and
emits a JSONL report:

* line 1 — a ``header`` record: schema tag + the full run config;
* one ``case`` record per (penalty model, corpus case) verdict;
* last line — a ``summary`` record with the aggregate counts (and the
  fault-recovery summaries, when the run executed under a
  :class:`~repro.pim.faults.FaultPlan`).

``validate_qa_report`` re-checks a written report's schema and internal
consistency, so CI can gate on reports produced elsewhere.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.cigar import Cigar
from repro.core.penalties import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    Penalties,
)
from repro.data.generator import ReadPair
from repro.errors import QaError
from repro.pim.config import PimSystemConfig
from repro.pim.faults import FaultPlan, RetryPolicy
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem
from repro.qa.corpus import CorpusConfig, generate_corpus
from repro.qa.oracle import OracleVerdict, check_case
from repro.qa.shrink import shrink_case

__all__ = [
    "QaConfig",
    "QaReport",
    "run_qa",
    "validate_qa_report",
    "penalty_name",
    "REPORT_SCHEMA",
]

REPORT_SCHEMA = "repro.qa.report/v1"

#: the default differential sweep: the three penalty models the kernel
#: supports on every code path (two-piece affine rides the same machinery
#: as affine and has its own golden tests).
DEFAULT_PENALTY_MODELS: tuple[Penalties, ...] = (
    EditPenalties(),
    LinearPenalties(mismatch=2, indel=3),
    AffinePenalties(mismatch=4, gap_open=6, gap_extend=2),
)


def penalty_name(penalties: Penalties) -> str:
    """Stable human/report name for a penalty model."""
    if isinstance(penalties, EditPenalties):
        return "edit"
    if isinstance(penalties, AffinePenalties):
        return (
            f"affine({penalties.mismatch},{penalties.gap_open},"
            f"{penalties.gap_extend})"
        )
    if isinstance(penalties, LinearPenalties):
        return f"linear({penalties.mismatch},{penalties.indel})"
    return type(penalties).__name__


@dataclass(frozen=True)
class QaConfig:
    """One ``repro qa`` run, fully determined by its fields."""

    trials: int = 200
    seed: int = 42
    max_len: int = 32
    max_edits: int = 4
    num_dpus: int = 4
    tasklets: int = 4
    workers: int = 1
    #: > 1 routes the sweep through a round-striped
    #: :class:`~repro.pim.fleet.FleetCoordinator` (``num_dpus`` DPUs per
    #: shard, ``fault_domain="uniform"``), so the differential oracle
    #: exercises the fleet path instead of the lone scheduler.
    shards: int = 1
    #: process-pool width for the fleet path (0/1 = inline).
    shard_workers: int = 1
    penalty_models: tuple[Penalties, ...] = DEFAULT_PENALTY_MODELS
    shrink: bool = True
    #: optional fault plan: the whole sweep then runs through the
    #: recovery layer, and the oracle must *still* agree on every pair.
    fault_plan: Optional[FaultPlan] = None
    retry_policy: Optional[RetryPolicy] = None

    def validate(self) -> None:
        if self.trials < 1:
            raise QaError(f"trials must be >= 1, got {self.trials}")
        if self.num_dpus < 1:
            raise QaError(f"num_dpus must be >= 1, got {self.num_dpus}")
        if self.shards < 1:
            raise QaError(f"shards must be >= 1, got {self.shards}")
        if self.shard_workers < 0:
            raise QaError(
                f"shard_workers must be >= 0, got {self.shard_workers}"
            )
        if not self.penalty_models:
            raise QaError("need at least one penalty model")
        self.corpus_config().validate()

    def corpus_config(self) -> CorpusConfig:
        return CorpusConfig(max_len=self.max_len, max_edits=self.max_edits)

    def to_dict(self) -> dict:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "max_len": self.max_len,
            "max_edits": self.max_edits,
            "num_dpus": self.num_dpus,
            "tasklets": self.tasklets,
            "workers": self.workers,
            "shards": self.shards,
            "shard_workers": self.shard_workers,
            "penalty_models": [penalty_name(p) for p in self.penalty_models],
            "shrink": self.shrink,
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.to_dict()
            ),
        }


@dataclass
class QaReport:
    """Everything ``run_qa`` learned, ready for JSONL serialization."""

    config: QaConfig
    #: penalty-model name -> verdicts, in corpus order
    verdicts: dict[str, list[OracleVerdict]] = field(default_factory=dict)
    #: minimal reproductions of disagreements: (model, pattern, text)
    shrunk: list[dict] = field(default_factory=list)
    #: penalty-model name -> recovery-report dict (fault runs only)
    recovery: dict[str, dict] = field(default_factory=dict)

    @property
    def cases_checked(self) -> int:
        return sum(len(v) for v in self.verdicts.values())

    @property
    def disagreements(self) -> list[OracleVerdict]:
        return [v for vs in self.verdicts.values() for v in vs if not v.ok]

    @property
    def all_ok(self) -> bool:
        return not self.disagreements

    def to_lines(self) -> list[dict]:
        lines: list[dict] = [
            {
                "record": "header",
                "schema": REPORT_SCHEMA,
                "config": self.config.to_dict(),
            }
        ]
        for model, verdicts in self.verdicts.items():
            for verdict in verdicts:
                lines.append(
                    {"record": "case", "penalties": model, **verdict.to_dict()}
                )
        lines.append(
            {
                "record": "summary",
                "trials": self.config.trials,
                "cases_checked": self.cases_checked,
                "disagreements": len(self.disagreements),
                "ok": self.all_ok,
                "shrunk": self.shrunk,
                "recovery": self.recovery or None,
            }
        )
        return lines

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for line in self.to_lines():
                fh.write(json.dumps(line, sort_keys=True) + "\n")
        return path

    def summary(self) -> str:
        status = "OK" if self.all_ok else "DISAGREEMENTS"
        return (
            f"qa: {self.cases_checked} checks over {self.config.trials} cases "
            f"x {len(self.verdicts)} penalty models -> "
            f"{len(self.disagreements)} disagreement(s) [{status}]"
        )


def _single_pair_system(config: QaConfig, penalties: Penalties) -> PimSystem:
    """A minimal 1-DPU system for shrink-predicate reproductions."""
    return PimSystem(
        PimSystemConfig(
            num_dpus=1, num_ranks=1, tasklets=1, num_simulated_dpus=1
        ),
        kernel_config=KernelConfig(
            penalties=penalties,
            max_read_len=max(config.max_len, 1),
            max_edits=config.max_edits,
        ),
    )


def _kernel_answer(
    system: PimSystem, pattern: str, text: str
) -> tuple[Optional[int], Optional[Cigar]]:
    run = system.align([ReadPair(pattern, text)], collect_results=True)
    if not run.results:
        return None, None
    _, score, cigar = run.results[0]
    return score, cigar


def run_qa(config: Optional[QaConfig] = None) -> QaReport:
    """Run the seeded differential sweep; see the module docstring."""
    cfg = config if config is not None else QaConfig()
    cfg.validate()
    corpus = generate_corpus(cfg.trials, cfg.seed, cfg.corpus_config())
    report = QaReport(config=cfg)

    for penalties in cfg.penalty_models:
        model = penalty_name(penalties)
        pairs = [ReadPair(c.pattern, c.text) for c in corpus]
        system_config = PimSystemConfig(
            num_dpus=cfg.num_dpus,
            num_ranks=1,
            tasklets=cfg.tasklets,
            num_simulated_dpus=cfg.num_dpus,
            workers=cfg.workers,
        )
        kernel_config = KernelConfig(
            penalties=penalties,
            max_read_len=cfg.max_len,
            max_edits=cfg.max_edits,
        )
        if cfg.shards > 1:
            import math

            from repro.pim.fleet import FleetCoordinator

            fleet_run = FleetCoordinator(
                system_config,
                kernel_config,
                shards=cfg.shards,
                shard_workers=cfg.shard_workers,
                fault_domain="uniform",
            ).run(
                pairs,
                # at least two rounds per shard, so the sweep actually
                # exercises round striping rather than shard 0 alone
                pairs_per_round=max(
                    1, math.ceil(cfg.trials / (2 * cfg.shards))
                ),
                collect_results=True,
                fault_plan=cfg.fault_plan,
                retry_policy=cfg.retry_policy,
            )
            results = fleet_run.results()
            recovery = fleet_run.recovery
        else:
            run = PimSystem(system_config, kernel_config=kernel_config).align(
                pairs,
                collect_results=True,
                fault_plan=cfg.fault_plan,
                retry_policy=cfg.retry_policy,
            )
            results = run.results
            recovery = run.recovery
        by_index = {index: (score, cigar) for index, score, cigar in results}
        verdicts = [
            check_case(
                case,
                by_index.get(case.index, (None, None))[0],
                by_index.get(case.index, (None, None))[1],
                penalties,
            )
            for case in corpus
        ]
        report.verdicts[model] = verdicts
        if recovery is not None:
            report.recovery[model] = recovery.to_dict()

        if cfg.shrink:
            repro_system = _single_pair_system(cfg, penalties)

            def still_fails(pattern: str, text: str) -> bool:
                score, cigar = _kernel_answer(repro_system, pattern, text)
                probe = check_case(
                    type(corpus[0])(index=0, kind="shrink", pattern=pattern, text=text),
                    score,
                    cigar,
                    penalties,
                )
                return not probe.ok

            for verdict in verdicts:
                if verdict.ok:
                    continue
                # The batch failure may not reproduce on a lone kernel
                # call (e.g. a fault-plan abandonment): record it
                # unshrunk rather than crash the sweep.
                if not still_fails(verdict.case.pattern, verdict.case.text):
                    report.shrunk.append(
                        {
                            "penalties": model,
                            "index": verdict.case.index,
                            "pattern": verdict.case.pattern,
                            "text": verdict.case.text,
                            "minimal": False,
                        }
                    )
                    continue
                pattern, text = shrink_case(
                    verdict.case.pattern, verdict.case.text, still_fails
                )
                report.shrunk.append(
                    {
                        "penalties": model,
                        "index": verdict.case.index,
                        "pattern": pattern,
                        "text": text,
                        "minimal": True,
                    }
                )
    return report


_CASE_KEYS = {
    "record",
    "penalties",
    "index",
    "kind",
    "pattern",
    "text",
    "pim_score",
    "pim_cigar",
    "expected_score",
    "ok",
    "failures",
}


def validate_qa_report(source: Union[str, Path, list[dict]]) -> dict:
    """Check a JSONL report's schema and consistency; return the summary.

    Accepts a path or pre-parsed records.  Raises :class:`QaError` on a
    missing/foreign schema tag, malformed case records, or summary
    counts that disagree with the case lines — the checks CI needs to
    trust a report it did not produce.
    """
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
        try:
            records = [json.loads(line) for line in text.splitlines() if line]
        except json.JSONDecodeError as exc:
            raise QaError(f"report is not valid JSONL: {exc}") from exc
    else:
        records = list(source)

    if len(records) < 2:
        raise QaError("report needs at least a header and a summary record")
    header, *body, summary = records
    if header.get("record") != "header" or header.get("schema") != REPORT_SCHEMA:
        raise QaError(
            f"bad header: expected schema {REPORT_SCHEMA!r}, got {header!r}"
        )
    if summary.get("record") != "summary":
        raise QaError("last record must be the summary")

    disagreements = 0
    for record in body:
        if record.get("record") != "case":
            raise QaError(f"unexpected record between header and summary: {record!r}")
        missing = _CASE_KEYS - record.keys()
        if missing:
            raise QaError(f"case record missing keys {sorted(missing)}: {record!r}")
        if bool(record["failures"]) == bool(record["ok"]):
            raise QaError(f"case ok/failures fields disagree: {record!r}")
        disagreements += 0 if record["ok"] else 1

    if summary.get("cases_checked") != len(body):
        raise QaError(
            f"summary counts {summary.get('cases_checked')} cases, "
            f"report has {len(body)}"
        )
    if summary.get("disagreements") != disagreements:
        raise QaError(
            f"summary claims {summary.get('disagreements')} disagreements, "
            f"case records show {disagreements}"
        )
    if summary.get("ok") != (disagreements == 0):
        raise QaError("summary ok flag disagrees with its disagreement count")
    return summary
