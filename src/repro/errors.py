"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.  The PIM simulator raises the
more specific subclasses to mirror the failure modes of the real UPMEM
toolchain (out-of-memory in WRAM/MRAM, misaligned DMA, oversubscribed
tasklets, malformed MRAM layouts).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AlignmentError(ReproError):
    """An aligner was misused or failed to produce a valid alignment."""


class PenaltyError(ReproError):
    """Invalid alignment penalty configuration."""


class CigarError(ReproError):
    """A CIGAR string is malformed or inconsistent with its sequences."""


class DataError(ReproError):
    """Workload generation or sequence I/O failure."""


class PimError(ReproError):
    """Base class for PIM-simulator errors."""


class MemoryFault(PimError):
    """Out-of-bounds access to a simulated MRAM or WRAM memory."""


class AlignmentFault(PimError):
    """A DMA transfer violated UPMEM's 8-byte alignment / size rules."""


class AllocationError(PimError):
    """A simulated allocator ran out of its arena."""


class LayoutError(PimError):
    """An MRAM layout was malformed or overflowed the 64 MB bank."""


class KernelError(PimError):
    """A DPU kernel failed during simulated execution."""


class FaultError(PimError):
    """Base class for runtime faults of the (simulated) PIM machine.

    Unlike the planning/validation errors above, these model failures a
    production deployment must *tolerate*: hardware gives up mid-run,
    transfers are cut short, data rots in MRAM.  The host-side recovery
    layer (:mod:`repro.pim.faults`) catches exactly this subtree for its
    retry/requeue logic — programming errors still propagate.
    """

    def __init__(self, message: str, dpu_id: int | None = None) -> None:
        if dpu_id is not None:
            message = f"DPU {dpu_id}: {message}"
        super().__init__(message)
        self.dpu_id = dpu_id


class DpuFailure(FaultError):
    """A DPU died or refused to launch (allocation/boot/ECC failure)."""


class TransferError(FaultError):
    """A host<->DPU transfer was truncated or timed out mid-copy."""


class CorruptResultError(FaultError):
    """Gathered MRAM data failed an integrity check.

    Raised instead of ever returning a silently wrong alignment: a
    malformed result header, an unparseable record, or a CIGAR/score
    that does not reconstruct against its input pair.
    """


class TaskletStallError(FaultError):
    """A tasklet exceeded its stall budget (modeled watchdog trip)."""


class TransportError(PimError):
    """The modeled shard transport could not deliver a message.

    Raised by :mod:`repro.pim.transport` when a link exhausts its
    redelivery budget with no healthy shard to steal the work onto —
    i.e. the ``NetworkFaultPlan`` violates the liveness precondition
    that at least one shard stays reachable per partition epoch.
    At-least-once delivery means this is *loud*: the coordinator never
    silently drops a round.
    """


class JournalError(PimError):
    """A run journal is malformed, truncated badly, or does not match
    the workload/configuration it is being resumed against."""


class DegradedCapacity(UserWarning):
    """The fleet is running below full capacity (quarantined DPUs).

    A *warning*, not an error: quarantine is the health ledger working
    as designed — rounds proceed on the healthy remainder — but callers
    (and operators reading logs) must be able to see the capacity loss.
    Emitted by the scheduler when placement excludes quarantined DPUs,
    alongside the ``pim_dpus_quarantined`` / ``pim_healthy_capacity``
    metrics.
    """


class QaError(ReproError):
    """Differential-verification harness misuse or invariant failure."""


class ServeError(ReproError):
    """Base class for alignment-service (``repro.serve``) errors."""


class Overloaded(ServeError):
    """Admission control rejected a request: the bounded queue is full.

    Raised *synchronously* by :meth:`~repro.serve.service.AlignmentService.submit`
    instead of buffering without bound — the caller is expected to shed
    load or retry later.  Carries the queue occupancy that triggered the
    rejection so clients and load generators can report it.
    """

    def __init__(self, message: str, queued_pairs: int = 0, limit: int = 0) -> None:
        super().__init__(message)
        self.queued_pairs = queued_pairs
        self.limit = limit


class RequestCancelled(ServeError):
    """A pending request was cancelled before its future resolved."""


class DeadlineExceeded(ServeError):
    """A request missed its modeled deadline.

    Raised through the request's future when either (a) the deadline
    passes on the service clock while the request is still unresolved,
    or (b) the request's modeled completion time lands past the
    deadline.  Carries the deadline and (when known) the modeled
    completion so clients can log the miss margin.
    """

    def __init__(
        self,
        message: str,
        deadline_s: float = 0.0,
        completion_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.deadline_s = deadline_s
        self.completion_s = completion_s


class ConfigError(ReproError):
    """Invalid platform / experiment configuration."""


class TelemetryError(ReproError):
    """Metrics/profiling misuse or a failed telemetry invariant.

    Raised by :mod:`repro.obs` for registry misuse (re-registering a
    metric under a different kind, malformed snapshots), invalid Chrome
    trace documents, and reconciliation failures between the profiler's
    span totals and the timing model's reported seconds.
    """


class CardinalityError(TelemetryError):
    """A metric family exceeded its label-cardinality cap.

    Unbounded label growth (e.g. a per-request label) turns a metrics
    registry into a memory leak and makes its rendered output useless;
    the registry refuses to create the series instead.  See
    :class:`repro.obs.metrics.MetricsRegistry` (``max_series_per_family``).
    """


class LedgerError(TelemetryError):
    """A malformed, unreadable, or non-comparable perf-ledger record.

    Raised by :mod:`repro.obs.bench` when a ``BENCH_ledger.json`` /
    baseline record fails schema validation, when a requested scenario
    does not exist, or when a regression comparison is asked to compare
    records with different config fingerprints.
    """
