"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.  The PIM simulator raises the
more specific subclasses to mirror the failure modes of the real UPMEM
toolchain (out-of-memory in WRAM/MRAM, misaligned DMA, oversubscribed
tasklets, malformed MRAM layouts).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AlignmentError(ReproError):
    """An aligner was misused or failed to produce a valid alignment."""


class PenaltyError(ReproError):
    """Invalid alignment penalty configuration."""


class CigarError(ReproError):
    """A CIGAR string is malformed or inconsistent with its sequences."""


class DataError(ReproError):
    """Workload generation or sequence I/O failure."""


class PimError(ReproError):
    """Base class for PIM-simulator errors."""


class MemoryFault(PimError):
    """Out-of-bounds access to a simulated MRAM or WRAM memory."""


class AlignmentFault(PimError):
    """A DMA transfer violated UPMEM's 8-byte alignment / size rules."""


class AllocationError(PimError):
    """A simulated allocator ran out of its arena."""


class LayoutError(PimError):
    """An MRAM layout was malformed or overflowed the 64 MB bank."""


class KernelError(PimError):
    """A DPU kernel failed during simulated execution."""


class ConfigError(ReproError):
    """Invalid platform / experiment configuration."""


class TelemetryError(ReproError):
    """Metrics/profiling misuse or a failed telemetry invariant.

    Raised by :mod:`repro.obs` for registry misuse (re-registering a
    metric under a different kind, malformed snapshots), invalid Chrome
    trace documents, and reconciliation failures between the profiler's
    span totals and the timing model's reported seconds.
    """
