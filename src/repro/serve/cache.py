"""Result cache for the alignment service.

Alignment is a pure function of ``(pattern, text, penalties, kernel
configuration)``, which makes served results perfectly cacheable.  The
**cache key** is the SHA-256 digest of a canonical rendering of exactly
those inputs (see :func:`result_key`) — two requests share an entry iff
a fresh kernel run would be bit-identical for both, and any change to
the penalty model or the kernel's compile-time plan (read-length bound,
edit budget, traceback mode, staging, span) changes the key.

Correctness guarantee: the cache stores the *exact* result tuple the
kernel produced — score, CIGAR object, and aligned-region starts — so a
hit is byte-identical to a fresh run.  Property tests in
``tests/test_serve_cache.py`` pin this for arbitrary request streams and
for eviction under tiny capacities.

Two deterministic eviction policies:

* ``"lru"`` — least-recently-used (insertion-ordered dict, moved on
  access);
* ``"lfu"`` — least-frequently-used, ties broken by least-recent use,
  both tracked with logical counters (no wall clock anywhere).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cigar import Cigar
    from repro.data.generator import ReadPair
    from repro.pim.kernel import KernelConfig

__all__ = ["CachedResult", "CacheStats", "ResultCache", "result_key", "kernel_fingerprint"]

#: (score, cigar-or-None, (pattern_start, text_start)) — exactly what a
#: fresh :meth:`~repro.pim.system.PimSystem.align` yields per pair.
CachedResult = Tuple[int, Optional["Cigar"], Tuple[int, int]]


def kernel_fingerprint(kernel_config: "KernelConfig") -> str:
    """Canonical text for every kernel knob that can change a result.

    Dataclass ``repr`` is deterministic (field order is definition
    order, values render with ``repr``), unlike ``hash()`` which is
    process-salted.
    """
    kc = kernel_config
    return "|".join(
        (
            repr(kc.penalties),
            str(kc.max_read_len),
            str(kc.max_edits),
            str(kc.traceback),
            str(kc.adaptive),
            str(kc.staging_chunk_bytes),
            repr(kc.span),
        )
    )


def result_key(pair: "ReadPair", kernel_config: "KernelConfig") -> str:
    """SHA-256 digest keying one (seq-pair, penalties, kernel config)."""
    payload = "\x1f".join(
        (pair.pattern, pair.text, kernel_fingerprint(kernel_config))
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
        }


class _Entry:
    __slots__ = ("value", "freq", "last_used")

    def __init__(self, value: CachedResult, last_used: int) -> None:
        self.value = value
        self.freq = 0
        self.last_used = last_used


class ResultCache:
    """Bounded, deterministic LRU/LFU map from result key to result."""

    POLICIES = ("lru", "lfu")

    def __init__(self, capacity: int, policy: str = "lru") -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        if policy not in self.POLICIES:
            raise ConfigError(
                f"cache policy must be one of {self.POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self.stats = CacheStats()
        self._entries: dict[str, _Entry] = {}
        self._tick = 0  # logical access counter (recency without a clock)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def _touch(self, key: str, entry: _Entry) -> None:
        self._tick += 1
        entry.freq += 1
        entry.last_used = self._tick
        if self.policy == "lru":
            # keep dict insertion order == recency order
            self._entries.pop(key)
            self._entries[key] = entry

    def get(self, key: str) -> Optional[CachedResult]:
        """The cached result, or ``None`` (counts a hit / miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(key, entry)
        return entry.value

    def _victim(self) -> str:
        if self.policy == "lru":
            return next(iter(self._entries))  # oldest insertion/access
        # lfu: least frequent, ties broken by least recent use
        return min(
            self._entries,
            key=lambda k: (self._entries[k].freq, self._entries[k].last_used),
        )

    def put(self, key: str, value: CachedResult) -> None:
        """Insert (or refresh) an entry, evicting deterministically."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.value = value
            self._touch(key, entry)
            return
        if len(self._entries) >= self.capacity:
            del self._entries[self._victim()]
            self.stats.evictions += 1
        self._tick += 1
        self._entries[key] = _Entry(value, self._tick)
        self.stats.inserts += 1
