"""Batch dispatch: from formed batches to per-pair results.

The dispatcher is the bridge between the service's batches and the
existing execution stack: each batch runs through a
:class:`~repro.pim.scheduler.BatchScheduler` (which splits it into
MRAM-sized rounds and fans rounds out over the host-parallel workers),
optionally under a :class:`~repro.pim.faults.FaultPlan` so a DPU death
mid-batch retries / requeues without dropping or duplicating a pair.

It also owns the service's **modeled device timeline**: batch ``k``
cannot start before batch ``k-1``'s modeled completion, so at high
arrival rates completions lag arrivals — exactly the signal admission
control needs (see :meth:`BatchDispatcher.in_system_pairs`).  All times
here are modeled seconds on the injectable service clock; nothing
sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.pim.faults import FaultPlan, RecoveryReport, RetryPolicy
from repro.serve.resilience import (
    BACKEND_CPU,
    BACKEND_PIM,
    CpuFallbackBackend,
    FallbackPolicy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cigar import Cigar
    from repro.data.generator import ReadPair
    from repro.pim.fleet import FleetCoordinator
    from repro.pim.health import FleetHealth
    from repro.pim.scheduler import BatchScheduler, ScheduledRun

__all__ = ["BatchOutcome", "BatchDispatcher"]

#: per-pair outcome: (score, cigar, (pattern_start, text_start)), or
#: ``None`` for a pair recovery abandoned.
PairResult = Optional[Tuple[int, Optional["Cigar"], Tuple[int, int]]]


@dataclass
class BatchOutcome:
    """Everything the service needs back from one dispatched batch."""

    batch_index: int
    num_pairs: int
    #: one entry per batch pair, in batch order
    results: List[PairResult]
    #: when the batch was handed to the device timeline
    dispatched_s: float
    #: when the modeled device actually started it (>= dispatched_s)
    started_s: float
    #: modeled completion time (started_s + the run's total_seconds)
    completed_s: float
    run: "ScheduledRun" = field(repr=False, default=None)
    #: which execution path served the batch: ``"pim"`` or
    #: ``"cpu-fallback"`` (fleet health below the fallback threshold)
    backend: str = BACKEND_PIM

    @property
    def service_seconds(self) -> float:
        return self.completed_s - self.started_s

    @property
    def queue_delay_s(self) -> float:
        """Time the batch waited for the device behind earlier batches."""
        return self.started_s - self.dispatched_s


class BatchDispatcher:
    """Runs batches through the scheduler on a modeled device timeline."""

    def __init__(
        self,
        scheduler: "BatchScheduler",
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        pairs_per_round: Optional[int] = None,
        health: Optional["FleetHealth"] = None,
        fallback: Optional[FallbackPolicy] = None,
        fleet: Optional["FleetCoordinator"] = None,
    ) -> None:
        if fleet is not None and health is not None:
            from repro.errors import ConfigError

            raise ConfigError(
                "fleet mode owns per-shard health ledgers; pass a "
                "health_policy to the FleetCoordinator instead of a "
                "FleetHealth to the dispatcher"
            )
        self.scheduler = scheduler
        #: optional sharded fleet: batches run through
        #: :meth:`~repro.pim.fleet.FleetCoordinator.run` (round-striped
        #: across shards, health-aware placement) instead of the single
        #: scheduler; ``scheduler`` stays as the kernel-config source for
        #: the CPU fallback.  Per-shard health lives inside the fleet, so
        #: ``health`` must be ``None`` in fleet mode.
        self.fleet = fleet
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        #: optional round-size override forwarded to the scheduler
        #: (``None`` = MRAM-capacity-sized rounds).
        self.pairs_per_round = pairs_per_round
        #: optional fleet-health ledger: scheduler rounds consult it for
        #: quarantine and feed their outcomes back, on the dispatcher's
        #: device timeline so the ledger clock never runs backwards.
        self.health = health
        #: optional CPU-fallback policy; requires ``health`` to judge
        #: capacity.  Batches route to the CPU baseline while healthy
        #: capacity sits below ``fallback.min_healthy_fraction``.
        self.fallback = fallback
        self._cpu_backend: Optional[CpuFallbackBackend] = (
            CpuFallbackBackend(scheduler.system.kernel_config, fallback)
            if fallback is not None
            else None
        )
        #: aggregate recovery report across every dispatched batch, pair
        #: indices rebased to dispatch order (``None`` without faults).
        self.recovery: Optional[RecoveryReport] = None
        self._free_at = 0.0
        self._pair_offset = 0
        self._batches = 0
        # tracks whether the previous batch took the CPU-fallback path,
        # so activation/recovery publish one `fallback` event per edge
        # rather than one per batch.
        self._fallback_active = False
        #: (modeled completion, pairs) of batches possibly still in
        #: flight on the modeled timeline; pruned as "now" advances.
        self._in_flight: List[Tuple[float, int]] = []

    # -- modeled timeline --------------------------------------------------

    @property
    def batches_dispatched(self) -> int:
        return self._batches

    @property
    def device_free_at(self) -> float:
        """Modeled time the device finishes everything dispatched so far."""
        return self._free_at

    def in_system_pairs(self, now: float) -> int:
        """Pairs dispatched whose modeled completion is still ahead of
        ``now`` — the device-side half of the service's queue bound."""
        self._in_flight = [(t, n) for t, n in self._in_flight if t > now]
        return sum(n for _, n in self._in_flight)

    # -- dispatch ----------------------------------------------------------

    def _healthy_fraction(self, now: float) -> float:
        """Healthy capacity across whichever fleet view is attached.

        In fleet mode the network counts too: a quarantined
        coordinator<->shard link degrades capacity exactly like
        quarantined DPUs do (the min of device health and
        :meth:`~repro.pim.fleet.FleetCoordinator.link_healthy_fraction`),
        so a partitioned shard pushes batches toward the CPU fallback
        even while its DPUs are perfectly healthy.
        """
        if self.fleet is not None:
            return min(
                self.fleet.healthy_fraction(now),
                self.fleet.link_healthy_fraction(now),
            )
        if self.health is not None:
            return self.health.healthy_fraction(now)
        return 1.0

    def _degraded(self, now: float) -> bool:
        """Whether the fleet sits below the CPU-fallback threshold."""
        if self.fallback is None:
            return False
        if self.health is None and (
            self.fleet is None
            or (self.fleet.health_policy is None and self.fleet.transport is None)
        ):
            return False
        if self.fallback.min_healthy_fraction <= 0.0:
            return False
        return self._healthy_fraction(now) < self.fallback.min_healthy_fraction

    def _note_fallback(self, degraded: bool, now: float) -> None:
        """Publish a ``fallback`` event on each activate/recover edge."""
        if degraded == self._fallback_active:
            return
        self._fallback_active = degraded
        telemetry = (
            self.fleet.telemetry
            if self.fleet is not None
            else self.scheduler.system.telemetry
        )
        if telemetry is None:
            return
        from repro.obs.events import FALLBACK

        telemetry.events.publish(
            FALLBACK,
            now,
            state="active" if degraded else "recovered",
            healthy_fraction=self._healthy_fraction(now),
        )

    def dispatch(self, pairs: List["ReadPair"], now: float) -> BatchOutcome:
        """Align one batch; map results back to batch order.

        The scheduler returns per-round results with round-local pair
        indices; they are rebased here so ``results[i]`` is batch pair
        ``i``.  Pairs the recovery layer abandoned come back as ``None``
        entries rather than being silently dropped.

        With a health ledger attached, the batch's scheduler rounds run
        quarantine-aware on the device timeline; when healthy capacity
        is below the fallback threshold the whole batch routes to the
        CPU baseline instead — it completes at ``now + cpu seconds``
        without touching (or waiting for) the PIM device timeline.
        """
        degraded = self._degraded(now) and self._cpu_backend is not None
        self._note_fallback(degraded, now)
        if degraded:
            results_cpu, cpu_seconds = self._cpu_backend.align_batch(list(pairs))
            self._pair_offset += len(pairs)
            completed = now + cpu_seconds
            self._in_flight.append((completed, len(pairs)))
            index = self._batches
            self._batches += 1
            return BatchOutcome(
                batch_index=index,
                num_pairs=len(pairs),
                results=list(results_cpu),
                dispatched_s=now,
                started_s=now,
                completed_s=completed,
                run=None,
                backend=BACKEND_CPU,
            )

        started = max(now, self._free_at)
        if self.fleet is not None:
            # round-striped across the shards; per-round results come
            # back in global round order, so the rebase below is the
            # same either way
            run = self.fleet.run(
                list(pairs),
                pairs_per_round=self.pairs_per_round,
                collect_results=True,
                fault_plan=self.fault_plan,
                retry_policy=self.retry_policy,
                now=started,
            )
        else:
            run = self.scheduler.run(
                list(pairs),
                pairs_per_round=self.pairs_per_round,
                collect_results=True,
                fault_plan=self.fault_plan,
                retry_policy=self.retry_policy,
                health=self.health,
                now=started,
            )
        results: List[PairResult] = [None] * len(pairs)
        start = 0
        for rnd, size in zip(run.per_round, run.schedule.round_sizes()):
            for local, score, cigar in rnd.results:
                region = rnd.regions.get(local, (0, 0))
                results[start + local] = (score, cigar, region)
            start += size

        if run.recovery is not None:
            run.recovery.shift_pairs(self._pair_offset)
            if self.recovery is None:
                self.recovery = RecoveryReport()
            self.recovery.merge(run.recovery)
        self._pair_offset += len(pairs)

        completed = started + run.total_seconds
        self._free_at = completed
        self._in_flight.append((completed, len(pairs)))
        index = self._batches
        self._batches += 1
        return BatchOutcome(
            batch_index=index,
            num_pairs=len(pairs),
            results=results,
            dispatched_s=now,
            started_s=started,
            completed_s=completed,
            run=run,
        )
