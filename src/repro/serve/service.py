"""The alignment service: stream in requests, stream out alignments.

``AlignmentService`` turns the one-shot batch API of
:class:`~repro.pim.scheduler.BatchScheduler` into a continuously-fed
service:

1. **submit** — :meth:`AlignmentService.submit` accepts an
   :class:`AlignRequest` (one pair or a chunk) and returns a
   :class:`ServeFuture` immediately.  Admission control bounds the
   number of pairs in the system (pending + modeled-in-flight); past the
   bound, submission raises a typed :class:`~repro.errors.Overloaded`
   instead of buffering without bound.
2. **coalesce** — per-pair work items flow through the
   :class:`~repro.serve.batcher.MicroBatcher`: flush on
   ``max_batch_pairs`` or on the oldest pair's ``max_wait_s`` deadline,
   whichever first.  Deadlines ride the injectable clock
   (:mod:`repro.serve.clock`), so tests never sleep.
3. **dispatch** — batches run through the existing scheduler / parallel
   workers via :class:`~repro.serve.dispatcher.BatchDispatcher`,
   optionally under a :class:`~repro.pim.faults.FaultPlan` (a DPU death
   mid-batch retries / requeues without dropping or duplicating any
   request).
4. **resolve** — futures resolve **in submission order** (a global
   in-order gate), so responses are never reordered within a client even
   when a fully-cached request is ready before an older in-flight one.

The optional result cache (:mod:`repro.serve.cache`) short-circuits
pairs whose exact (sequence pair, penalties, kernel config) digest was
served before; a hit is byte-identical to a fresh run.

All service time is *modeled* time on the injected clock: request
latency = (batch formation wait) + (modeled device queueing) + (the
timing model's ``total_seconds`` for the batch).  With a
:class:`~repro.serve.clock.VirtualClock` the whole pipeline is
deterministic — byte-identical responses, recovery reports, and metric
snapshots across runs and across ``workers=0/2`` (pinned in
``tests/test_serve_load.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.data.generator import ReadPair
from repro.errors import (
    ConfigError,
    DeadlineExceeded,
    Overloaded,
    RequestCancelled,
    ServeError,
)
from repro.obs.metrics import MetricsRegistry
from repro.pim.faults import FaultPlan, RetryPolicy
from repro.pim.scheduler import BatchScheduler
from repro.serve.batcher import Batch, BatchPolicy, MicroBatcher, WorkItem
from repro.serve.cache import ResultCache, result_key
from repro.serve.clock import VirtualClock
from repro.serve.dispatcher import BatchDispatcher
from repro.serve.resilience import BACKEND_CPU, BACKEND_PIM, FallbackPolicy

__all__ = [
    "AlignRequest",
    "AlignResponse",
    "ServeFuture",
    "ServiceConfig",
    "ServiceStats",
    "AlignmentService",
    "AsyncAlignmentService",
    "build_service",
]

#: histogram buckets for formed batch sizes (pairs).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class AlignRequest:
    """One client request: a chunk of one or more read pairs."""

    client: str
    request_id: str
    pairs: Tuple[ReadPair, ...]
    #: optional absolute modeled-time deadline: if the request has not
    #: resolved when the clock reaches it (or its batch's modeled
    #: completion lands past it), the future raises a typed
    #: :class:`~repro.errors.DeadlineExceeded`.
    deadline_s: Optional[float] = None
    #: shedding priority: under overload, strictly-lower-priority
    #: requests that have not yet dispatched are shed to admit this one.
    priority: int = 0

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class AlignResponse:
    """The resolved alignment of one request, pairs in request order."""

    client: str
    request_id: str
    scores: Tuple[int, ...]
    cigars: Tuple[Optional[str], ...]
    #: per-pair: served from the result cache?
    cached: Tuple[bool, ...]
    arrival_s: float
    #: modeled time the last pair's result was ready
    completion_s: float
    #: batch indices that carried this request's uncached pairs
    batches: Tuple[int, ...]
    #: which execution path produced the results: ``"pim"``,
    #: ``"cpu-fallback"``, ``"mixed"`` (batches split across backends),
    #: or ``"cache"`` (every pair was a cache hit).
    backend: str = BACKEND_PIM

    @property
    def num_pairs(self) -> int:
        return len(self.scores)

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    def to_dict(self) -> dict:
        return {
            "client": self.client,
            "id": self.request_id,
            "scores": list(self.scores),
            "cigars": list(self.cigars),
            "cached": list(self.cached),
            "arrival_s": self.arrival_s,
            "completion_s": self.completion_s,
            "latency_s": self.latency_s,
            "batches": list(self.batches),
            "backend": self.backend,
        }


class ServeFuture:
    """Minimal synchronous future resolved by the service engine.

    Callbacks run synchronously at resolution (inside ``submit``, a
    deadline firing, or ``drain``), which keeps the engine free of event
    -loop dependencies; :class:`AsyncAlignmentService` bridges these to
    ``asyncio`` futures.
    """

    __slots__ = ("_result", "_exception", "_done", "_callbacks")

    def __init__(self) -> None:
        self._result: Optional[AlignResponse] = None
        self._exception: Optional[BaseException] = None
        self._done = False
        self._callbacks: List[Callable[["ServeFuture"], None]] = []

    def done(self) -> bool:
        return self._done

    def result(self) -> AlignResponse:
        if not self._done:
            raise ServeError("result() on an unresolved future (drain first?)")
        if self._exception is not None:
            raise self._exception
        return self._result  # type: ignore[return-value]

    def exception(self) -> Optional[BaseException]:
        if not self._done:
            raise ServeError("exception() on an unresolved future")
        return self._exception

    def add_done_callback(self, fn: Callable[["ServeFuture"], None]) -> None:
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _resolve(
        self,
        result: Optional[AlignResponse],
        exception: Optional[BaseException],
    ) -> None:
        if self._done:
            raise ServeError("future resolved twice")
        self._result = result
        self._exception = exception
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level policy knobs (batching, backpressure, caching)."""

    max_batch_pairs: int = 64
    max_wait_s: float = 1e-3
    #: admission bound: pairs pending in the batcher plus pairs whose
    #: modeled batch completion is still ahead of "now".
    max_queue_pairs: int = 4096
    #: result-cache capacity in entries (0 disables caching).
    cache_pairs: int = 0
    cache_policy: str = "lru"
    #: scheduler round-size override (``None`` = MRAM capacity).
    pairs_per_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_queue_pairs < 1:
            raise ConfigError(
                f"max_queue_pairs must be >= 1, got {self.max_queue_pairs}"
            )
        if self.cache_pairs < 0:
            raise ConfigError(f"cache_pairs must be >= 0, got {self.cache_pairs}")
        # delegate the rest
        BatchPolicy(self.max_batch_pairs, self.max_wait_s)

    def policy(self) -> BatchPolicy:
        return BatchPolicy(self.max_batch_pairs, self.max_wait_s)


@dataclass
class ServiceStats:
    """Request-level accounting.

    Invariant (held at every step, pinned by the stateful test):
    ``submitted == completed + rejected + in_flight`` where
    ``in_flight`` is the number of live, unresolved requests and
    ``rejected`` counts admission rejections, cancellations, and
    fault-abandoned requests.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    in_flight: int = 0

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "in_flight": self.in_flight,
        }


@dataclass
class _Pending:
    """Service-side state of one unresolved request."""

    seq: int
    request: AlignRequest
    future: ServeFuture
    arrival_s: float
    results: List[Optional[Tuple[int, Optional[object], Tuple[int, int]]]]
    cached: List[bool]
    remaining: int
    batches: List[int] = field(default_factory=list)
    completion_s: float = 0.0
    dispatched_pairs: int = 0
    failure: Optional[BaseException] = None
    #: backends (in first-use order) that served this request's
    #: uncached pairs — drives :attr:`AlignResponse.backend`.
    backends: List[str] = field(default_factory=list)
    #: armed per-request deadline timer (cancelled on resolution)
    deadline_timer: Optional[object] = None
    #: tombstone: the future already resolved (deadline / late cancel)
    #: but batch results may still arrive; absorb them for the cache
    #: without touching the dead request's response state.
    dead: bool = False


class AlignmentService:
    """Deterministic micro-batching alignment service engine."""

    def __init__(
        self,
        scheduler: BatchScheduler,
        config: Optional[ServiceConfig] = None,
        clock=None,
        telemetry=None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        health=None,
        fallback: Optional[FallbackPolicy] = None,
        fleet=None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else VirtualClock()
        #: optional :class:`~repro.obs.telemetry.RunTelemetry`; when given
        #: (and also attached to the underlying system) every layer of a
        #: request — service counters, scheduler rounds, kernel traces —
        #: lands in one registry, and every request gets a model-time
        #: ``serve_request`` span.
        self.telemetry = telemetry
        self.registry: MetricsRegistry = (
            telemetry.registry if telemetry is not None else MetricsRegistry()
        )
        self.batcher = MicroBatcher(self.config.policy())
        self.dispatcher = BatchDispatcher(
            scheduler,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            pairs_per_round=self.config.pairs_per_round,
            health=health,
            fallback=fallback,
            fleet=fleet,
        )
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_pairs, self.config.cache_policy)
            if self.config.cache_pairs > 0
            else None
        )
        self.stats = ServiceStats()
        self._kernel_config = scheduler.system.kernel_config
        self._requests: Dict[int, _Pending] = {}
        self._delivery: Deque[int] = deque()  # submission-order gate
        self._next_request_seq = 0
        self._next_pair_seq = 0
        self._timer = None
        self._armed_deadline: Optional[float] = None

        reg = self.registry
        self._m_requests = reg.counter(
            "serve_requests_total", "requests by terminal outcome"
        )
        self._m_pairs = reg.counter("serve_pairs_total", "pairs submitted")
        self._m_queue = reg.gauge(
            "serve_queue_pairs",
            "pairs pending in the batcher + in flight on the modeled device",
        )
        self._m_batches = reg.counter(
            "serve_batches_total", "batches dispatched by flush trigger"
        )
        self._m_batch_pairs = reg.histogram(
            "serve_batch_pairs", "formed batch sizes", buckets=BATCH_SIZE_BUCKETS
        )
        self._m_batch_wait = reg.histogram(
            "serve_batch_wait_seconds",
            "modeled wait of a batch's oldest pair at formation",
        )
        self._m_latency = reg.histogram(
            "serve_request_latency_seconds", "modeled request latency"
        )
        self._m_cache = reg.counter(
            "serve_cache_lookups_total", "result-cache lookups by outcome"
        )
        self._m_evictions = reg.counter(
            "serve_cache_evictions_total", "result-cache evictions"
        )
        self._m_deadline = reg.counter(
            "serve_deadline_exceeded_total",
            "requests that missed their modeled deadline",
        )
        self._m_shed = reg.counter(
            "serve_shed_total", "lower-priority requests shed under overload"
        )
        self._m_fallback_pairs = reg.counter(
            "serve_fallback_pairs_total",
            "pairs served by the CPU fallback backend",
        )
        self._evictions_seen = 0

    # -- queries -----------------------------------------------------------

    @property
    def queue_pairs(self) -> int:
        """Current admission-control occupancy (pending + in flight)."""
        return self.batcher.pending_pairs + self.dispatcher.in_system_pairs(
            self.clock.now()
        )

    def metrics_snapshot(self) -> dict:
        # fleet mode: one coherent view across the service registry (the
        # fleet's primary telemetry) and every shard's registry
        fleet = self.dispatcher.fleet
        if fleet is not None:
            merged = MetricsRegistry()
            merged.merge_snapshot(self.registry.snapshot())
            if (
                fleet.telemetry is not None
                and fleet.telemetry.registry is not self.registry
            ):
                merged.merge_snapshot(fleet.telemetry.registry.snapshot())
            for shard_tel in fleet.shard_telemetries:
                if shard_tel is not None:
                    merged.merge_snapshot(shard_tel.registry.snapshot())
            return merged.snapshot()
        return self.registry.snapshot()

    # -- submission --------------------------------------------------------

    def submit(self, request: AlignRequest) -> ServeFuture:
        """Admit one request; returns its future (may already be done).

        Raises :class:`~repro.errors.Overloaded` when admitting the
        request would push the in-system pair count past
        ``max_queue_pairs`` *and* shedding strictly-lower-priority
        undispatched requests cannot make room; the rejected request is
        still accounted in :attr:`stats` (``submitted`` and
        ``rejected`` both increase).

        A request whose ``deadline_s`` already passed is never admitted:
        its future comes back resolved with
        :class:`~repro.errors.DeadlineExceeded`.
        """
        now = self.clock.now()
        n = request.num_pairs
        self.stats.submitted += 1
        if request.deadline_s is not None and request.deadline_s <= now:
            self.stats.rejected += 1
            self._m_requests.inc(outcome="deadline")
            self._m_deadline.inc()
            from repro.obs.events import DEADLINE

            self._publish_event(
                DEADLINE,
                now,
                request=request.request_id,
                deadline_s=request.deadline_s,
            )
            future = ServeFuture()
            future._resolve(
                None,
                DeadlineExceeded(
                    f"request {request.request_id}: deadline "
                    f"{request.deadline_s:.6f}s already passed at "
                    f"submission (now={now:.6f}s)",
                    deadline_s=request.deadline_s,
                    completion_s=now,
                ),
            )
            return future
        occupancy = self.queue_pairs
        if occupancy + n > self.config.max_queue_pairs:
            occupancy -= self._shed_lower_priority(
                occupancy + n - self.config.max_queue_pairs, request.priority
            )
        if occupancy + n > self.config.max_queue_pairs:
            self.stats.rejected += 1
            self._m_requests.inc(outcome="overloaded")
            raise Overloaded(
                f"queue holds {occupancy} pairs, request adds {n}, "
                f"limit is {self.config.max_queue_pairs}",
                queued_pairs=occupancy,
                limit=self.config.max_queue_pairs,
            )
        self._m_pairs.inc(n)

        seq = self._next_request_seq
        self._next_request_seq += 1
        pending = _Pending(
            seq=seq,
            request=request,
            future=ServeFuture(),
            arrival_s=now,
            results=[None] * n,
            cached=[False] * n,
            remaining=n,
            completion_s=now,
        )
        self.stats.in_flight += 1
        self._requests[seq] = pending
        self._delivery.append(seq)

        items: List[WorkItem] = []
        for offset, pair in enumerate(request.pairs):
            key = None
            if self.cache is not None:
                key = result_key(pair, self._kernel_config)
                hit = self.cache.get(key)
                if hit is not None:
                    self._m_cache.inc(outcome="hit")
                    pending.results[offset] = hit
                    pending.cached[offset] = True
                    pending.remaining -= 1
                    continue
                self._m_cache.inc(outcome="miss")
            items.append(
                WorkItem(
                    seq=self._next_pair_seq,
                    request_seq=seq,
                    offset=offset,
                    pair=pair,
                    arrival_s=now,
                    key=key,
                )
            )
            self._next_pair_seq += 1

        if items:
            self._dispatch(self.batcher.add(items, now))
        self._deliver()
        if request.deadline_s is not None and not pending.future.done():
            pending.deadline_timer = self.clock.call_at(
                request.deadline_s,
                lambda s=seq: self._on_request_deadline(s),
            )
        self._rearm()
        self._update_queue_gauge()
        return pending.future

    def cancel(self, future: ServeFuture) -> bool:
        """Cancel a live request.

        Returns ``True`` when the request was cancelled (its future
        raises :class:`~repro.errors.RequestCancelled`); ``False`` when
        it already resolved.  A request whose pairs already left in a
        batch can still be cancelled: its computed results are absorbed
        (and cached) but never delivered, and its deadline — if any —
        is disarmed so the cancellation never *also* counts as a
        deadline miss.
        """
        pending = next(
            (p for p in self._requests.values() if p.future is future), None
        )
        if pending is None or pending.dead or pending.future.done():
            return False
        removed = self.batcher.remove_request(pending.seq)
        pending.remaining -= removed
        try:
            self._delivery.remove(pending.seq)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._resolve_dead(
            pending,
            RequestCancelled(f"request {pending.request.request_id} cancelled"),
            outcome="cancelled",
        )
        if pending.remaining <= 0:
            del self._requests[pending.seq]
        else:  # pragma: no cover - defensive (synchronous engine)
            pending.dead = True
        self._deliver()  # the gate may have been waiting on this seq
        self._rearm()
        self._update_queue_gauge()
        return True

    def drain(self) -> None:
        """Flush and dispatch everything pending; resolve all futures."""
        while self.batcher.pending_pairs:
            self._dispatch(self.batcher.drain(self.clock.now()))
        self._deliver()
        self._rearm()
        self._update_queue_gauge()

    # -- internals ---------------------------------------------------------

    def _publish_event(self, kind: str, t_s: float, **attrs: object) -> None:
        """Publish into the telemetry event log (no-op sans telemetry)."""
        if self.telemetry is not None:
            self.telemetry.events.publish(kind, t_s, **attrs)

    def _resolve_dead(
        self, pending: _Pending, exc: BaseException, outcome: str
    ) -> None:
        """Common bookkeeping for a request resolved exceptionally."""
        if pending.deadline_timer is not None:
            pending.deadline_timer.cancel()
            pending.deadline_timer = None
        self.stats.in_flight -= 1
        self.stats.rejected += 1
        self._m_requests.inc(outcome=outcome)
        pending.future._resolve(None, exc)

    def _shed_lower_priority(self, needed: int, priority: int) -> int:
        """Shed undispatched lower-priority requests; returns pairs freed.

        Victims are live requests none of whose pairs have left in a
        batch and whose priority is *strictly* below the incoming
        request's — lowest priority first, youngest first within a
        priority.  Each victim's future resolves with
        :class:`~repro.errors.Overloaded` (outcome ``"shed"``).
        """
        if needed <= 0:
            return 0
        victims = sorted(
            (
                p
                for p in self._requests.values()
                if not p.dead
                and not p.future.done()
                and p.dispatched_pairs == 0
                and p.remaining > 0
                and p.request.priority < priority
            ),
            key=lambda p: (p.request.priority, -p.seq),
        )
        freed = 0
        for victim in victims:
            if freed >= needed:
                break
            freed += self.batcher.remove_request(victim.seq)
            try:
                self._delivery.remove(victim.seq)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._m_shed.inc()
            from repro.obs.events import SHED

            self._publish_event(
                SHED,
                self.clock.now(),
                request=victim.request.request_id,
                priority=victim.request.priority,
                pairs=victim.request.num_pairs,
            )
            self._resolve_dead(
                victim,
                Overloaded(
                    f"request {victim.request.request_id} shed for a "
                    f"priority-{priority} request",
                    queued_pairs=self.queue_pairs,
                    limit=self.config.max_queue_pairs,
                ),
                outcome="shed",
            )
            del self._requests[victim.seq]
        return freed

    def _on_request_deadline(self, seq: int) -> None:
        """Clock timer: the deadline passed with the request unresolved.

        Cancellation and completion both disarm the timer, and a timer
        racing a just-resolved future is a no-op — a request never
        counts as both cancelled and deadline-exceeded.
        """
        pending = self._requests.get(seq)
        if pending is None or pending.dead or pending.future.done():
            return
        pending.deadline_timer = None
        removed = self.batcher.remove_request(seq)
        pending.remaining -= removed
        try:
            self._delivery.remove(seq)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._m_deadline.inc()
        from repro.obs.events import DEADLINE

        self._publish_event(
            DEADLINE,
            self.clock.now(),
            request=pending.request.request_id,
            deadline_s=pending.request.deadline_s,
        )
        self._resolve_dead(
            pending,
            DeadlineExceeded(
                f"request {pending.request.request_id}: deadline "
                f"{pending.request.deadline_s:.6f}s passed unresolved",
                deadline_s=pending.request.deadline_s,
                completion_s=self.clock.now(),
            ),
            outcome="deadline",
        )
        if pending.remaining <= 0:
            del self._requests[seq]
        else:  # pragma: no cover - defensive (synchronous engine)
            pending.dead = True
        self._deliver()
        self._rearm()
        self._update_queue_gauge()

    def _update_queue_gauge(self) -> None:
        self._m_queue.set(self.queue_pairs)

    def _rearm(self) -> None:
        """Keep exactly one clock timer armed at the batcher deadline."""
        deadline = self.batcher.next_deadline()
        if deadline == self._armed_deadline:
            return
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._armed_deadline = deadline
        if deadline is not None:
            self._timer = self.clock.call_at(deadline, self._on_deadline)

    def _on_deadline(self) -> None:
        self._timer = None
        self._armed_deadline = None
        self._dispatch(self.batcher.take_due(self.clock.now()))
        self._deliver()
        self._rearm()
        self._update_queue_gauge()

    def _dispatch(self, batches: List[Batch]) -> None:
        for batch in batches:
            self._m_batches.inc(reason=batch.reason)
            self._m_batch_pairs.observe(batch.num_pairs)
            self._m_batch_wait.observe(batch.wait_s)
            for item in batch.items:
                self._requests[item.request_seq].dispatched_pairs += 1
            outcome = self.dispatcher.dispatch(
                [item.pair for item in batch.items], batch.formed_s
            )
            if outcome.backend == BACKEND_CPU:
                self._m_fallback_pairs.inc(outcome.num_pairs)
            for item, res in zip(batch.items, outcome.results):
                pending = self._requests[item.request_seq]
                pending.remaining -= 1
                if res is not None and self.cache is not None and item.key is not None:
                    self.cache.put(item.key, res)
                if pending.dead:  # tombstoned: absorb, never deliver
                    continue
                pending.completion_s = max(
                    pending.completion_s, outcome.completed_s
                )
                if outcome.batch_index not in pending.batches:
                    pending.batches.append(outcome.batch_index)
                if outcome.backend not in pending.backends:
                    pending.backends.append(outcome.backend)
                if res is None:
                    pending.failure = ServeError(
                        f"request {pending.request.request_id}: pair "
                        f"{item.offset} abandoned after fault recovery"
                    )
                    continue
                pending.results[item.offset] = res
            if self.cache is not None:
                new_evictions = self.cache.stats.evictions - self._evictions_seen
                if new_evictions:
                    self._m_evictions.inc(new_evictions)
                    self._evictions_seen = self.cache.stats.evictions
        done_dead = [
            s for s, p in self._requests.items() if p.dead and p.remaining <= 0
        ]
        for s in done_dead:  # pragma: no cover - defensive (sync engine)
            del self._requests[s]

    def _deliver(self) -> None:
        """Resolve every head-of-line request that is fully complete.

        Resolution strictly follows submission order: a later request
        that completed early (e.g. fully cache-hit) waits for every
        earlier request to resolve first, so responses are never
        reordered within (or across) clients.
        """
        while self._delivery:
            seq = self._delivery[0]
            pending = self._requests.get(seq)
            if pending is None:  # cancelled out-of-band
                self._delivery.popleft()
                continue
            if pending.remaining > 0:
                return
            self._delivery.popleft()
            del self._requests[seq]
            if pending.deadline_timer is not None:
                pending.deadline_timer.cancel()
                pending.deadline_timer = None
            deadline = pending.request.deadline_s
            if (
                pending.failure is None
                and deadline is not None
                and pending.completion_s > deadline
            ):
                # The modeled completion landed past the deadline: the
                # clock has not necessarily reached it yet, but the
                # outcome is already decided — resolve now, typed.
                self._m_deadline.inc()
                from repro.obs.events import DEADLINE

                self._publish_event(
                    DEADLINE,
                    self.clock.now(),
                    request=pending.request.request_id,
                    deadline_s=deadline,
                )
                self._resolve_dead(
                    pending,
                    DeadlineExceeded(
                        f"request {pending.request.request_id}: modeled "
                        f"completion {pending.completion_s:.6f}s past "
                        f"deadline {deadline:.6f}s",
                        deadline_s=deadline,
                        completion_s=pending.completion_s,
                    ),
                    outcome="deadline",
                )
                continue
            self.stats.in_flight -= 1
            if pending.failure is not None:
                self.stats.rejected += 1
                self._m_requests.inc(outcome="failed")
                pending.future._resolve(None, pending.failure)
                continue
            if not pending.backends:
                backend = "cache" if pending.cached and all(pending.cached) else BACKEND_PIM
            elif len(pending.backends) == 1:
                backend = pending.backends[0]
            else:
                backend = "mixed"
            response = AlignResponse(
                client=pending.request.client,
                request_id=pending.request.request_id,
                scores=tuple(r[0] for r in pending.results),  # type: ignore[index]
                cigars=tuple(
                    str(r[1]) if r[1] is not None else None  # type: ignore[index]
                    for r in pending.results
                ),
                cached=tuple(pending.cached),
                arrival_s=pending.arrival_s,
                completion_s=pending.completion_s,
                batches=tuple(sorted(pending.batches)),
                backend=backend,
            )
            self.stats.completed += 1
            self._m_requests.inc(outcome="completed")
            self._m_latency.observe(response.latency_s)
            if self.telemetry is not None:
                self.telemetry.profiler.add_model_span(
                    "serve_request",
                    response.arrival_s,
                    response.latency_s,
                    client=response.client,
                    request=response.request_id,
                )
            pending.future._resolve(response, None)


class AsyncAlignmentService:
    """``asyncio`` facade over the deterministic engine.

    Pair it with an :class:`~repro.serve.clock.AsyncioClock` for real
    deadline timers on the running loop, or keep the
    :class:`~repro.serve.clock.VirtualClock` and drive flushes manually
    (size triggers and :meth:`AlignmentService.drain` need no timers).
    """

    def __init__(self, service: AlignmentService) -> None:
        self.service = service

    async def align(self, request: AlignRequest) -> AlignResponse:
        """Submit and await one request (raises typed serve errors)."""
        import asyncio

        future = self.service.submit(request)
        if future.done():
            return future.result()
        loop = asyncio.get_running_loop()
        aio_future: "asyncio.Future[AlignResponse]" = loop.create_future()

        def _bridge(done: ServeFuture) -> None:
            if aio_future.cancelled():  # pragma: no cover - defensive
                return
            exc = done.exception()
            if exc is not None:
                aio_future.set_exception(exc)
            else:
                aio_future.set_result(done.result())

        future.add_done_callback(_bridge)
        return await aio_future

    async def drain(self) -> None:
        self.service.drain()


def build_service(
    num_dpus: int = 4,
    tasklets: int = 4,
    workers: int = 1,
    max_read_len: int = 100,
    max_edits: int = 4,
    penalties=None,
    config: Optional[ServiceConfig] = None,
    clock=None,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    with_telemetry: bool = True,
    health_policy=None,
    fallback: Optional[FallbackPolicy] = None,
    engine: str = "vector",
    shards: int = 1,
    ablation=None,
    net_plan=None,
    transport_policy=None,
) -> AlignmentService:
    """Construct the full stack: system -> scheduler -> service.

    One shared :class:`~repro.obs.telemetry.RunTelemetry` is attached to
    both the system and the service (unless ``with_telemetry=False``),
    so a single metrics snapshot covers the whole request path.

    ``engine`` selects the kernel's host-side alignment engine
    (``"vector"``, the default since the QA sweep soaked on it, or
    ``"scalar"`` as the escape hatch — see
    :class:`~repro.pim.kernel.KernelConfig`); responses, recovery
    reports and telemetry are byte-identical either way — the vector
    engine only changes simulation wall-clock time.

    ``health_policy`` (a :class:`~repro.pim.health.HealthPolicy`) turns
    on the fleet-health ledger: scheduler rounds become
    quarantine-aware and — when ``fallback`` is also given — batches
    route to the CPU baseline while healthy capacity sits below
    :attr:`~repro.serve.resilience.FallbackPolicy.min_healthy_fraction`.

    ``shards`` > 1 federates ``shards`` independent, identically-shaped
    PIM shards behind the one front door via a
    :class:`~repro.pim.fleet.FleetCoordinator` (``num_dpus`` DPUs *per
    shard*; batches are round-striped across shards, so responses stay
    byte-identical to ``shards=1`` while modeled completion times
    shrink).  With a ``health_policy`` each shard gets its own ledger,
    placement rebalances away from quarantined shards (publishing
    ``rebalance`` events into the service telemetry), and ``fallback``
    judges the *federated* healthy fraction.

    ``net_plan``/``transport_policy`` (fleet mode only) model the
    coordinator<->shard network via :mod:`repro.pim.transport`: batches
    pay envelope delivery over seeded link faults, and the dispatcher's
    fallback decision folds the *link* healthy fraction in — a
    partitioned shard degrades the service exactly like dead DPUs do.

    ``ablation`` (an :class:`~repro.pim.ablation.AblationConfig`)
    overrides the individual knobs from one switchboard: it selects the
    engine and shard count, strips ``health_policy`` when the breaker is
    off, strips ``fallback`` when CPU fallback is off, and zeroes the
    result cache when caching is off — so the campaign runner builds
    every serve-stack variant from the same call site.
    """
    from dataclasses import replace as _replace

    from repro.core.penalties import AffinePenalties
    from repro.pim.config import PimSystemConfig
    from repro.pim.health import FleetHealth
    from repro.pim.kernel import KernelConfig
    from repro.pim.system import PimSystem

    if ablation is not None:
        ablation.validate()
        engine = ablation.engine
        shards = ablation.resolve_shards(shards)
        health_policy = ablation.health_policy(health_policy)
        if not ablation.fallback:
            fallback = None
        if not ablation.cache and config is not None and config.cache_pairs:
            config = _replace(config, cache_pairs=0)

    telemetry = None
    if with_telemetry:
        from repro.obs import RunTelemetry

        telemetry = RunTelemetry()
    system_config = PimSystemConfig(
        num_dpus=num_dpus,
        num_ranks=1,
        tasklets=tasklets,
        num_simulated_dpus=num_dpus,
        workers=workers,
    )
    kernel_config = KernelConfig(
        penalties=penalties if penalties is not None else AffinePenalties(),
        max_read_len=max_read_len,
        max_edits=max_edits,
        engine=engine,
    )
    if shards > 1:
        from repro.pim.fleet import FleetCoordinator

        fleet = FleetCoordinator(
            system_config,
            kernel_config,
            shards=shards,
            health_policy=health_policy,
            telemetry=telemetry,
            net_plan=net_plan,
            transport_policy=transport_policy,
        )
        return AlignmentService(
            fleet.schedulers[0],
            config=config,
            clock=clock,
            telemetry=telemetry,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            fallback=fallback,
            fleet=fleet,
        )
    if net_plan is not None or transport_policy is not None:
        from repro.errors import ConfigError

        raise ConfigError(
            "net_plan/transport_policy model the coordinator<->shard "
            "network and need fleet mode; pass shards > 1"
        )
    system = PimSystem(
        system_config,
        kernel_config=kernel_config,
        telemetry=telemetry,
    )
    health = None
    if health_policy is not None:
        health = FleetHealth(
            num_dpus,
            policy=health_policy,
            registry=telemetry.registry if telemetry is not None else None,
            events=telemetry.events if telemetry is not None else None,
        )
    return AlignmentService(
        BatchScheduler(system),
        config=config,
        clock=clock,
        telemetry=telemetry,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        health=health,
        fallback=fallback,
    )
