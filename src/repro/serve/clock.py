"""Injectable clocks for the alignment service.

Every deadline in :mod:`repro.serve` is driven through one of these
clock objects instead of ``time`` / ``asyncio.sleep``, for one reason:
**tests never sleep**.  A :class:`VirtualClock` owns a manually-advanced
timeline and a deterministic timer queue — advancing it fires due
timers in ``(deadline, registration order)`` order, so a thousand-request
soak test runs in milliseconds of wall time and produces bit-identical
modeled latencies on every run.  The :class:`AsyncioClock` adapter gives
the same interface real-time semantics on a running event loop for
production use.

The interface is intentionally tiny:

* ``now() -> float`` — current time in seconds;
* ``call_at(when, callback) -> handle`` — schedule ``callback()`` at
  ``when`` (a handle with ``cancel()``);
* handles expose ``cancel()`` and nothing else the service relies on.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Protocol

from repro.errors import ServeError

__all__ = ["Clock", "Timer", "VirtualClock", "AsyncioClock"]


class Clock(Protocol):
    """Structural interface every service clock satisfies."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...

    def call_at(self, when: float, callback: Callable[[], None]):  # pragma: no cover
        ...


class Timer:
    """A scheduled callback on a :class:`VirtualClock` timeline."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int, callback: Callable[[], None]) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class VirtualClock:
    """A deterministic, manually-advanced clock with a timer queue.

    Timers fire during :meth:`advance` / :meth:`advance_to`, in
    ``(deadline, registration order)`` order; a firing callback may
    schedule further timers, which fire in the same sweep if they fall
    inside it.  Time never moves backwards.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._timers: List[Timer] = []
        self._seq = 0

    def now(self) -> float:
        return self._now

    def call_at(self, when: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at time ``when`` (>= now, else fires on
        the next advance)."""
        timer = Timer(float(when), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._timers, timer)
        return timer

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        if delay < 0:
            raise ServeError(f"timer delay must be >= 0, got {delay}")
        return self.call_at(self._now + delay, callback)

    def advance_to(self, deadline: float) -> None:
        """Move time forward to ``deadline``, firing every due timer."""
        if deadline < self._now:
            raise ServeError(
                f"cannot advance clock backwards: now={self._now}, "
                f"target={deadline}"
            )
        while self._timers and self._timers[0].when <= deadline:
            timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            # a timer registered in the past fires "now", never rewinds
            self._now = max(self._now, timer.when)
            timer.callback()
        self._now = max(self._now, deadline)

    def advance(self, dt: float = 0.0) -> None:
        """Move time forward by ``dt`` seconds, firing due timers."""
        if dt < 0:
            raise ServeError(f"cannot advance clock by negative dt {dt}")
        self.advance_to(self._now + dt)

    def next_timer(self) -> Optional[float]:
        """Deadline of the earliest pending (non-cancelled) timer."""
        while self._timers and self._timers[0].cancelled:
            heapq.heappop(self._timers)
        return self._timers[0].when if self._timers else None


class AsyncioClock:
    """Real-time clock adapter over a running asyncio event loop.

    Gives the service real deadline semantics in production: timers ride
    ``loop.call_at`` and ``now()`` is ``loop.time()``.  Construct it
    inside a running loop (e.g. at the top of ``asyncio.run``'s
    coroutine).
    """

    def __init__(self, loop=None) -> None:
        if loop is None:
            import asyncio

            loop = asyncio.get_running_loop()
        self._loop = loop

    def now(self) -> float:
        return self._loop.time()

    def call_at(self, when: float, callback: Callable[[], None]):
        return self._loop.call_at(when, callback)
