"""Graceful degradation for the alignment service.

Three cooperating mechanisms keep the service *useful* while the fleet
is unhealthy, all on the modeled clock (nothing sleeps, everything is
deterministic under a :class:`~repro.serve.clock.VirtualClock`):

* **Deadlines** — a request may carry an absolute modeled
  ``deadline_s``; the service arms a virtual-clock timer per request
  and resolves the future with a typed
  :class:`~repro.errors.DeadlineExceeded` either when the clock passes
  the deadline with the request unresolved, or when the batch's
  modeled completion lands past it (see
  :class:`~repro.serve.service.AlignmentService`).
* **Priority shedding** — when admission control would reject a
  request, strictly-lower-priority requests that have not yet
  dispatched are shed (resolved with
  :class:`~repro.errors.Overloaded`) to make room, lowest priority and
  youngest first.
* **CPU fallback** — this module.  When the
  :class:`~repro.pim.health.FleetHealth` ledger reports healthy
  capacity below :attr:`FallbackPolicy.min_healthy_fraction`, the
  dispatcher routes whole batches to a host CPU baseline instead of
  the degraded PIM fleet.  Fallback results are flagged
  ``backend="cpu-fallback"`` on the response and are *oracle-equal* to
  PIM results: the Gotoh baseline computes the same optimal affine
  score the WFA kernel does, and its CIGAR validates and rescores
  against the pair (the same checks :mod:`repro.qa.oracle` applies to
  kernel output).

The CPU path is *modeled* like every other timing source: a fallback
batch costs ``num_pairs / cpu_pairs_per_s`` modeled seconds on the
host, and it does **not** occupy the PIM device timeline — the whole
point of falling back is that degraded device capacity stops gating
latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.baselines.bitparallel import myers_edit_distance
from repro.baselines.gotoh import gotoh_align
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cigar import Cigar
    from repro.data.generator import ReadPair
    from repro.pim.kernel import KernelConfig

__all__ = ["FallbackPolicy", "CpuFallbackBackend", "BACKEND_PIM", "BACKEND_CPU"]

BACKEND_PIM = "pim"
BACKEND_CPU = "cpu-fallback"

_BASELINES = ("gotoh", "bitparallel")


@dataclass(frozen=True)
class FallbackPolicy:
    """When and how the service degrades to the CPU baseline."""

    #: fall back when ``len(available) / num_dpus`` drops below this;
    #: ``0.0`` disables fallback (quarantine alone shrinks rounds).
    min_healthy_fraction: float = 0.5
    #: which CPU baseline serves fallback batches: ``"gotoh"`` (full
    #: affine score + CIGAR — oracle-equal to the WFA kernel) or
    #: ``"bitparallel"`` (Myers bit-vector edit distance — score only,
    #: valid when the kernel runs unit/edit penalties).
    baseline: str = "gotoh"
    #: modeled host throughput for fallback batches (pairs per second).
    cpu_pairs_per_s: float = 20_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_healthy_fraction <= 1.0:
            raise ConfigError(
                "min_healthy_fraction must be in [0, 1], "
                f"got {self.min_healthy_fraction}"
            )
        if self.baseline not in _BASELINES:
            raise ConfigError(
                f"baseline must be one of {_BASELINES}, got {self.baseline!r}"
            )
        if self.cpu_pairs_per_s <= 0:
            raise ConfigError("cpu_pairs_per_s must be > 0")


class CpuFallbackBackend:
    """Aligns batches on the host CPU when the fleet is degraded.

    Result tuples have the exact shape the dispatcher produces for PIM
    batches — ``(score, cigar, (pattern_start, text_start))`` — so the
    service's absorption path does not branch on the backend.
    """

    def __init__(self, kernel_config: "KernelConfig", policy: FallbackPolicy) -> None:
        self.kernel_config = kernel_config
        self.policy = policy
        #: pairs served on the CPU path (diagnostics)
        self.pairs_served = 0
        self.batches_served = 0

    def align_batch(
        self, pairs: List["ReadPair"]
    ) -> Tuple[List[Tuple[int, Optional["Cigar"], Tuple[int, int]]], float]:
        """Align one batch; returns (per-pair results, modeled seconds)."""
        penalties = self.kernel_config.penalties
        results: List[Tuple[int, Optional["Cigar"], Tuple[int, int]]] = []
        if self.policy.baseline == "gotoh":
            for pair in pairs:
                score, cigar = gotoh_align(pair.pattern, pair.text, penalties)
                results.append((score, cigar, (0, 0)))
        else:  # bitparallel: distance only, no traceback
            for pair in pairs:
                score = myers_edit_distance(pair.pattern, pair.text)
                results.append((score, None, (0, 0)))
        self.pairs_served += len(pairs)
        self.batches_served += 1
        seconds = len(pairs) / self.policy.cpu_pairs_per_s
        return results, seconds
