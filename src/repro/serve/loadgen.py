"""Deterministic load generation and replay for the alignment service.

The load generator builds a fully deterministic request *trace* — seeded
arrival times, seeded pair contents (with deliberate duplicates so the
result cache has something to hit) — and replays it against an
:class:`~repro.serve.service.AlignmentService` on a
:class:`~repro.serve.clock.VirtualClock`.  Because both the trace and
the service are deterministic, the whole replay is reproducible to the
byte: same seed, same latencies, same report — regardless of wall-clock
speed or host worker count.

Arrival processes (all at a mean of ``rate`` requests per modeled
second):

* ``"uniform"`` — evenly spaced, ``t_i = i / rate``;
* ``"bursty"`` — requests land in back-to-back bursts of ``burst``, the
  bursts themselves evenly spaced (micro-batcher stress: size flushes);
* ``"ramp"`` — the instantaneous rate climbs linearly from ``rate`` to
  ``rate_end`` over the trace (finds the knee where queueing starts).

The replay emits a JSONL :class:`LoadReport` (schema
``repro.serve.load/v1``) mirroring the QA report format: one header,
one record per request, one summary with nearest-rank latency
percentiles.  :func:`validate_load_report` re-derives every summary
figure from the per-request records, so CI can trust a report it did
not produce.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from repro.data.generator import ReadPair, mutate_sequence, random_sequence
from repro.errors import ConfigError, Overloaded, ServeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.slo import SloPolicy
    from repro.serve.clock import VirtualClock
    from repro.serve.service import AlignmentService

__all__ = [
    "LoadgenConfig",
    "RequestRecord",
    "LoadReport",
    "arrival_times",
    "build_trace",
    "replay",
    "run_load",
    "validate_load_report",
    "percentile",
]

#: schema tag stamped into every load report header.
REPORT_SCHEMA = "repro.serve.load/v1"

_REQUEST_KEYS = frozenset(
    {
        "record",
        "client",
        "id",
        "status",
        "pairs",
        "cached_pairs",
        "arrival_s",
        "completion_s",
        "latency_s",
        "batches",
    }
)

ARRIVAL_PROCESSES = ("uniform", "bursty", "ramp")


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of a synthetic request trace."""

    requests: int = 200
    #: mean arrival rate, requests per modeled second.
    rate: float = 2000.0
    process: str = "uniform"
    #: burst size for the ``"bursty"`` process.
    burst: int = 8
    #: final rate for the ``"ramp"`` process (defaults to ``4 * rate``).
    rate_end: Optional[float] = None
    pairs_per_request: int = 1
    clients: int = 4
    #: read length of generated pairs.
    length: int = 16
    error_rate: float = 0.05
    seed: int = 0
    #: distinct pairs in the pool; requests draw from it with
    #: replacement, so smaller pools mean more cache-hittable
    #: duplicates.  Defaults to ``max(1, requests // 2)``.
    pool: Optional[int] = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1, got {self.requests}")
        if self.rate <= 0:
            raise ConfigError(f"rate must be > 0, got {self.rate}")
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigError(
                f"process must be one of {ARRIVAL_PROCESSES}, got {self.process!r}"
            )
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")
        if self.rate_end is not None and self.rate_end <= 0:
            raise ConfigError(f"rate_end must be > 0, got {self.rate_end}")
        if self.pairs_per_request < 1:
            raise ConfigError(
                f"pairs_per_request must be >= 1, got {self.pairs_per_request}"
            )
        if self.clients < 1:
            raise ConfigError(f"clients must be >= 1, got {self.clients}")
        if self.pool is not None and self.pool < 1:
            raise ConfigError(f"pool must be >= 1, got {self.pool}")


def arrival_times(config: LoadgenConfig) -> List[float]:
    """Deterministic modeled arrival time of every request."""
    n = config.requests
    if config.process == "uniform":
        return [i / config.rate for i in range(n)]
    if config.process == "bursty":
        # bursts of `burst` arrive together; burst k lands when a uniform
        # process would have delivered its first member.
        return [(i // config.burst) * (config.burst / config.rate) for i in range(n)]
    # ramp: instantaneous rate climbs linearly rate -> rate_end; each gap
    # is 1/rate_i at the current position along the ramp.
    end = config.rate_end if config.rate_end is not None else 4.0 * config.rate
    times: List[float] = []
    t = 0.0
    for i in range(n):
        times.append(t)
        frac = i / (n - 1) if n > 1 else 0.0
        inst = config.rate + (end - config.rate) * frac
        t += 1.0 / inst
    return times


def build_trace(config: LoadgenConfig):
    """Build the deterministic request trace for a config.

    Returns ``[(arrival_s, AlignRequest), ...]`` sorted by arrival.  The
    pair pool is seeded independently of the draw sequence so changing
    the request count reshuffles draws but not pool contents.
    """
    from repro.serve.service import AlignRequest

    pool_size = (
        config.pool if config.pool is not None else max(1, config.requests // 2)
    )
    pool_rng = random.Random(config.seed * 7919 + 13)
    budget = round(config.error_rate * config.length)
    pool: List[ReadPair] = []
    for _ in range(pool_size):
        pattern = random_sequence(config.length, pool_rng)
        text = mutate_sequence(pattern, budget, pool_rng)
        pool.append(ReadPair(pattern=pattern, text=text, requested_errors=budget))

    draw_rng = random.Random(config.seed)
    times = arrival_times(config)
    trace = []
    for i, when in enumerate(times):
        pairs = tuple(
            pool[draw_rng.randrange(pool_size)]
            for _ in range(config.pairs_per_request)
        )
        request = AlignRequest(
            client=f"c{i % config.clients}", request_id=f"r{i:06d}", pairs=pairs
        )
        trace.append((when, request))
    return trace


@dataclass(frozen=True)
class RequestRecord:
    """Terminal outcome of one replayed request."""

    client: str
    request_id: str
    status: str  # "ok" | "rejected"
    pairs: int
    cached_pairs: int
    arrival_s: float
    completion_s: float
    latency_s: float
    batches: Tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "record": "request",
            "client": self.client,
            "id": self.request_id,
            "status": self.status,
            "pairs": self.pairs,
            "cached_pairs": self.cached_pairs,
            "arrival_s": self.arrival_s,
            "completion_s": self.completion_s,
            "latency_s": self.latency_s,
            "batches": list(self.batches),
        }


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    if not sorted_values:
        raise ServeError("percentile of an empty sample")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class LoadReport:
    """A replayed trace's full JSONL-serialisable outcome."""

    config: LoadgenConfig
    records: List[RequestRecord]
    stats: dict
    cache: Optional[dict]
    recovery: Optional[dict]
    batches: int = 0
    service_config: dict = field(default_factory=dict)
    #: the evaluated ``repro.obs.slo/v1`` document (``None`` when the
    #: replay ran without a policy) — a pure function of the request
    #: records, recomputed bit-for-bit by :func:`validate_load_report`.
    slo: Optional[dict] = None

    def summary(self) -> dict:
        ok = [r for r in self.records if r.status == "ok"]
        rejected = len(self.records) - len(ok)
        latencies = sorted(r.latency_s for r in ok)
        makespan = max((r.completion_s for r in ok), default=0.0)
        served_pairs = sum(r.pairs for r in ok)
        out = {
            "record": "summary",
            "requests": len(self.records),
            "completed": len(ok),
            "rejected": rejected,
            "pairs_served": served_pairs,
            "cached_pairs": sum(r.cached_pairs for r in ok),
            "batches": self.batches,
            "makespan_s": makespan,
            "throughput_pairs_per_s": (
                served_pairs / makespan if makespan > 0 else 0.0
            ),
            "latency_p50_s": percentile(latencies, 50) if latencies else 0.0,
            "latency_p90_s": percentile(latencies, 90) if latencies else 0.0,
            "latency_p99_s": percentile(latencies, 99) if latencies else 0.0,
            "latency_mean_s": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "latency_max_s": latencies[-1] if latencies else 0.0,
            "cache": self.cache,
            "recovery": self.recovery,
            "slo": self.slo,
        }
        return out

    def to_records(self) -> List[dict]:
        header = {
            "record": "header",
            "schema": REPORT_SCHEMA,
            "config": {
                "requests": self.config.requests,
                "rate": self.config.rate,
                "process": self.config.process,
                "burst": self.config.burst,
                "rate_end": self.config.rate_end,
                "pairs_per_request": self.config.pairs_per_request,
                "clients": self.config.clients,
                "length": self.config.length,
                "error_rate": self.config.error_rate,
                "seed": self.config.seed,
                "pool": self.config.pool,
            },
            "service": self.service_config,
        }
        return [header] + [r.to_dict() for r in self.records] + [self.summary()]

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(r, sort_keys=True) for r in self.to_records()) + "\n"

    def write(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")


def replay(
    service: "AlignmentService",
    clock: "VirtualClock",
    trace,
    config: LoadgenConfig,
    slo: Optional["SloPolicy"] = None,
) -> LoadReport:
    """Replay a trace against a service on its virtual clock.

    Arrival order is trace order; the clock is advanced to each arrival
    (firing any deadline flushes due in between), the request submitted,
    and at the end the service is drained so every future resolves.
    Requests that terminate exceptionally — admission rejections, shed
    victims, deadline misses — become ``"rejected"`` records (stamped
    with their actual arrival time) rather than exceptions.

    With an :class:`~repro.obs.slo.SloPolicy`, the finished record set
    is evaluated into the report's ``slo`` section and each burn-rate
    alert fire/resolve is published as an ``slo_alert`` event into the
    service telemetry's event log.
    """
    futures = []
    for when, request in trace:
        clock.advance_to(when)
        try:
            futures.append((when, request, service.submit(request)))
        except Overloaded:
            futures.append((when, request, None))
    service.drain()

    records: List[RequestRecord] = []
    for when, request, future in futures:
        response = None
        if future is not None:
            try:
                response = future.result()
            except ServeError:
                # shed / deadline-exceeded / fault-abandoned: a terminal
                # rejection decided after admission.
                response = None
        if response is None:
            records.append(
                RequestRecord(
                    client=request.client,
                    request_id=request.request_id,
                    status="rejected",
                    pairs=request.num_pairs,
                    cached_pairs=0,
                    arrival_s=when,
                    completion_s=when,
                    latency_s=0.0,
                    batches=(),
                )
            )
            continue
        records.append(
            RequestRecord(
                client=response.client,
                request_id=response.request_id,
                status="ok",
                pairs=response.num_pairs,
                cached_pairs=sum(response.cached),
                arrival_s=response.arrival_s,
                completion_s=response.completion_s,
                latency_s=response.latency_s,
                batches=response.batches,
            )
        )

    slo_doc: Optional[dict] = None
    if slo is not None:
        from repro.obs.slo import evaluate_slo

        slo_doc = evaluate_slo([r.to_dict() for r in records], slo)
        _publish_slo_alerts(service, slo_doc)

    recovery = (
        service.dispatcher.recovery.to_dict()
        if service.dispatcher.recovery is not None
        else None
    )
    return LoadReport(
        config=config,
        records=records,
        stats=service.stats.to_dict(),
        cache=service.cache.stats.to_dict() if service.cache is not None else None,
        recovery=recovery,
        batches=service.dispatcher.batches_dispatched,
        service_config={
            "max_batch_pairs": service.config.max_batch_pairs,
            "max_wait_s": service.config.max_wait_s,
            "max_queue_pairs": service.config.max_queue_pairs,
            "cache_pairs": service.config.cache_pairs,
            "cache_policy": service.config.cache_policy,
        },
        slo=slo_doc,
    )


def _publish_slo_alerts(service: "AlignmentService", slo_doc: dict) -> None:
    """Publish one ``slo_alert`` event per alert fire and resolve.

    Fires and resolves are interleaved in timeline order (ties broken by
    alert order, fire before resolve at the same instant), so the event
    log reads as the alert history an on-call human would have seen.
    """
    if service.telemetry is None:
        return
    from repro.obs.events import SLO_ALERT

    edges = []
    for i, alert in enumerate(slo_doc["alerts"]):
        window = alert["window"]
        edges.append((alert["fired_t_s"], 0, i, "fire", window, alert["burn_at_fire"]))
        if alert["resolved_t_s"] is not None:
            edges.append((alert["resolved_t_s"], 1, i, "resolve", window, None))
    edges.sort(key=lambda e: (e[0], e[1], e[2]))
    for t, _, _, state, window, burn in edges:
        attrs = {"state": state, "window_s": window["long_s"]}
        if burn is not None:
            attrs["burn"] = burn
        service.telemetry.events.publish(SLO_ALERT, t, **attrs)


def run_load(
    service: "AlignmentService",
    config: LoadgenConfig,
    slo: Optional["SloPolicy"] = None,
) -> LoadReport:
    """Build the trace for ``config`` and replay it on the service.

    The service must have been constructed with a
    :class:`~repro.serve.clock.VirtualClock` (checked).
    """
    from repro.serve.clock import VirtualClock

    if not isinstance(service.clock, VirtualClock):
        raise ServeError("run_load requires a service on a VirtualClock")
    return replay(service, service.clock, build_trace(config), config, slo=slo)


def validate_load_report(source: Union[str, Path, list]) -> dict:
    """Check a load report's schema and internal consistency.

    Accepts a path or pre-parsed records.  Re-derives every count and
    percentile in the summary from the per-request records and raises
    :class:`~repro.errors.ServeError` on any disagreement — the checks
    CI needs to trust a report it did not produce.  Returns the summary.
    """
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
        try:
            records = [json.loads(line) for line in text.splitlines() if line]
        except json.JSONDecodeError as exc:
            raise ServeError(f"load report is not valid JSONL: {exc}") from exc
    else:
        records = list(source)

    if len(records) < 2:
        raise ServeError("load report needs at least a header and a summary")
    header, *body, summary = records
    if header.get("record") != "header" or header.get("schema") != REPORT_SCHEMA:
        raise ServeError(
            f"bad header: expected schema {REPORT_SCHEMA!r}, got {header!r}"
        )
    if summary.get("record") != "summary":
        raise ServeError("last record must be the summary")

    ok_latencies: List[float] = []
    completed = rejected = pairs_served = cached_pairs = 0
    makespan = 0.0
    for record in body:
        if record.get("record") != "request":
            raise ServeError(
                f"unexpected record between header and summary: {record!r}"
            )
        missing = _REQUEST_KEYS - record.keys()
        if missing:
            raise ServeError(
                f"request record missing keys {sorted(missing)}: {record!r}"
            )
        if record["status"] not in ("ok", "rejected"):
            raise ServeError(f"bad request status: {record!r}")
        if record["status"] == "ok":
            completed += 1
            pairs_served += record["pairs"]
            cached_pairs += record["cached_pairs"]
            ok_latencies.append(record["latency_s"])
            makespan = max(makespan, record["completion_s"])
            if record["latency_s"] < 0:
                raise ServeError(f"negative latency: {record!r}")
        else:
            rejected += 1

    checks = {
        "requests": len(body),
        "completed": completed,
        "rejected": rejected,
        "pairs_served": pairs_served,
        "cached_pairs": cached_pairs,
        "makespan_s": makespan,
    }
    for key, expected in checks.items():
        if summary.get(key) != expected:
            raise ServeError(
                f"summary {key}={summary.get(key)!r} disagrees with request "
                f"records ({expected!r})"
            )
    ok_latencies.sort()
    for key, q in (("latency_p50_s", 50), ("latency_p90_s", 90), ("latency_p99_s", 99)):
        expected = percentile(ok_latencies, q) if ok_latencies else 0.0
        if summary.get(key) != expected:
            raise ServeError(
                f"summary {key}={summary.get(key)!r} disagrees with recomputed "
                f"{expected!r}"
            )
    if summary.get("slo") is not None:
        from repro.obs.slo import recompute_slo

        # bit-for-bit: rebuild the policy from the emitted section and
        # re-evaluate it over the request records; any disagreement on
        # any field (counts, burn alerts, timestamps) raises.
        recompute_slo(body, summary["slo"])
    return summary
