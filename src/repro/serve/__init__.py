"""``repro.serve`` — the streaming alignment service.

Layers (bottom up):

* :mod:`repro.serve.clock` — injectable virtual / asyncio clocks;
* :mod:`repro.serve.batcher` — pure micro-batching state machine;
* :mod:`repro.serve.cache` — deterministic LRU/LFU result cache;
* :mod:`repro.serve.dispatcher` — batches through the scheduler on a
  modeled device timeline;
* :mod:`repro.serve.resilience` — CPU-fallback policy and backend for
  graceful degradation under fleet-health pressure;
* :mod:`repro.serve.service` — admission, ordering, futures, metrics,
  deadlines, priority shedding;
* :mod:`repro.serve.loadgen` — deterministic traces, replay, reports.

See ``docs/serving.md`` for the design and the virtual-clock testing
recipe.
"""

from repro.serve.batcher import Batch, BatchPolicy, BatcherStats, MicroBatcher, WorkItem
from repro.serve.cache import CacheStats, ResultCache, kernel_fingerprint, result_key
from repro.serve.clock import AsyncioClock, Clock, Timer, VirtualClock
from repro.serve.dispatcher import BatchDispatcher, BatchOutcome
from repro.serve.resilience import (
    BACKEND_CPU,
    BACKEND_PIM,
    CpuFallbackBackend,
    FallbackPolicy,
)
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadReport,
    RequestRecord,
    arrival_times,
    build_trace,
    percentile,
    replay,
    run_load,
    validate_load_report,
)
from repro.serve.service import (
    AlignmentService,
    AlignRequest,
    AlignResponse,
    AsyncAlignmentService,
    ServeFuture,
    ServiceConfig,
    ServiceStats,
    build_service,
)

__all__ = [
    "AlignmentService",
    "AlignRequest",
    "AlignResponse",
    "AsyncAlignmentService",
    "AsyncioClock",
    "BACKEND_CPU",
    "BACKEND_PIM",
    "Batch",
    "BatchDispatcher",
    "BatchOutcome",
    "BatchPolicy",
    "BatcherStats",
    "CacheStats",
    "Clock",
    "CpuFallbackBackend",
    "FallbackPolicy",
    "LoadReport",
    "LoadgenConfig",
    "MicroBatcher",
    "RequestRecord",
    "ResultCache",
    "ServeFuture",
    "ServiceConfig",
    "ServiceStats",
    "Timer",
    "VirtualClock",
    "WorkItem",
    "arrival_times",
    "build_service",
    "build_trace",
    "kernel_fingerprint",
    "percentile",
    "replay",
    "result_key",
    "run_load",
    "validate_load_report",
]
