"""Dynamic micro-batching: coalesce a request stream into MRAM rounds.

The batcher is a *pure* state machine over per-pair work items: the
service feeds it items and a notion of "now" and it hands back formed
batches; it never touches a clock, a future, or the PIM system, which is
what makes it unit-testable with a
:class:`~hypothesis.stateful.RuleBasedStateMachine`.

Policy (the standard serving trade-off):

* **flush on size** — the moment the pending queue holds
  ``max_batch_pairs`` items, a full batch is emitted (largest batch the
  device-side round can absorb at once);
* **flush on deadline** — otherwise the *oldest* pending item waits at
  most ``max_wait_s``; when that deadline passes the whole queue is
  flushed (in chunks of at most ``max_batch_pairs``), bounding tail
  latency under trickle traffic.

Whichever trigger fires first wins.  The service arms a single clock
timer at :meth:`MicroBatcher.next_deadline` and calls
:meth:`MicroBatcher.take_due` when it fires.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional

from repro.data.generator import ReadPair
from repro.errors import ConfigError

__all__ = ["BatchPolicy", "WorkItem", "Batch", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """When to flush the pending queue into a device batch."""

    #: flush as soon as this many pairs are pending (one device round).
    max_batch_pairs: int = 64
    #: flush at most this long (modeled seconds) after the oldest pending
    #: pair arrived, whichever of the two triggers comes first.
    max_wait_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_batch_pairs < 1:
            raise ConfigError(
                f"max_batch_pairs must be >= 1, got {self.max_batch_pairs}"
            )
        if self.max_wait_s < 0:
            raise ConfigError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


@dataclass(frozen=True)
class WorkItem:
    """One pair of one request, as the batcher sees it."""

    seq: int  # global pair sequence number (submission order)
    request_seq: int  # owning request's sequence number
    offset: int  # pair index within the owning request
    pair: ReadPair
    arrival_s: float
    #: result-cache key (``None`` when caching is off for this item)
    key: Optional[str] = None


@dataclass
class Batch:
    """A formed batch, ready for dispatch."""

    index: int
    items: List[WorkItem]
    reason: str  # "size" | "deadline" | "drain"
    formed_s: float

    @property
    def num_pairs(self) -> int:
        return len(self.items)

    @property
    def oldest_arrival_s(self) -> float:
        return min(i.arrival_s for i in self.items)

    @property
    def wait_s(self) -> float:
        """How long the batch's oldest pair waited to be formed."""
        return self.formed_s - self.oldest_arrival_s


@dataclass
class BatcherStats:
    """Pair-level accounting (request accounting lives in the service)."""

    submitted_pairs: int = 0
    flushed_pairs: int = 0
    batches: int = 0
    cancelled_pairs: int = 0

    @property
    def pending_pairs(self) -> int:
        return self.submitted_pairs - self.flushed_pairs - self.cancelled_pairs


class MicroBatcher:
    """FIFO pair queue with size- and deadline-triggered batch formation."""

    def __init__(self, policy: Optional[BatchPolicy] = None) -> None:
        self.policy = policy if policy is not None else BatchPolicy()
        self._pending: Deque[WorkItem] = deque()
        self._next_index = 0
        self.stats = BatcherStats()

    # -- queries ----------------------------------------------------------

    @property
    def pending_pairs(self) -> int:
        return len(self._pending)

    def next_deadline(self) -> Optional[float]:
        """When the oldest pending pair must flush (``None`` if empty)."""
        if not self._pending:
            return None
        return self._pending[0].arrival_s + self.policy.max_wait_s

    # -- mutations --------------------------------------------------------

    def _form(self, reason: str, now: float, count: int) -> Batch:
        items = [self._pending.popleft() for _ in range(count)]
        batch = Batch(
            index=self._next_index, items=items, reason=reason, formed_s=now
        )
        self._next_index += 1
        self.stats.flushed_pairs += len(items)
        self.stats.batches += 1
        return batch

    def add(self, items: Iterable[WorkItem], now: float) -> List[Batch]:
        """Enqueue items; return any size-triggered full batches."""
        added = 0
        for item in items:
            self._pending.append(item)
            added += 1
        self.stats.submitted_pairs += added
        out: List[Batch] = []
        cap = self.policy.max_batch_pairs
        while len(self._pending) >= cap:
            out.append(self._form("size", now, cap))
        return out

    def _flush_all(self, reason: str, now: float) -> List[Batch]:
        out: List[Batch] = []
        cap = self.policy.max_batch_pairs
        while self._pending:
            out.append(self._form(reason, now, min(cap, len(self._pending))))
        return out

    def take_due(self, now: float) -> List[Batch]:
        """Deadline fired: flush everything pending (possibly [])."""
        deadline = self.next_deadline()
        if deadline is None or deadline > now:
            return []
        return self._flush_all("deadline", now)

    def drain(self, now: float) -> List[Batch]:
        """Flush everything regardless of deadlines (shutdown / drain)."""
        return self._flush_all("drain", now)

    def remove_request(self, request_seq: int) -> int:
        """Drop every pending item of one request (cancellation).

        Returns the number of pairs removed.  Items of the request that
        already left in a batch are *not* recalled — the caller must
        check dispatch state before offering cancellation.
        """
        kept = deque(i for i in self._pending if i.request_seq != request_seq)
        removed = len(self._pending) - len(kept)
        self._pending = kept
        self.stats.cancelled_pairs += removed
        return removed
