"""Command-line interface.

Installed as the ``repro`` console script::

    repro generate --pairs 1000 --length 100 --error-rate 0.02 -o reads.seq
    repro align    -i reads.seq --metric affine
    repro pim-align -i reads.seq --dpus 64 --tasklets 16
    repro qa       --trials 200 --seed 42 --report qa.jsonl
    repro fig1     --quick
    repro sweep    tasklets
    repro serve    -i requests.jsonl -o responses.jsonl --cache 256
    repro loadgen  --requests 200 --process bursty --report load.jsonl
    repro bench    run --profile quick
    repro bench    compare --baseline BENCH_baseline.json

Each subcommand is a thin wrapper over the library API; anything the CLI
can do, `import repro` can do better.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.aligner import WavefrontAligner
from repro.core.penalties import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    Penalties,
    TwoPieceAffinePenalties,
)
from repro.data.datasets import DatasetSpec
from repro.data.seqio import read_seq, write_fasta_pairs, write_seq
from repro.errors import ReproError
from repro.perf.report import format_table, human_time

__all__ = ["main", "build_parser"]


def _penalties_from_args(args: argparse.Namespace) -> Penalties:
    if args.metric == "edit":
        return EditPenalties()
    if args.metric == "linear":
        return LinearPenalties(mismatch=args.mismatch, indel=args.gap_extend)
    if args.metric == "affine2p":
        return TwoPieceAffinePenalties(
            mismatch=args.mismatch,
            gap_open1=args.gap_open,
            gap_extend1=args.gap_extend,
            gap_open2=args.gap_open2,
            gap_extend2=args.gap_extend2,
        )
    return AffinePenalties(
        mismatch=args.mismatch, gap_open=args.gap_open, gap_extend=args.gap_extend
    )


def _add_penalty_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metric",
        choices=("affine", "edit", "linear", "affine2p"),
        default="affine",
        help="distance metric (default: gap-affine, the paper's)",
    )
    parser.add_argument("--mismatch", type=int, default=4)
    parser.add_argument("--gap-open", type=int, default=6)
    parser.add_argument("--gap-extend", type=int, default=2)
    parser.add_argument("--gap-open2", type=int, default=24)
    parser.add_argument("--gap-extend2", type=int, default=1)


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    """Service-construction flags shared by ``serve`` and ``loadgen``."""
    parser.add_argument("--dpus", type=int, default=4)
    parser.add_argument("--tasklets", type=int, default=4)
    parser.add_argument("--workers", type=int, default=1,
                        help="host processes per round (1 = sequential, "
                             "0 = one per core; responses are identical)")
    parser.add_argument("--max-read-len", type=int, default=100)
    parser.add_argument("--max-edits", type=int, default=4)
    parser.add_argument("--engine", choices=("scalar", "vector"),
                        default="vector",
                        help="host alignment engine (default: 'vector', "
                             "which batches each DPU's pairs through the "
                             "NumPy engine for simulation speed; 'scalar' "
                             "is the per-pair escape hatch; responses are "
                             "identical)")
    parser.add_argument("--max-batch-pairs", type=int, default=64,
                        help="flush the micro-batcher at this many pairs")
    parser.add_argument("--max-wait", type=float, default=1e-3, metavar="S",
                        help="oldest pending pair waits at most this long "
                             "(modeled seconds)")
    parser.add_argument("--max-queue-pairs", type=int, default=4096,
                        help="admission bound on pending + in-flight pairs")
    parser.add_argument("--pairs-per-round", type=int, default=None,
                        metavar="N",
                        help="scheduler round size inside each batch "
                             "(default: one round per batch); with "
                             "--shards > 1 smaller rounds stripe each "
                             "batch across more coordinator<->shard links")
    parser.add_argument("--cache", type=int, default=0, metavar="N",
                        help="result-cache capacity in entries (0 = off)")
    parser.add_argument("--cache-policy", choices=("lru", "lfu"), default="lru")
    parser.add_argument("--kill-dpu", type=int, default=None, metavar="ID",
                        help="inject a first-attempt death of this DPU into "
                             "every batch (recovery must stay lossless)")
    parser.add_argument("--stall-dpu", type=int, default=None, metavar="ID",
                        help="inject a first-attempt tasklet stall on this "
                             "DPU into every batch (watchdog-detected)")
    parser.add_argument("--breaker", action="store_true",
                        help="enable the fleet-health ledger: per-DPU "
                             "circuit breakers quarantine repeat offenders "
                             "out of scheduler rounds")
    parser.add_argument("--fallback-threshold", type=float, default=None,
                        metavar="F",
                        help="with --breaker: route whole batches to the "
                             "CPU Gotoh baseline while healthy capacity "
                             "sits below this fraction (0 < F <= 1)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="federate N identical PIM shards behind the "
                             "service (--dpus is per shard); batches "
                             "round-stripe across shards with health-aware "
                             "rebalancing and responses stay byte-identical "
                             "to --shards 1")
    parser.add_argument("--net-plan", metavar="JSON|@FILE", default=None,
                        help="with --shards > 1: seeded NetworkFaultPlan for "
                             "the coordinator<->shard links, as inline JSON "
                             "or @path-to-json (keys: seed, drops, "
                             "duplicates, delays, reorders, partitions)")
    parser.add_argument("--link-timeout", type=float, default=None, metavar="S",
                        help="modeled per-link delivery timeout before "
                             "retransmission (default 0.002)")
    parser.add_argument("--hedge", action="store_true",
                        help="hedged re-dispatch: steal a timed-out "
                             "in-flight round onto the next healthy shard "
                             "instead of only retrying the link")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write service metrics: Prometheus text for "
                             ".prom/.txt, JSON otherwise")


def _parse_net_plan(args: argparse.Namespace):
    """(net_plan, transport_policy) from --net-plan/--link-timeout/--hedge."""
    import json as _json

    from repro.errors import ConfigError
    from repro.pim.transport import NetworkFaultPlan, TransportPolicy

    net_plan = None
    if args.net_plan is not None:
        text = args.net_plan
        if text.startswith("@"):
            with open(text[1:], "r", encoding="utf-8") as fh:
                text = fh.read()
        try:
            doc = _json.loads(text)
        except _json.JSONDecodeError as exc:
            raise ConfigError(f"--net-plan is not valid JSON: {exc}") from exc
        net_plan = NetworkFaultPlan.from_dict(doc)
    policy = None
    if args.link_timeout is not None or args.hedge:
        kwargs = {}
        if args.link_timeout is not None:
            kwargs["link_timeout_s"] = args.link_timeout
        policy = TransportPolicy(hedge=args.hedge, **kwargs)
    if policy is not None and net_plan is None:
        raise ConfigError(
            "--link-timeout/--hedge govern the modeled transport; they "
            "need --net-plan (and --shards > 1)"
        )
    return net_plan, policy


def _build_serve_service(args: argparse.Namespace):
    from repro.pim.faults import DpuDeath, FaultPlan, TaskletStall
    from repro.serve import FallbackPolicy, ServiceConfig, build_service

    fault_plan = None
    deaths = (DpuDeath(dpu_id=args.kill_dpu),) if args.kill_dpu is not None else ()
    stalls = (
        (TaskletStall(dpu_id=args.stall_dpu),) if args.stall_dpu is not None else ()
    )
    if deaths or stalls:
        fault_plan = FaultPlan(deaths=deaths, stalls=stalls)
    health_policy = None
    if args.breaker:
        from repro.pim.health import HealthPolicy

        health_policy = HealthPolicy()
    fallback = None
    if args.fallback_threshold is not None:
        fallback = FallbackPolicy(min_healthy_fraction=args.fallback_threshold)
    net_plan, transport_policy = _parse_net_plan(args)
    return build_service(
        num_dpus=args.dpus,
        tasklets=args.tasklets,
        workers=args.workers,
        max_read_len=args.max_read_len,
        max_edits=args.max_edits,
        penalties=_penalties_from_args(args),
        config=ServiceConfig(
            max_batch_pairs=args.max_batch_pairs,
            max_wait_s=args.max_wait,
            max_queue_pairs=args.max_queue_pairs,
            cache_pairs=args.cache,
            cache_policy=args.cache_policy,
            pairs_per_round=args.pairs_per_round,
        ),
        fault_plan=fault_plan,
        health_policy=health_policy,
        fallback=fallback,
        engine=args.engine,
        shards=args.shards,
        net_plan=net_plan,
        transport_policy=transport_policy,
    )


def _write_serve_metrics(path: str, service) -> None:
    import json as _json

    if path.endswith((".prom", ".txt")):
        from repro.obs.export import write_prometheus

        write_prometheus(path, service.registry)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            _json.dump(service.metrics_snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(f"wrote service metrics to {path}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WFA-on-PIM reproduction toolkit (Diab et al., IPDPS'22)",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # generate ---------------------------------------------------------
    gen = sub.add_parser("generate", help="generate a synthetic read-pair workload")
    gen.add_argument("--pairs", type=int, default=1000)
    gen.add_argument("--length", type=int, default=100)
    gen.add_argument("--error-rate", type=float, default=0.02)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--error-model", choices=("exact", "uniform", "binomial"), default="exact"
    )
    gen.add_argument("--format", choices=("seq", "fasta"), default="seq")
    gen.add_argument("-o", "--output", required=True)

    # align ---------------------------------------------------------------
    aln = sub.add_parser("align", help="align a .seq workload on the host")
    aln.add_argument("-i", "--input", required=True)
    aln.add_argument("--score-only", action="store_true")
    aln.add_argument("--adaptive", action="store_true")
    aln.add_argument(
        "--linear-space",
        action="store_true",
        help="use Myers-Miller linear-space traceback (long sequences)",
    )
    aln.add_argument("-o", "--output", help="TSV output path (default: stdout)")
    _add_penalty_args(aln)

    # pim-align -----------------------------------------------------------
    pim = sub.add_parser(
        "pim-align", help="align a .seq workload on the simulated PIM system"
    )
    pim.add_argument("-i", "--input", required=True)
    pim.add_argument("--dpus", type=int, default=64)
    pim.add_argument("--tasklets", type=int, default=16)
    pim.add_argument("--policy", choices=("mram", "wram"), default="mram")
    pim.add_argument("--max-edits", type=int, default=None,
                     help="kernel edit budget (default: inferred from data)")
    pim.add_argument("--engine", choices=("scalar", "vector"),
                     default="vector",
                     help="host alignment engine (default: 'vector', which "
                          "batches each DPU's pairs through the NumPy "
                          "engine for simulation speed; 'scalar' is the "
                          "per-pair escape hatch; results, counters and "
                          "traces are identical)")
    pim.add_argument("--workers", type=int, default=1,
                     help="host processes simulating DPUs in parallel "
                          "(1 = sequential, 0 = one per CPU core; "
                          "results are identical either way)")
    pim.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write run metrics: Prometheus text for "
                          ".prom/.txt, JSONL run manifest for .jsonl, "
                          "full JSON document otherwise")
    pim.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write a Chrome trace_event JSON of the run "
                          "(open in chrome://tracing or ui.perfetto.dev)")
    pim.add_argument("--pairs-per-round", type=int, default=None, metavar="N",
                     help="scheduler round size (default: MRAM capacity); "
                          "multi-round runs can be journaled and resumed")
    pim.add_argument("--journal", metavar="PATH", default=None,
                     help="append each completed scheduler round to this "
                          "write-ahead journal (repro.pim.journal/v1)")
    pim.add_argument("--resume", action="store_true",
                     help="resume an interrupted run from --journal: "
                          "journaled rounds replay idempotently, only the "
                          "remainder executes")
    pim.add_argument("--kill-dpu", type=int, default=None, metavar="ID",
                     help="inject a permanent death of this DPU (recovery "
                          "requeues its pairs onto spares)")
    pim.add_argument("--stall-dpu", type=int, default=None, metavar="ID",
                     help="inject a first-attempt tasklet stall on this DPU "
                          "(detected by the modeled launch watchdog)")
    pim.add_argument("--breaker", action="store_true",
                     help="enable per-DPU circuit breakers: repeat "
                          "offenders are quarantined out of later rounds "
                          "instead of burning retries")
    pim.add_argument("--shards", type=int, default=1, metavar="N",
                     help="federate N identical PIM shards (--dpus is per "
                          "shard); rounds stripe across shards, --kill-dpu/"
                          "--stall-dpu ids index the federated fleet, "
                          "--journal becomes a directory (per-shard "
                          "journals + manifest), and results stay "
                          "byte-identical to --shards 1")
    pim.add_argument("--shard-workers", type=int, default=1, metavar="N",
                     help="host processes running shards in parallel "
                          "(1 = sequential; health-ledger deltas ride home "
                          "in each shard's outcome, so --breaker composes; "
                          "results are identical either way)")
    pim.add_argument("--net-plan", metavar="JSON|@FILE", default=None,
                     help="with --shards > 1: seeded NetworkFaultPlan for "
                          "the coordinator<->shard links, as inline JSON or "
                          "@path-to-json; rounds travel as idempotent "
                          "envelopes with at-least-once redelivery")
    pim.add_argument("--link-timeout", type=float, default=None, metavar="S",
                     help="modeled per-link delivery timeout before "
                          "retransmission (default 0.002)")
    pim.add_argument("--hedge", action="store_true",
                     help="hedged re-dispatch: steal a timed-out in-flight "
                          "round onto the next healthy shard")
    pim.add_argument("-o", "--output", default=None, metavar="PATH",
                     help="write gathered alignments as TSV "
                          "(index<TAB>score<TAB>cigar); forces result "
                          "collection")
    _add_penalty_args(pim)

    # map ---------------------------------------------------------------
    mp = sub.add_parser(
        "map",
        help="map FASTA reads semi-globally onto a (small) FASTA reference",
    )
    mp.add_argument("--reference", required=True, help="single-record FASTA")
    mp.add_argument("--reads", required=True, help="FASTA of reads")
    mp.add_argument("-o", "--output", required=True, help="PAF output path")
    mp.add_argument("--both-strands", action="store_true",
                    help="also try the reverse complement, keep the better hit")
    _add_penalty_args(mp)

    # stats ---------------------------------------------------------------
    stats = sub.add_parser(
        "stats", help="align a .seq workload and print batch statistics"
    )
    stats.add_argument("-i", "--input", required=True)
    stats.add_argument("--adaptive", action="store_true")
    _add_penalty_args(stats)

    # fig1 ---------------------------------------------------------------
    fig = sub.add_parser("fig1", help="reproduce the paper's Fig. 1")
    fig.add_argument("--quick", action="store_true")
    fig.add_argument("--json", help="also write a machine-readable record")

    # qa -----------------------------------------------------------------
    qa = sub.add_parser(
        "qa",
        help="differential verification: PIM kernel vs host oracles",
    )
    qa.add_argument("--trials", type=int, default=200,
                    help="seeded corpus cases per run (default: 200)")
    qa.add_argument("--seed", type=int, default=42)
    qa.add_argument("--max-len", type=int, default=32)
    qa.add_argument("--max-edits", type=int, default=4)
    qa.add_argument("--dpus", type=int, default=4)
    qa.add_argument("--tasklets", type=int, default=4)
    qa.add_argument("--workers", type=int, default=1)
    qa.add_argument("--shards", type=int, default=1,
                    help="run the sweep through a round-striped fleet of "
                         "this many shards (--dpus DPUs each; default: 1 "
                         "= the unsharded scheduler)")
    qa.add_argument("--shard-workers", type=int, default=1,
                    help="process-pool width for the fleet path "
                         "(0/1 = inline)")
    qa.add_argument("--no-shrink", action="store_true",
                    help="skip minimizing failing cases")
    qa.add_argument("--kill-dpu", type=int, default=None, metavar="ID",
                    help="also run under a fault plan that kills this DPU "
                         "on its first attempt (recovery must still agree)")
    qa.add_argument("--report", metavar="PATH", default=None,
                    help="write the JSONL report here")

    # campaign ------------------------------------------------------------
    camp = sub.add_parser(
        "campaign",
        help="run an ablation x chaos campaign and write the evidence "
             "report (schema repro.qa.campaign/v1)",
    )
    camp.add_argument("--pairs", type=int, default=48,
                      help="seeded corpus pairs per cell (default: 48)")
    camp.add_argument("--length", type=int, default=16)
    camp.add_argument("--max-edits", type=int, default=4)
    camp.add_argument("--seed", type=int, default=42)
    camp.add_argument("--dpus", type=int, default=4,
                      help="DPUs per shard (default: 4)")
    camp.add_argument("--tasklets", type=int, default=2)
    camp.add_argument("--pairs-per-round", type=int, default=8)
    camp.add_argument("--baseline-shards", type=int, default=2,
                      help="shard count ablations inherit unless pinned "
                           "(default: 2)")
    camp.add_argument("--serve-requests", type=int, default=24,
                      help="serve-phase load replay size per cell "
                           "(0 skips the serve phase)")
    camp.add_argument("--serve-rate", type=float, default=4000.0)
    camp.add_argument("--workers", type=int, default=0,
                      help="process-pool width for cells (0/1 = inline; "
                           "the report is byte-identical either way)")
    camp.add_argument("--ablations", default=None, metavar="A,B,...",
                      help="comma-separated standard ablation names "
                           "(default: the full vocabulary; the first must "
                           "be 'baseline')")
    camp.add_argument("--grid", default=None, metavar="P,Q,...",
                      help="comma-separated standard fault grid point "
                           "names (default: the full grid)")
    camp.add_argument("--report", metavar="PATH", default=None,
                      help="write the JSONL campaign report here "
                           "(validated after writing)")
    camp.add_argument("--resume", action="store_true",
                      help="salvage completed cells from an existing "
                           "--report file and compute only the rest")
    camp.add_argument("--events-out", metavar="PATH", default=None,
                      help="write the campaign's structured event log here")

    # serve ---------------------------------------------------------------
    srv = sub.add_parser(
        "serve",
        help="run the micro-batching alignment service over JSONL requests",
    )
    srv.add_argument("-i", "--input", default=None,
                     help="JSONL request file (default: stdin); each line "
                          '{"client": ..., "id": ..., "pairs": [[P, T], ...]'
                          ', "arrival_s": ...}')
    srv.add_argument("-o", "--output", default=None,
                     help="JSONL response path (default: stdout)")
    _add_serve_args(srv)
    _add_penalty_args(srv)

    # loadgen -------------------------------------------------------------
    lg = sub.add_parser(
        "loadgen",
        help="replay a deterministic synthetic load against the service",
    )
    lg.add_argument("--requests", type=int, default=200)
    lg.add_argument("--rate", type=float, default=2000.0,
                    help="mean arrival rate, requests per modeled second")
    lg.add_argument("--process", choices=("uniform", "bursty", "ramp"),
                    default="uniform")
    lg.add_argument("--burst", type=int, default=8)
    lg.add_argument("--rate-end", type=float, default=None,
                    help="final rate for --process ramp (default: 4x rate)")
    lg.add_argument("--pairs-per-request", type=int, default=1)
    lg.add_argument("--clients", type=int, default=4)
    lg.add_argument("--length", type=int, default=16)
    lg.add_argument("--error-rate", type=float, default=0.05)
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--report", metavar="PATH", default=None,
                    help="write the JSONL latency report here (validated)")
    lg.add_argument("--slo-target", type=float, default=None, metavar="S",
                    help="enable the SLO monitor: per-request latency "
                         "target in modeled seconds; the report gains an "
                         "'slo' section with burn-rate alerts")
    lg.add_argument("--slo-percentile", type=float, default=99.0,
                    help="latency percentile the SLO is stated at")
    lg.add_argument("--slo-budget", type=float, default=0.01,
                    help="error budget: tolerated bad-request fraction")
    lg.add_argument("--events-out", metavar="PATH", default=None,
                    help="write the structured event log (breaker / "
                         "watchdog / fallback / shed / deadline / "
                         "slo_alert) as JSONL")
    lg.add_argument("--trace-out", metavar="PATH", default=None,
                    help="write a Chrome trace_event JSON of the replay "
                         "with events as instant annotations")
    _add_serve_args(lg)
    _add_penalty_args(lg)

    # bench ---------------------------------------------------------------
    bench = sub.add_parser(
        "bench",
        help="perf ledger: run registered scenarios / gate regressions",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    brun = bench_sub.add_parser(
        "run", help="run bench scenarios and append records to the ledger"
    )
    brun.add_argument("--profile", choices=("quick", "full"), default="quick",
                      help="workload size: 'quick' is CI-safe seconds, "
                           "'full' is the overnight shape")
    brun.add_argument("--scenario", action="append", default=None,
                      metavar="NAME",
                      help="run only this scenario (repeatable; default: "
                           "the full catalog)")
    brun.add_argument("--ledger", default="BENCH_ledger.json", metavar="PATH",
                      help="ledger file to append to")
    brun.add_argument("--no-append", action="store_true",
                      help="run and print, but do not touch the ledger")
    bcmp = bench_sub.add_parser(
        "compare",
        help="gate the latest ledger records against a baseline "
             "(non-zero exit on regression)",
    )
    bcmp.add_argument("--ledger", default="BENCH_ledger.json", metavar="PATH")
    bcmp.add_argument("--baseline", default="BENCH_baseline.json",
                      metavar="PATH")
    bcmp.add_argument("--max-drop", type=float, default=0.10,
                      help="tolerated modeled-throughput drop (fraction)")
    bcmp.add_argument("--max-rise", type=float, default=0.10,
                      help="tolerated modeled seconds / latency growth "
                           "(fraction)")

    # sweep -----------------------------------------------------------------
    sweep = sub.add_parser("sweep", help="run an ablation/extension sweep")
    sweep.add_argument(
        "which",
        choices=(
            "tasklets",
            "allocator",
            "error-rate",
            "read-length",
            "dpus",
            "algos",
            "staging",
            "sensitivity",
        ),
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = DatasetSpec(
        num_pairs=args.pairs,
        length=args.length,
        error_rate=args.error_rate,
        seed=args.seed,
        error_model=args.error_model,
    )
    writer = write_seq if args.format == "seq" else write_fasta_pairs
    count = writer(args.output, spec.stream())
    print(f"wrote {count} pairs ({spec.describe()}) to {args.output}")
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    pairs = read_seq(args.input)
    penalties = _penalties_from_args(args)
    if args.linear_space and args.metric == "affine2p":
        print("error: --linear-space supports affine/linear/edit only",
              file=sys.stderr)
        return 1
    aligner = WavefrontAligner(
        penalties, heuristic="adaptive" if args.adaptive else None
    )
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        print("pair\tscore\tcigar", file=out)
        for idx, pair in enumerate(pairs):
            if args.linear_space:
                from repro.baselines.linear_space import myers_miller_align

                score, cig = myers_miller_align(pair.pattern, pair.text, penalties)
                print(f"{idx}\t{score}\t{cig}", file=out)
                continue
            result = aligner.align(pair.pattern, pair.text, score_only=args.score_only)
            cigar = str(result.cigar) if result.cigar is not None else "."
            print(f"{idx}\t{result.score}\t{cigar}", file=out)
    finally:
        if args.output:
            out.close()
    if args.output:
        print(f"aligned {len(pairs)} pairs -> {args.output}")
    return 0


def _write_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Reconcile and export the run's telemetry per the CLI flags."""
    from repro.obs.export import (
        write_chrome_trace,
        write_manifest_jsonl,
        write_metrics_json,
        write_prometheus,
    )

    summary = telemetry.reconcile()
    if args.metrics_out:
        path = args.metrics_out
        if path.endswith((".prom", ".txt")):
            write_prometheus(path, telemetry.registry)
        elif path.endswith(".jsonl"):
            write_manifest_jsonl(path, telemetry)
        else:
            write_metrics_json(path, telemetry)
        print(f"wrote metrics to {path}")
    if args.trace_out:
        doc = write_chrome_trace(args.trace_out, telemetry)
        print(
            f"wrote Chrome trace to {args.trace_out} "
            f"({len(doc['traceEvents'])} events; open in chrome://tracing)"
        )
    print(
        f"telemetry reconciled: {summary['runs']} run(s), "
        f"{human_time(summary['model_seconds'])} of model time"
    )


def _write_pim_tsv(path: str, records) -> None:
    """Write gathered alignments as ``index<TAB>score<TAB>cigar`` rows."""
    with open(path, "w", encoding="utf-8") as fh:
        for index, score, cigar in sorted(records):
            fh.write(f"{index}\t{score}\t{cigar if cigar is not None else ''}\n")
    print(f"wrote alignments to {path}")


def _scheduled_records(run):
    """Workload-global (index, score, cigar) triples from a ScheduledRun."""
    out, start = [], 0
    for rnd, size in zip(run.per_round, run.schedule.round_sizes()):
        out.extend((start + i, s, c) for i, s, c in rnd.results)
        start += size
    return out


def _cmd_pim_align(args: argparse.Namespace) -> int:
    from repro.pim.config import PimSystemConfig
    from repro.pim.kernel import KernelConfig
    from repro.pim.system import PimSystem

    pairs = read_seq(args.input)
    if not pairs:
        print("input holds no pairs", file=sys.stderr)
        return 1
    penalties = _penalties_from_args(args)
    max_len = max(p.max_length() for p in pairs)
    if args.max_edits is not None:
        max_edits = args.max_edits
    else:
        # infer a budget from the data: CIGAR-free upper bound via lengths
        # plus a conservative 10% of the read length
        max_edits = max(1, max_len // 10)
    config = PimSystemConfig(
        num_dpus=args.dpus,
        num_ranks=max(1, args.dpus // 64) if args.dpus % 64 == 0 else 1,
        tasklets=args.tasklets,
        num_simulated_dpus=args.dpus,
        metadata_policy=args.policy,
        workers=args.workers,
    )
    kernel_config = KernelConfig(
        penalties=penalties,
        max_read_len=max_len,
        max_edits=max_edits,
        engine=args.engine,
    )
    telemetry = None
    if args.metrics_out or args.trace_out:
        from repro.obs import RunTelemetry

        telemetry = RunTelemetry()

    if args.shards > 1:
        return _pim_align_fleet(args, config, kernel_config, pairs, telemetry)
    if args.net_plan is not None or args.hedge or args.link_timeout is not None:
        print(
            "error: --net-plan/--link-timeout/--hedge model the "
            "coordinator<->shard network; they require --shards > 1",
            file=sys.stderr,
        )
        return 1

    system = PimSystem(config, kernel_config, telemetry=telemetry)

    scheduled = (
        args.journal is not None
        or args.resume
        or args.pairs_per_round is not None
        or args.kill_dpu is not None
        or args.stall_dpu is not None
        or args.breaker
    )
    if scheduled:
        return _pim_align_scheduled(args, system, pairs, telemetry)

    run = system.align(pairs)
    if args.output:
        _write_pim_tsv(args.output, run.results)
    rows = [
        ("pairs", f"{run.num_pairs:,}"),
        ("DPUs / tasklets / policy", f"{args.dpus} / {args.tasklets} / {args.policy}"),
        ("host workers", str(args.workers)),
        ("kernel", human_time(run.kernel_seconds)),
        ("transfers", human_time(run.transfer_seconds)),
        ("total", human_time(run.total_seconds)),
        ("throughput", f"{run.throughput():,.0f} pairs/s"),
        ("kernel throughput", f"{run.kernel_throughput():,.0f} pairs/s"),
        ("DPU bound", run.dominant_bound()),
    ]
    print(format_table(["metric", "value"], rows, title="simulated PIM run"))
    if telemetry is not None:
        _write_telemetry(args, telemetry)
    return 0


def _pim_align_scheduled(args: argparse.Namespace, system, pairs, telemetry) -> int:
    """The journaled / fault-tolerant / breaker-aware scheduler path."""
    import warnings

    from repro.errors import DegradedCapacity
    from repro.pim.faults import DpuDeath, FaultPlan, TaskletStall
    from repro.pim.health import FleetHealth
    from repro.pim.scheduler import BatchScheduler

    if args.resume and args.journal is None:
        print("error: --resume requires --journal", file=sys.stderr)
        return 1
    fault_plan = None
    if args.kill_dpu is not None or args.stall_dpu is not None:
        deaths = (
            (DpuDeath(dpu_id=args.kill_dpu),) if args.kill_dpu is not None else ()
        )
        stalls = (
            (TaskletStall(dpu_id=args.stall_dpu),)
            if args.stall_dpu is not None
            else ()
        )
        fault_plan = FaultPlan(deaths=deaths, stalls=stalls)
    health = None
    if args.breaker:
        health = FleetHealth(
            args.dpus,
            registry=telemetry.registry if telemetry is not None else None,
            events=telemetry.events if telemetry is not None else None,
        )
    scheduler = BatchScheduler(system)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DegradedCapacity)
        if args.resume:
            run = scheduler.resume_run(
                args.journal,
                pairs,
                pairs_per_round=args.pairs_per_round,
                collect_results=bool(args.output),
                fault_plan=fault_plan,
                health=health,
            )
        else:
            run = scheduler.run(
                pairs,
                pairs_per_round=args.pairs_per_round,
                collect_results=bool(args.output),
                fault_plan=fault_plan,
                health=health,
                journal=args.journal,
            )
    if args.output:
        _write_pim_tsv(args.output, _scheduled_records(run))
    rows = [
        ("pairs", f"{run.schedule.total_pairs:,}"),
        ("DPUs / tasklets / policy", f"{args.dpus} / {args.tasklets} / {args.policy}"),
        ("rounds (replayed)", f"{run.schedule.rounds} ({run.rounds_replayed})"),
        ("kernel", human_time(run.kernel_seconds)),
        ("transfers", human_time(run.transfer_seconds)),
        ("recovery overhead", human_time(run.recovery_seconds)),
        ("total", human_time(run.total_seconds)),
        ("throughput", f"{run.throughput():,.0f} pairs/s"),
    ]
    print(format_table(["metric", "value"], rows, title="simulated PIM run"))
    if run.recovery is not None:
        print(f"recovery: {run.recovery.faults_seen} fault(s), "
              f"{len(run.recovery.rerun_pairs)} pair(s) re-run, "
              f"{len(run.recovery.abandoned_pairs)} abandoned")
    if health is not None:
        states = health.states()
        open_dpus = sorted(d for d, s in states.items() if s != "closed")
        if open_dpus:
            print(f"breakers not closed: {open_dpus} "
                  f"(states: { {d: states[d] for d in open_dpus} })")
    for warning in caught:
        if issubclass(warning.category, DegradedCapacity):
            print(f"warning: {warning.message}", file=sys.stderr)
    if args.journal:
        print(f"journal: {args.journal} "
              f"({run.schedule.rounds - run.rounds_replayed} round(s) appended)")
    if telemetry is not None:
        _write_telemetry(args, telemetry)
    return 0


def _pim_align_fleet(args: argparse.Namespace, config, kernel_config, pairs,
                     telemetry) -> int:
    """The sharded-fleet path: round-striping across N PimSystems.

    ``--journal`` names a directory here (per-shard journals plus the
    ``repro.pim.fleet/v1`` manifest); fault ids index the federated
    fleet (``global`` domain).
    """
    import warnings

    from repro.errors import DegradedCapacity
    from repro.pim.faults import DpuDeath, FaultPlan, TaskletStall
    from repro.pim.fleet import FleetCoordinator

    if args.resume and args.journal is None:
        print("error: --resume requires --journal", file=sys.stderr)
        return 1
    fault_plan = None
    if args.kill_dpu is not None or args.stall_dpu is not None:
        deaths = (
            (DpuDeath(dpu_id=args.kill_dpu),) if args.kill_dpu is not None else ()
        )
        stalls = (
            (TaskletStall(dpu_id=args.stall_dpu),)
            if args.stall_dpu is not None
            else ()
        )
        fault_plan = FaultPlan(deaths=deaths, stalls=stalls)
    health_policy = None
    if args.breaker:
        from repro.pim.health import HealthPolicy

        health_policy = HealthPolicy()
    net_plan, transport_policy = _parse_net_plan(args)
    if net_plan is not None and not net_plan.is_calm() and (
        args.journal is not None or args.resume
    ):
        print(
            "error: --journal/--resume are not supported with an active "
            "--net-plan (at-least-once delivery is the durability story "
            "on a faulty network)",
            file=sys.stderr,
        )
        return 1
    fleet = FleetCoordinator(
        config,
        kernel_config,
        shards=args.shards,
        shard_workers=args.shard_workers,
        health_policy=health_policy,
        telemetry=telemetry,
        net_plan=net_plan,
        transport_policy=transport_policy,
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DegradedCapacity)
        if args.resume:
            run = fleet.resume_run(
                args.journal,
                pairs,
                pairs_per_round=args.pairs_per_round,
                collect_results=bool(args.output),
                fault_plan=fault_plan,
            )
        else:
            run = fleet.run(
                pairs,
                pairs_per_round=args.pairs_per_round,
                collect_results=bool(args.output),
                fault_plan=fault_plan,
                journal=args.journal,
            )
    if args.output:
        _write_pim_tsv(args.output, run.results())
    rows = [
        ("pairs", f"{run.schedule.total_pairs:,}"),
        ("shards x DPUs", f"{args.shards} x {args.dpus} = {fleet.total_dpus}"),
        ("tasklets / policy", f"{args.tasklets} / {args.policy}"),
        ("rounds (replayed)", f"{run.schedule.rounds} ({run.rounds_replayed})"),
        ("kernel", human_time(run.kernel_seconds)),
        ("transfers", human_time(run.transfer_seconds)),
        ("recovery overhead", human_time(run.recovery_seconds)),
        ("makespan", human_time(run.total_seconds)),
        ("shard-serial time", human_time(run.serial_seconds)),
        ("fleet speedup", f"{run.speedup():.2f}x"),
        ("throughput", f"{run.throughput():,.0f} pairs/s"),
    ]
    if run.transport is not None:
        t = run.transport
        rows.extend([
            ("net drops / redeliveries", f"{t.drops} / {t.redeliveries}"),
            ("net partition-blocked", str(t.partition_blocked)),
            ("net steals / dups absorbed",
             f"{t.steals} / {t.duplicates_absorbed}"),
        ])
    print(format_table(["metric", "value"], rows, title="simulated PIM fleet run"))
    if run.transport is not None:
        open_links = sorted(
            k for k, s in fleet.transport.link_states(run.total_seconds).items()
            if s != "closed"
        )
        if open_links:
            print(f"links not closed: {open_links}")
    if run.recovery is not None:
        print(f"recovery: {run.recovery.faults_seen} fault(s), "
              f"{len(run.recovery.rerun_pairs)} pair(s) re-run, "
              f"{len(run.recovery.abandoned_pairs)} abandoned")
    if health_policy is not None:
        for shard, states in fleet.health_states().items():
            if states is None:
                continue
            open_dpus = sorted(d for d, s in states.items() if s != "closed")
            if open_dpus:
                print(f"shard {shard} breakers not closed: {open_dpus} "
                      f"(states: { {d: states[d] for d in open_dpus} })")
    for warning in caught:
        if issubclass(warning.category, DegradedCapacity):
            print(f"warning: {warning.message}", file=sys.stderr)
    if args.journal:
        appended = run.schedule.rounds - run.rounds_replayed
        print(f"fleet journal: {args.journal} ({appended} round(s) appended "
              f"across {len(run.shard_runs)} shard journal(s))")
    if telemetry is not None:
        # federate the per-shard device counters into the primary
        # registry so the written metrics cover the whole fleet
        for shard_tel in fleet.shard_telemetries:
            if shard_tel is not None:
                telemetry.registry.merge_snapshot(shard_tel.registry.snapshot())
        _write_telemetry(args, telemetry)
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.core.span import AlignmentSpan
    from repro.data.paf import from_alignment, write_paf
    from repro.data.seqio import read_fasta
    from repro.data.seqtools import reverse_complement

    refs = read_fasta(args.reference)
    if len(refs) != 1:
        print(
            f"error: reference must hold exactly one record, got {len(refs)}",
            file=sys.stderr,
        )
        return 1
    ref_name, reference = refs[0]
    reads = read_fasta(args.reads)
    if not reads:
        print("error: no reads found", file=sys.stderr)
        return 1

    aligner = WavefrontAligner(
        _penalties_from_args(args), span=AlignmentSpan.semiglobal()
    )
    records = []
    for name, seq in reads:
        fwd = aligner.align(seq, reference)
        best, strand = fwd, "+"
        if args.both_strands:
            rev = aligner.align(reverse_complement(seq), reference)
            if rev.score < best.score:
                best, strand = rev, "-"
        records.append(from_alignment(best, name, ref_name, strand=strand))
    write_paf(args.output, records)
    print(
        f"mapped {len(records)} reads onto {ref_name} "
        f"({len(reference)} bp) -> {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.analysis import summarize_results

    pairs = read_seq(args.input)
    if not pairs:
        print("input holds no pairs", file=sys.stderr)
        return 1
    aligner = WavefrontAligner(
        _penalties_from_args(args), heuristic="adaptive" if args.adaptive else None
    )
    results = [aligner.align(p.pattern, p.text) for p in pairs]
    print(summarize_results(results).report())
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments.fig1 import Fig1Config, run_fig1

    config = Fig1Config(
        cpu_sample_pairs=100 if args.quick else 400,
        pim_sample_pairs_per_dpu=32 if args.quick else 96,
        num_simulated_dpus=1 if args.quick else 2,
    )
    result = run_fig1(config)
    print(result.report())
    if args.json:
        from repro.experiments.record import fig1_to_dict, write_record

        path = write_record(fig1_to_dict(result), args.json)
        print(f"\nwrote machine-readable record to {path}")
    return 0


def _sensitivity_sweep():
    from repro.experiments.sensitivity import sensitivity_analysis

    return sensitivity_analysis(cpu_sample=120, pim_sample=24)


def _cmd_qa(args: argparse.Namespace) -> int:
    from repro.pim.faults import DpuDeath, FaultPlan
    from repro.qa import QaConfig, run_qa, validate_qa_report

    fault_plan = None
    if args.kill_dpu is not None:
        fault_plan = FaultPlan(
            seed=args.seed, deaths=(DpuDeath(dpu_id=args.kill_dpu),)
        )
    report = run_qa(
        QaConfig(
            trials=args.trials,
            seed=args.seed,
            max_len=args.max_len,
            max_edits=args.max_edits,
            num_dpus=args.dpus,
            tasklets=args.tasklets,
            workers=args.workers,
            shards=args.shards,
            shard_workers=args.shard_workers,
            shrink=not args.no_shrink,
            fault_plan=fault_plan,
        )
    )
    print(report.summary())
    if args.report:
        path = report.write(args.report)
        validate_qa_report(path)
        print(f"wrote schema-valid report to {path}")
    for model, recovery in report.recovery.items():
        print(f"recovery[{model}]: {recovery['faults_seen']} fault(s), "
              f"{len(recovery['rerun_pairs'])} pair(s) re-run, "
              f"{len(recovery['abandoned_pairs'])} abandoned")
    if not report.all_ok:
        for item in report.shrunk:
            print(
                f"minimal repro [{item['penalties']}]: "
                f"pattern={item['pattern']!r} text={item['text']!r}",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.pim.ablation import STANDARD_ABLATIONS, ablation_by_name
    from repro.qa.campaign import (
        STANDARD_GRID,
        CampaignConfig,
        grid_point_by_name,
        run_campaign,
        validate_campaign_report,
    )

    ablations = STANDARD_ABLATIONS
    if args.ablations:
        ablations = tuple(
            ablation_by_name(name.strip())
            for name in args.ablations.split(",")
        )
    grid = STANDARD_GRID
    if args.grid:
        grid = tuple(
            grid_point_by_name(name.strip()) for name in args.grid.split(",")
        )
    config = CampaignConfig(
        pairs=args.pairs,
        length=args.length,
        max_edits=args.max_edits,
        seed=args.seed,
        num_dpus=args.dpus,
        tasklets=args.tasklets,
        pairs_per_round=args.pairs_per_round,
        baseline_shards=args.baseline_shards,
        serve_requests=args.serve_requests,
        serve_rate=args.serve_rate,
        ablations=ablations,
        grid=grid,
    )
    telemetry = None
    if args.events_out:
        from repro.obs import RunTelemetry

        telemetry = RunTelemetry()
    report = run_campaign(
        config,
        workers=args.workers,
        report_path=args.report,
        resume=args.resume,
        telemetry=telemetry,
    )
    print(report.summary_text())
    if args.report:
        validate_campaign_report(args.report)
        print(f"wrote schema-valid campaign report to {args.report}")
    if args.events_out:
        from repro.obs import write_events_jsonl

        write_events_jsonl(args.events_out, telemetry)
        print(f"wrote event log to {args.events_out}")
    baseline = report.config.baseline
    for record in report.cells:
        if record["delta"] is None:
            continue
        delta = record["delta"]
        print(
            f"  {record['cell']}: throughput x{delta['throughput_ratio']:.3f}, "
            f"recovery {delta['recovery_seconds_delta']:+.4f}s, "
            f"oracle {delta['oracle_agreement_delta']:+.3f} "
            f"vs {baseline}"
        )
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.data.generator import ReadPair
    from repro.errors import Overloaded
    from repro.serve import AlignRequest

    service = _build_serve_service(args)
    if args.input:
        with open(args.input, "r", encoding="utf-8") as fh:
            lines = [line for line in fh.read().splitlines() if line.strip()]
    else:
        lines = [line for line in sys.stdin.read().splitlines() if line.strip()]

    futures = []
    for lineno, line in enumerate(lines):
        try:
            record = _json.loads(line)
            pairs = tuple(
                ReadPair(pattern=p, text=t) for p, t in record["pairs"]
            )
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: bad request on line {lineno + 1}: {exc}",
                  file=sys.stderr)
            return 1
        request = AlignRequest(
            client=str(record.get("client", "cli")),
            request_id=str(record.get("id", f"r{lineno:06d}")),
            pairs=pairs,
        )
        arrival = record.get("arrival_s")
        if arrival is not None:
            service.clock.advance_to(float(arrival))
        try:
            futures.append((request, service.submit(request)))
        except Overloaded as exc:
            futures.append((request, exc))
    service.drain()

    out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    completed = rejected = 0
    try:
        for request, future in futures:
            if isinstance(future, Overloaded):
                rejected += 1
                doc = {"client": request.client, "id": request.request_id,
                       "error": "overloaded", "detail": str(future)}
            else:
                completed += 1
                doc = future.result().to_dict()
            print(_json.dumps(doc, sort_keys=True), file=out)
    finally:
        if args.output:
            out.close()
    print(f"served {completed} request(s), rejected {rejected} "
          f"({service.dispatcher.batches_dispatched} batch(es))",
          file=sys.stderr)
    if service.dispatcher.recovery is not None:
        rec = service.dispatcher.recovery
        print(f"recovery: {rec.faults_seen} fault(s), "
              f"{len(rec.rerun_pairs)} pair(s) re-run", file=sys.stderr)
    if args.metrics_out:
        _write_serve_metrics(args.metrics_out, service)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import LoadgenConfig, run_load, validate_load_report

    service = _build_serve_service(args)
    config = LoadgenConfig(
        requests=args.requests,
        rate=args.rate,
        process=args.process,
        burst=args.burst,
        rate_end=args.rate_end,
        pairs_per_request=args.pairs_per_request,
        clients=args.clients,
        length=args.length,
        error_rate=args.error_rate,
        seed=args.seed,
    )
    slo = None
    if args.slo_target is not None:
        from repro.obs.slo import SloPolicy

        slo = SloPolicy(
            latency_target_s=args.slo_target,
            latency_percentile=args.slo_percentile,
            error_budget=args.slo_budget,
        )
    report = run_load(service, config, slo=slo)
    summary = report.summary()
    rows = [
        ("requests", f"{summary['requests']:,}"),
        ("completed / rejected",
         f"{summary['completed']:,} / {summary['rejected']:,}"),
        ("pairs served (cached)",
         f"{summary['pairs_served']:,} ({summary['cached_pairs']:,})"),
        ("batches", f"{summary['batches']:,}"),
        ("latency p50 / p99",
         f"{human_time(summary['latency_p50_s'])} / "
         f"{human_time(summary['latency_p99_s'])}"),
        ("makespan", human_time(summary["makespan_s"])),
        ("throughput", f"{summary['throughput_pairs_per_s']:,.0f} pairs/s"),
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"loadgen ({config.process}, seed {config.seed})"))
    if report.recovery is not None:
        print(f"recovery: {report.recovery['faults_seen']} fault(s), "
              f"{len(report.recovery['rerun_pairs'])} pair(s) re-run, "
              f"{len(report.recovery['abandoned_pairs'])} abandoned")
    if summary.get("slo") is not None:
        slo_doc = summary["slo"]
        print(
            f"slo: p{slo_doc['policy']['latency_percentile']:g} target "
            f"{human_time(slo_doc['policy']['latency_target_s'])} -> "
            f"{'met' if slo_doc['met'] else 'MISSED'} "
            f"(achieved {human_time(slo_doc['achieved_latency_s'])}, "
            f"budget consumed {slo_doc['budget_consumed']:.2f}x, "
            f"alerts fired/resolved "
            f"{slo_doc['alerts_fired']}/{slo_doc['alerts_resolved']})"
        )
    if args.report:
        report.write(args.report)
        validate_load_report(args.report)
        print(f"wrote schema-valid report to {args.report}")
    if args.metrics_out:
        _write_serve_metrics(args.metrics_out, service)
    if args.events_out:
        from repro.obs.export import write_events_jsonl

        write_events_jsonl(args.events_out, service.telemetry)
        print(f"wrote event log to {args.events_out} "
              f"({len(service.telemetry.events.events())} event(s))")
    if args.trace_out:
        from repro.obs.export import write_chrome_trace

        doc = write_chrome_trace(args.trace_out, service.telemetry)
        print(f"wrote Chrome trace to {args.trace_out} "
              f"({len(doc['traceEvents'])} events)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        append_records,
        compare,
        load_ledger,
        run_scenarios,
    )

    if args.bench_command == "run":
        records = run_scenarios(
            names=args.scenario,
            profile=args.profile,
            progress=lambda name: print(f"running {name} ...", flush=True),
        )
        rows = [
            (
                r["scenario"],
                f"{r['pairs_per_second']:,.0f}",
                human_time(r["total_seconds"]),
                human_time(r["kernel_seconds"]),
                human_time(r["latency_p99_s"]),
            )
            for r in records
        ]
        print(format_table(
            ["scenario", "pairs/s", "total", "kernel", "p99"],
            rows,
            title=f"bench ({args.profile} profile)",
        ))
        if args.no_append:
            print(f"{len(records)} record(s) not appended (--no-append)")
            return 0
        total = append_records(args.ledger, records)
        print(f"appended {len(records)} record(s) to {args.ledger} "
              f"({total} total)")
        return 0

    # compare: the CI regression gate
    ledger = load_ledger(args.ledger)
    baseline = load_ledger(args.baseline)
    if not baseline:
        print(f"error: no baseline records at {args.baseline}",
              file=sys.stderr)
        return 1
    if not ledger:
        print(f"error: no ledger records at {args.ledger} — "
              f"run `repro bench run` first", file=sys.stderr)
        return 1
    failures = compare(
        ledger,
        baseline,
        max_throughput_drop=args.max_drop,
        max_latency_rise=args.max_rise,
    )
    scenarios = sorted({r["scenario"] for r in baseline})
    print(f"gate: {len(scenarios)} scenario(s) vs {args.baseline} "
          f"(max drop {args.max_drop:.0%}, max rise {args.max_rise:.0%})")
    if failures:
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import sweeps

    runner = {
        "tasklets": lambda: sweeps.tasklet_sweep(sample_pairs_per_dpu=32),
        "allocator": lambda: sweeps.allocator_policy_ablation(sample_pairs_per_dpu=24),
        "error-rate": lambda: sweeps.error_rate_sweep(sample_pairs_per_dpu=12),
        "read-length": lambda: sweeps.read_length_sweep(sample_pairs_per_dpu=6),
        "dpus": lambda: sweeps.dpu_count_sweep(sample_pairs_per_dpu=24),
        "algos": lambda: sweeps.algorithm_comparison(sample_pairs_per_dpu=16),
        "staging": lambda: sweeps.staging_chunk_ablation(sample_pairs_per_dpu=3),
        "sensitivity": _sensitivity_sweep,
    }[args.which]
    print(runner().report())
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "align": _cmd_align,
    "pim-align": _cmd_pim_align,
    "map": _cmd_map,
    "stats": _cmd_stats,
    "fig1": _cmd_fig1,
    "qa": _cmd_qa,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "bench": _cmd_bench,
    "sweep": _cmd_sweep,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
