"""Sequence-pair file I/O.

Two formats:

* **``.seq``** — the pair format of WFA2-lib's ``align_benchmark`` tool:
  two lines per pair, ``>PATTERN`` then ``<TEXT``.  This is the format
  the paper's tooling consumes, so datasets written here are drop-in
  usable with the original software.
* **FASTA** — interleaved records ``(pair<i>/1, pair<i>/2)``; provided
  for interoperability with general bioinformatics tooling.

Parsers are strict: malformed input raises :class:`DataError` with the
offending line number rather than silently skipping records.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.data.generator import ReadPair
from repro.errors import DataError

__all__ = [
    "write_seq",
    "read_seq",
    "write_fasta_pairs",
    "read_fasta_pairs",
    "read_fasta",
    "write_fasta",
]

PathLike = Union[str, Path]


def write_seq(path: PathLike, pairs: Iterable[ReadPair]) -> int:
    """Write pairs in ``.seq`` format; returns the number written."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for pair in pairs:
            fh.write(f">{pair.pattern}\n<{pair.text}\n")
            count += 1
    return count


def read_seq(path: PathLike) -> list[ReadPair]:
    """Read a ``.seq`` file into :class:`ReadPair` objects."""
    pairs: list[ReadPair] = []
    pattern: str | None = None
    with open(path, "r", encoding="ascii") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            tag, body = line[0], line[1:]
            if tag == ">":
                if pattern is not None:
                    raise DataError(
                        f"{path}:{lineno}: consecutive '>' lines (missing '<')"
                    )
                pattern = body
            elif tag == "<":
                if pattern is None:
                    raise DataError(
                        f"{path}:{lineno}: '<' line without preceding '>'"
                    )
                pairs.append(ReadPair(pattern=pattern, text=body))
                pattern = None
            else:
                raise DataError(
                    f"{path}:{lineno}: line must start with '>' or '<', got {tag!r}"
                )
    if pattern is not None:
        raise DataError(f"{path}: trailing '>' line without '<'")
    return pairs


def iter_seq(path: PathLike) -> Iterator[ReadPair]:
    """Streaming variant of :func:`read_seq` for large files."""
    pattern: str | None = None
    with open(path, "r", encoding="ascii") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            tag, body = line[0], line[1:]
            if tag == ">":
                if pattern is not None:
                    raise DataError(
                        f"{path}:{lineno}: consecutive '>' lines (missing '<')"
                    )
                pattern = body
            elif tag == "<":
                if pattern is None:
                    raise DataError(
                        f"{path}:{lineno}: '<' line without preceding '>'"
                    )
                yield ReadPair(pattern=pattern, text=body)
                pattern = None
            else:
                raise DataError(
                    f"{path}:{lineno}: line must start with '>' or '<', got {tag!r}"
                )
    if pattern is not None:
        raise DataError(f"{path}: trailing '>' line without '<'")


def read_fasta(path: PathLike) -> list[tuple[str, str]]:
    """Read a generic FASTA file into ``(name, sequence)`` records."""
    records: list[tuple[str, str]] = []
    name: str | None = None
    chunks: list[str] = []
    with open(path, "r", encoding="ascii") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if line.startswith(">"):
                if name is not None:
                    records.append((name, "".join(chunks)))
                name = line[1:].split()[0] if len(line) > 1 else f"seq{len(records)}"
                chunks = []
            elif line:
                if name is None:
                    raise DataError(
                        f"{path}:{lineno}: sequence data before first header"
                    )
                chunks.append(line)
    if name is not None:
        records.append((name, "".join(chunks)))
    return records


def write_fasta(
    path: PathLike, records: Iterable[tuple[str, str]], width: int = 80
) -> int:
    """Write generic ``(name, sequence)`` records as FASTA."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for name, seq in records:
            fh.write(f">{name}\n")
            for start in range(0, len(seq), width):
                fh.write(seq[start : start + width] + "\n")
            if not seq:
                fh.write("\n")
            count += 1
    return count


def write_fasta_pairs(path: PathLike, pairs: Iterable[ReadPair], width: int = 80) -> int:
    """Write pairs as interleaved FASTA records ``pair<i>/1``, ``pair<i>/2``."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for idx, pair in enumerate(pairs):
            for suffix, seq in (("1", pair.pattern), ("2", pair.text)):
                fh.write(f">pair{idx}/{suffix}\n")
                for start in range(0, len(seq), width):
                    fh.write(seq[start : start + width] + "\n")
                if not seq:
                    fh.write("\n")
            count += 1
    return count


def read_fasta_pairs(path: PathLike) -> list[ReadPair]:
    """Read interleaved FASTA back into pairs (records taken two at a time)."""
    names: list[str] = []
    seqs: list[str] = []
    current: list[str] | None = None
    with open(path, "r", encoding="ascii") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if line.startswith(">"):
                names.append(line[1:])
                if current is not None:
                    seqs.append("".join(current))
                current = []
            else:
                if current is None:
                    if line:
                        raise DataError(
                            f"{path}:{lineno}: sequence data before first header"
                        )
                    continue
                current.append(line)
    if current is not None:
        seqs.append("".join(current))
    if len(seqs) % 2 != 0:
        raise DataError(f"{path}: odd number of FASTA records ({len(seqs)})")
    return [
        ReadPair(pattern=seqs[i], text=seqs[i + 1]) for i in range(0, len(seqs), 2)
    ]
