"""Synthetic read-pair workload generation.

The paper's workload is "5 million pairs of 100bp-long reads with edit
distance thresholds (E) of 2% and 4%" — the standard WFA evaluation
setup: for each pair, a random DNA read and a copy mutated with edits up
to the threshold.  Real sequencing reads are not available offline, so
this generator is the substitution (see DESIGN.md §2); its guarantees are
property-tested against an independent Levenshtein implementation.

Error models (``error_model``):

* ``"exact"`` (default) — every pair receives exactly
  ``round(error_rate * length)`` edit operations (the WFA paper's setup).
* ``"uniform"`` — the edit count is drawn uniformly from
  ``[0, round(error_rate * length)]``, modelling a threshold rather than
  a fixed rate.
* ``"binomial"`` — each position independently mutates with probability
  ``error_rate``, modelling a uniform per-base error process.

In every model the *requested* edit count is an upper bound on the true
edit distance of the pair (random edits can cancel or overlap).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import DataError

__all__ = ["ReadPair", "ReadPairGenerator", "random_sequence", "mutate_sequence"]

DNA = "ACGT"


def random_sequence(length: int, rng: random.Random, alphabet: str = DNA) -> str:
    """Uniform random sequence over ``alphabet``."""
    if length < 0:
        raise DataError(f"sequence length must be >= 0, got {length}")
    return "".join(rng.choice(alphabet) for _ in range(length))


def mutate_sequence(
    seq: str,
    num_errors: int,
    rng: random.Random,
    alphabet: str = DNA,
) -> str:
    """Apply exactly ``num_errors`` random edits to ``seq``.

    Each edit is a substitution (to a *different* character), an
    insertion, or a deletion, chosen uniformly; positions are uniform over
    the current sequence.  The result's edit distance to ``seq`` is at
    most ``num_errors`` (edits may cancel), which is precisely the
    "threshold" semantics of the paper's E parameter.
    """
    if num_errors < 0:
        raise DataError(f"num_errors must be >= 0, got {num_errors}")
    out = list(seq)
    for _ in range(num_errors):
        kind = rng.randrange(3)
        if kind == 0 and out:  # substitution
            pos = rng.randrange(len(out))
            old = out[pos]
            choices = [c for c in alphabet if c != old]
            out[pos] = rng.choice(choices) if choices else old
        elif kind == 1:  # insertion
            pos = rng.randrange(len(out) + 1)
            out.insert(pos, rng.choice(alphabet))
        elif out:  # deletion
            pos = rng.randrange(len(out))
            del out[pos]
    return "".join(out)


@dataclass(frozen=True)
class ReadPair:
    """One alignment work item: a (pattern, text) pair plus provenance."""

    pattern: str
    text: str
    requested_errors: int = 0

    def max_length(self) -> int:
        """Longer of the two reads (sizing MRAM slots)."""
        return max(len(self.pattern), len(self.text))


@dataclass
class ReadPairGenerator:
    """Seeded generator of read pairs at a given length and error threshold.

    Args:
        length: read length in bp (the paper uses 100).
        error_rate: edit threshold E as a fraction (0.02 for the paper's
            2%); the per-pair edit budget is ``round(error_rate*length)``.
        seed: RNG seed; two generators with equal parameters produce
            identical streams, which is what lets the sampled-measurement
            methodology extrapolate deterministically.
        error_model: ``"exact"``, ``"uniform"`` or ``"binomial"``.
        alphabet: residue alphabet, default DNA.
    """

    length: int = 100
    error_rate: float = 0.02
    seed: int = 0
    error_model: str = "exact"
    alphabet: str = DNA
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.length < 1:
            raise DataError(f"length must be >= 1, got {self.length}")
        if not 0.0 <= self.error_rate <= 1.0:
            raise DataError(f"error_rate must be in [0, 1], got {self.error_rate}")
        if self.error_model not in ("exact", "uniform", "binomial"):
            raise DataError(f"unknown error_model {self.error_model!r}")
        if len(self.alphabet) < 2:
            raise DataError("alphabet needs at least 2 symbols to mutate")
        self._rng = random.Random(self.seed)

    @property
    def edit_budget(self) -> int:
        """Per-pair maximum number of edit operations."""
        return round(self.error_rate * self.length)

    def _draw_errors(self) -> int:
        if self.error_model == "exact":
            return self.edit_budget
        if self.error_model == "uniform":
            return self._rng.randint(0, self.edit_budget)
        # binomial: per-base coin flips
        return sum(
            1 for _ in range(self.length) if self._rng.random() < self.error_rate
        )

    def pair(self) -> ReadPair:
        """Generate the next read pair."""
        pattern = random_sequence(self.length, self._rng, self.alphabet)
        errors = self._draw_errors()
        text = mutate_sequence(pattern, errors, self._rng, self.alphabet)
        return ReadPair(pattern=pattern, text=text, requested_errors=errors)

    def pairs(self, count: int) -> list[ReadPair]:
        """Generate ``count`` pairs eagerly."""
        if count < 0:
            raise DataError(f"count must be >= 0, got {count}")
        return [self.pair() for _ in range(count)]

    def stream(self, count: int) -> Iterator[ReadPair]:
        """Generate ``count`` pairs lazily."""
        for _ in range(count):
            yield self.pair()


def total_bases(pairs: Sequence[ReadPair]) -> int:
    """Total residues across all reads of all pairs (transfer sizing)."""
    return sum(len(p.pattern) + len(p.text) for p in pairs)
