"""Small sequence utilities used by examples, tests and workload tooling."""

from __future__ import annotations

from collections import Counter

from repro.errors import DataError

__all__ = [
    "reverse_complement",
    "gc_content",
    "hamming_distance",
    "kmer_counts",
    "validate_alphabet",
]

_COMPLEMENT = str.maketrans("ACGTNacgtn", "TGCANtgcan")


def reverse_complement(seq: str) -> str:
    """Reverse complement of a DNA sequence (supports N, preserves case)."""
    try:
        return seq.translate(_COMPLEMENT)[::-1]
    except Exception as exc:  # pragma: no cover - translate never raises here
        raise DataError(f"cannot reverse-complement {seq!r}") from exc


def gc_content(seq: str) -> float:
    """Fraction of G/C residues (case-insensitive); 0.0 for empty input."""
    if not seq:
        return 0.0
    up = seq.upper()
    return (up.count("G") + up.count("C")) / len(seq)


def hamming_distance(a: str, b: str) -> int:
    """Mismatch count between equal-length sequences."""
    if len(a) != len(b):
        raise DataError(
            f"hamming_distance requires equal lengths, got {len(a)} and {len(b)}"
        )
    return sum(1 for x, y in zip(a, b) if x != y)


def kmer_counts(seq: str, k: int) -> Counter:
    """Counts of every length-``k`` substring."""
    if k < 1:
        raise DataError(f"k must be >= 1, got {k}")
    return Counter(seq[i : i + k] for i in range(len(seq) - k + 1))


def validate_alphabet(seq: str, alphabet: str = "ACGT") -> None:
    """Raise :class:`DataError` if ``seq`` uses symbols outside ``alphabet``."""
    extra = set(seq) - set(alphabet)
    if extra:
        raise DataError(
            f"sequence uses symbols outside {alphabet!r}: {sorted(extra)}"
        )
