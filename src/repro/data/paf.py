"""PAF output for mapping-style alignment results.

PAF (the "pairwise mapping format" of minimap2) is the lingua franca for
read-to-reference mappings; writing it makes this library's semi-global
results consumable by standard downstream tooling (paftools, dotplots,
IGV converters).

One record per mapped read; the ``cg:Z:`` tag carries the CIGAR.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Union

from repro.core.aligner import AlignmentResult
from repro.errors import DataError

__all__ = ["PafRecord", "from_alignment", "write_paf", "read_paf"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class PafRecord:
    """One PAF line (mandatory columns + the cg CIGAR tag)."""

    query_name: str
    query_len: int
    query_start: int
    query_end: int
    strand: str  # "+" or "-"
    target_name: str
    target_len: int
    target_start: int
    target_end: int
    matches: int
    alignment_len: int
    mapq: int = 255
    cigar: str = ""

    def __post_init__(self) -> None:
        if self.strand not in ("+", "-"):
            raise DataError(f"strand must be '+' or '-', got {self.strand!r}")
        if not 0 <= self.query_start <= self.query_end <= self.query_len:
            raise DataError("query coordinates out of order")
        if not 0 <= self.target_start <= self.target_end <= self.target_len:
            raise DataError("target coordinates out of order")

    def line(self) -> str:
        fields = [
            self.query_name,
            str(self.query_len),
            str(self.query_start),
            str(self.query_end),
            self.strand,
            self.target_name,
            str(self.target_len),
            str(self.target_start),
            str(self.target_end),
            str(self.matches),
            str(self.alignment_len),
            str(self.mapq),
        ]
        if self.cigar:
            fields.append(f"cg:Z:{self.cigar}")
        return "\t".join(fields)


def from_alignment(
    result: AlignmentResult,
    query_name: str,
    target_name: str,
    strand: str = "+",
    mapq: int = 255,
) -> PafRecord:
    """Build a PAF record from an (ends-free or global) alignment result."""
    if result.cigar is None:
        raise DataError("PAF output needs a CIGAR (align without score_only)")
    counts = result.cigar.counts()
    return PafRecord(
        query_name=query_name,
        query_len=result.pattern_len,
        query_start=result.pattern_start,
        query_end=result.pattern_end,
        strand=strand,
        target_name=target_name,
        target_len=result.text_len,
        target_start=result.text_start,
        target_end=result.text_end,
        matches=counts["M"],
        alignment_len=result.cigar.columns(),
        mapq=mapq,
        cigar=str(result.cigar),
    )


def write_paf(path: PathLike, records: Iterable[PafRecord]) -> int:
    """Write records to a PAF file; returns the count."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for rec in records:
            fh.write(rec.line() + "\n")
            count += 1
    return count


def read_paf(path: PathLike) -> list[PafRecord]:
    """Parse a PAF file (mandatory columns + optional cg tag)."""
    records = []
    with open(path, "r", encoding="ascii") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) < 12:
                raise DataError(f"{path}:{lineno}: PAF needs >= 12 columns")
            cigar = ""
            for tag in fields[12:]:
                if tag.startswith("cg:Z:"):
                    cigar = tag[5:]
            records.append(
                PafRecord(
                    query_name=fields[0],
                    query_len=int(fields[1]),
                    query_start=int(fields[2]),
                    query_end=int(fields[3]),
                    strand=fields[4],
                    target_name=fields[5],
                    target_len=int(fields[6]),
                    target_start=int(fields[7]),
                    target_end=int(fields[8]),
                    matches=int(fields[9]),
                    alignment_len=int(fields[10]),
                    mapq=int(fields[11]),
                    cigar=cigar,
                )
            )
    return records
