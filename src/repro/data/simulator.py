"""Reference-based read simulation.

Where :mod:`repro.data.generator` mutates random pairs (the paper's
pairwise workload), this module simulates the *mapping* scenario: reads
sampled from positions of a reference contig, optionally from the
reverse strand, with sequencing errors — producing the
(read, window, true position) triples the semi-global alignment mode and
the ends-free PIM kernel consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.generator import mutate_sequence, random_sequence
from repro.data.seqtools import reverse_complement
from repro.errors import DataError

__all__ = ["SampledRead", "ReferenceSampler"]


@dataclass(frozen=True)
class SampledRead:
    """One simulated read with its provenance."""

    sequence: str
    #: 0-based position of the read's origin on the forward strand.
    position: int
    #: True when the read was sampled from the reverse strand.
    reverse: bool
    #: edits applied on top of the perfect extraction.
    errors: int

    def window(self, reference: str, flank: int) -> tuple[str, int]:
        """The candidate mapping window around the true origin.

        Returns ``(window_sequence, read_offset_in_window)`` — what a
        seed index would hand an aligner.
        """
        start = max(0, self.position - flank)
        end = min(len(reference), self.position + len(self.sequence) + flank)
        return reference[start:end], self.position - start


@dataclass
class ReferenceSampler:
    """Samples error-bearing reads from a reference sequence.

    Args:
        reference: the contig to sample from (generated if omitted).
        read_length: bases per read.
        error_rate: per-read edit budget fraction (exact count, like the
            paper's E).
        reverse_strand_fraction: probability a read comes from the
            reverse strand (its sequence is reverse-complemented).
        seed: RNG seed; sampling is fully deterministic.
    """

    reference: str = ""
    read_length: int = 100
    error_rate: float = 0.02
    reverse_strand_fraction: float = 0.5
    seed: int = 0
    reference_length: int = 100_000
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        if not self.reference:
            self.reference = random_sequence(self.reference_length, self._rng)
        if self.read_length < 1:
            raise DataError(f"read_length must be >= 1, got {self.read_length}")
        if self.read_length > len(self.reference):
            raise DataError(
                f"read_length {self.read_length} exceeds the reference "
                f"({len(self.reference)} bp)"
            )
        if not 0.0 <= self.error_rate <= 1.0:
            raise DataError(f"error_rate must be in [0, 1], got {self.error_rate}")
        if not 0.0 <= self.reverse_strand_fraction <= 1.0:
            raise DataError("reverse_strand_fraction must be in [0, 1]")

    @property
    def edit_budget(self) -> int:
        return round(self.error_rate * self.read_length)

    def read(self) -> SampledRead:
        """Sample one read."""
        pos = self._rng.randrange(len(self.reference) - self.read_length + 1)
        fragment = self.reference[pos : pos + self.read_length]
        reverse = self._rng.random() < self.reverse_strand_fraction
        if reverse:
            fragment = reverse_complement(fragment)
        errors = self.edit_budget
        sequence = mutate_sequence(fragment, errors, self._rng)
        return SampledRead(
            sequence=sequence, position=pos, reverse=reverse, errors=errors
        )

    def reads(self, count: int) -> list[SampledRead]:
        if count < 0:
            raise DataError(f"count must be >= 0, got {count}")
        return [self.read() for _ in range(count)]

    def oriented_query(self, read: SampledRead) -> str:
        """The read in forward-strand orientation (as a mapper would try)."""
        return reverse_complement(read.sequence) if read.reverse else read.sequence
