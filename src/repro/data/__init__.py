"""Workload substrate: read-pair generation, dataset specs, sequence I/O."""

from repro.data.datasets import (
    PAPER_NUM_PAIRS,
    PAPER_READ_LENGTH,
    DatasetSpec,
    paper_dataset,
)
from repro.data.generator import (
    ReadPair,
    ReadPairGenerator,
    mutate_sequence,
    random_sequence,
    total_bases,
)
from repro.data.paf import PafRecord, from_alignment, read_paf, write_paf
from repro.data.simulator import ReferenceSampler, SampledRead
from repro.data.seqtools import (
    gc_content,
    hamming_distance,
    kmer_counts,
    reverse_complement,
    validate_alphabet,
)
from repro.data.seqio import (
    iter_seq,
    read_fasta,
    write_fasta,
    read_fasta_pairs,
    read_seq,
    write_fasta_pairs,
    write_seq,
)

__all__ = [
    "DatasetSpec",
    "paper_dataset",
    "PAPER_NUM_PAIRS",
    "PAPER_READ_LENGTH",
    "ReadPair",
    "ReadPairGenerator",
    "random_sequence",
    "mutate_sequence",
    "total_bases",
    "write_seq",
    "read_seq",
    "iter_seq",
    "write_fasta_pairs",
    "read_fasta_pairs",
    "read_fasta",
    "write_fasta",
    "reverse_complement",
    "gc_content",
    "hamming_distance",
    "kmer_counts",
    "validate_alphabet",
    "ReferenceSampler",
    "SampledRead",
    "PafRecord",
    "from_alignment",
    "write_paf",
    "read_paf",
]
