"""Dataset specifications and the paper's workload presets.

A :class:`DatasetSpec` fully determines a workload (count, length, error
threshold, error model, seed) without materializing it — 5 million pairs
are never held in memory.  Experiments *sample* a spec: they generate the
first ``sample_size`` pairs, measure per-pair operation counts, and
extrapolate to the full count (legitimate because pairs are i.i.d. by
construction and generation is seeded/deterministic; see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.data.generator import ReadPair, ReadPairGenerator
from repro.errors import DataError

__all__ = ["DatasetSpec", "paper_dataset", "PAPER_NUM_PAIRS", "PAPER_READ_LENGTH"]

#: Workload constants from the paper's Results section.
PAPER_NUM_PAIRS = 5_000_000
PAPER_READ_LENGTH = 100
PAPER_ERROR_RATES = (0.02, 0.04)


@dataclass(frozen=True)
class DatasetSpec:
    """A fully-seeded description of an alignment workload."""

    num_pairs: int
    length: int
    error_rate: float
    seed: int = 0
    error_model: str = "exact"

    def __post_init__(self) -> None:
        if self.num_pairs < 0:
            raise DataError(f"num_pairs must be >= 0, got {self.num_pairs}")

    def generator(self) -> ReadPairGenerator:
        """A fresh generator positioned at the start of this dataset."""
        return ReadPairGenerator(
            length=self.length,
            error_rate=self.error_rate,
            seed=self.seed,
            error_model=self.error_model,
        )

    def sample(self, sample_size: int) -> list[ReadPair]:
        """The first ``min(sample_size, num_pairs)`` pairs of the dataset."""
        take = min(sample_size, self.num_pairs)
        return self.generator().pairs(take)

    def stream(self) -> Iterator[ReadPair]:
        """Every pair of the dataset, lazily."""
        return self.generator().stream(self.num_pairs)

    def scaled(self, num_pairs: int) -> "DatasetSpec":
        """Same distribution, different pair count (mini-scale experiments)."""
        return replace(self, num_pairs=num_pairs)

    @property
    def edit_budget(self) -> int:
        """Per-pair edit budget ``round(error_rate * length)``."""
        return round(self.error_rate * self.length)

    def describe(self) -> str:
        """Human-readable one-liner used in experiment reports."""
        return (
            f"{self.num_pairs:,} pairs x {self.length}bp, "
            f"E={self.error_rate:.0%} ({self.error_model}, seed={self.seed})"
        )


def paper_dataset(error_rate: float, seed: int = 0) -> DatasetSpec:
    """The paper's workload: 5M pairs of 100bp reads at threshold E.

    ``error_rate`` should be one of the paper's thresholds (0.02, 0.04)
    but any value in [0, 1] is accepted for the extension sweeps.
    """
    return DatasetSpec(
        num_pairs=PAPER_NUM_PAIRS,
        length=PAPER_READ_LENGTH,
        error_rate=error_rate,
        seed=seed,
    )
