"""Simulator micro-benchmarks: throughput of the PIM substrate itself.

These time the simulator's own components (DMA engine, allocator, memory,
full per-pair kernel path) with pytest-benchmark.  They guard against
performance regressions that would make the sampled-measurement
methodology impractically slow, and they document the simulator's
alignment-per-second capacity.
"""

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.pim.allocator import BumpAllocator
from repro.pim.config import DpuConfig, DpuTimingConfig, HostTransferConfig
from repro.pim.dma import DmaEngine
from repro.pim.dpu import Dpu
from repro.pim.kernel import KernelConfig, WfaDpuKernel
from repro.pim.layout import MramLayout
from repro.pim.memory import Mram, Wram
from repro.pim.transfer import HostTransferEngine

PEN = AffinePenalties(4, 6, 2)


def test_dma_transfer_throughput(benchmark):
    dma = DmaEngine(Mram(), Wram(), DpuTimingConfig())
    dma.mram.write(0, b"\xaa" * 2048)

    def run():
        for _ in range(100):
            dma.read(0, 0, 2048)

    benchmark(run)
    assert dma.transfers >= 100


def test_bump_allocator_throughput(benchmark):
    arena = BumpAllocator(0, 1 << 20, "wram")

    def run():
        arena.reset()
        for _ in range(1000):
            arena.alloc(36)

    benchmark(run)


def test_memory_rw_throughput(benchmark):
    mem = Wram()
    payload = b"\x55" * 256

    def run():
        for addr in range(0, 32 * 1024, 256):
            mem.write(addr, payload)
            mem.read(addr, 256)

    benchmark(run)


def test_kernel_pairs_per_second(benchmark):
    """End-to-end simulated alignments per wall-clock second."""
    pairs = ReadPairGenerator(length=100, error_rate=0.02, seed=1).pairs(32)
    kc = KernelConfig(penalties=PEN, max_read_len=100, max_edits=2)
    kernel = WfaDpuKernel(kc)
    layout = MramLayout.plan(
        num_pairs=len(pairs),
        max_pattern_len=kc.max_seq_len,
        max_text_len=kc.max_seq_len,
        max_cigar_ops=kc.max_cigar_ops,
        tasklets=8,
        metadata_bytes_per_tasklet=kc.metadata_peak_bytes(),
    )
    assignments = [list(range(t, len(pairs), 8)) for t in range(8)]

    def run():
        dpu = Dpu(DpuConfig())
        HostTransferEngine(HostTransferConfig()).push_batch(dpu, layout, pairs)
        stats, _ = kernel.run(dpu, layout, assignments, "mram")
        return dpu.summarize(stats)

    summary = benchmark(run)
    assert summary.pairs_done == 32
