"""Bidirectional WFA: memory advantage and wall-clock cost.

BiWFA-style scoring keeps only two O(s)-wide wavefront windows alive
instead of the O(s^2) metadata a full-traceback engine accumulates.
This bench measures both the peak-metadata ratio and the Python
wall-clock cost of the bidirectional drive.
"""

import random

from conftest import emit

from repro.core.aligner import WavefrontAligner
from repro.core.bidirectional import biwfa_score
from repro.core.penalties import AffinePenalties
from repro.core.wfa import WfaEngine
from repro.perf.report import format_table

PEN = AffinePenalties(4, 6, 2)


def make_pair(length: int, seed: int) -> tuple[str, str]:
    rng = random.Random(seed)
    p = "".join(rng.choice("ACGT") for _ in range(length))
    t = list(p)
    for _ in range(round(0.08 * length)):
        op = rng.randrange(3)
        if op == 0 and t:
            t[rng.randrange(len(t))] = rng.choice("ACGT")
        elif op == 1:
            t.insert(rng.randrange(len(t) + 1), rng.choice("ACGT"))
        elif t:
            del t[rng.randrange(len(t))]
    return p, "".join(t)


PAIRS = [make_pair(400, s) for s in range(6)]


def test_biwfa_score_wallclock(benchmark):
    scores = benchmark(lambda: [biwfa_score(p, t, PEN) for p, t in PAIRS])
    assert all(s >= 0 for s in scores)


def test_standard_score_wallclock(benchmark):
    aligner = WavefrontAligner(PEN)
    scores = benchmark(
        lambda: [aligner.align(p, t, score_only=True).score for p, t in PAIRS]
    )
    assert all(s >= 0 for s in scores)


def test_memory_footprint_table(benchmark):
    def run():
        rows = []
        for p, t in PAIRS[:3]:
            full = WfaEngine(p, t, PEN, memory_mode="full")
            full.run()
            low = WfaEngine(p, t, PEN, memory_mode="low")
            low.run()
            bi = biwfa_score(p, t, PEN)
            assert bi == full.final_score
            rows.append(
                (
                    f"{len(p)}bp s={full.final_score}",
                    f"{full.counters.peak_live_bytes:,} B",
                    f"{2 * low.counters.peak_live_bytes:,} B",
                    f"{full.counters.peak_live_bytes / (2 * low.counters.peak_live_bytes):.1f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "biwfa_memory",
        format_table(
            ["pair", "full-traceback peak", "bidirectional peak (2 windows)", "saving"],
            rows,
            title="peak wavefront metadata: standard vs bidirectional",
        ),
    )
    for row in rows:
        assert float(row[3].rstrip("x")) > 2.0
